//! `acsched` — the command-line front end of the workspace.
//!
//! Experiments are *data*: a scenario text file (grammar in
//! `docs/SCENARIO_FORMAT.md`, examples in `scenarios/`) declares the
//! whole campaign grid, and this binary parses, validates, runs and
//! streams it.
//!
//! ```text
//! acsched check <scenario>...                 parse + validate + grid size
//! acsched run <scenario> [--out FILE] [--threads N]
//!                                             run; stream CSV/JSONL to FILE
//! acsched synth <scenario> --task-set NAME --processor NAME
//!               [--kind wcs|acs] [--out FILE] offline schedule -> artifact
//! acsched serve [--addr HOST:PORT] [...]     long-lived campaign server
//! acsched submit <scenario> [--addr ...]     stream a campaign to a server
//! acsched stats [--addr ...]                 print server cache counters
//! acsched trace gen [--profile P] [--jobs N] [--out FILE]
//!                                             synthesize an arrival trace
//! acsched trace check <trace>...              validate trace files
//! ```

use acs_core::{synthesize_acs_best, synthesize_acs_warm, synthesize_wcs, SynthesisOptions};
use acs_runtime::{AggregateSink, CsvSink, JsonlSink, ResultSink, Tee};
use acs_scenario::{Scenario, SynthProfile};
use acs_serve::{ServerConfig, SubmitOptions};
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "\
acsched — average-case-aware DVS scheduling experiments

USAGE:
    acsched check <scenario>...
        Parse and validate scenario files; print each grid's size
        without running anything.

    acsched run <scenario> [--out FILE] [--threads N] [--quiet]
        Run the campaign. --out streams per-cell records to FILE while
        the grid executes (format by extension: .csv, .jsonl/.ndjson);
        --threads overrides the scenario's worker count; --quiet
        suppresses the result table. Exits 1 when any cell failed.

    acsched synth <scenario> --task-set NAME --processor NAME
            [--kind wcs|acs] [--out FILE]
        Synthesize the offline schedule for one (task set, processor)
        pair of the scenario and export it as an `acsched-schedule v1`
        artifact (default kind: acs, to stdout).

    acsched serve [--addr HOST:PORT] [--ckpt-dir DIR] [--max-campaigns N]
            [--inflight N] [--chunk N] [--threads N] [--cache-capacity N]
            [--cache-shards N]
        Run the campaign server: a long-lived process whose solver and
        phase-1 plan caches stay warm across submissions. Prints
        `listening on <addr>` once bound (`--addr :0` picks a free
        port). Campaigns checkpoint to DIR (default .acsched-ckpt) and
        are resumable after a crash. Protocol: docs/SERVER.md.

    acsched submit <scenario> [--addr HOST:PORT] [--id NAME] [--resume]
            [--out FILE] [--threads N] [--chunk N] [--quiet]
        Stream a scenario to a server. --out writes the streamed CSV
        (byte-identical to `acsched run` for non-reopt scenarios);
        --resume replays chunks already checkpointed under --id.
        Exits 1 when any cell failed.

    acsched stats [--addr HOST:PORT]
        Print the server's cache/campaign counters as one JSON line.

    acsched trace gen [--profile light|bursty|heavy] [--jobs N]
            [--seed N] [--tasks N] [--out FILE]
        Synthesize an `acsched-trace v1` arrival trace over the built-in
        task set (default: bursty, 1000000 jobs, seed 0, 4 tasks, to
        stdout). Replay it with `taskset <name> trace <path>` in a v4
        scenario. Format: docs/TRACE_FORMAT.md.

    acsched trace check <trace>...
        Validate trace files: stream every record (bounded memory),
        checking the prologue, monotone arrivals and cycle bounds.
        Prints a per-file summary; exits 1 on the first malformed file,
        naming its line.

Scenario grammar: docs/SCENARIO_FORMAT.md; examples: scenarios/";

const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("acsched: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Positional arguments and `(name, value)` option pairs of one
/// subcommand invocation (a toggle's value is the empty string).
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits `args` into positionals, `--flag value` options (from
/// `known`) and bare `--switch` toggles (from `known_bools`), rejecting
/// anything else.
fn parse_flags<'a>(
    args: &'a [String],
    known: &[&str],
    known_bools: &[&str],
) -> Result<ParsedArgs<'a>, String> {
    let mut positional = Vec::new();
    let mut flags: Vec<(&str, &str)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if flags.iter().any(|(k, _)| *k == name) {
                return Err(format!("option `--{name}` given twice"));
            }
            if known_bools.contains(&name) {
                flags.push((name, ""));
            } else if known.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option `--{name}` needs a value"))?;
                flags.push((name, value.as_str()));
            } else {
                return Err(format!("unknown option `--{name}`"));
            }
        } else {
            positional.push(arg.as_str());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let (paths, _flags) = parse_flags(args, &[], &[])?;
    if paths.is_empty() {
        return Err("check: expected at least one scenario file".into());
    }
    for path in paths {
        let scenario = Scenario::load(path).map_err(|e| e.to_string())?;
        // Row count straight from the declarations; `to_campaign` below
        // does the single materialization pass (fig6a-scale scenarios
        // generate 150 random sets — no need to do that twice).
        let declared_rows: usize = scenario
            .task_sets
            .iter()
            .map(|decl| match decl {
                acs_scenario::TaskSetDecl::Random { count, .. } => *count,
                _ => 1,
            })
            .sum();
        let campaign = scenario.to_campaign().map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: ok — {} cells, {} runs",
            campaign.cell_count(),
            campaign.run_count(),
        );
        // Per-axis breakdown, so an exploding grid points at its axis.
        // Defaults that the campaign builder fills in are spelled out.
        let join_vals = |vals: &[String]| -> String {
            if vals.is_empty() {
                String::new()
            } else {
                format!(" ({})", vals.join(" "))
            }
        };
        let cores: Vec<String> = scenario.cores.iter().map(usize::to_string).collect();
        let partitioners: Vec<String> = scenario
            .partitioners
            .iter()
            .map(|h| h.label().to_string())
            .collect();
        let schedules: Vec<String> = scenario
            .schedules
            .iter()
            .map(|s| s.label().to_lowercase())
            .collect();
        let classes: Vec<String> = scenario
            .classes
            .iter()
            .map(|c| c.label().to_string())
            .collect();
        let arrivals: Vec<String> = scenario
            .arrivals
            .iter()
            .map(|a| a.label().to_string())
            .collect();
        let placements: Vec<String> = scenario
            .placements
            .iter()
            .map(|p| p.label().to_string())
            .collect();
        // The builder owns seed dedup/defaulting; read the per-cell run
        // count back from the grid it produced.
        let seeds = campaign.run_count() / campaign.cell_count().max(1);
        let axes: [(&str, usize, String); 10] = [
            ("task sets", declared_rows, String::new()),
            ("processors", scenario.processors.len(), String::new()),
            (
                "cores",
                scenario.cores.len().max(1),
                if cores.is_empty() {
                    " (1)".into()
                } else {
                    join_vals(&cores)
                },
            ),
            (
                "classes",
                scenario.classes.len().max(1),
                if classes.is_empty() {
                    " (rm)".into()
                } else {
                    join_vals(&classes)
                },
            ),
            (
                "partitioners",
                scenario.partitioners.len().max(1),
                format!(
                    " ({}; single-core cells collapse this axis)",
                    if partitioners.is_empty() {
                        "ffd".to_string()
                    } else {
                        partitioners.join(" ")
                    }
                ),
            ),
            (
                "schedules",
                scenario.schedules.len(),
                if schedules.is_empty() {
                    " (derived from the policies)".into()
                } else {
                    join_vals(&schedules)
                },
            ),
            (
                "arrivals",
                scenario.arrivals.len().max(1),
                if arrivals.is_empty() {
                    " (periodic; trace-backed sets replay their stream)".into()
                } else {
                    format!(
                        " ({}; trace-backed sets replay their stream)",
                        arrivals.join(" ")
                    )
                },
            ),
            (
                "placements",
                scenario.placements.len().max(1),
                format!(
                    " ({}; single-core cells collapse this axis)",
                    if placements.is_empty() {
                        "partitioned".to_string()
                    } else {
                        placements.join(" ")
                    }
                ),
            ),
            ("policies", scenario.policies.len(), String::new()),
            ("workloads", scenario.workloads.len(), String::new()),
        ];
        for (axis, count, detail) in axes {
            println!("  {axis:<13} {count}{detail}");
        }
        println!("  {:<13} {seeds}", "seeds");
        // Precedence graphs: one line per `dag` block. The edges were
        // validated (acyclicity included) while parsing the file.
        for dag in &scenario.dags {
            println!(
                "  dag {}: {} edge{}",
                dag.set,
                dag.edges.len(),
                if dag.edges.len() == 1 { "" } else { "s" }
            );
        }
        // Trace-backed sets: print each file's content fingerprint, so
        // two checkouts can compare what a cell will actually replay.
        for (name, trace_path) in scenario.trace_paths() {
            let bytes = std::fs::read(&trace_path).map_err(|e| {
                format!("{path}: taskset `{name}`: cannot read `{trace_path}`: {e}")
            })?;
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in &bytes {
                hash ^= *b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            println!(
                "  trace {name}: {trace_path} fnv1a={hash:016x} ({} bytes)",
                bytes.len()
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let (paths, flags) = parse_flags(args, &["out", "threads"], &["quiet"])?;
    let [path] = paths.as_slice() else {
        return Err("run: expected exactly one scenario file".into());
    };
    let quiet = flag(&flags, "quiet").is_some();
    let scenario = Scenario::load(path).map_err(|e| e.to_string())?;
    let mut builder = scenario.campaign_builder().map_err(|e| e.to_string())?;
    if let Some(threads) = flag(&flags, "threads") {
        let n: usize = threads
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("run: `--threads {threads}` is not a positive integer"))?;
        builder = builder.threads(n);
    }
    let campaign = builder.build().map_err(|e| e.to_string())?;
    eprintln!(
        "running {} cells / {} runs...",
        campaign.cell_count(),
        campaign.run_count()
    );

    // Aggregate in memory for the summary table, and tee the same
    // stream into the output file when requested.
    let mut aggregate = AggregateSink::new();
    let report = match flag(&flags, "out") {
        Some(out_path) => {
            let file = std::fs::File::create(out_path)
                .map_err(|e| format!("cannot create `{out_path}`: {e}"))?;
            let writer = std::io::BufWriter::new(file);
            let mut file_sink: Box<dyn ResultSink> =
                if out_path.ends_with(".jsonl") || out_path.ends_with(".ndjson") {
                    Box::new(JsonlSink::new(writer))
                } else if out_path.ends_with(".csv") {
                    Box::new(CsvSink::new(writer))
                } else {
                    return Err(format!(
                        "run: cannot infer a format from `{out_path}` \
                     (expected a .csv, .jsonl or .ndjson extension)"
                    ));
                };
            let mut tee = Tee::new(vec![&mut aggregate, &mut *file_sink]);
            campaign
                .run_with(&mut tee)
                .map_err(|e| format!("writing `{out_path}`: {e}"))?;
            eprintln!("streamed {} records to {out_path}", campaign.cell_count());
            aggregate.into_report()
        }
        None => {
            campaign
                .run_with(&mut aggregate)
                .map_err(|e| format!("streaming: {e}"))?;
            aggregate.into_report()
        }
    };

    if !quiet {
        print!("{}", report.to_table());
        let gains = report.gains();
        if !gains.is_empty() {
            let mean = gains.iter().map(|(_, g)| g).sum::<f64>() / gains.len() as f64;
            println!(
                "ACS-vs-WCS gain over {} paired cells: mean {:.1}%",
                gains.len(),
                100.0 * mean
            );
        }
        let reopt = report.policy_gains("greedy", "reopt");
        if !reopt.is_empty() {
            let mean = reopt.iter().map(|(_, g)| g).sum::<f64>() / reopt.len() as f64;
            println!(
                "reopt-vs-greedy gain over {} paired cells: mean {:.1}%",
                reopt.len(),
                100.0 * mean
            );
        }
    }
    let aperiodic = report.total_misses_aperiodic();
    if aperiodic > 0 {
        eprintln!(
            "warning: {aperiodic} deadline misses on aperiodic jobs — the arrival \
             stream overloads the schedule (profiles and feasibility: docs/TRACE_FORMAT.md)"
        );
    }
    let failures = report.failures().count();
    if failures > 0 {
        for (cell, err) in report.failures() {
            eprintln!(
                "  FAILED [{} {} {} {}] {err}",
                cell.task_set, cell.processor, cell.schedule, cell.policy
            );
        }
        eprintln!("{failures} of {} cells failed", report.cells().len());
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_usize(flags: &[(&str, &str)], name: &str, command: &str) -> Result<Option<usize>, String> {
    match flag(flags, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .map(Some)
            .ok_or_else(|| format!("{command}: `--{name} {v}` is not a positive integer")),
    }
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let (paths, flags) = parse_flags(
        args,
        &[
            "addr",
            "ckpt-dir",
            "max-campaigns",
            "inflight",
            "chunk",
            "threads",
            "cache-capacity",
            "cache-shards",
        ],
        &[],
    )?;
    if !paths.is_empty() {
        return Err(format!("serve: unexpected argument `{}`", paths[0]));
    }
    let mut cfg = ServerConfig {
        addr: flag(&flags, "addr").unwrap_or(DEFAULT_ADDR).to_string(),
        ..ServerConfig::default()
    };
    if let Some(dir) = flag(&flags, "ckpt-dir") {
        cfg.ckpt_dir = dir.into();
    }
    if let Some(n) = parse_usize(&flags, "max-campaigns", "serve")? {
        cfg.max_campaigns = n;
    }
    if let Some(n) = parse_usize(&flags, "inflight", "serve")? {
        cfg.max_inflight_chunks = n;
    }
    if let Some(n) = parse_usize(&flags, "chunk", "serve")? {
        cfg.default_chunk_size = n;
    }
    if let Some(n) = parse_usize(&flags, "threads", "serve")? {
        cfg.threads = n;
    }
    if let Some(n) = parse_usize(&flags, "cache-capacity", "serve")? {
        cfg.cache_capacity = n;
    }
    if let Some(n) = parse_usize(&flags, "cache-shards", "serve")? {
        cfg.cache_shards = n;
    }
    acs_serve::serve(cfg).map_err(|e| format!("serve: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let (paths, flags) = parse_flags(
        args,
        &["addr", "id", "out", "threads", "chunk"],
        &["resume", "quiet"],
    )?;
    let [path] = paths.as_slice() else {
        return Err("submit: expected exactly one scenario file".into());
    };
    let scenario =
        std::fs::read_to_string(path).map_err(|e| format!("submit: cannot read `{path}`: {e}"))?;
    let opts = SubmitOptions {
        addr: flag(&flags, "addr").unwrap_or(DEFAULT_ADDR).to_string(),
        scenario,
        id: flag(&flags, "id").map(str::to_string),
        resume: flag(&flags, "resume").is_some(),
        threads: parse_usize(&flags, "threads", "submit")?,
        chunk: parse_usize(&flags, "chunk", "submit")?,
        quiet: flag(&flags, "quiet").is_some(),
    };
    let outcome = acs_serve::submit(&opts).map_err(|e| format!("submit: {e}"))?;
    match flag(&flags, "out") {
        Some(out_path) => {
            std::fs::write(out_path, &outcome.csv)
                .map_err(|e| format!("submit: cannot write `{out_path}`: {e}"))?;
            eprintln!(
                "campaign `{}`: {} cells streamed to {out_path} \
                 ({} chunks run, {} replayed)",
                outcome.id, outcome.cells, outcome.chunks_run, outcome.chunks_replayed
            );
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(outcome.csv.as_bytes());
            eprintln!(
                "campaign `{}`: {} cells ({} chunks run, {} replayed)",
                outcome.id, outcome.cells, outcome.chunks_run, outcome.chunks_replayed
            );
        }
    }
    if outcome.failed > 0 {
        eprintln!("{} of {} cells failed", outcome.failed, outcome.cells);
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let (paths, flags) = parse_flags(args, &["addr"], &[])?;
    if !paths.is_empty() {
        return Err(format!("stats: unexpected argument `{}`", paths[0]));
    }
    let addr = flag(&flags, "addr").unwrap_or(DEFAULT_ADDR);
    let line = acs_serve::stats(addr).map_err(|e| format!("stats: {e}"))?;
    println!("{line}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_trace_gen(&args[1..]),
        Some("check") => cmd_trace_check(&args[1..]),
        Some(other) => Err(format!(
            "trace: unknown subcommand `{other}` (gen or check)"
        )),
        None => Err("trace: expected a subcommand (gen or check)".into()),
    }
}

fn cmd_trace_gen(args: &[String]) -> Result<ExitCode, String> {
    let (paths, flags) = parse_flags(args, &["profile", "jobs", "seed", "tasks", "out"], &[])?;
    if !paths.is_empty() {
        return Err(format!("trace gen: unexpected argument `{}`", paths[0]));
    }
    let profile: acs_trace::MmppProfile = flag(&flags, "profile")
        .unwrap_or("bursty")
        .parse()
        .map_err(|e| format!("trace gen: {e}"))?;
    let jobs: u64 = match flag(&flags, "jobs") {
        None => 1_000_000,
        Some(v) => v
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("trace gen: `--jobs {v}` is not a positive integer"))?,
    };
    let seed: u64 = match flag(&flags, "seed") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("trace gen: `--seed {v}` is not a non-negative integer"))?,
    };
    let tasks = parse_usize(&flags, "tasks", "trace gen")?.unwrap_or(4);
    let cfg = acs_trace::GenConfig {
        profile,
        jobs,
        seed,
        tasks,
    };
    let (summary, dest) = match flag(&flags, "out") {
        Some(out_path) => {
            let file = std::fs::File::create(out_path)
                .map_err(|e| format!("trace gen: cannot create `{out_path}`: {e}"))?;
            let summary = acs_trace::generate(&cfg, std::io::BufWriter::new(file))
                .map_err(|e| format!("trace gen: {e}"))?;
            (summary, out_path.to_string())
        }
        None => {
            let stdout = std::io::stdout().lock();
            let summary = acs_trace::generate(&cfg, std::io::BufWriter::new(stdout))
                .map_err(|e| format!("trace gen: {e}"))?;
            (summary, "stdout".to_string())
        }
    };
    eprintln!(
        "wrote {} jobs over {} tasks ({:.1} ms, {} hyper-periods) to {dest}",
        summary.jobs, summary.tasks, summary.span_ms, summary.windows
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace_check(args: &[String]) -> Result<ExitCode, String> {
    let (paths, _flags) = parse_flags(args, &[], &[])?;
    if paths.is_empty() {
        return Err("trace check: expected at least one trace file".into());
    }
    for path in paths {
        let mut reader = acs_trace::TraceReader::open(path).map_err(|e| format!("{path}: {e}"))?;
        let tasks = reader.set().len();
        let mut records = 0u64;
        let mut last_ms = 0.0f64;
        while let Some(rec) = reader.next_record().map_err(|e| format!("{path}: {e}"))? {
            records += 1;
            last_ms = rec.arrival_ms;
        }
        println!("{path}: ok — {records} jobs over {tasks} tasks, {last_ms:.1} ms span");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_synth(args: &[String]) -> Result<ExitCode, String> {
    let (paths, flags) = parse_flags(args, &["task-set", "processor", "kind", "out"], &[])?;
    let [path] = paths.as_slice() else {
        return Err("synth: expected exactly one scenario file".into());
    };
    let scenario = Scenario::load(path).map_err(|e| e.to_string())?;
    let want_set = flag(&flags, "task-set").ok_or("synth: missing --task-set NAME")?;
    let want_cpu = flag(&flags, "processor").ok_or("synth: missing --processor NAME")?;
    let kind = match flag(&flags, "kind").unwrap_or("acs") {
        "wcs" => "wcs",
        "acs" => "acs",
        other => return Err(format!("synth: unknown --kind `{other}` (wcs or acs)")),
    };

    let sets = scenario
        .materialize_task_sets()
        .map_err(|e| e.to_string())?;
    let names: Vec<&str> = sets.iter().map(|(n, _)| n.as_str()).collect();
    let set = sets
        .iter()
        .find(|(n, _)| n == want_set)
        .map(|(_, s)| s)
        .ok_or_else(|| {
            format!(
                "synth: no task set named `{want_set}` (scenario has: {})",
                names.join(", ")
            )
        })?;
    let cpus = scenario
        .materialize_processors()
        .map_err(|e| e.to_string())?;
    let cpu_names: Vec<&str> = cpus.iter().map(|(n, _)| n.as_str()).collect();
    let cpu = cpus
        .iter()
        .find(|(n, _)| n == want_cpu)
        .map(|(_, c)| c)
        .ok_or_else(|| {
            format!(
                "synth: no processor named `{want_cpu}` (scenario has: {})",
                cpu_names.join(", ")
            )
        })?;

    let options = match scenario.synthesis {
        Some(SynthProfile::Default) => SynthesisOptions::default(),
        _ => SynthesisOptions::quick(),
    };
    let wcs = synthesize_wcs(set, cpu, &options).map_err(|e| format!("synth: wcs: {e}"))?;
    let schedule = if kind == "wcs" {
        wcs
    } else if scenario.acs_multistart {
        synthesize_acs_best(set, cpu, &options, &wcs).map_err(|e| format!("synth: acs: {e}"))?
    } else {
        synthesize_acs_warm(set, cpu, &options, &wcs).map_err(|e| format!("synth: acs: {e}"))?
    };
    let text = acs_core::export::to_text(&schedule);
    match flag(&flags, "out") {
        Some(out_path) => {
            std::fs::write(out_path, &text)
                .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
            eprintln!(
                "wrote {kind} schedule for `{want_set}` on `{want_cpu}` \
                 ({} milestones) to {out_path}",
                schedule.milestones().len()
            );
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
        }
    }
    Ok(ExitCode::SUCCESS)
}
