//! # acsched
//!
//! Average-case-aware static voltage scheduling for low-energy preemptive
//! hard real-time systems — a full reproduction of *"Exploiting Dynamic
//! Workload Variation in Low Energy Preemptive Task Scheduling"*
//! (Leung, Tsui, Hu — DATE 2005).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`model`] | `acs-model` | tasks, task sets, typed units |
//! | [`power`] | `acs-power` | DVS processor model |
//! | [`preempt`] | `acs-preempt` | fully preemptive expansion |
//! | [`opt`] | `acs-opt` | autodiff + L-BFGS + augmented Lagrangian |
//! | [`core`] | `acs-core` | ACS/WCS schedule synthesis |
//! | [`sim`] | `acs-sim` | runtime simulator & DVS policies |
//! | [`workloads`] | `acs-workloads` | distributions, random/CNC/GAP sets |
//!
//! ## Quickstart
//!
//! ```
//! use acsched::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Describe the system.
//! let set = TaskSet::new(vec![
//!     Task::builder("control", Ticks::new(10))
//!         .wcec(Cycles::from_cycles(400.0))
//!         .acec(Cycles::from_cycles(150.0))
//!         .bcec(Cycles::from_cycles(40.0))
//!         .build()?,
//!     Task::builder("telemetry", Ticks::new(20))
//!         .wcec(Cycles::from_cycles(600.0))
//!         .acec(Cycles::from_cycles(200.0))
//!         .bcec(Cycles::from_cycles(60.0))
//!         .build()?,
//! ])?;
//! let cpu = Processor::builder(FreqModel::linear(50.0)?)
//!     .vmin(Volt::from_volts(0.5))
//!     .vmax(Volt::from_volts(4.0))
//!     .build()?;
//!
//! // 2. Synthesize offline schedules (paper's ACS + the WCS baseline).
//! let opts = SynthesisOptions::quick();
//! let acs = synthesize_acs(&set, &cpu, &opts)?;
//! let wcs = synthesize_wcs(&set, &cpu, &opts)?;
//!
//! // 3. Run the greedy online DVS phase on sampled workloads.
//! let mut draws = TaskWorkloads::paper(&set, 7);
//! let acs_run = Simulator::new(&set, &cpu, DvsPolicy::GreedyReclaim)
//!     .with_schedule(&acs)
//!     .run(&mut |t, i| draws.draw(t, i))?;
//! let mut draws = TaskWorkloads::paper(&set, 7); // same seed: same workloads
//! let wcs_run = Simulator::new(&set, &cpu, DvsPolicy::GreedyReclaim)
//!     .with_schedule(&wcs)
//!     .run(&mut |t, i| draws.draw(t, i))?;
//!
//! assert!(acs_run.report.all_deadlines_met());
//! assert!(wcs_run.report.all_deadlines_met());
//! // ACS exploits the workload variation at least as well as WCS.
//! let gain = improvement_over(wcs_run.report.energy, acs_run.report.energy);
//! assert!(gain > -0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use acs_core as core;
pub use acs_model as model;
pub use acs_opt as opt;
pub use acs_power as power;
pub use acs_preempt as preempt;
pub use acs_sim as sim;
pub use acs_workloads as workloads;

/// Everything needed for typical use, importable with one line.
pub mod prelude {
    pub use acs_core::{
        evaluate_trace, synthesize_acs, synthesize_acs_best, synthesize_acs_warm, synthesize_wcs,
        verify_worst_case, Milestone,
        ObjectiveKind, ScheduleKind, SpeedBasis, StaticSchedule, SynthesisOptions,
    };
    pub use acs_model::units::{Cycles, Energy, Freq, Ticks, Time, TimeSpan, Volt};
    pub use acs_model::{Task, TaskBuilder, TaskId, TaskSet};
    pub use acs_power::{FreqModel, LevelTable, Processor, TransitionOverhead, VoltageLevels};
    pub use acs_preempt::{FullyPreemptiveSchedule, InstanceId, SubInstance, SubInstanceId};
    pub use acs_sim::{
        improvement_over, render_gantt, DvsPolicy, SimOptions, SimReport, Simulator, Summary,
    };
    pub use acs_workloads::{
        cnc, gap, generate, motivation, RandomSetConfig, TaskWorkloads, WorkloadDist,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Ticks::new(1);
        let _ = DvsPolicy::GreedyReclaim;
        let _ = ObjectiveKind::AcecTrace;
    }
}
