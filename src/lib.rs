//! # acsched
//!
//! Average-case-aware static voltage scheduling for low-energy preemptive
//! hard real-time systems — a full reproduction of *"Exploiting Dynamic
//! Workload Variation in Low Energy Preemptive Task Scheduling"*
//! (Leung, Tsui, Hu — DATE 2005).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`model`] | `acs-model` | tasks, task sets, typed units |
//! | [`power`] | `acs-power` | DVS processor model |
//! | [`preempt`] | `acs-preempt` | fully preemptive expansion |
//! | [`opt`] | `acs-opt` | autodiff + L-BFGS + augmented Lagrangian |
//! | [`core`] | `acs-core` | ACS/WCS schedule synthesis |
//! | [`sim`] | `acs-sim` | runtime simulator & the open [`Policy`] API |
//! | [`trace`] | `acs-trace` | arrival sources (sporadic/Poisson/MMPP) & the streaming trace format |
//! | [`multi`] | `acs-multi` | partitioned multiprocessor layer (ffd/bfd/wfd + machine runs) |
//! | [`workloads`] | `acs-workloads` | distributions, random/CNC/GAP sets |
//! | [`runtime`] | `acs-runtime` | parallel [`Campaign`] runner + streaming [`ResultSink`]s |
//! | [`scenario`] | `acs-scenario` | declarative text-format experiment scenarios |
//!
//! [`ResultSink`]: prelude::ResultSink
//!
//! Experiments also run without writing Rust at all: describe the grid
//! in a scenario file (see `docs/SCENARIO_FORMAT.md` and `scenarios/`)
//! and drive it with the `acsched` CLI (`acsched run scenarios/smoke.txt
//! --out results.csv`).
//!
//! [`Policy`]: prelude::Policy
//! [`Campaign`]: prelude::Campaign
//!
//! ## Quickstart
//!
//! Describe a system, synthesize the offline schedules, then drive the
//! online phase — either one simulation at a time ([`Simulator`]) or as
//! a parallel experiment grid ([`Campaign`]):
//!
//! [`Simulator`]: prelude::Simulator
//!
//! ```
//! use acsched::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Describe the system.
//! let set = TaskSet::new(vec![
//!     Task::builder("control", Ticks::new(10))
//!         .wcec(Cycles::from_cycles(400.0))
//!         .acec(Cycles::from_cycles(150.0))
//!         .bcec(Cycles::from_cycles(40.0))
//!         .build()?,
//!     Task::builder("telemetry", Ticks::new(20))
//!         .wcec(Cycles::from_cycles(600.0))
//!         .acec(Cycles::from_cycles(200.0))
//!         .bcec(Cycles::from_cycles(60.0))
//!         .build()?,
//! ])?;
//! let cpu = Processor::builder(FreqModel::linear(50.0)?)
//!     .vmin(Volt::from_volts(0.5))
//!     .vmax(Volt::from_volts(4.0))
//!     .build()?;
//!
//! // 2. Synthesize offline schedules (paper's ACS + the WCS baseline).
//! let opts = SynthesisOptions::quick();
//! let acs = synthesize_acs(&set, &cpu, &opts)?;
//!
//! // 3. Run the online DVS phase. Policies implement the open `Policy`
//! //    trait; `GreedyReclaim` is the paper's runtime.
//! let mut draws = TaskWorkloads::paper(&set, 7);
//! let run = Simulator::new(&set, &cpu, GreedyReclaim)
//!     .with_schedule(&acs)
//!     .run(&mut |t, i| draws.draw(t, i))?;
//! assert!(run.report.all_deadlines_met());
//!
//! // 4. Or sweep a whole grid in parallel: schedules × policies ×
//! //    workloads × seeds, aggregated into a deterministic report.
//! let report = Campaign::builder()
//!     .task_set("demo", set)
//!     .processor("linear", cpu)
//!     .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
//!     .policy(PolicySpec::greedy())
//!     .workload(WorkloadSpec::Paper)
//!     .seeds(0..4)
//!     .build()?
//!     .run();
//! // ACS exploits the workload variation at least as well as WCS.
//! let gain = report.gain("demo", "linear", "greedy", "paper-normal").unwrap();
//! assert!(gain > -0.05);
//! # Ok(())
//! # }
//! ```
//!
//! ## Write your own policy in 20 lines
//!
//! The online layer is open: implement [`Policy`](prelude::Policy) and
//! the engine (and any campaign) drives it like a built-in, clamping
//! whatever speed you request into the processor's `[f_min, f_max]`:
//!
//! ```
//! use acsched::prelude::*;
//!
//! /// Run at the chunk's static speed, boosted 10% as an insurance
//! /// margin against bursty workloads.
//! struct Boosted;
//!
//! impl Policy for Boosted {
//!     fn name(&self) -> &str {
//!         "boosted-static"
//!     }
//!     fn needs_schedule(&self) -> bool {
//!         true
//!     }
//!     fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
//!         ctx.static_speed * 1.1
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (set, cpu) = acsched::workloads::motivation();
//! let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick())?;
//! let out = Simulator::new(&set, &cpu, Boosted)
//!     .with_schedule(&schedule)
//!     .run(&mut |_, _| Cycles::from_cycles(500.0))?;
//! assert!(out.report.all_deadlines_met());
//! # Ok(())
//! # }
//! ```
//!
//! Stateful policies get `on_start`/`on_release`/`on_completion` hooks —
//! see [`sim::policy`] for the full contract and `examples/custom_policy.rs`
//! for a stateful example run through both `Simulator` and `Campaign`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use acs_core as core;
pub use acs_model as model;
pub use acs_multi as multi;
pub use acs_opt as opt;
pub use acs_power as power;
pub use acs_preempt as preempt;
pub use acs_runtime as runtime;
pub use acs_scenario as scenario;
pub use acs_sim as sim;
pub use acs_trace as trace;
pub use acs_workloads as workloads;

/// Everything needed for typical use, importable with one line.
pub mod prelude {
    pub use acs_core::{
        evaluate_trace, synthesize_acs, synthesize_acs_best, synthesize_acs_warm,
        synthesize_remaining, synthesize_wcs, synthesize_wcs_warm, verify_worst_case,
        InstanceProgress, Milestone, ObjectiveKind, RemainingInstance, ReoptOptions, ScheduleKind,
        SpeedBasis, StaticSchedule, SynthesisOptions,
    };
    pub use acs_model::units::{Cycles, Energy, Freq, Ticks, Time, TimeSpan, Volt};
    pub use acs_model::{
        ModelError, SchedulingClass, Task, TaskBuilder, TaskGraph, TaskId, TaskSet,
    };
    pub use acs_multi::{
        partition, CoreAssignment, GlobalOutput, GlobalRun, MachineReport, MachineRun, MultiError,
        Partition, PartitionHeuristic, Placement,
    };
    pub use acs_power::{FreqModel, LevelTable, Processor, TransitionOverhead, VoltageLevels};
    pub use acs_preempt::{
        edf_demand_feasible, edf_utilization_feasible, rm_feasible, rm_response_times,
        FullyPreemptiveSchedule, InstanceId, SubInstance, SubInstanceId,
    };
    pub use acs_runtime::{
        AggregateSink, Campaign, CampaignBuilder, CampaignError, CampaignMeta, CampaignReport,
        CellRecord, CellReport, CellStats, CsvSink, JsonlSink, PolicySpec, ResultSink,
        ScheduleChoice, Tee, WorkloadSpec,
    };
    pub use acs_scenario::{Scenario, ScenarioError};
    #[allow(deprecated)]
    pub use acs_sim::DvsPolicy;
    pub use acs_sim::{
        improvement_over, render_gantt, ArrivalJob, ArrivalKind, ArrivalSource, BoundaryEvent,
        CcRm, DispatchContext, EnergyBreakdown, ExecutionTrace, GreedyReclaim, IntoPolicy,
        MmppProfile, NoDvs, Policy, ReOpt, ReOptConfig, SimOptions, SimReport, Simulator, Slice,
        SolverCache, SolverContext, SolverStats, StaticSpeed, Summary, WorkloadSource,
    };
    pub use acs_trace::{TraceReader, TraceRecord, TraceSource, TraceWriter};
    pub use acs_workloads::{
        cnc, gap, generate, motivation, RandomSetConfig, TaskWorkloads, WorkloadDist,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Ticks::new(1);
        let _ = GreedyReclaim;
        let _ = PolicySpec::ccrm();
        let _ = ObjectiveKind::AcecTrace;
        let _ = ScheduleChoice::Acs;
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_enum_still_reachable() {
        use crate::prelude::*;
        let _ = DvsPolicy::GreedyReclaim;
    }
}
