//! Acceptance: a text scenario reproduces the equivalent in-code
//! campaign **byte-identically** (energies, gains, miss counts — the
//! whole `CampaignReport` compares equal) at any thread count, for both
//! a fig6a-style random-set grid and the checked-in `scenarios/smoke.txt`.

use acsched::prelude::*;
use acsched::workloads::paper_set_batch;

fn fig6a_style_scenario_text() -> &'static str {
    // A miniature of scenarios/fig6a_random.txt: two (tasks, ratio)
    // cells x 2 random sets, {WCS, ACS} x greedy, paired paper draws.
    "\
acsched-scenario v1
tasksets random tasks=2 ratio=0.1 count=2 seed=2005 fmax=200
tasksets random tasks=3 ratio=0.5 count=2 seed=12005 fmax=200
processor linear linear kappa=50 vmin=0.3 vmax=4
schedules wcs acs
policy greedy
workload paper
seeds 43824
hyper_periods 5
synthesis quick
"
}

/// The same campaign assembled the pre-redesign way: in Rust, through
/// the builder, with the historical helper calls the fig6a binary used.
fn fig6a_style_in_code(threads: usize) -> Campaign {
    let fmax = Freq::from_cycles_per_ms(200.0);
    let mut builder = Campaign::builder()
        .processor(
            "linear",
            Processor::builder(FreqModel::linear(50.0).unwrap())
                .vmin(Volt::from_volts(0.3))
                .vmax(Volt::from_volts(4.0))
                .build()
                .unwrap(),
        )
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .workload(WorkloadSpec::Paper)
        .seeds([43824])
        .hyper_periods(5)
        .synthesis(SynthesisOptions::quick())
        .threads(threads);
    builder = builder.task_sets(paper_set_batch(2, 0.1, 2, 2005, fmax));
    builder = builder.task_sets(paper_set_batch(3, 0.5, 2, 12005, fmax));
    builder.build().unwrap()
}

#[test]
fn scenario_reproduces_in_code_campaign_at_any_thread_count() {
    let scenario = Scenario::from_text(fig6a_style_scenario_text()).unwrap();
    let reference = fig6a_style_in_code(1).run();
    assert_eq!(reference.failures().count(), 0, "{}", reference.to_table());
    assert!(
        reference.gains().len() >= 4,
        "expected one ACS/WCS pair per generated set"
    );
    for threads in [1, 2, 8] {
        let campaign = scenario
            .campaign_builder()
            .unwrap()
            .threads(threads)
            .build()
            .unwrap();
        assert_eq!(campaign.cell_count(), reference.cells().len());
        let report = campaign.run();
        assert_eq!(
            report, reference,
            "scenario-built report diverged from the in-code campaign \
             at {threads} threads"
        );
    }
    // The in-code path is itself thread-count independent (guards the
    // comparison above against a vacuous pass).
    assert_eq!(fig6a_style_in_code(8).run(), reference);
}

/// The checked-in smoke scenario equals its documented in-code
/// equivalent, and the scenario's own text round-trip preserves the
/// report.
#[test]
fn checked_in_smoke_scenario_matches_in_code_equivalent() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/smoke.txt");
    let scenario = Scenario::load(&path).unwrap();

    let in_code = Campaign::builder()
        .task_set(
            "pair",
            TaskSet::new(vec![
                Task::builder("ctrl", Ticks::new(10))
                    .wcec(Cycles::from_cycles(300.0))
                    .acec(Cycles::from_cycles(120.0))
                    .bcec(Cycles::from_cycles(30.0))
                    .build()
                    .unwrap(),
                Task::builder("telemetry", Ticks::new(20))
                    .wcec(Cycles::from_cycles(600.0))
                    .acec(Cycles::from_cycles(200.0))
                    .bcec(Cycles::from_cycles(60.0))
                    .build()
                    .unwrap(),
            ])
            .unwrap(),
        )
        .processor(
            "linear50",
            Processor::builder(FreqModel::linear(50.0).unwrap())
                .vmin(Volt::from_volts(0.3))
                .vmax(Volt::from_volts(4.0))
                .build()
                .unwrap(),
        )
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .policy(PolicySpec::no_dvs())
        .workload(WorkloadSpec::Paper)
        .seeds([1, 2, 3])
        .hyper_periods(5)
        .synthesis(SynthesisOptions::quick())
        .build()
        .unwrap()
        .run();

    let from_file = scenario.to_campaign().unwrap().run();
    assert_eq!(
        from_file, in_code,
        "smoke.txt diverged from its in-code twin"
    );

    // parse -> to_text -> parse -> run still lands on the same report.
    let reparsed = Scenario::from_text(&scenario.to_text().unwrap()).unwrap();
    assert_eq!(reparsed.to_campaign().unwrap().run(), in_code);
}
