//! Property-test suite over the engine (via the offline `proptest`
//! shim — deterministic per-test case generation, `PROPTEST_CASES`
//! respected):
//!
//! * any random task set with total WCS utilization ≤ 1 has zero
//!   deadline misses under EDF at WCS draws;
//! * energy accounting always reconciles — per-task dynamic + static +
//!   idle + transition overhead equals the total, and the breakdown
//!   sums exactly, for random processors including leaky and discrete
//!   ones;
//! * engine determinism — the same seed produces a byte-identical
//!   `SimReport` across two runs (including the event engine's
//!   `events_handled`/`event_queue_peak` stats);
//! * event-queue determinism — any insertion order of the same event
//!   multiset pops in `(time, kind-priority, seq)` order, where `seq`
//!   reflects insertion order among same-`(time, kind)` events.
//!
//! The `#[ignore]`d variants at the bottom re-run the same properties
//! at a larger scale; CI's nightly-style job includes them with
//! `cargo test --release -- --include-ignored` under a raised
//! `PROPTEST_CASES`.

use acsched::prelude::*;
use acsched::sim::{Event, EventKind, EventQueue};
use proptest::prelude::*;

/// Period pool with a bounded lcm (≤ 360) mixing harmonic and
/// non-harmonic relations, so EDF genuinely deviates from RM on many
/// draws without blowing up the hyper-period.
const PERIODS: [u64; 6] = [8, 9, 10, 12, 15, 18];

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0)) // f_max = 200 cyc/ms
        .build()
        .unwrap()
}

/// Builds a task set from sampled (period-index, share) pairs whose
/// worst-case utilization at `f_max` is `total_util` (shares are
/// normalized), with BCEC/ACEC at 10%/40% of WCEC.
fn build_set(picks: &[(usize, f64)], total_util: f64, f_max: f64) -> TaskSet {
    let share_sum: f64 = picks.iter().map(|(_, s)| s).sum();
    let tasks: Vec<Task> = picks
        .iter()
        .enumerate()
        .map(|(i, (p_idx, share))| {
            let period = PERIODS[p_idx % PERIODS.len()];
            let util = total_util * share / share_sum;
            let wcec = (util * period as f64 * f_max).max(1.0);
            Task::builder(format!("t{i}"), Ticks::new(period))
                .wcec(Cycles::from_cycles(wcec))
                .acec(Cycles::from_cycles(wcec * 0.4))
                .bcec(Cycles::from_cycles(wcec * 0.1))
                .build()
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

/// Random processor shapes for the reconciliation property: lossless,
/// leaky, idle-draining, discrete (with and without per-level leakage),
/// and switch-overhead variants.
fn build_cpu(shape: usize, static_power: f64, idle_power: f64) -> Processor {
    let base = || {
        Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
    };
    let levels = || {
        LevelTable::new(vec![
            Volt::from_volts(1.0),
            Volt::from_volts(2.0),
            Volt::from_volts(3.0),
            Volt::from_volts(4.0),
        ])
        .unwrap()
    };
    match shape % 5 {
        0 => base().build().unwrap(),
        1 => base()
            .static_power(static_power)
            .idle_power(idle_power)
            .build()
            .unwrap(),
        2 => base()
            .discrete_levels(levels())
            .idle_power(idle_power)
            .build()
            .unwrap(),
        3 => base()
            .discrete_levels(levels())
            .level_static_power(vec![
                static_power * 0.25,
                static_power * 0.5,
                static_power * 0.75,
                static_power,
            ])
            .static_power(static_power * 0.25)
            .build()
            .unwrap(),
        _ => base()
            .transition_overhead(TransitionOverhead {
                time: TimeSpan::from_ms(0.002),
                energy: Energy::from_units(1.5),
            })
            .static_power(static_power)
            .build()
            .unwrap(),
    }
}

/// Property (a): EDF meets every deadline at WCS draws whenever the
/// worst-case utilization is ≤ 1 — the exact EDF bound. (RM offers no
/// such guarantee on non-harmonic draws, which is the point of the
/// class axis.)
fn edf_no_misses_case(picks: &[(usize, f64)], total_util: f64) -> Result<(), String> {
    let cpu = cpu();
    let set = build_set(picks, total_util, cpu.f_max().as_cycles_per_ms())
        .with_class(SchedulingClass::Edf);
    if !edf_utilization_feasible(&set, cpu.f_max()) {
        return Err(format!(
            "generator produced U > 1: {}",
            set.utilization_at(cpu.f_max())
        ));
    }
    let totals: Vec<Cycles> = set.tasks().iter().map(|t| t.wcec()).collect();
    let out = Simulator::new(&set, &cpu, NoDvs)
        .run(&mut |tid, _| totals[tid.0])
        .map_err(|e| e.to_string())?;
    if out.report.deadline_misses != 0 {
        return Err(format!(
            "EDF missed {} deadlines at U = {:.6} (worst lateness {} ms)",
            out.report.deadline_misses,
            set.utilization_at(cpu.f_max()),
            out.report.worst_lateness_ms
        ));
    }
    Ok(())
}

/// Property (b): `dynamic + static + idle == total_energy` within
/// `CYCLE_EPS`-scale dust, where dynamic is independently recomputed
/// from the per-task split plus transition-overhead energy.
fn energy_reconciles_case(
    picks: &[(usize, f64)],
    total_util: f64,
    shape: usize,
    static_power: f64,
    idle_power: f64,
    seed: u64,
) -> Result<(), String> {
    let cpu = build_cpu(shape, static_power, idle_power);
    let set = build_set(picks, total_util, cpu.f_max().as_cycles_per_ms());
    let mut draws = TaskWorkloads::paper(&set, seed);
    let out = Simulator::new(&set, &cpu, NoDvs)
        .with_options(SimOptions {
            hyper_periods: 3,
            ..Default::default()
        })
        .run(&mut |tid, i| draws.draw(tid, i))
        .map_err(|e| e.to_string())?;
    let r = &out.report;
    let b = r.breakdown();
    let tol = 1e-9 * r.energy.as_units().max(1.0);
    // The breakdown views reconcile (up to re-association dust: the
    // dynamic component is defined as total − static − idle)...
    if (b.total().as_units() - r.energy.as_units()).abs() > tol {
        return Err(format!(
            "breakdown total {} != energy {}",
            b.total(),
            r.energy
        ));
    }
    // ...and the dynamic component re-derives independently from the
    // per-task energies plus the per-switch overhead charge.
    let per_task: f64 = r.per_task_energy.iter().map(|e| e.as_units()).sum();
    let overhead = r.voltage_switches as f64 * cpu.overhead().energy.as_units();
    let recomputed = per_task + overhead + r.static_energy.as_units() + r.idle_energy.as_units();
    if (recomputed - r.energy.as_units()).abs() > tol {
        return Err(format!(
            "energy does not reconcile: per-task {per_task} + overhead {overhead} \
             + static {} + idle {} = {recomputed} vs total {}",
            r.static_energy.as_units(),
            r.idle_energy.as_units(),
            r.energy.as_units()
        ));
    }
    // Leakage components follow their defining integrals.
    if cpu.level_static_power().is_none() {
        let want_static = cpu.static_power() * r.busy_time.as_ms();
        if (r.static_energy.as_units() - want_static).abs() > tol {
            return Err(format!(
                "static energy {} != static_power x busy {}",
                r.static_energy.as_units(),
                want_static
            ));
        }
    }
    let want_idle = cpu.idle_power() * r.idle_time.as_ms();
    if (r.idle_energy.as_units() - want_idle).abs() > tol {
        return Err(format!(
            "idle energy {} != idle_power x idle {}",
            r.idle_energy.as_units(),
            want_idle
        ));
    }
    Ok(())
}

/// Property (c): the engine is a pure function of (set, cpu, policy,
/// seed) — two runs with the same seed produce byte-identical reports.
fn determinism_case(
    picks: &[(usize, f64)],
    total_util: f64,
    seed: u64,
    edf: bool,
) -> Result<(), String> {
    let cpu = cpu();
    let mut set = build_set(picks, total_util, cpu.f_max().as_cycles_per_ms());
    if edf {
        set = set.with_class(SchedulingClass::Edf);
    }
    let run = || -> Result<SimReport, String> {
        let mut draws = TaskWorkloads::paper(&set, seed);
        let out = Simulator::new(&set, &cpu, CcRm::new())
            .with_options(SimOptions {
                hyper_periods: 2,
                ..Default::default()
            })
            .run(&mut |tid, i| draws.draw(tid, i))
            .map_err(|e| e.to_string())?;
        Ok(out.report)
    };
    let (a, b) = (run()?, run()?);
    if a != b {
        return Err(format!("reports diverged:\n{a:?}\n{b:?}"));
    }
    if format!("{a:?}") != format!("{b:?}") {
        return Err("debug renderings diverged".into());
    }
    // The event engine's own stats are part of the byte-identity
    // contract — and prove the run went through the event queue.
    if a.events_handled == 0 || a.event_queue_peak == 0 {
        return Err(format!(
            "event engine reported no queue activity: handled {}, peak {}",
            a.events_handled, a.event_queue_peak
        ));
    }
    Ok(())
}

/// Property (d): the event queue is a pure function of its push
/// sequence. Popping everything always yields the stable sort of the
/// pushed events by `(time, kind-priority)` — i.e. strict
/// `(time, kind-priority, seq)` order, where same-key events keep
/// insertion order — and a second queue fed the same sequence pops
/// identically.
fn event_queue_determinism_case(events: &[(usize, usize)]) -> Result<(), String> {
    // Small pools force heavy time and (time, kind) collisions.
    const TIMES: [f64; 4] = [0.0, 1.5, 1.5 + f64::EPSILON, 7.25];
    const KINDS: [EventKind; 5] = [
        EventKind::Release,
        EventKind::ChunkWakeup,
        EventKind::Completion,
        EventKind::Boundary,
        EventKind::SpeedChange,
    ];
    let pushed: Vec<Event> = events
        .iter()
        .enumerate()
        .map(|(i, &(t, k))| Event {
            time: TIMES[t % TIMES.len()],
            kind: KINDS[k % KINDS.len()],
            job: i, // position in the push sequence
        })
        .collect();
    let drain = || {
        let mut q = EventQueue::new();
        for e in &pushed {
            q.push(*e);
        }
        let order: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        (order, q.high_water(), q.popped())
    };
    let (order, high_water, popped) = drain();
    if (high_water, popped) != (pushed.len(), pushed.len()) {
        return Err(format!(
            "stats diverged: high_water {high_water}, popped {popped}, pushed {}",
            pushed.len()
        ));
    }
    // Stable sort by (time, kind) is the spec: job carries the push
    // position, so stability pins same-key events to insertion order.
    let mut expected = pushed.clone();
    expected.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.kind.cmp(&b.kind)));
    if order != expected {
        return Err(format!(
            "pop order diverged:\n{order:?}\nvs stable sort\n{expected:?}"
        ));
    }
    // And the queue is reproducible: same pushes, same pops.
    if order != drain().0 {
        return Err("two identically fed queues popped differently".into());
    }
    Ok(())
}

proptest! {
    #[test]
    fn edf_meets_all_deadlines_at_or_below_utilization_one(
        picks in prop::collection::vec((0usize..6, 0.05f64..1.0), 2..6),
        total_util in 0.3f64..1.0,
    ) {
        if let Err(msg) = edf_no_misses_case(&picks, total_util) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn energy_accounting_reconciles(
        picks in prop::collection::vec((0usize..6, 0.05f64..1.0), 1..5),
        total_util in 0.2f64..0.9,
        shape in 0usize..5,
        static_power in 0.0f64..30.0,
        idle_power in 0.0f64..5.0,
        seed in 0u64..1_000_000,
    ) {
        if let Err(msg) =
            energy_reconciles_case(&picks, total_util, shape, static_power, idle_power, seed)
        {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn same_seed_gives_byte_identical_reports(
        picks in prop::collection::vec((0usize..6, 0.05f64..1.0), 1..5),
        total_util in 0.2f64..0.95,
        seed in 0u64..1_000_000,
        edf in prop::bool::ANY,
    ) {
        if let Err(msg) = determinism_case(&picks, total_util, seed, edf) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn event_queue_pops_in_time_priority_seq_order(
        events in prop::collection::vec((0usize..4, 0usize..5), 0..64),
    ) {
        if let Err(msg) = event_queue_determinism_case(&events) {
            prop_assert!(false, "{}", msg);
        }
    }
}

proptest! {
    // Nightly-scale variants: bigger sets, the full utilization range up
    // to the EDF bound. Kept `#[ignore]`d for the default run; CI's
    // property-suite job includes them with a raised `PROPTEST_CASES`.
    #[test]
    #[ignore = "nightly-scale property suite (run with --include-ignored)"]
    fn edf_bound_holds_on_larger_sets(
        picks in prop::collection::vec((0usize..6, 0.02f64..1.0), 2..10),
        total_util in 0.5f64..1.0,
    ) {
        if let Err(msg) = edf_no_misses_case(&picks, total_util) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    #[ignore = "nightly-scale property suite (run with --include-ignored)"]
    fn energy_reconciles_on_larger_sets(
        picks in prop::collection::vec((0usize..6, 0.02f64..1.0), 2..10),
        total_util in 0.2f64..0.95,
        shape in 0usize..5,
        static_power in 0.0f64..100.0,
        idle_power in 0.0f64..10.0,
        seed in 0u64..1_000_000,
    ) {
        if let Err(msg) =
            energy_reconciles_case(&picks, total_util, shape, static_power, idle_power, seed)
        {
            prop_assert!(false, "{}", msg);
        }
    }
}
