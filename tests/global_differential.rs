//! Differential proof for global multiprocessor dispatch: where global
//! and partitioned placement are defined on the same system, they must
//! agree — and where they genuinely differ (contended multicore DAG
//! grids), the campaign output must still be deterministic at any
//! thread count.
//!
//! Three layers of evidence, mirroring `tests/engine_differential.rs`:
//!
//! * **Degenerate equivalences** — on one core, `GlobalRun` must
//!   reproduce the single-core `Simulator` exactly (reports and traces;
//!   the two event-engine-only stats are normalized, as the global
//!   dispatcher has no event queue); on edge-free sets with one task
//!   per core, global and partitioned placement produce the same
//!   machine energy with zero migrations.
//! * **Campaign CSVs** — `scenarios/dag_global.txt` (both placements,
//!   a precedence diamond, a migration-forcing set) emits byte-identical
//!   CSVs at 1, 2 and 8 threads (solver-counter columns masked at >1
//!   thread, same convention as the engine differential), and its
//!   `hexad` partitioned rows are byte-identical to a v4 twin scenario
//!   that never heard of placements.
//! * **Acceptance numbers** — on `dag_global.txt`, global EDF at WCS
//!   draws meets every deadline while migrating, and the paper's
//!   ACS-vs-WCS gain is nonzero on the DAG set.

use acsched::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scenario_path(name: &str) -> PathBuf {
    let dir = std::env::var("ACS_SCENARIO_DIR")
        .unwrap_or_else(|_| format!("{}/scenarios", env!("CARGO_MANIFEST_DIR")));
    Path::new(&dir).join(name)
}

/// Splits one CSV row into fields, honoring RFC-4180 quoting (the sink
/// quotes fields containing commas; masking by column index must not
/// split inside them).
fn split_csv(row: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = row.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    quoted = false;
                }
            }
            '"' => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Zero-indexed positions of the solver-counter columns in
/// [`acs_runtime::CSV_HEADER`] (`solver_lookups`, `solver_cache_hits`,
/// `boundary_resolves`, `resolves_adopted`) — unchanged by the two
/// appended v5 columns.
const SOLVER_COLUMNS: [usize; 4] = [17, 18, 19, 20];

fn mask_solver_columns(row: &str) -> String {
    let mut fields = split_csv(row);
    for &i in &SOLVER_COLUMNS {
        if i < fields.len() {
            fields[i] = "*".into();
        }
    }
    fields.join(",")
}

/// Runs `campaign` at `threads` workers and returns the CSV body.
fn campaign_csv(campaign: &Campaign, plans: &acs_runtime::CampaignPlans, threads: usize) -> String {
    let mut sink = CsvSink::new(Vec::new());
    campaign
        .run_range_with(plans, 0..campaign.cell_count(), threads, &mut sink)
        .expect("in-memory CSV sink cannot fail");
    String::from_utf8(sink.into_inner()).expect("CSV is UTF-8")
}

/// Zeroes the two event-engine-only stats so single-core engine reports
/// compare against the queue-less global dispatcher.
fn normalized(mut r: SimReport) -> SimReport {
    r.events_handled = 0;
    r.event_queue_peak = 0;
    r
}

// ---------------------------------------------------------------------
// Degenerate equivalences.
// ---------------------------------------------------------------------

/// On one core, global dispatch *is* the single-core engine: identical
/// reports (modulo the event-queue stats), identical traces, zero
/// migrations — for every set of `dag_global.txt` (including the
/// precedence diamond), both classes, schedule-free policies, both
/// workload shapes.
#[test]
fn global_on_one_core_matches_the_single_core_engine() {
    let scenario = Scenario::load(scenario_path("dag_global.txt")).expect("scenario parses");
    let sets = scenario.materialize_task_sets().expect("task sets");
    let cpus = scenario.materialize_processors().expect("processors");
    let (_, cpu) = &cpus[0];
    for (name, set) in &sets {
        for class in [SchedulingClass::FixedPriorityRm, SchedulingClass::Edf] {
            for ccrm in [false, true] {
                for seed in [1u64, 2] {
                    let options = SimOptions {
                        hyper_periods: 3,
                        record_trace: true,
                        class: Some(class),
                        ..Default::default()
                    };
                    let policy = || -> Box<dyn Policy> {
                        if ccrm {
                            Box::new(CcRm::new())
                        } else {
                            Box::new(NoDvs)
                        }
                    };
                    let ctx = format!("{name} {class:?} ccrm={ccrm} seed={seed}");

                    let mut draws = TaskWorkloads::paper(set, seed);
                    let single = Simulator::new(set, cpu, policy())
                        .with_options(options.clone())
                        .run(&mut |t, i| draws.draw(t, i))
                        .expect("single-core run succeeds");

                    let mut draws = TaskWorkloads::paper(set, seed);
                    let global = GlobalRun {
                        set,
                        cpu,
                        cores: 1,
                        options,
                    }
                    .run(policy(), &mut |t, i| draws.draw(t, i))
                    .expect("1-core global run succeeds");

                    assert_eq!(global.report.per_core.len(), 1, "{ctx}");
                    let gr = &global.report.per_core[0];
                    assert_eq!(gr.migrations, 0, "{ctx}: one core cannot migrate");
                    assert_eq!(gr.events_handled, 0, "{ctx}: global dispatch has no queue");
                    assert!(single.report.events_handled > 0, "{ctx}");
                    assert_eq!(
                        normalized(single.report.clone()),
                        normalized(gr.clone()),
                        "{ctx}: reports diverged"
                    );
                    let traces = global.traces.as_ref().expect("traces recorded");
                    assert_eq!(
                        single.trace.as_ref().expect("trace recorded"),
                        &traces[0],
                        "{ctx}: traces diverged"
                    );
                }
            }
        }
    }
}

/// Edge-free set, one task per core: global and partitioned placement
/// describe the same machine. Same total energy (≤1e-9 relative), all
/// deadlines met, zero migrations under global dispatch.
#[test]
fn one_task_per_core_global_equals_partitioned() {
    let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap();
    for n in [2usize, 3, 4] {
        let tasks: Vec<Task> = (0..n)
            .map(|i| {
                let wcec = 400.0 + 200.0 * i as f64;
                Task::builder(format!("t{i}"), Ticks::new(10))
                    .wcec(Cycles::from_cycles(wcec))
                    .acec(Cycles::from_cycles(wcec * 0.4))
                    .bcec(Cycles::from_cycles(wcec * 0.1))
                    .build()
                    .unwrap()
            })
            .collect();
        let set = TaskSet::new(tasks).unwrap();
        let options = SimOptions {
            hyper_periods: 4,
            ..Default::default()
        };

        // Worst-fit spreads n tasks over n cores: one task per core.
        let part = partition(&set, cpu.f_max(), n, PartitionHeuristic::WorstFitDecreasing)
            .expect("edge-free sets partition");
        assert_eq!(part.busy_cores(), n, "one task per core");
        // Per-core draw streams complicate seed alignment; WCS draws
        // sidestep it — both placements execute exactly WCEC cycles.
        let machine = MachineRun {
            partition: &part,
            cpu: &cpu,
            schedules: None,
            options: options.clone(),
        }
        .run(|| Box::new(NoDvs), &mut |core, t, _i| {
            part.cores[core].set.as_ref().unwrap().tasks()[t.0].wcec()
        })
        .expect("partitioned run succeeds");

        let global = GlobalRun {
            set: &set,
            cpu: &cpu,
            cores: n,
            options,
        }
        .run(NoDvs, &mut |t, _i| set.tasks()[t.0].wcec())
        .expect("global run succeeds");

        assert!(machine.all_deadlines_met(), "n={n} partitioned");
        assert!(global.report.all_deadlines_met(), "n={n} global");
        assert_eq!(
            global.report.to_sim_report().migrations,
            0,
            "n={n}: a dedicated core per job never migrates"
        );
        assert_eq!(
            machine.to_sim_report().jobs_completed,
            global.report.to_sim_report().jobs_completed,
            "n={n}"
        );
        let (pe, ge) = (
            machine.energy().as_units(),
            global.report.energy().as_units(),
        );
        assert!(
            (pe - ge).abs() <= 1e-9 * pe.max(1.0),
            "n={n}: machine energies diverged: partitioned {pe} vs global {ge}"
        );
    }
}

// ---------------------------------------------------------------------
// Campaign CSVs on scenarios/dag_global.txt.
// ---------------------------------------------------------------------

fn dag_global_campaign(cache: Option<&Arc<SolverCache>>) -> Campaign {
    Scenario::load(scenario_path("dag_global.txt"))
        .expect("scenario parses")
        .campaign_builder_with_cache(cache)
        .expect("campaign builder")
        .build()
        .expect("campaign builds")
}

/// `dag_global.txt` at 1/2/8 threads: byte-identical CSVs. The two
/// 1-thread runs use separately built campaigns (cold solver caches) and
/// compare exactly, counters included; the multi-thread runs share a
/// warm cache and compare with the four solver-counter columns masked.
#[test]
fn dag_global_campaign_is_thread_count_deterministic() {
    let cold_a = dag_global_campaign(None);
    let cold_b = dag_global_campaign(None);
    let warm_cache = Arc::new(SolverCache::new(4096));
    let warm = dag_global_campaign(Some(&warm_cache));
    let plans = warm.plan();

    let base = campaign_csv(&cold_a, &plans, 1);
    let again = campaign_csv(&cold_b, &plans, 1);
    assert_eq!(base, again, "1-thread runs must be byte-identical");

    let masked_base: Vec<String> = base.lines().map(mask_solver_columns).collect();
    for threads in [2usize, 8] {
        let multi = campaign_csv(&warm, &plans, threads);
        let masked: Vec<String> = multi.lines().map(mask_solver_columns).collect();
        assert_eq!(
            masked_base, masked,
            "CSV diverged between 1 and {threads} threads"
        );
    }
}

/// A v4 twin of `dag_global.txt`'s edge-free `hexad` grid — identical
/// axes, no `placement` directive, no `dag` block, scenario version 4.
const HEXAD_V4_TWIN: &str = "\
acsched-scenario v4
taskset hexad
task t1 period=10 wcec=400 acec=160 bcec=40
task t2 period=10 wcec=300 acec=120 bcec=30
task t3 period=20 wcec=600 acec=240 bcec=60
task t4 period=20 wcec=400 acec=160 bcec=40
task t5 period=40 wcec=480 acec=192 bcec=48
task t6 period=40 wcec=320 acec=128 bcec=32
end
processor linear50 linear kappa=50 vmin=0.3 vmax=4
cores 1 2
class rm,edf
schedules wcs acs
policy no-dvs
policy greedy
policy ccrm
workload wcec
workload paper
seeds 1 2
hyper_periods 5
synthesis quick
";

/// The v5 grid's partitioned `hexad` rows are the v4 twin's rows, byte
/// for byte (the twin emits the same 33-column layout with `-` /
/// `partitioned` placements and zero migrations): adding the placement
/// axis and DAG sets to a scenario must not perturb a single
/// pre-existing result.
#[test]
fn hexad_partitioned_rows_are_byte_identical_to_the_v4_twin() {
    let v5 = dag_global_campaign(None);
    let v5_csv = campaign_csv(&v5, &v5.plan(), 1);

    let v4 = Scenario::from_text(HEXAD_V4_TWIN)
        .expect("twin parses")
        .campaign_builder()
        .expect("campaign builder")
        .build()
        .expect("campaign builds");
    let v4_csv = campaign_csv(&v4, &v4.plan(), 1);
    let v4_rows: Vec<&str> = v4_csv.lines().collect();
    assert!(!v4_rows.is_empty());

    let v5_hexad: Vec<String> = v5_csv
        .lines()
        .filter(|row| {
            let fields = split_csv(row);
            let (placement, migrations) = (&fields[fields.len() - 2], &fields[fields.len() - 1]);
            if fields[0] != "hexad" || placement == "global" {
                return false;
            }
            assert_eq!(migrations, "0", "partitioned cells never migrate: {row}");
            assert!(
                placement == "-" || placement == "partitioned",
                "unexpected placement {placement:?}: {row}"
            );
            true
        })
        .map(str::to_string)
        .collect();

    assert_eq!(
        v5_hexad.len(),
        v4_rows.len(),
        "the twin and the v5 partitioned slice must cover the same cells"
    );
    for (i, (v5_row, v4_row)) in v5_hexad.iter().zip(&v4_rows).enumerate() {
        assert_eq!(v5_row, v4_row, "hexad row {i} diverged from the v4 twin");
    }
}

// ---------------------------------------------------------------------
// Acceptance numbers on scenarios/dag_global.txt.
// ---------------------------------------------------------------------

/// Global EDF at worst-case draws meets every deadline while actually
/// migrating jobs (the `churn` set is engineered to force exactly one
/// migration per hyper-period), and the ACS-vs-WCS gain is nonzero on
/// the precedence diamond: the paper's claim survives both new axes.
#[test]
fn dag_global_acceptance_numbers() {
    let report = dag_global_campaign(None).run();
    assert_eq!(report.failures().count(), 0, "{}", report.to_table());

    // Global cells exist for every class, and every WCS-draw cell in the
    // whole grid is miss-free.
    let mut global_edf_wcec_migrations = 0usize;
    for cell in report.cells() {
        let stats = cell.stats().expect("no failures");
        if cell.workload == "wcec" {
            assert_eq!(
                stats.deadline_misses, 0,
                "WCS draws must be miss-free: {cell:?}"
            );
        }
        if cell.placement == "global" {
            assert_eq!(cell.partition, "-", "global cells have no partition");
            if cell.class == SchedulingClass::Edf && cell.workload == "wcec" {
                global_edf_wcec_migrations += stats.migrations;
            }
        } else {
            assert_eq!(
                stats.migrations, 0,
                "only global dispatch migrates: {cell:?}"
            );
        }
    }
    assert!(
        global_edf_wcec_migrations > 0,
        "global EDF at WCS draws must migrate on the churn set"
    );

    // ACS beats WCS on the DAG set under the paper's workload.
    let diamond = |schedule: ScheduleChoice| {
        report
            .cells()
            .iter()
            .find(|c| {
                c.task_set == "diamond"
                    && c.cores == 1
                    && c.policy == "greedy"
                    && c.schedule == schedule
                    && c.workload == "paper-normal"
                    && c.class == SchedulingClass::FixedPriorityRm
            })
            .unwrap_or_else(|| panic!("no diamond {schedule:?} cell"))
            .stats()
            .expect("no failures")
            .mean_energy
            .as_units()
    };
    let (wcs, acs) = (diamond(ScheduleChoice::Wcs), diamond(ScheduleChoice::Acs));
    assert!(
        acs < wcs,
        "ACS must beat WCS on the precedence diamond: {acs} vs {wcs}"
    );
}
