//! Acceptance + property suite for the arrival-source layer
//! (`acs-trace`) and its campaign integration:
//!
//! * sporadic sources never violate the minimum inter-arrival time —
//!   every same-task gap lies in `[P, P·1.5)` — over random task sets
//!   and seeds;
//! * generated sources (Poisson, MMPP) are pure functions of
//!   `(seed, task)`: rebuilding the source replays the identical
//!   stream, a different seed diverges, and each task's stream is
//!   untouched by the other tasks in the set;
//! * the checked-in `scenarios/arrivals_sweep.txt` (plus an inline v4
//!   grid covering Poisson and all MMPP profiles) streams
//!   byte-identical CSV at 1, 2 and 8 worker threads;
//! * attaching an explicit `Periodic` source reproduces the legacy
//!   built-in periodic path bit-for-bit on the checked-in scenarios'
//!   task sets (same `SimReport`, including event-engine stats).

use acsched::prelude::*;
use acsched::trace::{Mmpp, Periodic, Poisson, Sporadic};
use proptest::prelude::*;

fn scenario_dir() -> String {
    std::env::var("ACS_SCENARIO_DIR")
        .unwrap_or_else(|_| format!("{}/scenarios", env!("CARGO_MANIFEST_DIR")))
}

/// Period pool with a bounded hyper-period, mixing harmonic and
/// non-harmonic relations (lcm ≤ 360).
const PERIODS: [u64; 6] = [8, 9, 10, 12, 15, 18];

fn build_set(picks: &[usize]) -> TaskSet {
    let tasks: Vec<Task> = picks
        .iter()
        .enumerate()
        .map(|(i, p_idx)| {
            let period = PERIODS[p_idx % PERIODS.len()];
            Task::builder(format!("t{i}"), Ticks::new(period))
                .wcec(Cycles::from_cycles(period as f64 * 6.0))
                .acec(Cycles::from_cycles(period as f64 * 2.4))
                .bcec(Cycles::from_cycles(period as f64 * 0.6))
                .build()
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

/// Drains `windows` hyper-period windows from `source`, returning
/// per-task absolute release times (ms from time zero).
fn absolute_releases(source: &mut dyn ArrivalSource, set: &TaskSet, windows: u64) -> Vec<Vec<f64>> {
    let h = set.hyper_period().get() as f64;
    let mut per_task = vec![Vec::new(); set.len()];
    let mut buf = Vec::new();
    for w in 0..windows {
        buf.clear();
        source
            .fill_window(w, &mut buf)
            .expect("generators never fail");
        for job in &buf {
            per_task[job.task].push(w as f64 * h + job.release_ms);
        }
    }
    per_task
}

fn sporadic_case(picks: &[usize], seed: u64) -> Result<(), String> {
    let set = build_set(picks);
    let mut source = Sporadic::new(&set, seed);
    let releases = absolute_releases(&mut source, &set, 16);
    for (task, times) in releases.iter().enumerate() {
        let period = set.tasks()[task].period().get() as f64;
        // Window boundaries only partition the stream; gaps are
        // checked on the stitched absolute times, including the
        // implicit release at t = 0 the stream starts after.
        let mut prev = 0.0;
        for &t in times {
            let gap = t - prev;
            if gap < period - 1e-9 {
                return Err(format!(
                    "task {task}: gap {gap} under the period {period} (seed {seed})"
                ));
            }
            if gap >= period * (1.0 + Sporadic::JITTER) + 1e-9 {
                return Err(format!(
                    "task {task}: gap {gap} beyond the jitter bound (seed {seed})"
                ));
            }
            prev = t;
        }
        if times.is_empty() {
            return Err(format!("task {task}: no arrivals in 16 windows"));
        }
    }
    Ok(())
}

proptest! {
    /// The sporadic source keeps every same-task inter-arrival inside
    /// `[P, P·(1 + JITTER))`, for any task set and seed.
    #[test]
    fn sporadic_min_gap_never_violated(
        picks in prop::collection::vec(0usize..PERIODS.len(), 1..5),
        seed in 0u64..1u64 << 48,
    ) {
        if let Err(msg) = sporadic_case(&picks, seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

type SourceBuilder = fn(&TaskSet, u64) -> Box<dyn ArrivalSource>;

fn purity_case(picks: &[usize], seed: u64) -> Result<(), String> {
    let set = build_set(picks);
    let builders: [(&str, SourceBuilder); 3] = [
        ("poisson", |s, sd| Box::new(Poisson::new(s, sd))),
        ("mmpp:bursty", |s, sd| {
            Box::new(Mmpp::new(s, sd, MmppProfile::Bursty))
        }),
        ("mmpp:heavy", |s, sd| {
            Box::new(Mmpp::new(s, sd, MmppProfile::Heavy))
        }),
    ];
    for (name, make) in builders {
        let a = absolute_releases(&mut *make(&set, seed), &set, 8);
        let b = absolute_releases(&mut *make(&set, seed), &set, 8);
        if a != b {
            return Err(format!("{name}: same (seed, set) diverged (seed {seed})"));
        }
        let other = absolute_releases(&mut *make(&set, seed ^ 0x9e37_79b9), &set, 8);
        if a == other {
            return Err(format!("{name}: different seeds collided (seed {seed})"));
        }
        // Per-task purity: growing the set with one more task must not
        // disturb the streams of the tasks already there. The new task
        // reuses the longest period so the rate-monotonic sort (stable,
        // by period) appends it without renumbering existing tasks.
        let longest = *picks
            .iter()
            .max_by_key(|&&p| PERIODS[p % PERIODS.len()])
            .unwrap();
        let mut grown_picks = picks.to_vec();
        grown_picks.push(longest);
        let grown = build_set(&grown_picks);
        let g = absolute_releases(&mut *make(&grown, seed), &grown, 8);
        if g[..set.len()] != a[..] {
            return Err(format!(
                "{name}: adding a task perturbed existing streams (seed {seed})"
            ));
        }
    }
    Ok(())
}

proptest! {
    /// Poisson and MMPP streams are pure in `(seed, task)`: identical
    /// on replay, distinct across seeds, and independent of the other
    /// tasks in the set.
    #[test]
    fn generated_sources_are_pure_in_seed_and_task(
        picks in prop::collection::vec(0usize..PERIODS.len(), 1..4),
        seed in 0u64..1u64 << 48,
    ) {
        if let Err(msg) = purity_case(&picks, seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Runs every cell of `campaign` on `threads` workers into an
/// in-memory CSV sink and returns the streamed rows.
fn campaign_csv(campaign: &Campaign, threads: usize) -> String {
    let plans = campaign.plan();
    let mut sink = CsvSink::new(Vec::new());
    campaign
        .run_range_with(&plans, 0..campaign.cell_count(), threads, &mut sink)
        .expect("in-memory CSV sink cannot fail");
    String::from_utf8(sink.into_inner()).expect("CSV is UTF-8")
}

/// The checked-in arrivals sweep and an inline grid covering Poisson
/// and every MMPP profile stream byte-identical CSV at 1/2/8 threads,
/// and the sporadic cells (feasible by construction) miss nothing.
#[test]
fn arrival_grids_are_thread_count_deterministic() {
    const INLINE_V4: &str = "\
acsched-scenario v4

taskset pair
task ctrl period=10 wcec=300 acec=120 bcec=30
task telemetry period=20 wcec=600 acec=200 bcec=60
end

processor linear50 linear kappa=50 vmin=0.3 vmax=4

arrivals poisson,mmpp:light,mmpp:bursty,mmpp:heavy
schedules wcs
policy greedy
workload paper
seeds 1 2
hyper_periods 8
synthesis quick
";
    let checked_in = Scenario::load(format!("{}/arrivals_sweep.txt", scenario_dir()))
        .expect("checked-in arrivals sweep parses");
    let inline = Scenario::from_text(INLINE_V4).expect("inline v4 grid parses");
    for (what, scenario) in [("arrivals_sweep.txt", checked_in), ("inline", inline)] {
        let campaign = scenario.to_campaign().expect("non-empty grid");
        let reference = campaign_csv(&campaign, 1);
        assert!(
            !reference.contains(",failed,"),
            "{what}: failed cells\n{reference}"
        );
        for threads in [2, 8] {
            assert_eq!(
                campaign_csv(&campaign, threads),
                reference,
                "{what}: CSV diverged at {threads} threads"
            );
        }
    }
}

/// Every sporadic cell of the checked-in sweep reports zero aperiodic
/// misses: inter-arrivals only ever stretch past the period the
/// schedule was synthesized for.
#[test]
fn sporadic_cells_of_the_sweep_miss_nothing() {
    let scenario = Scenario::load(format!("{}/arrivals_sweep.txt", scenario_dir()))
        .expect("checked-in arrivals sweep parses");
    assert!(
        scenario.arrivals.iter().any(|k| k.label() == "sporadic"),
        "the sweep declares a sporadic axis entry"
    );
    let report = scenario.to_campaign().unwrap().run();
    assert_eq!(report.failures().count(), 0, "{}", report.to_table());
    assert_eq!(report.total_misses_aperiodic(), 0, "{}", report.to_table());
}

/// An explicit `Periodic` arrival source is bit-identical to the
/// engine's built-in periodic path — same `SimReport`, down to the
/// event-engine counters — on every task set of the checked-in
/// single-core scenarios.
#[test]
fn periodic_source_matches_legacy_path_on_checked_in_scenarios() {
    let dir = scenario_dir();
    let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap();
    let mut compared = 0;
    for file in ["smoke.txt", "edf_vs_rm.txt", "arrivals_sweep.txt"] {
        let scenario = Scenario::load(format!("{dir}/{file}")).expect("scenario parses");
        for (name, set) in scenario.materialize_task_sets().unwrap() {
            let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
            let run = |arrivals: Option<Box<dyn ArrivalSource>>| {
                let mut draws = TaskWorkloads::paper(&set, 7);
                let mut sim = Simulator::new(&set, &cpu, GreedyReclaim)
                    .with_schedule(&wcs)
                    .with_options(SimOptions {
                        hyper_periods: 4,
                        ..SimOptions::default()
                    });
                if let Some(src) = arrivals {
                    sim = sim.with_arrivals(src);
                }
                sim.run(&mut |t, i| draws.draw(t, i)).unwrap().report
            };
            let legacy = run(None);
            let sourced = run(Some(Box::new(Periodic::new(&set))));
            assert_eq!(legacy, sourced, "{file}/{name}: reports diverged");
            assert_eq!(
                format!("{legacy:?}"),
                format!("{sourced:?}"),
                "{file}/{name}: debug renderings diverged"
            );
            compared += 1;
        }
    }
    assert!(compared >= 3, "expected ≥3 task sets, compared {compared}");
}
