//! End-to-end pipeline tests: generation → expansion → synthesis →
//! simulation, cross-checking the three independent implementations of
//! the greedy runtime (NLP objective, analytic trace, event simulator).

use acsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

fn random_set(n: usize, ratio: f64, seed: u64) -> TaskSet {
    let cfg = RandomSetConfig::paper(n, ratio, Freq::from_cycles_per_ms(200.0));
    generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
}

/// The simulator and the analytic trace are two independent codebases;
/// on deterministic per-task workloads they must agree exactly.
#[test]
fn simulator_matches_analytic_trace() {
    let cpu = cpu();
    for seed in [3u64, 7, 42] {
        let set = random_set(5, 0.1, seed);
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let acs = synthesize_acs_warm(&set, &cpu, &SynthesisOptions::quick(), &wcs).unwrap();
        for schedule in [&wcs, &acs] {
            for frac in [0.3, 0.55, 1.0] {
                let totals: Vec<Cycles> = set.tasks().iter().map(|t| t.wcec() * frac).collect();
                let analytic =
                    evaluate_trace(schedule, &set, &cpu, &totals, SpeedBasis::WorstRemaining);
                let mut draw = |t: TaskId, _: u64| totals[t.0];
                let out = Simulator::new(&set, &cpu, GreedyReclaim)
                    .with_schedule(schedule)
                    .with_options(SimOptions {
                        deadline_tol_ms: 1e-3,
                        ..Default::default()
                    })
                    .run(&mut draw)
                    .unwrap();
                let (a, s) = (analytic.energy.as_units(), out.report.energy.as_units());
                // The simulator's completion threshold forgives up to
                // 1e-2 cycles per job (see engine::CYCLE_EPS), so its
                // energy may sit below the analytic trace by at most
                // Σ_jobs 1e-2 · c_eff · vmax² (dust charged at ≤ vmax).
                let vmax = cpu.vmax().as_volts();
                let dust_bound: f64 = set
                    .iter()
                    .map(|(tid, t)| set.instances_of(tid) as f64 * 1e-2 * t.c_eff() * vmax * vmax)
                    .sum();
                assert!(
                    (a - s).abs() <= dust_bound + 1e-9 * a.max(1.0),
                    "seed {seed} frac {frac}: analytic {a} vs simulated {s} \
                     (dust bound {dust_bound})"
                );
            }
        }
    }
}

/// ACS (warm-started) never predicts more average-case energy than WCS,
/// and the runtime confirms it.
#[test]
fn acs_dominates_wcs_on_predicted_energy() {
    let cpu = cpu();
    for seed in [5u64, 23, 71] {
        for ratio in [0.1, 0.5] {
            let set = random_set(4, ratio, seed);
            let opts = SynthesisOptions::quick();
            let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
            let acs = synthesize_acs_warm(&set, &cpu, &opts, &wcs).unwrap();
            let ew = wcs.diagnostics().predicted_avg_energy.as_units();
            let ea = acs.diagnostics().predicted_avg_energy.as_units();
            assert!(
                ea <= ew * (1.0 + 1e-9),
                "seed {seed} ratio {ratio}: ACS {ea} > WCS {ew}"
            );
        }
    }
}

/// The improvement shrinks as workloads become fixed (ratio → 1):
/// with BCEC = WCEC there is no variation to exploit, so ACS ≈ WCS.
///
/// Both sides get the same solver effort: one cold solve plus one warm
/// continuation. Comparing cold WCS against warm-started ACS instead
/// measures solver convergence, not the scheduling approach (the warm
/// side always sees strictly more optimization on an identical
/// objective once ACEC = WCEC).
#[test]
fn no_variation_means_no_advantage() {
    let cpu = cpu();
    let set = random_set(4, 1.0, 11); // BCEC = WCEC exactly
    let opts = SynthesisOptions::quick();
    let base = synthesize_wcs(&set, &cpu, &opts).unwrap();
    let wcs = synthesize_wcs_warm(&set, &cpu, &opts, &base).unwrap();
    let acs = synthesize_acs_warm(&set, &cpu, &opts, &base).unwrap();
    let ew = wcs.diagnostics().predicted_avg_energy.as_units();
    let ea = acs.diagnostics().predicted_avg_energy.as_units();
    let gain = 1.0 - ea / ew;
    assert!(
        gain.abs() < 0.02,
        "unexpected gain {gain} with fixed workloads"
    );
}

/// Milestone conservation: each instance's worst-case shares sum to the
/// task WCEC; average shares follow the fill rule against the budgets.
#[test]
fn milestone_conservation_and_fill() {
    let cpu = cpu();
    let set = random_set(5, 0.1, 13);
    let acs = synthesize_acs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
    for (tid, task) in set.iter() {
        for inst in 0..acs.fps().instances_of(tid) {
            let ms = acs.milestones_of(InstanceId {
                task: tid,
                index: inst,
            });
            let worst: f64 = ms.iter().map(|m| m.worst_workload.as_cycles()).sum();
            let avg: f64 = ms.iter().map(|m| m.avg_workload.as_cycles()).sum();
            assert!((worst - task.wcec().as_cycles()).abs() < 1e-6);
            assert!((avg - task.acec().as_cycles()).abs() < 1e-6);
            // Fill rule: prefix property — once a chunk is not full, all
            // later chunks are empty.
            let mut saw_partial = false;
            for m in &ms {
                let full = (m.avg_workload.as_cycles() - m.worst_workload.as_cycles()).abs() < 1e-9;
                if saw_partial {
                    assert!(
                        m.avg_workload.as_cycles() < 1e-9,
                        "fill rule violated on {}",
                        m.sub
                    );
                }
                if !full {
                    saw_partial = true;
                }
            }
        }
    }
}

/// Real-life sets go through the whole pipeline.
#[test]
fn cnc_and_gap_end_to_end() {
    let cpu = cpu();
    for set in [
        cnc(cpu.f_max(), 0.5, 0.7).unwrap(),
        gap(cpu.f_max(), 0.5, 0.7).unwrap(),
    ] {
        let opts = SynthesisOptions::quick();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
        let acs = synthesize_acs_warm(&set, &cpu, &opts, &wcs).unwrap();
        assert!(verify_worst_case(&acs, &set, &cpu, 1e-4).is_ok());
        let mut draws = TaskWorkloads::paper(&set, 1);
        let out = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&acs)
            .with_options(SimOptions {
                hyper_periods: 3,
                deadline_tol_ms: 1e-3,
                ..Default::default()
            })
            .run(&mut |t, i| draws.draw(t, i))
            .unwrap();
        assert_eq!(out.report.deadline_misses, 0);
    }
}
