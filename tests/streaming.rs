//! Acceptance tests for the streaming `ResultSink` campaign API:
//! streaming-vs-materialized parity at 1, 2 and 8 worker threads,
//! deterministic byte-identical CSV/JSONL output at any thread count,
//! in-order record delivery, and tee fan-out equivalence.

use acsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

fn random_set(seed: u64) -> TaskSet {
    let cfg = RandomSetConfig::paper(3, 0.1, Freq::from_cycles_per_ms(200.0));
    generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn build(threads: usize) -> Campaign {
    Campaign::builder()
        .task_set("a", random_set(31))
        .task_set("b", random_set(32))
        .processor("linear", cpu())
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .policy(PolicySpec::static_speed())
        .policy(PolicySpec::ccrm())
        .workload(WorkloadSpec::Paper)
        .workload(WorkloadSpec::Uniform)
        .seeds([1, 2, 3])
        .hyper_periods(3)
        .threads(threads)
        .build()
        .unwrap()
}

/// The satellite requirement verbatim: the aggregating `ResultSink`
/// reproduces the legacy `Campaign::run` report at 1, 2 and 8 threads.
#[test]
fn streaming_aggregate_equals_materialized_report_at_1_2_8_threads() {
    let reference = build(1).run();
    assert_eq!(reference.failures().count(), 0, "{}", reference.to_table());
    for threads in [1, 2, 8] {
        let campaign = build(threads);
        let mut sink = AggregateSink::new();
        campaign.run_with(&mut sink).unwrap();
        let streamed = sink.into_report();
        assert_eq!(
            streamed, reference,
            "streamed report diverged at {threads} threads"
        );
        assert_eq!(
            campaign.run(),
            reference,
            "run() wrapper diverged at {threads} threads"
        );
    }
}

/// CSV and JSONL sinks receive records in grid order regardless of the
/// thread count: the streamed bytes are identical.
#[test]
fn csv_and_jsonl_bytes_are_thread_count_independent() {
    let render = |threads: usize| {
        let campaign = build(threads);
        let mut csv = CsvSink::new(Vec::new());
        let mut jsonl = JsonlSink::new(Vec::new());
        {
            let mut tee = Tee::new(vec![&mut csv, &mut jsonl]);
            campaign.run_with(&mut tee).unwrap();
        }
        (csv.into_inner(), jsonl.into_inner())
    };
    let (csv1, jsonl1) = render(1);
    assert!(!csv1.is_empty());
    let header = String::from_utf8(csv1.clone()).unwrap();
    assert!(header.starts_with(acsched::runtime::CSV_HEADER));
    for threads in [2, 8] {
        let (csv_n, jsonl_n) = render(threads);
        assert_eq!(csv1, csv_n, "CSV bytes diverged at {threads} threads");
        assert_eq!(jsonl1, jsonl_n, "JSONL bytes diverged at {threads} threads");
    }
}

/// Records arrive strictly in grid order with correct indices and meta.
#[test]
fn records_stream_in_grid_order() {
    struct OrderCheck {
        meta: Option<CampaignMeta>,
        indices: Vec<usize>,
        ended: bool,
    }
    impl ResultSink for OrderCheck {
        fn on_begin(&mut self, meta: &CampaignMeta) -> std::io::Result<()> {
            self.meta = Some(*meta);
            Ok(())
        }
        fn on_record(&mut self, record: &CellRecord) -> std::io::Result<()> {
            self.indices.push(record.index);
            Ok(())
        }
        fn on_end(&mut self) -> std::io::Result<()> {
            self.ended = true;
            Ok(())
        }
    }
    let campaign = build(8);
    let mut sink = OrderCheck {
        meta: None,
        indices: Vec::new(),
        ended: false,
    };
    campaign.run_with(&mut sink).unwrap();
    let meta = sink.meta.expect("on_begin called");
    assert_eq!(meta.cells, campaign.cell_count());
    assert_eq!(meta.runs, campaign.run_count());
    assert_eq!(meta.seeds, 3);
    assert_eq!(
        sink.indices,
        (0..campaign.cell_count()).collect::<Vec<_>>(),
        "records must arrive in grid order"
    );
    assert!(sink.ended, "on_end called");
}

/// A sink error aborts the campaign and surfaces from `run_with`.
#[test]
fn sink_error_aborts_run_with() {
    struct FailOnSecond(usize);
    impl ResultSink for FailOnSecond {
        fn on_record(&mut self, _: &CellRecord) -> std::io::Result<()> {
            self.0 += 1;
            if self.0 >= 2 {
                Err(std::io::Error::other("disk full"))
            } else {
                Ok(())
            }
        }
    }
    let campaign = build(4);
    let err = campaign.run_with(&mut FailOnSecond(0)).unwrap_err();
    assert!(err.to_string().contains("disk full"));
}
