//! Enum→trait shim parity: every variant of the deprecated `DvsPolicy`
//! enum must route to the trait policy that produces *identical*
//! `SimReport`s and execution traces on fixed-seed workloads. This pins
//! the shim's wiring (`From<DvsPolicy>` mapping each variant to the
//! right struct); behavioral parity of the engine itself against the
//! pre-redesign numbers is backed by the fixed-value engine tests
//! (`no_dvs_runs_flat_out_and_idles`, the analytic-trace comparisons)
//! that survived the migration unchanged.

#![allow(deprecated)]

use acsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

fn random_set(seed: u64) -> TaskSet {
    let cfg = RandomSetConfig::paper(4, 0.1, Freq::from_cycles_per_ms(200.0));
    generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
}

/// Runs one policy (already boxed) over fixed-seed draws.
fn run_one(
    set: &TaskSet,
    cpu: &Processor,
    policy: Box<dyn Policy>,
    schedule: Option<&StaticSchedule>,
    seed: u64,
) -> (SimReport, Option<acsched::sim::ExecutionTrace>) {
    let mut draws = TaskWorkloads::paper(set, seed);
    let mut sim = Simulator::new(set, cpu, policy).with_options(SimOptions {
        hyper_periods: 7,
        deadline_tol_ms: 1e-3,
        record_trace: true,
        ..Default::default()
    });
    if let Some(s) = schedule {
        sim = sim.with_schedule(s);
    }
    let out = sim.run(&mut |t, i| draws.draw(t, i)).unwrap();
    (out.report, out.trace)
}

#[test]
fn every_enum_variant_matches_its_trait_replacement() {
    let cpu = cpu();
    for set_seed in [3u64, 17] {
        let set = random_set(set_seed);
        let opts = SynthesisOptions::quick();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();

        let cases: Vec<(DvsPolicy, Box<dyn Policy>, bool)> = vec![
            (DvsPolicy::NoDvs, Box::new(NoDvs), false),
            (DvsPolicy::CcRm, Box::new(CcRm::new()), false),
            (DvsPolicy::StaticSpeed, Box::new(StaticSpeed), true),
            (DvsPolicy::GreedyReclaim, Box::new(GreedyReclaim), true),
        ];
        for (old, new, with_schedule) in cases {
            let schedule = with_schedule.then_some(&wcs);
            let workload_seed = 1000 + set_seed;
            let (enum_report, enum_trace) =
                run_one(&set, &cpu, old.into(), schedule, workload_seed);
            let (trait_report, trait_trace) = run_one(&set, &cpu, new, schedule, workload_seed);
            assert_eq!(
                enum_report, trait_report,
                "set {set_seed}: {old} enum vs trait report diverged"
            );
            assert_eq!(
                enum_trace, trait_trace,
                "set {set_seed}: {old} enum vs trait trace diverged"
            );
            // Sanity: the runs did real work.
            assert!(trait_report.jobs_completed > 0);
            assert!(trait_report.energy.as_units() > 0.0);
        }
    }
}

/// The enum shim also works through the `Campaign` runner: a campaign
/// over `DvsPolicy`-built specs equals one over the trait built-ins.
#[test]
fn enum_shim_matches_trait_policies_through_campaign() {
    let set = random_set(5);
    let run = |spec: PolicySpec| {
        Campaign::builder()
            .task_set("s", set.clone())
            .processor("p", cpu())
            .schedules([ScheduleChoice::Wcs])
            .policy(spec)
            .workload(WorkloadSpec::Paper)
            .seeds([11, 12])
            .hyper_periods(3)
            .build()
            .unwrap()
            .run()
    };
    let via_enum = run(PolicySpec::custom(|| DvsPolicy::GreedyReclaim.into()));
    let via_trait = run(PolicySpec::greedy());
    assert_eq!(via_enum, via_trait);
}
