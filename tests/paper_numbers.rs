//! Integration tests pinning the paper's §2.2 numbers through the public
//! facade: Table 1, Figs. 1–2, and the synthesizer recovering both hand
//! schedules.

use acsched::core::{Milestone, ScheduleKind, SolveDiagnostics, StaticSchedule};
use acsched::prelude::*;
use acsched::workloads::{fig1_end_times, fig2_end_times, motivation, motivation_system};

fn hand_schedule(set: &TaskSet, ends: [Time; 3]) -> StaticSchedule {
    let fps = FullyPreemptiveSchedule::expand(set).unwrap();
    let milestones = fps
        .sub_instances()
        .iter()
        .zip(ends)
        .map(|(s, end_time)| Milestone {
            sub: s.id,
            end_time,
            worst_workload: Cycles::from_cycles(1000.0),
            avg_workload: Cycles::from_cycles(500.0),
        })
        .collect();
    StaticSchedule::from_parts(
        fps,
        milestones,
        ScheduleKind::Custom,
        SolveDiagnostics {
            converged: true,
            max_violation: 0.0,
            outer_iterations: 0,
            evaluations: 0,
            predicted_avg_energy: Energy::ZERO,
            predicted_worst_energy: Energy::ZERO,
        },
    )
    .unwrap()
}

fn acec(set: &TaskSet) -> Vec<Cycles> {
    set.tasks().iter().map(|t| t.acec()).collect()
}

fn wcec(set: &TaskSet) -> Vec<Cycles> {
    set.tasks().iter().map(|t| t.wcec()).collect()
}

#[test]
fn fig1b_energy_and_finish_times() {
    let (set, cpu) = motivation();
    let sched = hand_schedule(&set, fig1_end_times());
    let tr = evaluate_trace(&sched, &set, &cpu, &acec(&set), SpeedBasis::WorstRemaining);
    // Paper Fig. 1(b): finishes at 3.33, 8.33, ~14.1 ms.
    assert!((tr.finish[0].as_ms() - 10.0 / 3.0).abs() < 1e-9);
    assert!((tr.finish[1].as_ms() - 25.0 / 3.0).abs() < 1e-9);
    assert!((tr.finish[2].as_ms() - 14.166_67).abs() < 1e-3);
    // Energy ≈ 7969·C (paper prints 7961 with coarser rounding).
    assert!((tr.energy.as_units() - 7969.4).abs() < 1.0);
}

#[test]
fn fig2_improvement_and_worst_case_increase() {
    let (set, cpu) = motivation();
    let wcs = hand_schedule(&set, fig1_end_times());
    let acs = hand_schedule(&set, fig2_end_times());

    let e1 = evaluate_trace(&wcs, &set, &cpu, &acec(&set), SpeedBasis::WorstRemaining).energy;
    let e2 = evaluate_trace(&acs, &set, &cpu, &acec(&set), SpeedBasis::WorstRemaining).energy;
    assert!((e2.as_units() - 6000.0).abs() < 1e-6);
    let improvement = improvement_over(e1, e2);
    assert!(
        (improvement - 0.247).abs() < 0.005,
        "improvement = {improvement}"
    );

    let w1 = evaluate_trace(&wcs, &set, &cpu, &wcec(&set), SpeedBasis::WorstRemaining).energy;
    let w2 = evaluate_trace(&acs, &set, &cpu, &wcec(&set), SpeedBasis::WorstRemaining).energy;
    assert!((w1.as_units() - 27000.0).abs() < 1e-6);
    assert!((w2.as_units() - 36000.0).abs() < 1e-6);
}

#[test]
fn fig2_needs_exactly_4v_in_worst_case() {
    let (set, cpu) = motivation();
    let acs = hand_schedule(&set, fig2_end_times());
    let tr = evaluate_trace(&acs, &set, &cpu, &wcec(&set), SpeedBasis::WorstRemaining);
    assert!((tr.voltage[0].unwrap().as_volts() - 2.0).abs() < 1e-9);
    assert!((tr.voltage[1].unwrap().as_volts() - 4.0).abs() < 1e-9);
    assert!((tr.voltage[2].unwrap().as_volts() - 4.0).abs() < 1e-9);
    assert!(!tr.saturated);
    assert!(tr.max_lateness_ms < 1e-9);
}

#[test]
fn fig2_infeasible_on_3v_part() {
    let (set, cpu) = motivation_system(Volt::from_volts(3.0));
    let acs = hand_schedule(&set, fig2_end_times());
    // Analytic trace saturates...
    let tr = evaluate_trace(&acs, &set, &cpu, &wcec(&set), SpeedBasis::WorstRemaining);
    assert!(tr.saturated);
    assert!(tr.max_lateness_ms > 1.0);
    // ...the verifier rejects...
    assert!(verify_worst_case(&acs, &set, &cpu, 1e-6).is_err());
    // ...and the simulator records a deadline miss.
    let totals = wcec(&set);
    let out = Simulator::new(&set, &cpu, GreedyReclaim)
        .with_schedule(&acs)
        .run(&mut |t, _| totals[t.0])
        .unwrap();
    assert!(out.report.deadline_misses > 0);
}

#[test]
fn synthesizer_recovers_fig1a_wcs_schedule() {
    let (set, cpu) = motivation();
    let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
    let ends: Vec<f64> = wcs
        .milestones()
        .iter()
        .map(|m| m.end_time.as_ms())
        .collect();
    assert!((ends[0] - 20.0 / 3.0).abs() < 0.15, "{ends:?}");
    assert!((ends[1] - 40.0 / 3.0).abs() < 0.15, "{ends:?}");
    assert!((ends[2] - 20.0).abs() < 0.01, "{ends:?}");
}

#[test]
fn synthesizer_recovers_fig2_acs_schedule() {
    let (set, cpu) = motivation();
    let acs = synthesize_acs(&set, &cpu, &SynthesisOptions::default()).unwrap();
    let ends: Vec<f64> = acs
        .milestones()
        .iter()
        .map(|m| m.end_time.as_ms())
        .collect();
    // The paper's optimum {10, 15, 20}.
    assert!((ends[0] - 10.0).abs() < 0.2, "{ends:?}");
    assert!((ends[1] - 15.0).abs() < 0.2, "{ends:?}");
    assert!((ends[2] - 20.0).abs() < 0.01, "{ends:?}");
    // Predicted average energy ≈ 6000·C.
    let e = acs.diagnostics().predicted_avg_energy.as_units();
    assert!((e - 6000.0).abs() < 60.0, "predicted = {e}");
}

#[test]
fn fig34_expansion_structure() {
    let set = TaskSet::new(
        [3u64, 6, 9]
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::builder(format!("T{i}"), Ticks::new(p))
                    .wcec(Cycles::from_cycles(10.0))
                    .build()
                    .unwrap()
            })
            .collect(),
    )
    .unwrap();
    let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
    assert_eq!(fps.len(), 18);
    assert_eq!(fps.grid().segment_count(), 6);
    let labels: Vec<String> = fps
        .sub_instances()
        .iter()
        .take(6)
        .map(|s| s.label())
        .collect();
    assert_eq!(
        labels,
        ["T0,1,1", "T1,1,1", "T2,1,1", "T0,2,1", "T1,1,2", "T2,1,2"]
    );
}

#[test]
fn fig5_fill_rule() {
    use acsched::core::fill::fill_amounts;
    assert_eq!(
        fill_amounts(&[10.0, 10.0, 10.0], 15.0),
        vec![10.0, 5.0, 0.0]
    );
    assert_eq!(
        fill_amounts(&[10.0, 10.0, 10.0], 30.0),
        vec![10.0, 10.0, 10.0]
    );
}
