//! Paper-faithfulness and determinism acceptance tests for the online
//! re-optimizing DVS policy (`ReOpt`).
//!
//! * Faithfulness: on a fig6a-style random-workload grid, `ReOpt` must
//!   meet every deadline and use no more mean energy than
//!   `GreedyReclaim` under the same schedules and paired draws — the
//!   paper's central claim, moved online.
//! * Determinism: boundary solves are pure functions of the quantized
//!   boundary state, so running the same campaign with the solver cache
//!   enabled and disabled must produce identical energy and deadline
//!   statistics (only the cache counters may differ).

use acsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

/// Fig6a-style random sets (paper generator, 70% utilization, ratio
/// 0.1), restricted to a divisor-friendly period pool so the expansions
/// stay small enough for boundary NLPs in debug test builds. Mixed
/// periods matter: equal-period draws degenerate to sequential frames
/// where greedy reclamation already captures nearly all slack.
fn fig6a_style_sets(count: usize) -> Vec<(String, TaskSet)> {
    let mut cfg = RandomSetConfig::paper(4, 0.1, Freq::from_cycles_per_ms(200.0));
    cfg.period_pool = vec![10, 20, 40];
    (0..count)
        .filter_map(|i| {
            generate(&cfg, &mut StdRng::seed_from_u64(100 + i as u64))
                .ok()
                .map(|set| (format!("rand{i}"), set))
        })
        .collect()
}

fn reopt_campaign(sets: Vec<(String, TaskSet)>, cache_capacity: usize) -> CampaignReport {
    Campaign::builder()
        .task_sets(sets)
        .processor("linear", cpu())
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .policy(PolicySpec::reopt_with(
            ReOptConfig::default(),
            cache_capacity,
        ))
        .workload(WorkloadSpec::Paper)
        .seeds([11, 12])
        .hyper_periods(2)
        .build()
        .unwrap()
        .run()
}

#[test]
fn reopt_no_worse_than_greedy_on_fig6a_grid() {
    let sets = fig6a_style_sets(2);
    assert!(!sets.is_empty(), "generator produced no sets");
    let names: Vec<String> = sets.iter().map(|(n, _)| n.clone()).collect();
    let report = reopt_campaign(sets, 4096);
    assert_eq!(
        report.failures().count(),
        0,
        "no cell may fail:\n{}",
        report.to_table()
    );
    assert_eq!(report.total_deadline_misses(), 0, "{}", report.to_table());
    for name in &names {
        for sched in [ScheduleChoice::Wcs, ScheduleChoice::Acs] {
            let energy = |policy: &str| {
                report
                    .find(name, "linear", sched, policy, "paper-normal")
                    .and_then(|c| c.stats())
                    .map(|s| s.mean_energy.as_units())
                    .unwrap_or_else(|| panic!("missing cell {name}/{sched}/{policy}"))
            };
            let (greedy, reopt) = (energy("greedy"), energy("reopt"));
            assert!(
                reopt <= greedy * (1.0 + 1e-9),
                "[{name} {sched}] reopt {reopt} vs greedy {greedy}"
            );
        }
        // Under the WCS schedule the online re-optimization must recover
        // a real share of the offline ACS gain, not just tie.
        let wcs_greedy = report
            .find(
                name,
                "linear",
                ScheduleChoice::Wcs,
                "greedy",
                "paper-normal",
            )
            .and_then(|c| c.stats())
            .unwrap()
            .mean_energy
            .as_units();
        let wcs_reopt = report
            .find(name, "linear", ScheduleChoice::Wcs, "reopt", "paper-normal")
            .and_then(|c| c.stats())
            .unwrap()
            .mean_energy
            .as_units();
        assert!(
            wcs_reopt < wcs_greedy,
            "[{name}] WCS+reopt {wcs_reopt} should beat WCS+greedy {wcs_greedy}"
        );
    }
    // The solver actually ran (this is not a vacuous comparison).
    let lookups: usize = report
        .cells()
        .iter()
        .filter_map(|c| c.stats())
        .map(|s| s.solver_lookups)
        .sum();
    assert!(lookups > 0);
}

/// Adversarial safety: tight utilization forces `ReOpt` to stretch end
/// times right up against the worst-case chain, and all-WCEC draws then
/// demand the stretched schedule actually absorb the worst case. This
/// also exercises the engine's budget roll-forward semantics (leftover
/// budget past a *static* milestone must wait for the next chunk's
/// window — re-optimized paces legitimately run past static milestones).
#[test]
fn reopt_safe_on_tight_sets_under_worst_case_draws() {
    let mut cfg = RandomSetConfig::paper(5, 0.1, Freq::from_cycles_per_ms(200.0));
    cfg.period_pool = vec![10, 20, 40];
    cfg.target_utilization = 0.8;
    let sets: Vec<(String, TaskSet)> = (0..2)
        .filter_map(|i| {
            generate(&cfg, &mut StdRng::seed_from_u64(7 + i as u64))
                .ok()
                .map(|set| (format!("tight{i}"), set))
        })
        .collect();
    assert!(!sets.is_empty());
    let report = Campaign::builder()
        .task_sets(sets)
        .processor("linear", cpu())
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::reopt())
        .workload(WorkloadSpec::Paper)
        .workload(WorkloadSpec::ConstantWcec)
        .seeds([3])
        .hyper_periods(2)
        .build()
        .unwrap()
        .run();
    assert_eq!(
        report.failures().count(),
        0,
        "no cell may fail:\n{}",
        report.to_table()
    );
    assert_eq!(report.total_deadline_misses(), 0, "{}", report.to_table());
}

#[test]
fn reopt_reports_identical_with_cache_on_and_off() {
    let sets = fig6a_style_sets(1);
    assert!(!sets.is_empty());
    let cached = reopt_campaign(sets.clone(), 4096);
    let uncached = reopt_campaign(sets, 0);
    assert_eq!(cached.cells().len(), uncached.cells().len());
    for (a, b) in cached.cells().iter().zip(uncached.cells()) {
        assert_eq!(a.task_set, b.task_set);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.policy, b.policy);
        let (sa, sb) = (a.stats().unwrap(), b.stats().unwrap());
        // Everything observable must match bit-for-bit; only the cache
        // counters are allowed to differ.
        assert_eq!(
            sa.mean_energy, sb.mean_energy,
            "[{} {}]",
            a.task_set, a.policy
        );
        assert_eq!(sa.std_energy, sb.std_energy);
        assert_eq!(sa.p95_energy, sb.p95_energy);
        assert_eq!(sa.deadline_misses, sb.deadline_misses);
        assert_eq!(sa.jobs_completed, sb.jobs_completed);
        assert_eq!(sa.voltage_switches, sb.voltage_switches);
        assert_eq!(sa.saturated_dispatches, sb.saturated_dispatches);
        assert_eq!(sa.worst_lateness_ms, sb.worst_lateness_ms);
        assert_eq!(sa.solver_lookups, sb.solver_lookups);
        // Carry evolution is cache-independent (the fan-out never
        // consumes carry state), so warm-carry hits match exactly.
        assert_eq!(sa.warm_carry_hits, sb.warm_carry_hits);
        if a.policy == "reopt" {
            // The three mechanisms partition the lookups, with and
            // without the cache...
            for s in [&sa, &sb] {
                assert_eq!(
                    s.solver_lookups,
                    s.warm_carry_hits + s.solver_cache_hits + s.boundary_resolves,
                    "[{} {}] lookup partition broken",
                    a.task_set,
                    a.policy
                );
            }
            // ...and with the cache off, every lookup the carry does not
            // answer is a fresh re-solve.
            assert_eq!(sb.solver_cache_hits, 0);
            assert_eq!(sb.boundary_resolves, sb.solver_lookups - sb.warm_carry_hits);
        } else {
            assert_eq!(sa.solver_lookups, 0);
        }
    }
    // The shared cache absorbed repeated states across seeds and
    // hyper-periods.
    let resolves = |r: &CampaignReport| -> usize {
        r.cells()
            .iter()
            .filter_map(|c| c.stats())
            .map(|s| s.boundary_resolves)
            .sum()
    };
    assert!(
        resolves(&cached) < resolves(&uncached),
        "cache saved no re-solves: {} vs {}",
        resolves(&cached),
        resolves(&uncached)
    );
}

fn reopt_only_campaign(sets: Vec<(String, TaskSet)>, cfg: ReOptConfig) -> CampaignReport {
    Campaign::builder()
        .task_sets(sets)
        .processor("linear", cpu())
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::reopt_with(cfg, 4096))
        .workload(WorkloadSpec::Paper)
        .seeds([11, 12])
        .hyper_periods(3)
        .build()
        .unwrap()
        .run()
}

/// Incremental warm-carry semantics across multiple boundaries:
///
/// * Under the default config the carry answers a real share of lookups
///   (`warm_carry_hits > 0`), and every carry hit *is* an adoption —
///   the gate passed — so `warm_carry_hits <= resolves_adopted` and the
///   lookup partition `lookups == carry + cache + resolves` holds.
/// * When the gate can never pass (`min_rel_gain = 1.0` demands a free
///   lunch), the carry attempt must be inert: every observable —
///   energies, misses, *and* solver counters — is bit-identical to a
///   run with `warm_carry` disabled outright, and no carry hit is ever
///   recorded.
#[test]
fn warm_carry_adopts_only_on_gate_pass_and_is_inert_when_rejected() {
    let sets = fig6a_style_sets(2);
    assert!(!sets.is_empty());

    // Default config: the carry fires and every hit is an adoption.
    let default_run = reopt_only_campaign(sets.clone(), ReOptConfig::default());
    assert_eq!(default_run.failures().count(), 0);
    let mut total_carry_hits = 0usize;
    for cell in default_run.cells() {
        let s = cell.stats().unwrap();
        assert_eq!(
            s.solver_lookups,
            s.warm_carry_hits + s.solver_cache_hits + s.boundary_resolves,
            "[{}] lookup partition broken",
            cell.task_set
        );
        assert!(
            s.warm_carry_hits <= s.resolves_adopted,
            "[{}] a carry hit that was not adopted: {} hits vs {} adoptions",
            cell.task_set,
            s.warm_carry_hits,
            s.resolves_adopted
        );
        total_carry_hits += s.warm_carry_hits;
    }
    assert!(
        total_carry_hits > 0,
        "warm carry never fired on the default config"
    );

    // Unpassable gate: carry attempts happen but must change nothing.
    let unpassable = |warm_carry: bool| {
        let cfg = ReOptConfig {
            min_rel_gain: 1.0,
            warm_carry,
            ..ReOptConfig::default()
        };
        reopt_only_campaign(sets.clone(), cfg)
    };
    let (with_carry, without_carry) = (unpassable(true), unpassable(false));
    assert_eq!(with_carry.cells().len(), without_carry.cells().len());
    for (a, b) in with_carry.cells().iter().zip(without_carry.cells()) {
        let (sa, sb) = (a.stats().unwrap(), b.stats().unwrap());
        assert_eq!(
            sa.warm_carry_hits, 0,
            "[{}] gate passed at 100% gain",
            a.task_set
        );
        assert_eq!(sb.warm_carry_hits, 0);
        assert_eq!(
            sa, sb,
            "[{} {}] rejected carry perturbed the run",
            a.task_set, a.schedule
        );
    }
}
