//! Differential proof for the discrete-event engine rewrite: the event
//! engine must reproduce the legacy chunk-scan engine **bit for bit**
//! on periodic sets (see `docs/ENGINE.md` for the determinism
//! contract).
//!
//! The whole suite is gated on the `legacy-engine` cargo feature, which
//! compiles the old engine into `acs-sim` as the test oracle:
//!
//! ```text
//! cargo test --release --features legacy-engine --test engine_differential
//! ```
//!
//! Three layers of evidence:
//!
//! * **Campaign CSVs** — every checked-in scenario (`scenarios/*.txt`)
//!   is run through `acs-runtime` on both engines at 1, 2 and 8
//!   threads; the emitted CSVs must match byte for byte. (At >1 thread
//!   the four solver-counter columns are masked for re-optimizing
//!   cells: a shared solver cache makes *those counters* — never the
//!   adopted schedules or energies — dependent on thread interleaving.
//!   The 1-thread comparison is exact, counters included, with cold
//!   caches on both sides.)
//! * **Traces** — `smoke.txt` and `edf_vs_rm.txt` task sets re-run at
//!   the `Simulator` level with trace recording on: execution slices,
//!   rendered Gantt charts and preemption-displacement counts must be
//!   identical.
//! * **Randomized sets** — proptest-driven task sets across both
//!   scheduling classes and all built-in policies, compared on full
//!   `SimReport`s and traces.
//!
//! The oracle reports `events_handled == 0` and `event_queue_peak == 0`
//! (it has no event queue); the event engine must report nonzero
//! handled events. Comparisons therefore normalize exactly those two
//! fields — and pin them as an invariant first.

#![cfg(feature = "legacy-engine")]

use acs_sim::{legacy_engine_enabled, set_legacy_engine};
use acsched::prelude::*;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// The legacy-engine default is process-global; every test in this
/// binary serializes on this lock so a toggled section can never leak
/// into a concurrently running comparison.
fn toggle_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn scenario_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name)
}

/// Splits one CSV row into fields, honoring RFC-4180 quoting (the sink
/// quotes fields containing commas; masking by column index must not
/// split inside them).
fn split_csv(row: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = row.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    quoted = false;
                }
            }
            '"' => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Zero-indexed positions of the solver-counter columns in
/// [`acs_runtime::CSV_HEADER`] (`solver_lookups`, `solver_cache_hits`,
/// `boundary_resolves`, `resolves_adopted`).
const SOLVER_COLUMNS: [usize; 4] = [17, 18, 19, 20];

/// Replaces the solver-counter fields with `*` so multi-thread CSVs
/// compare on everything the simulation itself produced.
fn mask_solver_columns(row: &str) -> String {
    let mut fields = split_csv(row);
    for &i in &SOLVER_COLUMNS {
        if i < fields.len() {
            fields[i] = "*".into();
        }
    }
    fields.join(",")
}

/// Runs `campaign` on the selected engine and returns the CSV body
/// (no header; `run_range_with` streams records only).
fn campaign_csv(
    campaign: &Campaign,
    plans: &acs_runtime::CampaignPlans,
    threads: usize,
    legacy: bool,
) -> String {
    set_legacy_engine(legacy);
    let mut sink = CsvSink::new(Vec::new());
    campaign
        .run_range_with(plans, 0..campaign.cell_count(), threads, &mut sink)
        .expect("in-memory CSV sink cannot fail");
    set_legacy_engine(false);
    String::from_utf8(sink.into_inner()).expect("CSV is UTF-8")
}

fn assert_rows_equal(scenario: &str, threads: usize, legacy: &str, new: &str, mask: bool) {
    let (l_rows, n_rows): (Vec<&str>, Vec<&str>) =
        (legacy.lines().collect(), new.lines().collect());
    assert_eq!(
        l_rows.len(),
        n_rows.len(),
        "{scenario} @ {threads} threads: row count diverged"
    );
    for (i, (l, n)) in l_rows.iter().zip(&n_rows).enumerate() {
        let (l, n) = if mask {
            (mask_solver_columns(l), mask_solver_columns(n))
        } else {
            ((*l).to_string(), (*n).to_string())
        };
        assert_eq!(
            l, n,
            "{scenario} @ {threads} threads: row {i} diverged (legacy vs event engine)"
        );
    }
}

/// The scenario-level differential: equal campaign CSVs from both
/// engines at 1/2/8 threads. The expensive synthesis (`Campaign::plan`)
/// runs once and backs every engine x thread-count combination; the two
/// 1-thread runs get separately built campaigns so both sides start
/// from cold solver caches and the counter columns compare exactly.
fn scenario_differential(name: &str) {
    let _guard = toggle_lock().lock().unwrap();
    let scenario = Scenario::load(scenario_path(name)).expect("scenario parses");
    let build = |cache: Option<&Arc<SolverCache>>| {
        scenario
            .campaign_builder_with_cache(cache)
            .expect("campaign builder")
            .build()
            .expect("campaign builds")
    };
    let cold_legacy = build(None);
    let cold_new = build(None);
    let warm_cache = Arc::new(SolverCache::new(4096));
    let warm = build(Some(&warm_cache));
    let plans = warm.plan();

    // 1 thread, cold caches both sides: exact, counters included.
    let l1 = campaign_csv(&cold_legacy, &plans, 1, true);
    let n1 = campaign_csv(&cold_new, &plans, 1, false);
    assert_rows_equal(name, 1, &l1, &n1, false);

    // 2 and 8 threads, shared warm cache: exact modulo the four
    // solver-counter columns (interleaving-dependent, see module docs).
    for threads in [2usize, 8] {
        let l = campaign_csv(&warm, &plans, threads, true);
        let n = campaign_csv(&warm, &plans, threads, false);
        assert_rows_equal(name, threads, &l, &n, true);
        // The masked multi-thread rows must also agree with the exact
        // 1-thread rows — threading must not move simulation output.
        assert_rows_equal(
            name,
            threads,
            &l1.lines()
                .map(mask_solver_columns)
                .collect::<Vec<_>>()
                .join("\n"),
            &n.lines()
                .map(mask_solver_columns)
                .collect::<Vec<_>>()
                .join("\n"),
            false,
        );
    }
}

#[test]
fn differential_smoke() {
    scenario_differential("smoke.txt");
}

#[test]
fn differential_edf_vs_rm() {
    scenario_differential("edf_vs_rm.txt");
}

#[test]
fn differential_design_space() {
    scenario_differential("design_space.txt");
}

#[test]
fn differential_multicore_sweep() {
    scenario_differential("multicore_sweep.txt");
}

#[test]
fn differential_serve_warm() {
    scenario_differential("serve_warm.txt");
}

#[test]
fn differential_ablation_policies() {
    scenario_differential("ablation_policies.txt");
}

#[test]
fn differential_fig6a_threeway() {
    scenario_differential("fig6a_threeway.txt");
}

#[test]
fn differential_fig6a_random() {
    scenario_differential("fig6a_random.txt");
}

// ---------------------------------------------------------------------
// Simulator-level trace differential (smoke.txt / edf_vs_rm.txt sets).
// ---------------------------------------------------------------------

/// Zeroes the two event-engine-only stats so reports compare on
/// everything the legacy oracle also produces.
fn normalized(mut r: SimReport) -> SimReport {
    r.events_handled = 0;
    r.event_queue_peak = 0;
    r
}

/// Runs one (set, cpu, policy-kind) cell on both engines with trace
/// recording and asserts identical reports, slices, Gantt renderings
/// and preemption-displacement counts.
fn assert_trace_differential(set: &TaskSet, cpu: &Processor, policy_kind: usize, seed: u64) {
    assert!(
        !legacy_engine_enabled(),
        "trace differential must run with the event engine as default"
    );
    // Infeasible at f_max => no schedule, schedule-bound policy kinds
    // have nothing to compare.
    let schedule = synthesize_acs(set, cpu, &SynthesisOptions::quick()).ok();
    let options = SimOptions {
        hyper_periods: 2,
        record_trace: true,
        ..Default::default()
    };
    let run = |legacy: bool| {
        let mut draws = TaskWorkloads::paper(set, seed);
        let mut workload = |tid: TaskId, i: u64| draws.draw(tid, i);
        macro_rules! go {
            ($sim:expr) => {{
                let mut sim = $sim.with_options(options.clone());
                if legacy {
                    sim.run_legacy(&mut workload)
                } else {
                    sim.run(&mut workload)
                }
            }};
        }
        match (policy_kind, &schedule) {
            (0, _) => go!(Simulator::new(set, cpu, NoDvs)),
            (1, Some(s)) => go!(Simulator::new(set, cpu, StaticSpeed).with_schedule(s)),
            (2, Some(s)) => go!(Simulator::new(set, cpu, GreedyReclaim).with_schedule(s)),
            (3, _) => go!(Simulator::new(set, cpu, CcRm::new())),
            (4, Some(s)) => go!(Simulator::new(set, cpu, ReOpt::new()).with_schedule(s)),
            _ => return None,
        }
        .map(Some)
        .expect("simulation succeeds")
    };
    let Some(legacy) = run(true) else { return };
    let new = run(false).expect("schedule availability is engine-independent");

    // Pin the stats invariant before normalizing it away.
    assert_eq!(legacy.report.events_handled, 0, "oracle has no event queue");
    assert_eq!(legacy.report.event_queue_peak, 0);
    assert!(new.report.events_handled > 0, "event engine counts events");

    assert_eq!(
        normalized(legacy.report.clone()),
        normalized(new.report.clone()),
        "SimReport diverged (policy kind {policy_kind}, seed {seed})"
    );
    assert_eq!(
        legacy.report.preemptions, new.report.preemptions,
        "preemption-displacement counts diverged"
    );
    let (lt, nt) = (
        legacy.trace.expect("legacy trace recorded"),
        new.trace.expect("event-engine trace recorded"),
    );
    assert_eq!(lt.slices(), nt.slices(), "execution slices diverged");
    let horizon = set.hyper_period().get() as f64;
    assert_eq!(
        render_gantt(&lt, set, horizon, 120),
        render_gantt(&nt, set, horizon, 120),
        "Gantt renderings diverged"
    );
}

fn scenario_trace_differential(name: &str) {
    let _guard = toggle_lock().lock().unwrap();
    let scenario = Scenario::load(scenario_path(name)).expect("scenario parses");
    let sets = scenario.materialize_task_sets().expect("task sets");
    let cpus = scenario.materialize_processors().expect("processors");
    for (_, set) in &sets {
        for (_, cpu) in &cpus {
            for policy_kind in 0..5 {
                for seed in [7u64, 1105] {
                    assert_trace_differential(set, cpu, policy_kind, seed);
                }
            }
        }
    }
}

#[test]
fn trace_differential_smoke() {
    scenario_trace_differential("smoke.txt");
}

#[test]
fn trace_differential_edf_vs_rm() {
    scenario_trace_differential("edf_vs_rm.txt");
}

// ---------------------------------------------------------------------
// Randomized task sets via the proptest shim.
// ---------------------------------------------------------------------

/// Same bounded-lcm period pool as `tests/properties.rs`.
const PERIODS: [u64; 6] = [8, 9, 10, 12, 15, 18];

fn build_set(picks: &[(usize, f64)], total_util: f64, f_max: f64) -> TaskSet {
    let share_sum: f64 = picks.iter().map(|(_, s)| s).sum();
    let tasks: Vec<Task> = picks
        .iter()
        .enumerate()
        .map(|(i, (p_idx, share))| {
            let period = PERIODS[p_idx % PERIODS.len()];
            let util = total_util * share / share_sum;
            let wcec = (util * period as f64 * f_max).max(1.0);
            Task::builder(format!("t{i}"), Ticks::new(period))
                .wcec(Cycles::from_cycles(wcec))
                .acec(Cycles::from_cycles(wcec * 0.4))
                .bcec(Cycles::from_cycles(wcec * 0.1))
                .build()
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

/// Processor shapes that stress every accounting path the engines must
/// agree on: lossless, leaky + idle-draining, and a discrete level
/// table with transition overheads.
fn build_cpu(shape: usize) -> Processor {
    let base = || {
        Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
    };
    match shape % 3 {
        0 => base().build().unwrap(),
        1 => base().static_power(12.0).idle_power(1.5).build().unwrap(),
        _ => base()
            .discrete_levels(
                LevelTable::new(vec![
                    Volt::from_volts(1.0),
                    Volt::from_volts(2.0),
                    Volt::from_volts(3.0),
                    Volt::from_volts(4.0),
                ])
                .unwrap(),
            )
            .transition_overhead(TransitionOverhead {
                time: TimeSpan::from_ms(0.002),
                energy: Energy::from_units(1.5),
            })
            .build()
            .unwrap(),
    }
}

fn random_differential_case(
    picks: &[(usize, f64)],
    total_util: f64,
    seed: u64,
    edf: bool,
    policy_kind: usize,
    shape: usize,
) {
    let _guard = toggle_lock().lock().unwrap();
    let cpu = build_cpu(shape);
    let mut set = build_set(picks, total_util, cpu.f_max().as_cycles_per_ms());
    if edf {
        set = set.with_class(SchedulingClass::Edf);
    }
    assert_trace_differential(&set, &cpu, policy_kind, seed);
}

// ---------------------------------------------------------------------
// Batched-draw purity: randomized batch-window sizes.
// ---------------------------------------------------------------------

/// Re-chunks every engine `draw_batch` request into sub-windows whose
/// sizes cycle through a proptest-chosen list, alternating between the
/// inner source's per-draw and batched paths. Under the purity contract
/// (`acs-sim`'s `workload` module docs) this is stream-neutral: the
/// inner RNG sees the same calls in the same order no matter how the
/// window is sliced.
struct ChunkedSource<S> {
    inner: S,
    sizes: Vec<u64>,
    cursor: usize,
}

impl<S: WorkloadSource> WorkloadSource for ChunkedSource<S> {
    fn draw(&mut self, task: TaskId, instance: u64) -> Cycles {
        self.inner.draw(task, instance)
    }

    fn draw_batch(&mut self, task: TaskId, start: u64, count: u64, out: &mut Vec<Cycles>) {
        let mut done = 0;
        while done < count {
            let size = self.sizes[self.cursor % self.sizes.len()].max(1);
            self.cursor += 1;
            let n = size.min(count - done);
            if self.cursor % 2 == 0 {
                self.inner.draw_batch(task, start + done, n, out);
            } else {
                for k in 0..n {
                    let c = self.inner.draw(task, start + done + k);
                    out.push(c);
                }
            }
            done += n;
        }
    }
}

/// Runs one cell three ways on the event engine — per-job closure,
/// whole-window `TaskWorkloads` batches, and randomly re-chunked
/// batches — and asserts the three `SimReport`s are byte-identical (no
/// normalization: all three runs use the same engine).
fn batched_draw_differential_case(
    picks: &[(usize, f64)],
    total_util: f64,
    seed: u64,
    sizes: &[u64],
    shape: usize,
) {
    let _guard = toggle_lock().lock().unwrap();
    assert!(
        !legacy_engine_enabled(),
        "batch differential must run with the event engine as default"
    );
    let cpu = build_cpu(shape);
    let set = build_set(picks, total_util, cpu.f_max().as_cycles_per_ms());
    let schedule = synthesize_acs(&set, &cpu, &SynthesisOptions::quick()).ok();
    let options = SimOptions {
        hyper_periods: 3,
        ..Default::default()
    };
    let run = |source: &mut dyn WorkloadSource| {
        let out = match &schedule {
            Some(s) => Simulator::new(&set, &cpu, GreedyReclaim)
                .with_schedule(s)
                .with_options(options.clone())
                .run_source(source),
            None => Simulator::new(&set, &cpu, NoDvs)
                .with_options(options.clone())
                .run_source(source),
        };
        out.expect("simulation succeeds").report
    };
    let per_job = {
        let mut draws = TaskWorkloads::paper(&set, seed);
        let mut workload = |tid: TaskId, i: u64| draws.draw(tid, i);
        run(&mut workload)
    };
    let batched = run(&mut TaskWorkloads::paper(&set, seed));
    let chunked = run(&mut ChunkedSource {
        inner: TaskWorkloads::paper(&set, seed),
        sizes: sizes.to_vec(),
        cursor: 0,
    });
    assert_eq!(
        per_job, batched,
        "whole-window batching diverged from per-job draws (seed {seed})"
    );
    assert_eq!(
        per_job, chunked,
        "re-chunked batching diverged from per-job draws (seed {seed}, sizes {sizes:?})"
    );
}

proptest! {
    /// The headline property: on arbitrary periodic sets, across both
    /// scheduling classes, every built-in policy and three processor
    /// shapes, the event engine reproduces the chunk-scan oracle's
    /// report, trace and Gantt output byte for byte.
    #[test]
    fn event_engine_matches_legacy_oracle(
        picks in prop::collection::vec((0usize..6, 0.05f64..1.0), 1..5),
        total_util in 0.2f64..0.95,
        seed in 0u64..1_000_000,
        edf in prop::bool::ANY,
        policy_kind in 0usize..5,
        shape in 0usize..3,
    ) {
        random_differential_case(&picks, total_util, seed, edf, policy_kind, shape);
    }

    /// Batched-draw purity: slicing a task's hyper-period draw window
    /// into arbitrary sub-batches (mixing per-draw and batched calls on
    /// the shared RNG) never changes the report. Pins the
    /// `WorkloadSource::draw_batch` contract the engine's hot loop
    /// relies on.
    #[test]
    fn batch_window_size_never_changes_reports(
        picks in prop::collection::vec((0usize..6, 0.05f64..1.0), 1..5),
        total_util in 0.2f64..0.9,
        seed in 0u64..1_000_000,
        sizes in prop::collection::vec(1u64..7, 1..6),
        shape in 0usize..3,
    ) {
        batched_draw_differential_case(&picks, total_util, seed, &sizes, shape);
    }
}
