//! End-to-end tests for the campaign server (`acsched serve` /
//! `acsched submit`): protocol robustness against malformed frames,
//! checkpoint corruption tolerance, admission control, and the
//! headline crash-resume guarantee — SIGKILL the server mid-campaign,
//! restart, resume, and get output byte-identical to an uninterrupted
//! `acsched run` at any thread count.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use acs_runtime::CsvSink;
use acs_scenario::Scenario;
use acs_serve::{serve_on, ServerConfig, ServerState, SubmitOptions};

fn manifest_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acsched-server-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Start an in-process server on a free port; returns its address.
fn spawn_in_process(cfg: ServerConfig) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let state = Arc::new(ServerState::new(cfg));
    std::thread::spawn(move || {
        let _ = serve_on(listener, state);
    });
    addr
}

/// Run the streamed campaign locally through the library `CsvSink` —
/// the reference bytes a served submission must reproduce.
fn local_csv(scenario_path: &Path, threads: usize) -> String {
    let scenario = Scenario::load(scenario_path.to_str().unwrap()).unwrap();
    let campaign = scenario
        .campaign_builder()
        .unwrap()
        .threads(threads)
        .build()
        .unwrap();
    let mut buf = Vec::new();
    campaign.run_with(&mut CsvSink::new(&mut buf)).unwrap();
    String::from_utf8(buf).unwrap()
}

struct Wire {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Wire {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn hello(&mut self) {
        self.send(r#"{"type":"hello","proto":1}"#);
        let reply = self.recv();
        assert!(
            reply.contains("\"type\":\"hello\""),
            "bad hello reply: {reply}"
        );
    }
}

#[test]
fn malformed_frames_get_line_numbered_errors_without_killing_the_connection() {
    let addr = spawn_in_process(ServerConfig {
        ckpt_dir: temp_dir("malformed"),
        ..ServerConfig::default()
    });
    let mut wire = Wire::connect(&addr);

    // Line 1: not JSON at all.
    wire.send("this is not a frame");
    let e1 = wire.recv();
    assert!(
        e1.contains("\"type\":\"error\"") && e1.contains("\"line\":1"),
        "{e1}"
    );

    // Line 2: valid JSON, unknown frame type.
    wire.send(r#"{"type":"launch"}"#);
    let e2 = wire.recv();
    assert!(
        e2.contains("\"line\":2") && e2.contains("unknown frame type"),
        "{e2}"
    );

    // Line 3: truncated JSON (simulates a cut-off write).
    wire.send(r#"{"type":"submit","scenario":"acsched-scen"#);
    let e3 = wire.recv();
    assert!(e3.contains("\"line\":3"), "{e3}");

    // Line 4: well-formed submit before hello.
    wire.send(r#"{"type":"submit","scenario":"x"}"#);
    let e4 = wire.recv();
    assert!(
        e4.contains("\"line\":4") && e4.contains("first frame must be `hello`"),
        "{e4}"
    );

    // Line 5: wrong protocol version.
    wire.send(r#"{"type":"hello","proto":99}"#);
    let e5 = wire.recv();
    assert!(e5.contains("unsupported protocol version 99"), "{e5}");

    // Line 6-7: the same connection still works end to end.
    wire.hello();
    let scenario = std::fs::read_to_string(manifest_path("scenarios/smoke.txt")).unwrap();
    wire.send(&format!(
        r#"{{"type":"submit","scenario":"{}"}}"#,
        scenario
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    ));
    let mut saw_done = false;
    for _ in 0..200 {
        let frame = wire.recv();
        assert!(
            !frame.contains("\"type\":\"error\""),
            "valid submit after garbage must run: {frame}"
        );
        if frame.contains("\"type\":\"done\"") {
            saw_done = true;
            break;
        }
    }
    assert!(
        saw_done,
        "campaign should complete on the survived connection"
    );

    // A submit with a scenario that fails validation reports the
    // parser's message (which carries the scenario's own line info)
    // and still leaves the connection usable.
    wire.send(r#"{"type":"submit","scenario":"acsched-scenario v1\nbogus directive\n"}"#);
    let e8 = wire.recv();
    assert!(
        e8.contains("\"type\":\"error\"") && e8.contains("scenario:"),
        "{e8}"
    );
    // A v4 scenario whose trace file is missing is rejected before
    // admission with a line-numbered `error` frame — not a panic —
    // and the connection stays usable.
    wire.send(
        r#"{"type":"submit","scenario":"acsched-scenario v4\ntaskset t trace /no/such.trace\nprocessor p linear kappa=50 vmin=1 vmax=4\npolicy greedy\nworkload paper\n"}"#,
    );
    let e9 = wire.recv();
    assert!(
        e9.contains("\"type\":\"error\"")
            && e9.contains("cannot read trace")
            && e9.contains("\"line\":"),
        "{e9}"
    );

    wire.send(r#"{"type":"stats"}"#);
    assert!(wire.recv().contains("\"type\":\"stats\""));
}

#[test]
fn corrupt_checkpoint_line_reruns_only_that_chunk() {
    let ckpt_dir = temp_dir("corrupt-ckpt");
    let addr = spawn_in_process(ServerConfig {
        ckpt_dir: ckpt_dir.clone(),
        ..ServerConfig::default()
    });
    let scenario = std::fs::read_to_string(manifest_path("scenarios/smoke.txt")).unwrap();
    let submit = |resume: bool| {
        acs_serve::submit(&SubmitOptions {
            addr: addr.clone(),
            scenario: scenario.clone(),
            id: Some("corrupt-test".into()),
            resume,
            threads: Some(2),
            chunk: Some(1),
            quiet: true,
        })
        .unwrap()
    };

    let first = submit(false);
    assert_eq!(first.cells, 3, "smoke.txt is a 3-cell grid");
    assert_eq!(first.chunks_run, 3);

    // Flip bytes inside the second chunk line's payload; its CRC now
    // fails and resume must drop exactly that chunk.
    let path = ckpt_dir.join("corrupt-test.ckpt");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 4, "header + 3 chunks");
    lines[2] = lines[2].replacen("\"chunk\":1", "\"chunk\":9", 1);
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    let resumed = submit(true);
    assert_eq!(
        resumed.corrupt_lines, 1,
        "the tampered line must be detected"
    );
    assert_eq!(
        resumed.resumed_chunks, 2,
        "two chunks survive the corruption"
    );
    assert_eq!(resumed.chunks_replayed, 2);
    assert_eq!(resumed.chunks_run, 1, "only the corrupt chunk re-runs");
    assert_eq!(resumed.csv, first.csv, "the spliced output is unchanged");
}

#[test]
fn admission_cap_rejects_surplus_and_duplicate_campaigns() {
    let addr = spawn_in_process(ServerConfig {
        ckpt_dir: temp_dir("admission"),
        max_campaigns: 1,
        ..ServerConfig::default()
    });
    // A grid big enough to still be running when the second submit
    // lands (the second submit goes out the instant the first is
    // accepted, so the window is the whole campaign).
    let scenario = std::fs::read_to_string(manifest_path("scenarios/serve_warm.txt"))
        .unwrap()
        .replace("hyper_periods 3", "hyper_periods 40");
    let escaped = scenario
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");

    let mut first = Wire::connect(&addr);
    first.hello();
    first.send(&format!(
        r#"{{"type":"submit","scenario":"{escaped}","id":"slow"}}"#
    ));
    let accepted = first.recv();
    assert!(accepted.contains("\"type\":\"accepted\""), "{accepted}");

    // While `slow` runs, the server is at its 1-campaign cap.
    let mut second = Wire::connect(&addr);
    second.hello();
    second.send(&format!(
        r#"{{"type":"submit","scenario":"{escaped}","id":"other"}}"#
    ));
    let rejected = second.recv();
    assert!(
        rejected.contains("\"type\":\"error\"") && rejected.contains("at capacity"),
        "{rejected}"
    );

    // Drain the first campaign; afterwards the slot frees up.
    loop {
        let frame = first.recv();
        assert!(!frame.contains("\"type\":\"error\""), "{frame}");
        if frame.contains("\"type\":\"done\"") {
            break;
        }
    }
    second.send(&format!(
        r#"{{"type":"submit","scenario":"{escaped}","id":"other"}}"#
    ));
    let retried = second.recv();
    assert!(retried.contains("\"type\":\"accepted\""), "{retried}");
}

/// The headline guarantee: SIGKILL the server mid-campaign, restart,
/// `submit --resume`, and the finished chunks replay from the
/// checkpoint instead of re-running — with the final CSV byte-identical
/// to an uninterrupted local run at 1, 2 and 8 threads.
#[test]
fn sigkill_mid_campaign_then_resume_is_byte_identical() {
    let ckpt_dir = temp_dir("sigkill");
    let scenario_path = manifest_path("scenarios/multicore_sweep.txt");
    let scenario = std::fs::read_to_string(&scenario_path).unwrap();

    // Serve with 1-cell chunks and a tight in-flight bound so the
    // kill lands between checkpointed chunks, not after the campaign.
    let mut server = spawn_server(&ckpt_dir);
    let addr = server.addr.clone();

    // Drive the protocol by hand so we can kill after the third
    // record frame.
    let mut wire = Wire::connect(&addr);
    wire.hello();
    let escaped = scenario
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    wire.send(&format!(
        r#"{{"type":"submit","scenario":"{escaped}","id":"sweep","chunk":1}}"#
    ));
    let accepted = wire.recv();
    assert!(accepted.contains("\"type\":\"accepted\""), "{accepted}");
    let mut records = 0;
    while records < 3 {
        if wire.recv().contains("\"type\":\"record\"") {
            records += 1;
        }
    }
    server.child.kill().unwrap(); // SIGKILL on unix
    server.child.wait().unwrap();

    // Restart against the same checkpoint directory and resume.
    let mut server = spawn_server(&ckpt_dir);
    let outcome = acs_serve::submit(&SubmitOptions {
        addr: server.addr.clone(),
        scenario,
        id: Some("sweep".into()),
        resume: true,
        threads: None,
        chunk: None, // the checkpoint's chunk size (1) wins on resume
        quiet: true,
    })
    .unwrap();
    server.child.kill().unwrap();
    server.child.wait().unwrap();

    assert_eq!(outcome.cells, 15, "multicore_sweep.txt is a 15-cell grid");
    assert!(
        outcome.resumed_chunks >= 3,
        "the {} streamed-and-checkpointed chunks must replay (got {})",
        records,
        outcome.resumed_chunks
    );
    assert_eq!(outcome.chunks_replayed, outcome.resumed_chunks);
    assert_eq!(
        outcome.chunks_run + outcome.chunks_replayed,
        15,
        "every chunk is either replayed or re-run, never both"
    );
    assert_eq!(
        outcome.corrupt_lines, 0,
        "a SIGKILL between fsyncs loses nothing"
    );

    for threads in [1, 2, 8] {
        assert_eq!(
            outcome.csv,
            local_csv(&scenario_path, threads),
            "served+resumed CSV must be byte-identical to a local run at {threads} threads"
        );
    }
}

struct Server {
    child: Child,
    addr: String,
}

/// Spawn the real `acsched serve` binary on a free port and wait for
/// its `listening on <addr>` line.
fn spawn_server(ckpt_dir: &Path) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_acsched"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--ckpt-dir",
            ckpt_dir.to_str().unwrap(),
            "--inflight",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut first_line = String::new();
    BufReader::new(stdout).read_line(&mut first_line).unwrap();
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {first_line:?}"))
        .to_string();
    Server { child, addr }
}

/// Regression guard: dropping the client mid-stream must not wedge the
/// server — a later submission on a fresh connection still completes.
#[test]
fn client_hangup_mid_campaign_frees_the_admission_slot() {
    let addr = spawn_in_process(ServerConfig {
        ckpt_dir: temp_dir("hangup"),
        max_campaigns: 1,
        ..ServerConfig::default()
    });
    let scenario = std::fs::read_to_string(manifest_path("scenarios/smoke.txt")).unwrap();
    let escaped = scenario
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");

    {
        let mut wire = Wire::connect(&addr);
        wire.hello();
        wire.send(&format!(
            r#"{{"type":"submit","scenario":"{escaped}","chunk":1}}"#
        ));
        let accepted = wire.recv();
        assert!(accepted.contains("\"type\":\"accepted\""), "{accepted}");
        // Drop the connection without reading the stream.
    }

    // The slot must free once the server notices the hangup; poll a
    // fresh submission until it is admitted.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match acs_serve::submit(&SubmitOptions {
            addr: addr.clone(),
            scenario: scenario.clone(),
            id: None,
            resume: false,
            threads: None,
            chunk: None,
            quiet: true,
        }) {
            Ok(outcome) => {
                assert_eq!(outcome.cells, 3);
                break;
            }
            Err(e) if e.contains("at capacity") || e.contains("already running") => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "admission slot never freed after client hangup: {e}"
                );
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
}
