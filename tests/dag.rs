//! Property suite for precedence-constrained task graphs (via the
//! offline `proptest` shim — deterministic per-test case generation,
//! `PROPTEST_CASES` respected):
//!
//! * **precedence safety** — on random DAGs (1–6 tasks, edge
//!   probability 0.3 over ordered same-period pairs), no job ever
//!   executes before its same-instance predecessors have completed;
//!   checked against the recorded `ExecutionTrace` of both the
//!   single-core engine and 2-core global dispatch, under RM and EDF;
//! * **cycle rejection** — any ring of precedence edges is rejected at
//!   construction, and the error names an edge of the cycle;
//! * **determinism** — the same seed produces byte-identical reports
//!   and traces on DAG sets, single-core and global.
//!
//! CI's `property-suite` job runs this binary at `PROPTEST_CASES=256`.

use acsched::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0)) // f_max = 200 cyc/ms
        .build()
        .unwrap()
}

/// Builds an equal-or-harmonic-period task set carrying a random DAG.
///
/// Tasks are split into two period groups (10 ms and 20 ms) by
/// `group_bits`; candidate edges are the ordered pairs `i < j` *within*
/// a group (precedence requires equal periods), included when the
/// matching `edge_bits` draw falls below 0.3. Ordered pairs keep the
/// construction acyclic, so `TaskGraph::new` must always accept it.
fn build_dag_set(
    picks: &[(bool, f64)],
    edge_bits: &[f64],
    total_util: f64,
    class: SchedulingClass,
) -> (TaskSet, Vec<(TaskId, TaskId)>) {
    let f_max = cpu().f_max().as_cycles_per_ms();
    let share_sum: f64 = picks.iter().map(|(_, s)| s).sum();
    let tasks: Vec<Task> = picks
        .iter()
        .enumerate()
        .map(|(i, (fast, share))| {
            let period: u64 = if *fast { 10 } else { 20 };
            let util = total_util * share / share_sum;
            let wcec = (util * period as f64 * f_max).max(1.0);
            Task::builder(format!("t{i}"), Ticks::new(period))
                .wcec(Cycles::from_cycles(wcec))
                .acec(Cycles::from_cycles(wcec * 0.4))
                .bcec(Cycles::from_cycles(wcec * 0.1))
                .build()
                .unwrap()
        })
        .collect();
    let set = TaskSet::new(tasks).unwrap().with_class(class);

    let n = picks.len();
    let mut edges: Vec<(String, String)> = Vec::new();
    let mut bit = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let draw = edge_bits[bit % edge_bits.len()];
            bit += 1;
            if picks[i].0 == picks[j].0 && draw < 0.3 {
                edges.push((format!("t{i}"), format!("t{j}")));
            }
        }
    }
    let graph = TaskGraph::new(&set, edges.iter().map(|(a, b)| (a, b)))
        .expect("ordered same-period pairs are always a valid DAG");
    let edge_ids = graph.edges().to_vec();
    (set.with_graph(graph), edge_ids)
}

/// `(first start, last end)` of every `(task, instance)` job appearing
/// in the traces (global runs contribute one trace per core).
fn job_spans(traces: &[&ExecutionTrace]) -> HashMap<(usize, u64), (f64, f64)> {
    let mut spans: HashMap<(usize, u64), (f64, f64)> = HashMap::new();
    for trace in traces {
        for s in trace.slices() {
            let e = spans
                .entry((s.task.0, s.instance))
                .or_insert((f64::INFINITY, f64::NEG_INFINITY));
            e.0 = e.0.min(s.start.as_ms());
            e.1 = e.1.max(s.end.as_ms());
        }
    }
    spans
}

/// The precedence invariant: for every edge `a -> b` and every instance
/// `k` of `b` that executed inside the recorded window, all of `a`'s
/// instance-`k` work finished first. Returns the number of (edge,
/// instance) pairs actually checked so callers can reject vacuity.
fn assert_precedence(ctx: &str, traces: &[&ExecutionTrace], edges: &[(TaskId, TaskId)]) -> usize {
    let spans = job_spans(traces);
    let mut checked = 0usize;
    for &(a, b) in edges {
        for (&(task, inst), &(start, _)) in &spans {
            if task != b.0 {
                continue;
            }
            let (_, pred_end) = spans.get(&(a.0, inst)).unwrap_or_else(|| {
                panic!(
                    "{ctx}: job t{}#{inst} executed but its predecessor \
                     t{}#{inst} never appears in the trace",
                    b.0, a.0
                )
            });
            assert!(
                start >= pred_end - 1e-6,
                "{ctx}: job t{}#{inst} started at {start} ms before its \
                 predecessor t{}#{inst} completed at {pred_end} ms",
                b.0,
                a.0
            );
            checked += 1;
        }
    }
    checked
}

fn precedence_case(
    picks: &[(bool, f64)],
    edge_bits: &[f64],
    total_util: f64,
    seed: u64,
    edf: bool,
    ccrm: bool,
) {
    let class = if edf {
        SchedulingClass::Edf
    } else {
        SchedulingClass::FixedPriorityRm
    };
    let (set, edges) = build_dag_set(picks, edge_bits, total_util, class);
    let cpu = cpu();
    let options = SimOptions {
        hyper_periods: 2,
        record_trace: true,
        ..Default::default()
    };

    // Single-core engine (the PredecessorGate path).
    let mut draws = TaskWorkloads::paper(&set, seed);
    let run = |policy: Box<dyn Policy>, draws: &mut TaskWorkloads| {
        Simulator::new(&set, &cpu, policy)
            .with_options(options.clone())
            .run(&mut |t, i| draws.draw(t, i))
            .expect("schedule-free simulation succeeds")
    };
    let policy: Box<dyn Policy> = if ccrm {
        Box::new(CcRm::new())
    } else {
        Box::new(NoDvs)
    };
    let single = run(policy, &mut draws);
    let trace = single.trace.as_ref().expect("trace recorded");
    let single_checked = assert_precedence("single-core", &[trace], &edges);
    assert!(
        single.report.jobs_completed > 0,
        "the run must execute something"
    );
    // Every first-hyper-period job appears in the trace, so an edge-ful
    // graph always yields real checks.
    if !edges.is_empty() {
        assert!(single_checked > 0, "precedence property ran vacuously");
    }

    // 2-core global dispatch (the shared-ready-queue path).
    let mut draws = TaskWorkloads::paper(&set, seed);
    let global = GlobalRun {
        set: &set,
        cpu: &cpu,
        cores: 2,
        options,
    }
    .run(NoDvs, &mut |t, i| draws.draw(t, i))
    .expect("global dispatch succeeds");
    let traces = global.traces.as_ref().expect("per-core traces recorded");
    let refs: Vec<&ExecutionTrace> = traces.iter().collect();
    let global_checked = assert_precedence("global 2-core", &refs, &edges);
    if !edges.is_empty() {
        assert!(
            global_checked > 0,
            "global precedence property ran vacuously"
        );
    }
}

proptest! {
    /// The headline property: random DAGs never execute a job before
    /// its same-instance predecessors complete — on either engine path,
    /// under both scheduling classes.
    #[test]
    fn no_job_starts_before_its_predecessors_complete(
        picks in prop::collection::vec((prop::bool::ANY, 0.05f64..1.0), 1..7),
        edge_bits in prop::collection::vec(0.0f64..1.0, 15),
        total_util in 0.2f64..0.8,
        seed in 0u64..1_000_000,
        edf in prop::bool::ANY,
        ccrm in prop::bool::ANY,
    ) {
        precedence_case(&picks, &edge_bits, total_util, seed, edf, ccrm);
    }

    /// Any ring of precedence edges is rejected at construction, and
    /// the error names one of the ring's edges.
    #[test]
    fn cycles_are_rejected_naming_an_edge(
        n in 2usize..7,
        seed in 0u64..1_000_000,
    ) {
        let picks: Vec<(bool, f64)> = (0..n).map(|_| (true, 1.0)).collect();
        let (set, _) = build_dag_set(&picks, &[1.0], 0.5, SchedulingClass::FixedPriorityRm);
        let ring: Vec<(String, String)> = (0..n)
            .map(|i| (format!("t{i}"), format!("t{}", (i + 1) % n)))
            .collect();
        // Rotate the declaration order by the seed: the detector's
        // answer must stay an edge of the ring regardless.
        let rot = (seed as usize) % n;
        let rotated: Vec<_> = ring[rot..].iter().chain(&ring[..rot]).cloned().collect();
        let err = TaskGraph::new(&set, rotated.iter().map(|(a, b)| (a, b)))
            .expect_err("a ring must be rejected");
        let msg = err.to_string();
        prop_assert!(msg.contains("cycle"), "not a cycle error: {msg}");
        prop_assert!(
            ring.iter().any(|(a, b)| msg.contains(&format!("{a}->{b}"))),
            "error must name a ring edge: {msg}"
        );
    }

    /// Same seed, same DAG set: byte-identical reports and traces, on
    /// the single-core engine (including the event-queue stats) and on
    /// 2-core global dispatch.
    #[test]
    fn same_seed_dag_runs_are_byte_identical(
        picks in prop::collection::vec((prop::bool::ANY, 0.05f64..1.0), 1..7),
        edge_bits in prop::collection::vec(0.0f64..1.0, 15),
        total_util in 0.2f64..0.8,
        seed in 0u64..1_000_000,
        edf in prop::bool::ANY,
    ) {
        let class = if edf { SchedulingClass::Edf } else { SchedulingClass::FixedPriorityRm };
        let (set, _) = build_dag_set(&picks, &edge_bits, total_util, class);
        let cpu = cpu();
        let options = SimOptions {
            hyper_periods: 2,
            record_trace: true,
            ..Default::default()
        };
        let single = || {
            let mut draws = TaskWorkloads::paper(&set, seed);
            Simulator::new(&set, &cpu, CcRm::new())
                .with_options(options.clone())
                .run(&mut |t, i| draws.draw(t, i))
                .expect("simulation succeeds")
        };
        let (a, b) = (single(), single());
        prop_assert_eq!(a.report, b.report);
        prop_assert_eq!(a.trace, b.trace);

        let global = || {
            let mut draws = TaskWorkloads::paper(&set, seed);
            GlobalRun { set: &set, cpu: &cpu, cores: 2, options: options.clone() }
                .run(NoDvs, &mut |t, i| draws.draw(t, i))
                .expect("global dispatch succeeds")
        };
        let (a, b) = (global(), global());
        prop_assert_eq!(a.report, b.report);
        prop_assert_eq!(a.traces, b.traces);
    }
}

/// Deterministic anchor: the checked-in `diamond` set (src before
/// mid_a/mid_b before sink, equal periods) respects its edges on every
/// instance, in both classes, single-core and global.
#[test]
fn diamond_scenario_respects_precedence_everywhere() {
    let dir = std::env::var("ACS_SCENARIO_DIR")
        .unwrap_or_else(|_| format!("{}/scenarios", env!("CARGO_MANIFEST_DIR")));
    let scenario = Scenario::load(format!("{dir}/dag_global.txt")).expect("scenario parses");
    let sets = scenario.materialize_task_sets().expect("task sets");
    let (_, diamond) = sets
        .iter()
        .find(|(name, _)| name == "diamond")
        .expect("dag_global.txt declares `diamond`");
    let graph = diamond.graph().expect("diamond carries a graph");
    assert_eq!(graph.edge_count(), 4);
    let edges = graph.edges().to_vec();
    let cpu = cpu();
    for class in [SchedulingClass::FixedPriorityRm, SchedulingClass::Edf] {
        let set = diamond.clone().with_class(class);
        let options = SimOptions {
            hyper_periods: 3,
            record_trace: true,
            ..Default::default()
        };
        let mut draws = TaskWorkloads::paper(&set, 42);
        let single = Simulator::new(&set, &cpu, NoDvs)
            .with_options(options.clone())
            .run(&mut |t, i| draws.draw(t, i))
            .expect("single-core run succeeds");
        assert!(single.report.all_deadlines_met(), "{class:?} single-core");
        let checked = assert_precedence(
            "diamond single-core",
            &[single.trace.as_ref().unwrap()],
            &edges,
        );
        assert!(checked >= edges.len(), "every edge checked at least once");

        let mut draws = TaskWorkloads::paper(&set, 42);
        let global = GlobalRun {
            set: &set,
            cpu: &cpu,
            cores: 2,
            options,
        }
        .run(NoDvs, &mut |t, i| draws.draw(t, i))
        .expect("global run succeeds");
        assert!(global.report.all_deadlines_met(), "{class:?} global");
        let traces = global.traces.as_ref().unwrap();
        let refs: Vec<&ExecutionTrace> = traces.iter().collect();
        let checked = assert_precedence("diamond global", &refs, &edges);
        assert!(checked >= edges.len(), "every edge checked at least once");
    }
}
