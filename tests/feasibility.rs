//! Property-based safety tests: schedules produced by the synthesizers
//! never miss a hard deadline, for any workload realization.
//!
//! This is the paper's central guarantee ("yet still guarantees no
//! deadline violation during the worst-case scenario") extended to the
//! whole workload space: the greedy runtime dispatches every milestone no
//! later than its worst-case analog, so *any* draw in `[0, WCEC]` is
//! safe.

use acsched::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds one random paper-style task set from a seed.
fn random_set(num_tasks: usize, ratio: f64, seed: u64) -> TaskSet {
    let cfg = acsched::workloads::RandomSetConfig::paper(
        num_tasks,
        ratio,
        Freq::from_cycles_per_ms(200.0),
    );
    acsched::workloads::generate(&cfg, &mut StdRng::seed_from_u64(seed)).expect("generates")
}

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case synthesizes a schedule: keep the count sane
        .. ProptestConfig::default()
    })]

    /// ACS schedules meet every deadline for arbitrary workload seeds and
    /// task-set shapes.
    #[test]
    fn acs_never_misses_deadlines(
        num_tasks in 2usize..6,
        ratio in prop_oneof![Just(0.1), Just(0.5), Just(0.9)],
        set_seed in 0u64..500,
        workload_seed in 0u64..1_000_000,
    ) {
        let set = random_set(num_tasks, ratio, set_seed);
        let cpu = cpu();
        let schedule = synthesize_acs(&set, &cpu, &SynthesisOptions::quick())
            .expect("synthesis succeeds at 70% utilization");
        let mut draws = TaskWorkloads::paper(&set, workload_seed);
        let out = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&schedule)
            .with_options(SimOptions { hyper_periods: 5, deadline_tol_ms: 1e-3, ..Default::default() })
            .run(&mut |t, i| draws.draw(t, i))
            .expect("simulation runs");
        prop_assert_eq!(out.report.deadline_misses, 0);
        prop_assert_eq!(out.report.jobs_completed as u64, 5 * set.total_instances());
    }

    /// The all-WCEC trace of a synthesized schedule finishes every
    /// sub-instance exactly at its milestone (the static schedule *is*
    /// the worst-case execution), and the worst-case verifier agrees.
    #[test]
    fn worst_case_trace_lands_on_milestones(
        num_tasks in 2usize..6,
        set_seed in 0u64..500,
    ) {
        let set = random_set(num_tasks, 0.5, set_seed);
        let cpu = cpu();
        let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick())
            .expect("synthesis succeeds");
        prop_assert!(verify_worst_case(&schedule, &set, &cpu, 1e-4).is_ok());
        let totals: Vec<Cycles> = set.tasks().iter().map(|t| t.wcec()).collect();
        let tr = evaluate_trace(&schedule, &set, &cpu, &totals, SpeedBasis::WorstRemaining);
        prop_assert!(tr.max_lateness_ms < 1e-4, "lateness {}", tr.max_lateness_ms);
        // Every milestone with workload is hit from below: finish ≤ e_u,
        // and for the *binding* ones, close to e_u.
        for (u, f) in tr.finish.iter().enumerate() {
            let m = schedule.milestones()[u];
            if m.worst_workload.as_cycles() > 1.0 {
                prop_assert!(f.as_ms() <= m.end_time.as_ms() + 1e-4);
            }
        }
    }

    /// Workload monotonicity: larger draws can only increase energy under
    /// the same schedule (energy is monotone in executed cycles for the
    /// greedy policy).
    #[test]
    fn energy_monotone_in_workload(
        set_seed in 0u64..200,
        scale_a in 0.2f64..1.0,
    ) {
        let set = random_set(3, 0.1, set_seed);
        let cpu = cpu();
        let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick())
            .expect("synthesis succeeds");
        let scale_b = (scale_a * 0.5).max(0.05);
        let totals_hi: Vec<Cycles> = set.tasks().iter()
            .map(|t| t.wcec() * scale_a).collect();
        let totals_lo: Vec<Cycles> = set.tasks().iter()
            .map(|t| t.wcec() * scale_b).collect();
        let e_hi = evaluate_trace(&schedule, &set, &cpu, &totals_hi, SpeedBasis::WorstRemaining).energy;
        let e_lo = evaluate_trace(&schedule, &set, &cpu, &totals_lo, SpeedBasis::WorstRemaining).energy;
        prop_assert!(e_lo.as_units() <= e_hi.as_units() + 1e-9,
            "lo {} > hi {}", e_lo, e_hi);
    }
}

/// Deterministic regression companion to the proptest: a handful of fixed
/// seeds exercised at more hyper-periods.
#[test]
fn fixed_seeds_many_hyper_periods() {
    let cpu = cpu();
    for seed in [1u64, 17, 99] {
        let set = random_set(4, 0.1, seed);
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let acs = synthesize_acs_warm(&set, &cpu, &SynthesisOptions::quick(), &wcs).unwrap();
        for schedule in [&wcs, &acs] {
            let mut draws = TaskWorkloads::paper(&set, seed ^ 0xF00D);
            let out = Simulator::new(&set, &cpu, GreedyReclaim)
                .with_schedule(schedule)
                .with_options(SimOptions {
                    hyper_periods: 100,
                    deadline_tol_ms: 1e-3,
                    ..Default::default()
                })
                .run(&mut |t, i| draws.draw(t, i))
                .unwrap();
            assert_eq!(out.report.deadline_misses, 0, "seed {seed}");
        }
    }
}

/// Regression: bimodal workloads (frequent exact-WCEC draws) amplified
/// sub-cycle budget residue into multi-millisecond deadline misses until
/// the repair pass gained its forward feasibility sweep and the runtime
/// its completion threshold. Seed 2010 is the original reproducer.
#[test]
fn bimodal_draws_never_miss() {
    let cpu = cpu();
    for seed in [2010u64, 2005, 2007] {
        let set = {
            let cfg =
                acsched::workloads::RandomSetConfig::paper(6, 0.1, Freq::from_cycles_per_ms(200.0));
            acsched::workloads::generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
        };
        let opts = SynthesisOptions::default();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
        let acs = acsched::core::synthesize_acs_best(&set, &cpu, &opts, &wcs).unwrap();
        let dists: Vec<WorkloadDist> = set
            .tasks()
            .iter()
            .map(|t| WorkloadDist::Bimodal {
                lo: t.bcec().as_cycles(),
                hi: t.wcec().as_cycles(),
                p_heavy: 0.1,
            })
            .collect();
        for schedule in [&wcs, &acs] {
            let mut draws = TaskWorkloads::from_dists(dists.clone(), seed ^ 0xA4);
            let out = Simulator::new(&set, &cpu, GreedyReclaim)
                .with_schedule(schedule)
                .with_options(SimOptions {
                    hyper_periods: 100,
                    deadline_tol_ms: 1e-3,
                    ..Default::default()
                })
                .run(&mut |t, k| draws.draw(t, k))
                .unwrap();
            assert_eq!(out.report.deadline_misses, 0, "seed {seed}");
            assert!(
                out.report.worst_lateness_ms < 1e-3,
                "seed {seed}: lateness {}",
                out.report.worst_lateness_ms
            );
        }
    }
}
