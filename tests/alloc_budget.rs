//! Allocation-budget regression tests: the engine's steady-state loop
//! must be **allocation-free** (docs/PERF.md).
//!
//! A counting `#[global_allocator]` wraps the system allocator; each
//! test warms the engine for two hyper-periods (the arena fills:
//! `current` + `spare` [`HpState`]s exist and every backing buffer has
//! reached its high-water capacity), then enables counting and runs
//! further hyper-periods. Zero allocations per job — not "few" — is the
//! pinned contract: any new `Vec::new`/`clone`/`format!` on the hot
//! path fails this suite before it can regress the benchmarks.
//!
//! **Single-threaded by design.** The counter is process-global, so
//! these tests serialize on a shared mutex, and CI runs the binary with
//! `--test-threads=1` (the `alloc-budget` job in
//! `.github/workflows/ci.yml`). The
//! count is exact under that regime; a parallel run could only inflate
//! it (another thread's allocations), never hide a regression.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use acs_core::{synthesize_wcs, SynthesisOptions};
use acs_model::units::{Cycles, Freq, Ticks, Volt};
use acs_model::{Task, TaskId, TaskSet};
use acs_power::{FreqModel, Processor};
use acs_sim::policy::{DispatchContext, Policy, SolverContext};
use acs_sim::{NoDvs, SimOptions, Simulator, StaticSpeed};

/// System allocator with a switchable allocation counter. Deallocations
/// are not counted: freeing retired buffers is fine, *acquiring* new
/// ones in steady state is the regression.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a new acquisition in disguise.
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializes the tests of this binary: the counter is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

/// Runs `f` with counting enabled and returns the exact number of
/// allocation acquisitions (alloc/alloc_zeroed/realloc) it performed.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    let r = f();
    ENABLED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), r)
}

fn set() -> TaskSet {
    let mk = |n: &str, p: u64, w: f64| {
        Task::builder(n, Ticks::new(p))
            .wcec(Cycles::from_cycles(w))
            .acec(Cycles::from_cycles(0.5 * w))
            .bcec(Cycles::from_cycles(0.1 * w))
            .build()
            .unwrap()
    };
    TaskSet::new(vec![
        mk("t1", 10, 400.0),
        mk("t2", 20, 900.0),
        mk("t3", 20, 600.0),
    ])
    .unwrap()
}

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.5))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

/// Steps `run` until its clock reaches `until_ms` (or it finishes).
fn step_until(run: &mut acs_sim::SteppedRun<'_, '_, '_>, until_ms: f64) {
    while run.clock_ms().is_some_and(|t| t < until_ms) {
        run.step().unwrap();
    }
}

/// The deterministic, allocation-free per-job workload used throughout:
/// a pure function of `(task, instance)` spanning the BCEC–WCEC range.
fn draw(task: TaskId, instance: u64) -> Cycles {
    Cycles::from_cycles(60.0 + ((task.0 as u64 * 131 + instance * 37) % 300) as f64)
}

#[test]
fn steady_state_run_allocates_nothing_without_schedule() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let set = set();
    let cpu = cpu();
    let hyper = set.hyper_period().get() as f64;
    let jobs_per_hyper = set.total_instances();
    let mut workload = |t: TaskId, i: u64| draw(t, i);
    let mut sim = Simulator::new(&set, &cpu, NoDvs).with_options(SimOptions {
        hyper_periods: 6,
        ..Default::default()
    });
    let mut run = sim.stepped(&mut workload).unwrap();
    // Warm-up: two full hyper-periods fill the engine arena (`current`
    // plus retired `spare` state, all buffers at capacity).
    step_until(&mut run, 2.0 * hyper);
    let (allocs, ()) = count_allocs(|| step_until(&mut run, 5.0 * hyper));
    assert_eq!(
        allocs,
        0,
        "steady-state engine loop allocated {allocs} times over \
         {} jobs (3 hyper-periods) — the arena leaked a hot-path site",
        3 * jobs_per_hyper
    );
    run.finish().unwrap();
}

#[test]
fn steady_state_run_allocates_nothing_with_schedule() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let set = set();
    let cpu = cpu();
    let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
    let hyper = set.hyper_period().get() as f64;
    let mut workload = |t: TaskId, i: u64| draw(t, i);
    let mut sim = Simulator::new(&set, &cpu, StaticSpeed)
        .with_schedule(&schedule)
        .with_options(SimOptions {
            hyper_periods: 6,
            ..Default::default()
        });
    let mut run = sim.stepped(&mut workload).unwrap();
    step_until(&mut run, 2.0 * hyper);
    let (allocs, ()) = count_allocs(|| step_until(&mut run, 5.0 * hyper));
    assert_eq!(
        allocs, 0,
        "schedule-driven steady state allocated {allocs} times"
    );
    let out = run.finish().unwrap();
    assert_eq!(out.report.deadline_misses, 0);
}

/// A policy that requests the per-boundary [`SolverContext`] snapshot
/// (like `ReOpt` does) but performs no solving: isolates the *engine's*
/// boundary cost — the `InstanceProgress` arena — from the policy's.
#[derive(Default)]
struct BoundaryProbe {
    boundaries: usize,
    jobs_seen: usize,
}

impl Policy for BoundaryProbe {
    fn name(&self) -> &str {
        "boundary-probe"
    }
    fn wants_boundaries(&self) -> bool {
        true
    }
    fn on_boundary(&mut self, ctx: &SolverContext<'_>) {
        self.boundaries += 1;
        self.jobs_seen = self.jobs_seen.max(ctx.progress.len());
    }
    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
        ctx.cpu.f_max()
    }
}

#[test]
fn boundary_snapshots_stay_within_zero_alloc_budget() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let set = set();
    let cpu = cpu();
    let hyper = set.hyper_period().get() as f64;
    let mut workload = |t: TaskId, i: u64| draw(t, i);
    let mut sim = Simulator::new(&set, &cpu, BoundaryProbe::default()).with_options(SimOptions {
        hyper_periods: 6,
        ..Default::default()
    });
    let mut run = sim.stepped(&mut workload).unwrap();
    step_until(&mut run, 2.0 * hyper);
    let (allocs, ()) = count_allocs(|| step_until(&mut run, 5.0 * hyper));
    // The fixed per-boundary budget is zero: the snapshot lives in the
    // reused `HpState::progress` arena. Every hyper-period fires
    // (1 start + jobs releases + jobs completions) boundaries, so any
    // per-boundary allocation would show up many times over.
    assert_eq!(
        allocs, 0,
        "boundary snapshot path allocated {allocs} times in steady state"
    );
    run.finish().unwrap();
}
