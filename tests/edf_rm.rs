//! Scheduling-class acceptance: the RM/EDF differential on equal-period
//! (per-frame) task sets, and the checked-in `scenarios/edf_vs_rm.txt`
//! grid — byte-identical at 1/2/8 threads, EDF ≡ RM on every
//! equal-period cell, and on the mixed-period set EDF at WCS meets all
//! deadlines with mean energy ≤ the RM baseline for `GreedyReclaim`.

use acsched::prelude::*;

fn scenario_path() -> std::path::PathBuf {
    let dir = std::env::var("ACS_SCENARIO_DIR")
        .unwrap_or_else(|_| format!("{}/scenarios", env!("CARGO_MANIFEST_DIR")));
    std::path::Path::new(&dir).join("edf_vs_rm.txt")
}

/// An equal-period (frame-based) set: every task releases together and
/// shares one absolute deadline per frame.
fn frame_set(period: u64) -> TaskSet {
    let mk = |n: &str, w: f64| {
        Task::builder(n, Ticks::new(period))
            .wcec(Cycles::from_cycles(w))
            .acec(Cycles::from_cycles(0.4 * w))
            .bcec(Cycles::from_cycles(0.1 * w))
            .build()
            .unwrap()
    };
    TaskSet::new(vec![mk("a", 1000.0), mk("b", 800.0), mk("c", 500.0)]).unwrap()
}

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

/// The differential satellite: on equal-period sets EDF and RM produce
/// identical traces, energies and preemption counts for every built-in
/// policy — per cell, in a small campaign, at 1, 2 and 8 threads.
#[test]
fn equal_period_sets_make_edf_equal_rm_for_every_policy() {
    // Direct simulator check first: traces match slice for slice.
    let set = frame_set(20);
    let cpu = cpu();
    let edf_set = set.clone().with_class(SchedulingClass::Edf);
    let wcs_rm = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
    let wcs_edf = synthesize_wcs(&edf_set, &cpu, &SynthesisOptions::quick()).unwrap();
    type MakePolicy = fn() -> Box<dyn Policy>;
    let policies: [(&str, MakePolicy); 5] = [
        ("no-dvs", || Box::new(NoDvs)),
        ("static", || Box::new(StaticSpeed)),
        ("greedy", || Box::new(GreedyReclaim)),
        ("ccrm", || Box::new(CcRm::new())),
        ("reopt", || Box::new(ReOpt::new())),
    ];
    for (name, make) in policies {
        let run = |set: &TaskSet, sched: &StaticSchedule| {
            let mut draws = TaskWorkloads::paper(set, 7);
            let mut sim = Simulator::new(set, &cpu, make()).with_options(SimOptions {
                hyper_periods: 4,
                record_trace: true,
                ..Default::default()
            });
            if make().needs_schedule() {
                sim = sim.with_schedule(sched);
            }
            sim.run(&mut |tid, i| draws.draw(tid, i)).unwrap()
        };
        let rm = run(&set, &wcs_rm);
        let edf = run(&edf_set, &wcs_edf);
        assert_eq!(rm.report, edf.report, "{name}: reports diverge");
        assert_eq!(rm.report.deadline_misses, 0, "{name}");
        assert_eq!(
            rm.report.preemptions, edf.report.preemptions,
            "{name}: preemption counts diverge"
        );
        assert_eq!(
            rm.trace.unwrap().slices(),
            edf.trace.unwrap().slices(),
            "{name}: traces diverge"
        );
    }

    // Campaign check: one grid with both classes; every EDF cell equals
    // its RM twin, at every thread count.
    for threads in [1usize, 2, 8] {
        let report = Campaign::builder()
            .task_set("frame", frame_set(20))
            .processor("linear", cpu.clone())
            .classes([SchedulingClass::FixedPriorityRm, SchedulingClass::Edf])
            .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
            .policies([
                PolicySpec::no_dvs(),
                PolicySpec::static_speed(),
                PolicySpec::greedy(),
                PolicySpec::ccrm(),
            ])
            .workload(WorkloadSpec::Paper)
            .seeds([1, 2])
            .hyper_periods(3)
            .threads(threads)
            .build()
            .unwrap()
            .run();
        assert_eq!(report.failures().count(), 0, "{}", report.to_table());
        let (rm_cells, edf_cells): (Vec<_>, Vec<_>) = report
            .cells()
            .iter()
            .partition(|c| c.class == SchedulingClass::FixedPriorityRm);
        assert!(!rm_cells.is_empty());
        assert_eq!(rm_cells.len(), edf_cells.len());
        for (rm, edf) in rm_cells.iter().zip(&edf_cells) {
            assert_eq!(rm.schedule, edf.schedule);
            assert_eq!(rm.policy, edf.policy);
            let (a, b) = (rm.stats().unwrap(), edf.stats().unwrap());
            assert_eq!(a.mean_energy, b.mean_energy, "{rm:?} vs {edf:?}");
            assert_eq!(a.preemptions, b.preemptions, "{rm:?} vs {edf:?}");
            assert_eq!(a.deadline_misses, b.deadline_misses);
            assert_eq!(a.voltage_switches, b.voltage_switches);
        }
    }
}

/// The checked-in scenario runs byte-identically at 1, 2 and 8 threads,
/// EDF equals RM exactly on every equal-period (`frame`) cell, and on
/// the mixed-period set EDF at WCS meets all deadlines with mean energy
/// at or below the RM baseline for `GreedyReclaim`.
#[test]
fn edf_vs_rm_scenario_meets_the_acceptance_bar() {
    let scenario = Scenario::load(scenario_path()).unwrap();
    let render = |threads: usize| {
        let campaign = scenario
            .campaign_builder()
            .unwrap()
            .threads(threads)
            .build()
            .unwrap();
        let mut agg = AggregateSink::new();
        let mut csv = CsvSink::new(Vec::new());
        {
            let mut tee = Tee::new(vec![&mut agg, &mut csv]);
            campaign.run_with(&mut tee).unwrap();
        }
        (agg.into_report(), csv.into_inner())
    };
    let (report, csv1) = render(1);
    assert_eq!(report.failures().count(), 0, "{}", report.to_table());
    for threads in [2usize, 8] {
        let (_, csv_n) = render(threads);
        assert_eq!(csv1, csv_n, "CSV bytes diverged at {threads} threads");
    }
    // The class column is present in the streamed CSV.
    let text = String::from_utf8(csv1).unwrap();
    assert!(text.lines().next().unwrap().contains(",class,preemptions"));
    assert!(text.contains(",edf,"), "no EDF rows in:\n{text}");

    let find =
        |set: &str, class: SchedulingClass, sched: ScheduleChoice, policy: &str, wl: &str| {
            report
                .cells()
                .iter()
                .find(|c| {
                    c.task_set == set
                        && c.class == class
                        && c.schedule == sched
                        && c.policy == policy
                        && c.workload == wl
                })
                .unwrap_or_else(|| panic!("no cell ({set}, {class:?}, {sched:?}, {policy}, {wl})"))
        };
    // Equal-period cells: EDF equals RM exactly, cell for cell.
    for cell in report.cells().iter().filter(|c| c.task_set == "frame") {
        let twin = find(
            "frame",
            SchedulingClass::FixedPriorityRm,
            cell.schedule,
            &cell.policy,
            &cell.workload,
        );
        let (a, b) = (cell.stats().unwrap(), twin.stats().unwrap());
        assert_eq!(a.mean_energy, b.mean_energy, "{cell:?}");
        assert_eq!(a.preemptions, b.preemptions, "{cell:?}");
        assert_eq!(a.deadline_misses, 0, "{cell:?}");
    }
    // Mixed-period set, worst-case draws, WCS schedule, greedy: EDF
    // meets every deadline and does not cost more than the RM baseline.
    for wl in ["wcec", "paper-normal"] {
        let rm = find(
            "mixed",
            SchedulingClass::FixedPriorityRm,
            ScheduleChoice::Wcs,
            "greedy",
            wl,
        );
        let edf = find(
            "mixed",
            SchedulingClass::Edf,
            ScheduleChoice::Wcs,
            "greedy",
            wl,
        );
        let (r, e) = (rm.stats().unwrap(), edf.stats().unwrap());
        assert_eq!(e.deadline_misses, 0, "EDF misses deadlines on {wl}");
        assert!(
            e.mean_energy.as_units() <= r.mean_energy.as_units() + 1e-9,
            "{wl}: EDF {} above the RM baseline {}",
            e.mean_energy,
            r.mean_energy
        );
    }
    // The non-harmonic mixed set is where the class axis earns its keep:
    // under varying (paper) workloads EDF reclaims strictly more than RM.
    let rm = find(
        "mixed",
        SchedulingClass::FixedPriorityRm,
        ScheduleChoice::Wcs,
        "greedy",
        "paper-normal",
    );
    let edf = find(
        "mixed",
        SchedulingClass::Edf,
        ScheduleChoice::Wcs,
        "greedy",
        "paper-normal",
    );
    assert!(
        edf.stats().unwrap().mean_energy < rm.stats().unwrap().mean_energy,
        "expected a strict EDF reclamation gain on the mixed set"
    );
}
