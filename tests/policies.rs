//! Cross-policy integration tests: the energy ordering the system is
//! supposed to deliver, and safety of every policy combination.

use acsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

fn random_set(seed: u64) -> TaskSet {
    let cfg = RandomSetConfig::paper(4, 0.1, Freq::from_cycles_per_ms(200.0));
    generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn energy_of(
    set: &TaskSet,
    cpu: &Processor,
    policy: impl IntoPolicy,
    schedule: Option<&StaticSchedule>,
    seed: u64,
) -> (f64, usize) {
    let mut draws = TaskWorkloads::paper(set, seed);
    let mut sim = Simulator::new(set, cpu, policy).with_options(SimOptions {
        hyper_periods: 50,
        deadline_tol_ms: 1e-3,
        ..Default::default()
    });
    if let Some(s) = schedule {
        sim = sim.with_schedule(s);
    }
    let out = sim.run(&mut |t, i| draws.draw(t, i)).unwrap();
    (out.report.energy.as_units(), out.report.deadline_misses)
}

/// no-DVS ≥ static-only ≥ greedy, for both schedules, with no misses for
/// the schedule-based policies.
#[test]
fn policy_energy_ordering() {
    let cpu = cpu();
    for seed in [2u64, 9, 31] {
        let set = random_set(seed);
        let opts = SynthesisOptions::quick();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
        let acs = synthesize_acs_warm(&set, &cpu, &opts, &wcs).unwrap();
        for schedule in [&wcs, &acs] {
            let (e_flat, m0) = energy_of(&set, &cpu, NoDvs, None, seed);
            let (e_static, m1) = energy_of(&set, &cpu, StaticSpeed, Some(schedule), seed);
            let (e_greedy, m2) = energy_of(&set, &cpu, GreedyReclaim, Some(schedule), seed);
            assert_eq!(m0 + m1 + m2, 0, "seed {seed}");
            assert!(
                e_static <= e_flat * (1.0 + 1e-9),
                "seed {seed}: static {e_static} > flat {e_flat}"
            );
            assert!(
                e_greedy <= e_static * (1.0 + 1e-9),
                "seed {seed}: greedy {e_greedy} > static {e_static}"
            );
        }
    }
}

/// The headline claim: ACS + greedy uses no more energy than WCS + greedy
/// under identical workloads.
#[test]
fn acs_beats_wcs_at_runtime() {
    let cpu = cpu();
    let mut wins = 0usize;
    let mut total = 0usize;
    for seed in [4u64, 8, 15, 16, 23, 42] {
        let set = random_set(seed);
        let opts = SynthesisOptions::quick();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
        let acs = synthesize_acs_warm(&set, &cpu, &opts, &wcs).unwrap();
        let (ew, _) = energy_of(&set, &cpu, GreedyReclaim, Some(&wcs), seed);
        let (ea, _) = energy_of(&set, &cpu, GreedyReclaim, Some(&acs), seed);
        total += 1;
        if ea <= ew * 1.01 {
            wins += 1;
        }
    }
    // Runtime draws differ from the ACEC the objective optimizes, so
    // allow a rare tie-ish loss but require a dominant win rate.
    assert!(wins >= total - 1, "ACS won only {wins}/{total}");
}

/// ccRM is safe on low-utilization sets and reclaims energy vs no-DVS.
#[test]
fn ccrm_baseline_behaves() {
    let cpu = cpu();
    let set = random_set(77);
    let (e_flat, _) = energy_of(&set, &cpu, NoDvs, None, 5);
    let (e_ccrm, misses) = energy_of(&set, &cpu, CcRm::new(), None, 5);
    assert_eq!(misses, 0);
    assert!(e_ccrm < e_flat);
}

/// Discrete voltage levels: round-up keeps every deadline; energy lands
/// between the continuous run and no-DVS.
#[test]
fn discrete_levels_safe_and_bounded() {
    let set = random_set(3);
    let base = cpu();
    let opts = SynthesisOptions::quick();
    let wcs = synthesize_wcs(&set, &base, &opts).unwrap();
    let (e_cont, _) = energy_of(&set, &base, GreedyReclaim, Some(&wcs), 5);

    let table = LevelTable::new(
        [0.3, 1.0, 2.0, 3.0, 4.0]
            .iter()
            .map(|&v| Volt::from_volts(v))
            .collect(),
    )
    .unwrap();
    let quant = Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .discrete_levels(table)
        .build()
        .unwrap();
    let (e_disc, misses) = energy_of(&set, &quant, GreedyReclaim, Some(&wcs), 5);
    let (e_flat, _) = energy_of(&set, &quant, NoDvs, None, 5);
    assert_eq!(misses, 0);
    assert!(e_disc >= e_cont * (1.0 - 1e-9), "quantization cannot help");
    assert!(e_disc <= e_flat * (1.0 + 1e-9));
}

/// Transition overhead strictly increases energy and is charged per
/// switch.
#[test]
fn transition_overhead_monotone() {
    let set = random_set(21);
    let opts = SynthesisOptions::quick();
    let base = cpu();
    let wcs = synthesize_wcs(&set, &base, &opts).unwrap();
    let (e0, _) = energy_of(&set, &base, GreedyReclaim, Some(&wcs), 5);
    let lossy = Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .transition_overhead(TransitionOverhead {
            time: TimeSpan::from_ms(0.001),
            energy: Energy::from_units(5.0),
        })
        .build()
        .unwrap();
    let (e1, _) = energy_of(&set, &lossy, GreedyReclaim, Some(&wcs), 5);
    assert!(e1 > e0, "overhead must cost energy: {e1} vs {e0}");
}
