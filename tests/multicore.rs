//! Acceptance tests for the partitioned-multiprocessor + leakage layer:
//! the checked-in `scenarios/multicore_sweep.txt` campaign is
//! deterministic at 1/2/8 worker threads, splits per-core energy into
//! dynamic vs static vs idle, and — with `static_power > 0` — never
//! runs a core below its critical speed, under any policy.

use acsched::prelude::*;

fn sweep() -> Scenario {
    let dir = std::env::var("ACS_SCENARIO_DIR")
        .unwrap_or_else(|_| format!("{}/scenarios", env!("CARGO_MANIFEST_DIR")));
    Scenario::load(format!("{dir}/multicore_sweep.txt")).expect("checked-in sweep parses")
}

/// The sweep covers ≥2 partitioners × ≥2 core counts × the existing
/// policies, and its reports are identical at 1, 2 and 8 threads.
#[test]
fn multicore_sweep_is_thread_count_deterministic() {
    let scenario = sweep();
    assert!(scenario.cores.len() >= 2, "≥2 core counts");
    assert!(scenario.partitioners.len() >= 2, "≥2 partitioners");
    let run = |threads: usize| {
        scenario
            .campaign_builder()
            .unwrap()
            .threads(threads)
            .build()
            .unwrap()
            .run()
    };
    let reference = run(1);
    assert_eq!(reference.failures().count(), 0, "{}", reference.to_table());
    for threads in [2, 8] {
        assert_eq!(
            run(threads),
            reference,
            "report diverged at {threads} threads"
        );
    }

    // Per-core energy splits: multicore cells carry one mean energy per
    // core summing to the machine mean, and the static (leakage) share
    // is strictly positive on this leaky processor.
    let mut multicore_cells = 0;
    for cell in reference.cells() {
        let stats = cell.stats().unwrap();
        assert_eq!(stats.per_core_mean_energy.len(), cell.cores, "{cell:?}");
        let sum: f64 = stats.per_core_mean_energy.iter().sum();
        assert!(
            (sum - stats.mean_energy.as_units()).abs() < 1e-6 * sum.max(1.0),
            "per-core energies must sum to the machine mean: {cell:?}"
        );
        assert!(
            stats.mean_static_energy.as_units() > 0.0,
            "leaky processor must report static energy: {cell:?}"
        );
        let parts = stats.mean_dynamic_energy.as_units()
            + stats.mean_static_energy.as_units()
            + stats.mean_idle_energy.as_units();
        assert!(
            (parts - stats.mean_energy.as_units()).abs() < 1e-6 * parts.max(1.0),
            "dynamic + static + idle must reconcile with the total: {cell:?}"
        );
        if cell.cores > 1 {
            multicore_cells += 1;
        }
    }
    assert!(multicore_cells > 0, "the sweep exercises multicore cells");
}

/// With `static_power > 0`, no policy ever runs a core below its
/// critical speed: every execution slice of every core, under every
/// policy of the sweep, sits at or above the critical-speed voltage.
#[test]
fn no_policy_runs_below_critical_speed() {
    let scenario = sweep();
    let sets = scenario.materialize_task_sets().unwrap();
    let cpus = scenario.materialize_processors().unwrap();
    let (_, cpu) = &cpus[0];
    assert!(cpu.static_power() > 0.0, "the sweep's processor leaks");

    let set = &sets[0].1;
    let schedule = synthesize_wcs(set, cpu, &SynthesisOptions::quick()).unwrap();
    // The floor must actually bind for the assertion to mean anything.
    let crit = cpu.critical_speed(set.tasks()[0].c_eff());
    assert!(crit > cpu.f_min(), "critical speed must exceed f_min");

    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(GreedyReclaim),
        Box::new(StaticSpeed),
        Box::new(CcRm::new()),
        Box::new(NoDvs),
    ];
    for policy in policies {
        let name = policy.name().to_string();
        let needs_schedule = policy.needs_schedule();
        let mut draws = TaskWorkloads::paper(set, 11);
        let mut sim = Simulator::new(set, cpu, policy).with_options(SimOptions {
            record_trace: true,
            hyper_periods: 1,
            ..Default::default()
        });
        if needs_schedule {
            sim = sim.with_schedule(&schedule);
        }
        let out = sim.run(&mut |t, i| draws.draw(t, i)).unwrap();
        assert!(out.report.all_deadlines_met(), "{name}");
        let trace = out.trace.expect("trace recorded");
        assert!(!trace.is_empty(), "{name}");
        for slice in trace.slices() {
            let v_floor = cpu
                .volt_for_speed(cpu.critical_speed(set.tasks()[slice.task.0].c_eff()))
                .unwrap();
            assert!(
                slice.voltage >= v_floor - Volt::from_volts(1e-9),
                "{name}: slice below critical speed: {slice:?}"
            );
        }
    }
}

/// Partitioner choice shows up in the energy split: best-fit packing
/// (more idle cores) versus worst-fit balancing on a platform that
/// cannot power-gate. Both run, both meet deadlines, and the machine
/// totals reconcile — the sweep's reason to exist.
#[test]
fn partitioners_trade_idle_against_dynamic_energy() {
    let scenario = sweep();
    let report = scenario
        .campaign_builder()
        .unwrap()
        .threads(2)
        .build()
        .unwrap()
        .run();
    let cell = |cores: usize, part: &str| {
        report
            .cells()
            .iter()
            .find(|c| {
                c.cores == cores
                    && c.partition == part
                    && c.policy == "greedy"
                    && c.schedule == ScheduleChoice::Wcs
            })
            .unwrap_or_else(|| panic!("no cell for cores={cores} part={part}"))
    };
    let ffd = cell(4, "ffd").stats().unwrap();
    let wfd = cell(4, "wfd").stats().unwrap();
    // FFD packs tasks onto few cores (others idle); WFD spreads them.
    // Count cores that did real (dynamic) work via per-core energies.
    let busy = |s: &CellStats| {
        s.per_core_mean_energy
            .iter()
            .filter(|e| {
                // An idle core costs exactly idle_power × horizon; busy
                // cores cost strictly more on this workload.
                **e > 2.0 * 10.0 * 40.0 + 1e-6
            })
            .count()
    };
    assert!(
        busy(ffd) <= busy(wfd),
        "ffd packs at least as tightly as wfd: {:?} vs {:?}",
        ffd.per_core_mean_energy,
        wfd.per_core_mean_energy
    );
}
