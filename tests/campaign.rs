//! Acceptance tests for the open online-DVS layer: a user-defined
//! policy (implementing only the `Policy` trait, no `acs-sim` internals
//! touched) runs through both `Simulator` and `Campaign`, and a
//! 100-cell campaign grid executes in parallel with a deterministic,
//! thread-count-independent report.

use acsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

fn random_set(seed: u64) -> TaskSet {
    let cfg = RandomSetConfig::paper(3, 0.1, Freq::from_cycles_per_ms(200.0));
    generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
}

/// A stateful user-defined policy: greedy reclamation with a floor that
/// adapts to how many jobs completed early in the current hyper-period.
/// Exercises every trait hook.
struct AdaptiveFloor {
    early_completions: usize,
    releases: usize,
}

impl AdaptiveFloor {
    fn new() -> Self {
        AdaptiveFloor {
            early_completions: 0,
            releases: 0,
        }
    }
}

impl Policy for AdaptiveFloor {
    fn name(&self) -> &str {
        "adaptive-floor"
    }
    fn needs_schedule(&self) -> bool {
        true
    }
    fn on_start(&mut self, _set: &TaskSet, _cpu: &Processor) {
        self.early_completions = 0;
        self.releases = 0;
    }
    fn on_release(&mut self, _task: TaskId, _set: &TaskSet, _cpu: &Processor) {
        self.releases += 1;
    }
    fn on_completion(&mut self, task: TaskId, actual: Cycles, set: &TaskSet, _cpu: &Processor) {
        if actual < set.tasks()[task.0].acec() {
            self.early_completions += 1;
        }
    }
    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
        let fmax = ctx.cpu.f_max().as_cycles_per_ms();
        let window = ctx.chunk_end - ctx.now;
        let greedy = if window.as_ms() <= 0.0 {
            fmax
        } else {
            (ctx.chunk_budget_remaining / window).as_cycles_per_ms()
        };
        // The more jobs finish early, the lower we dare to go.
        let confidence = self.early_completions as f64 / self.releases.max(1) as f64;
        let floor = fmax * (0.5 - 0.4 * confidence.clamp(0.0, 1.0));
        Freq::from_cycles_per_ms(greedy.max(floor))
    }
}

/// Acceptance: the custom policy runs through `Simulator` untouched and
/// keeps every deadline; it burns at least as much energy as pure greedy
/// (its floor only raises speeds) but no more than no-DVS.
#[test]
fn user_defined_policy_runs_through_simulator() {
    let set = random_set(8);
    let cpu = cpu();
    let schedule = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
    let energy_of = |policy: Box<dyn Policy>, with_schedule: bool| {
        let mut draws = TaskWorkloads::paper(&set, 4);
        let mut sim = Simulator::new(&set, &cpu, policy).with_options(SimOptions {
            hyper_periods: 10,
            deadline_tol_ms: 1e-3,
            ..Default::default()
        });
        if with_schedule {
            sim = sim.with_schedule(&schedule);
        }
        let out = sim.run(&mut |t, i| draws.draw(t, i)).unwrap();
        assert_eq!(out.report.deadline_misses, 0);
        out.report.energy.as_units()
    };
    let custom = energy_of(Box::new(AdaptiveFloor::new()), true);
    let greedy = energy_of(Box::new(GreedyReclaim), true);
    let flat = energy_of(Box::new(NoDvs), false);
    assert!(
        custom >= greedy * (1.0 - 1e-9),
        "floor cannot save energy: {custom} vs {greedy}"
    );
    assert!(
        custom <= flat * (1.0 + 1e-9),
        "floor cannot exceed no-DVS: {custom} vs {flat}"
    );
}

/// Acceptance: a 100-cell grid (5 sets × (3 scheduled policies × 2
/// schedules + 1 unscheduled) × ~3 workloads) runs in parallel and the
/// report is identical at 1, 2 and 8 worker threads — seed-stable and
/// scheduling-order-independent.
#[test]
fn hundred_cell_grid_is_deterministic_across_thread_counts() {
    let sets: Vec<(String, TaskSet)> = (0..5)
        .map(|i| (format!("set{i}"), random_set(100 + i)))
        .collect();
    let build = |threads: usize| {
        Campaign::builder()
            .task_sets(sets.clone())
            .processor("linear", cpu())
            .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
            .policy(PolicySpec::greedy())
            .policy(PolicySpec::static_speed())
            .policy(PolicySpec::custom(|| Box::new(AdaptiveFloor::new())))
            .policy(PolicySpec::ccrm())
            .workload(WorkloadSpec::Paper)
            .workload(WorkloadSpec::Uniform)
            .workload(WorkloadSpec::ConstantAcec)
            .seeds([1, 2])
            .hyper_periods(2)
            .threads(threads)
            .build()
            .unwrap()
    };
    // 5 sets x [3 scheduled x 2 schedules + 1 unscheduled] x 3 workloads
    // = 105 cells, 210 runs.
    let campaign = build(8);
    assert!(
        campaign.cell_count() >= 100,
        "grid has only {} cells",
        campaign.cell_count()
    );
    let parallel = campaign.run();
    assert_eq!(parallel.failures().count(), 0, "{}", parallel.to_table());
    assert_eq!(parallel.cells().len(), campaign.cell_count());

    let serial = build(1).run();
    let two = build(2).run();
    assert_eq!(parallel, serial, "8-thread vs serial report diverged");
    assert_eq!(parallel, two, "8-thread vs 2-thread report diverged");

    // And re-running the same campaign reproduces the report exactly.
    assert_eq!(parallel, campaign.run());

    // The custom policy's cells exist and met deadlines everywhere.
    let custom_cells: Vec<_> = parallel
        .cells()
        .iter()
        .filter(|c| c.policy == "adaptive-floor")
        .collect();
    assert_eq!(custom_cells.len(), 5 * 2 * 3);
    for c in custom_cells {
        assert_eq!(c.stats().unwrap().deadline_misses, 0);
    }
}

/// Campaign pairs draws across schedules: the WCS and ACS cells of one
/// set see identical workloads, so `gains()` is a paired comparison and
/// greedy-on-ACS never loses to greedy-on-WCS by more than noise.
#[test]
fn gains_are_paired_and_sane() {
    let report = Campaign::builder()
        .task_set("a", random_set(21))
        .task_set("b", random_set(22))
        .processor("linear", cpu())
        .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
        .policy(PolicySpec::greedy())
        .workload(WorkloadSpec::Paper)
        .seeds([7, 8, 9])
        .hyper_periods(5)
        .build()
        .unwrap()
        .run();
    assert_eq!(report.failures().count(), 0, "{}", report.to_table());
    let gains = report.gains();
    assert_eq!(gains.len(), 2);
    for (cell, gain) in gains {
        assert!(
            gain > -0.05,
            "ACS lost to WCS on {}: gain {gain}",
            cell.task_set
        );
    }
    assert_eq!(report.total_deadline_misses(), 0);
}
