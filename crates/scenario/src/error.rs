//! Error type for scenario parsing and materialization.

use std::error::Error as StdError;
use std::fmt;

/// An error while parsing, serializing or materializing a scenario.
///
/// Parse errors carry the 1-based line number of the offending
/// directive; materialization errors (a declared task set or processor
/// violating a model invariant, an invalid campaign grid) carry none.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// 1-based line number in the scenario text, when known.
    pub line: Option<usize>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ScenarioError {
    /// An error anchored at a line of the scenario text.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        ScenarioError {
            line: Some(line),
            message: message.into(),
        }
    }

    /// An error with no line anchor (I/O, materialization, grid
    /// validation).
    pub fn msg(message: impl Into<String>) -> Self {
        ScenarioError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "scenario line {line}: {}", self.message),
            None => write!(f, "scenario: {}", self.message),
        }
    }
}

impl StdError for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_when_known() {
        assert_eq!(
            ScenarioError::at(7, "bad directive").to_string(),
            "scenario line 7: bad directive"
        );
        assert_eq!(ScenarioError::msg("boom").to_string(), "scenario: boom");
    }
}
