//! # acs-scenario
//!
//! Declarative experiment scenarios for the `acsched` workspace:
//! a whole [`Campaign`](acs_runtime::Campaign) — task sets, processors,
//! cores and partitioners (`v2`), schedules, policies, workload
//! distributions, seeds, hyper-periods, threads — described as a
//! versioned, line-oriented **text file** instead of Rust code.
//! `acsched-scenario v2` adds the multiprocessor axis (`cores N
//! partition=ffd,wfd`) and leakage-aware processors
//! (`static_power=`/`idle_power=`); every `v1` file stays valid.
//!
//! Same philosophy as the `acsched-schedule v1` artifact in
//! `acs-core::export`: diff-able, greppable, hand-editable, no serde
//! (the build environment vendors no crate registry). The paper's whole
//! evaluation grid (§5) becomes data under `scenarios/`, runnable with
//! `acsched run <file>`, and any new experiment is a text edit away —
//! exactly the broad, easily-varied experiment grids that run-time DVS
//! claims need (cf. Berten et al., Simon et al.).
//!
//! The full grammar lives in `docs/SCENARIO_FORMAT.md`. A taste:
//!
//! ```
//! use acs_scenario::Scenario;
//!
//! # fn main() -> Result<(), acs_scenario::ScenarioError> {
//! let text = "\
//! acsched-scenario v1
//! taskset pair
//! task ctrl period=10 wcec=300 acec=120 bcec=30
//! task telemetry period=20 wcec=600 acec=200 bcec=60
//! end
//! processor linear50 linear kappa=50 vmin=0.3 vmax=4
//! schedules wcs acs
//! policy greedy
//! workload paper
//! seeds 1 2
//! hyper_periods 4
//! ";
//! let scenario = Scenario::from_text(text)?;
//! let campaign = scenario.to_campaign()?;
//! assert_eq!(campaign.cell_count(), 2); // {WCS, ACS} x greedy
//! assert_eq!(campaign.run_count(), 4); // x 2 seeds
//! // Canonical serialization is a parse fixpoint.
//! assert_eq!(scenario, Scenario::from_text(&scenario.to_text()?)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
mod parse;
pub mod scenario;

pub use error::ScenarioError;
pub use scenario::{
    DagDecl, ModelDecl, PolicyDecl, ProcessorDecl, Scenario, StaticPowerDecl, SynthProfile,
    TaskDecl, TaskSetDecl,
};
