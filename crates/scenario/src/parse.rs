//! The scenario text parser (format spec: `docs/SCENARIO_FORMAT.md`).

use crate::error::ScenarioError;
use crate::scenario::{
    DagDecl, ModelDecl, PolicyDecl, ProcessorDecl, Scenario, StaticPowerDecl, SynthProfile,
    TaskDecl, TaskSetDecl,
};
use acs_runtime::{PartitionHeuristic, Placement, ScheduleChoice, SchedulingClass, WorkloadSpec};
use acs_sim::ArrivalKind;

/// Key=value argument list of one directive, with unknown-key detection.
struct Kv<'a> {
    ln: usize,
    ctx: String,
    pairs: Vec<(&'a str, &'a str, bool)>,
}

impl<'a> Kv<'a> {
    fn new(ln: usize, ctx: impl Into<String>, tokens: &[&'a str]) -> Result<Self, ScenarioError> {
        let ctx = ctx.into();
        let mut pairs: Vec<(&'a str, &'a str, bool)> = Vec::with_capacity(tokens.len());
        for tok in tokens {
            let Some((k, v)) = tok.split_once('=') else {
                return Err(ScenarioError::at(
                    ln,
                    format!("{ctx}: expected `key=value`, got `{tok}`"),
                ));
            };
            if pairs.iter().any(|(seen, _, _)| *seen == k) {
                return Err(ScenarioError::at(ln, format!("{ctx}: duplicate key `{k}`")));
            }
            pairs.push((k, v, false));
        }
        Ok(Kv { ln, ctx, pairs })
    }

    fn opt(&mut self, key: &str) -> Option<&'a str> {
        self.pairs
            .iter_mut()
            .find(|(k, _, _)| *k == key)
            .map(|(_, v, used)| {
                *used = true;
                *v
            })
    }

    fn req(&mut self, key: &str) -> Result<&'a str, ScenarioError> {
        self.opt(key).ok_or_else(|| {
            ScenarioError::at(
                self.ln,
                format!("{}: missing required key `{key}`", self.ctx),
            )
        })
    }

    fn f64_of(&self, key: &str, val: &str) -> Result<f64, ScenarioError> {
        let parsed: f64 = val.parse().map_err(|_| self.bad_num(key, val))?;
        if !parsed.is_finite() {
            return Err(self.bad_num(key, val));
        }
        Ok(parsed)
    }

    fn bad_num(&self, key: &str, val: &str) -> ScenarioError {
        ScenarioError::at(
            self.ln,
            format!(
                "{}: bad value for `{key}`: `{val}` is not a finite number",
                self.ctx
            ),
        )
    }

    fn req_f64(&mut self, key: &str) -> Result<f64, ScenarioError> {
        let val = self.req(key)?;
        self.f64_of(key, val)
    }

    fn opt_f64(&mut self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.opt(key) {
            Some(val) => Ok(Some(self.f64_of(key, val)?)),
            None => Ok(None),
        }
    }

    fn req_u64(&mut self, key: &str) -> Result<u64, ScenarioError> {
        let val = self.req(key)?;
        val.parse().map_err(|_| {
            ScenarioError::at(
                self.ln,
                format!(
                    "{}: bad value for `{key}`: `{val}` is not a non-negative integer",
                    self.ctx
                ),
            )
        })
    }

    fn opt_u64(&mut self, key: &str) -> Result<Option<u64>, ScenarioError> {
        match self.opt(key) {
            Some(val) => Ok(Some(val.parse().map_err(|_| {
                ScenarioError::at(
                    self.ln,
                    format!(
                        "{}: bad value for `{key}`: `{val}` is not a non-negative integer",
                        self.ctx
                    ),
                )
            })?)),
            None => Ok(None),
        }
    }

    fn req_usize(&mut self, key: &str) -> Result<usize, ScenarioError> {
        Ok(self.req_u64(key)? as usize)
    }

    fn opt_usize(&mut self, key: &str) -> Result<Option<usize>, ScenarioError> {
        Ok(self.opt_u64(key)?.map(|v| v as usize))
    }

    fn opt_bool(&mut self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.opt(key) {
            Some("on") | Some("true") => Ok(Some(true)),
            Some("off") | Some("false") => Ok(Some(false)),
            Some(other) => Err(ScenarioError::at(
                self.ln,
                format!(
                    "{}: bad value for `{key}`: `{other}` (expected on/off)",
                    self.ctx
                ),
            )),
            None => Ok(None),
        }
    }

    fn done(self) -> Result<(), ScenarioError> {
        if let Some((k, _, _)) = self.pairs.iter().find(|(_, _, used)| !used) {
            return Err(ScenarioError::at(
                self.ln,
                format!("{}: unknown key `{k}`", self.ctx),
            ));
        }
        Ok(())
    }
}

fn check_name(ln: usize, what: &str, name: &str) -> Result<(), ScenarioError> {
    if name.contains('=') {
        return Err(ScenarioError::at(
            ln,
            format!(
                "{what} name `{name}` looks like a key=value pair; \
                     the name comes before the options"
            ),
        ));
    }
    Ok(())
}

fn parse_task(ln: usize, tokens: &[&str]) -> Result<TaskDecl, ScenarioError> {
    let Some((name, rest)) = tokens.split_first() else {
        return Err(ScenarioError::at(ln, "task: missing name".to_string()));
    };
    check_name(ln, "task", name)?;
    let mut kv = Kv::new(ln, format!("task `{name}`"), rest)?;
    let decl = TaskDecl {
        name: name.to_string(),
        period: kv.req_u64("period")?,
        deadline: kv.opt_u64("deadline")?,
        wcec: kv.req_f64("wcec")?,
        acec: kv.opt_f64("acec")?,
        bcec: kv.opt_f64("bcec")?,
        c_eff: kv.opt_f64("c_eff")?,
    };
    kv.done()?;
    Ok(decl)
}

fn parse_levels(kv: &Kv<'_>, val: &str) -> Result<Vec<f64>, ScenarioError> {
    val.split(',')
        .map(|part| kv.f64_of("levels", part))
        .collect()
}

fn parse_overhead(kv: &Kv<'_>, val: &str) -> Result<(f64, f64), ScenarioError> {
    let Some((time_ms, energy)) = val.split_once(':') else {
        return Err(ScenarioError::at(
            kv.ln,
            format!(
                "{}: bad value for `overhead`: `{val}` (expected `time_ms:energy`)",
                kv.ctx
            ),
        ));
    };
    Ok((
        kv.f64_of("overhead", time_ms)?,
        kv.f64_of("overhead", energy)?,
    ))
}

fn parse_processor(
    ln: usize,
    tokens: &[&str],
    version: u32,
) -> Result<ProcessorDecl, ScenarioError> {
    let [name, model_kind, rest @ ..] = tokens else {
        return Err(ScenarioError::at(
            ln,
            "processor: expected `processor <name> <linear|alpha> key=value...`".to_string(),
        ));
    };
    check_name(ln, "processor", name)?;
    let mut kv = Kv::new(ln, format!("processor `{name}`"), rest)?;
    let model = match *model_kind {
        "linear" => ModelDecl::Linear {
            kappa: kv.req_f64("kappa")?,
        },
        "alpha" => ModelDecl::Alpha {
            k: kv.req_f64("k")?,
            vth: kv.req_f64("vth")?,
            alpha: kv.req_f64("alpha")?,
        },
        other => {
            return Err(ScenarioError::at(
                ln,
                format!(
                    "processor `{name}`: unknown frequency model `{other}` \
                         (expected `linear` or `alpha`)"
                ),
            ))
        }
    };
    let levels = match kv.opt("levels") {
        Some(val) => Some(parse_levels(&kv, val)?),
        None => None,
    };
    let overhead = match kv.opt("overhead") {
        Some(val) => Some(parse_overhead(&kv, val)?),
        None => None,
    };
    let mut static_power = None;
    let mut idle_power = None;
    if version >= 2 {
        static_power = match kv.opt("static_power") {
            Some(val) => Some(parse_static_power(&kv, name, val, levels.as_deref())?),
            None => None,
        };
        idle_power = kv.opt_f64("idle_power")?;
        if let Some(p) = idle_power {
            if p < 0.0 {
                return Err(ScenarioError::at(
                    ln,
                    format!("processor `{name}`: idle_power must be non-negative, got {p}"),
                ));
            }
        }
    } else if rest
        .iter()
        .any(|t| t.starts_with("static_power=") || t.starts_with("idle_power="))
    {
        return Err(ScenarioError::at(
            ln,
            format!(
                "processor `{name}`: static_power/idle_power need the \
                 `acsched-scenario v2` header"
            ),
        ));
    }
    let decl = ProcessorDecl {
        name: name.to_string(),
        model,
        vmin: kv.req_f64("vmin")?,
        vmax: kv.req_f64("vmax")?,
        levels,
        overhead,
        static_power,
        idle_power,
    };
    kv.done()?;
    Ok(decl)
}

/// Parses a `static_power=` value: a single power, or one per discrete
/// level (`0.1,0.2,0.4` with a matching `levels=` table).
fn parse_static_power(
    kv: &Kv<'_>,
    name: &str,
    val: &str,
    levels: Option<&[f64]>,
) -> Result<StaticPowerDecl, ScenarioError> {
    let powers: Vec<f64> = val
        .split(',')
        .map(|part| kv.f64_of("static_power", part))
        .collect::<Result<_, _>>()?;
    if let Some(bad) = powers.iter().find(|p| **p < 0.0) {
        return Err(ScenarioError::at(
            kv.ln,
            format!("processor `{name}`: static_power must be non-negative, got {bad}"),
        ));
    }
    if powers.len() == 1 {
        return Ok(StaticPowerDecl::Uniform(powers[0]));
    }
    match levels {
        Some(table) if table.len() == powers.len() => Ok(StaticPowerDecl::PerLevel(powers)),
        Some(table) => Err(ScenarioError::at(
            kv.ln,
            format!(
                "processor `{name}`: {} static_power entries for {} levels",
                powers.len(),
                table.len()
            ),
        )),
        None => Err(ScenarioError::at(
            kv.ln,
            format!("processor `{name}`: per-level static_power needs a `levels=` table"),
        )),
    }
}

fn parse_policy(ln: usize, tokens: &[&str]) -> Result<PolicyDecl, ScenarioError> {
    let Some((kind, rest)) = tokens.split_first() else {
        return Err(ScenarioError::at(
            ln,
            "policy: missing kind (no-dvs, ccrm, static, greedy, reopt)".to_string(),
        ));
    };
    let plain = |decl: PolicyDecl| -> Result<PolicyDecl, ScenarioError> {
        if let Some(extra) = rest.first() {
            return Err(ScenarioError::at(
                ln,
                format!("policy `{kind}` takes no options, got `{extra}`"),
            ));
        }
        Ok(decl)
    };
    match *kind {
        "no-dvs" => plain(PolicyDecl::NoDvs),
        "ccrm" => plain(PolicyDecl::CcRm),
        "static" => plain(PolicyDecl::StaticSpeed),
        "greedy" => plain(PolicyDecl::Greedy),
        "reopt" => {
            let mut kv = Kv::new(ln, "policy `reopt`", rest)?;
            let decl = PolicyDecl::Reopt {
                horizon: kv.opt_usize("horizon")?,
                min_rel_gain: kv.opt_f64("min_rel_gain")?,
                cache: kv.opt_usize("cache")?,
                resolve_on_release: kv.opt_bool("resolve_on_release")?,
                resolve_at_start: kv.opt_bool("resolve_at_start")?,
            };
            kv.done()?;
            Ok(decl)
        }
        other => Err(ScenarioError::at(
            ln,
            format!("unknown policy `{other}` (known: no-dvs, ccrm, static, greedy, reopt)"),
        )),
    }
}

fn parse_workload(ln: usize, tokens: &[&str]) -> Result<WorkloadSpec, ScenarioError> {
    let Some((kind, rest)) = tokens.split_first() else {
        return Err(ScenarioError::at(
            ln,
            "workload: missing kind (paper, uniform, bimodal, acec, wcec)".to_string(),
        ));
    };
    let plain = |spec: WorkloadSpec| -> Result<WorkloadSpec, ScenarioError> {
        if let Some(extra) = rest.first() {
            return Err(ScenarioError::at(
                ln,
                format!("workload `{kind}` takes no options, got `{extra}`"),
            ));
        }
        Ok(spec)
    };
    match *kind {
        "paper" => plain(WorkloadSpec::Paper),
        "uniform" => plain(WorkloadSpec::Uniform),
        "acec" => plain(WorkloadSpec::ConstantAcec),
        "wcec" => plain(WorkloadSpec::ConstantWcec),
        "bimodal" => {
            let mut kv = Kv::new(ln, "workload `bimodal`", rest)?;
            let spec = WorkloadSpec::Bimodal {
                p_heavy: kv.req_f64("p")?,
            };
            kv.done()?;
            Ok(spec)
        }
        other => Err(ScenarioError::at(
            ln,
            format!("unknown workload `{other}` (known: paper, uniform, bimodal, acec, wcec)"),
        )),
    }
}

/// Parses a whole scenario text. See [`Scenario::from_text`].
pub(crate) fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (header_ln, header) = lines.next().ok_or_else(|| {
        ScenarioError::msg("empty scenario (missing `acsched-scenario v1|v2|v3|v4|v5` header)")
    })?;
    let version = match header {
        "acsched-scenario v1" => 1,
        "acsched-scenario v2" => 2,
        "acsched-scenario v3" => 3,
        "acsched-scenario v4" => 4,
        "acsched-scenario v5" => 5,
        other => {
            return Err(ScenarioError::at(
                header_ln,
                format!(
                    "unsupported header `{other}` (expected `acsched-scenario v1` \
                     through `acsched-scenario v5`)"
                ),
            ))
        }
    };

    let mut sc = Scenario {
        version,
        ..Scenario::default()
    };
    // (opening line, name, tasks) of the inline task-set block under
    // construction, if any.
    let mut inline: Option<(usize, String, Vec<TaskDecl>)> = None;
    // (opening line, set name, edges) of the `dag` block under
    // construction, if any. Edges carry their line number so the
    // end-of-parse validation can anchor errors to the offending line.
    type EdgeDecl = (String, String, usize);
    let mut dag: Option<(usize, String, Vec<EdgeDecl>)> = None;
    // One (declaration line, edge lines) entry per `sc.dags` entry —
    // kept outside the `Scenario` (which must round-trip through
    // `to_text`, where line numbers change).
    let mut dag_lines: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut seen_singleton: Vec<&'static str> = Vec::new();
    let mut singleton = |ln: usize, key: &'static str| -> Result<(), ScenarioError> {
        if seen_singleton.contains(&key) {
            return Err(ScenarioError::at(
                ln,
                format!("directive `{key}` declared twice"),
            ));
        }
        seen_singleton.push(key);
        Ok(())
    };

    for (ln, line) in lines {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if let Some((_, name, tasks)) = &mut inline {
            match tokens[0] {
                "task" => tasks.push(parse_task(ln, &tokens[1..])?),
                "end" if tokens.len() == 1 => {
                    let (_, name, tasks) = inline.take().expect("inline block is open");
                    sc.task_sets.push(TaskSetDecl::Inline { name, tasks });
                }
                other => {
                    return Err(ScenarioError::at(
                        ln,
                        format!(
                            "inside taskset `{name}`: expected `task ...` or `end`, \
                                 got `{other}`"
                        ),
                    ))
                }
            }
            continue;
        }
        if let Some((_, set, edges)) = &mut dag {
            match tokens[0] {
                "edge" => {
                    let spec = match tokens.as_slice() {
                        ["edge", spec] => *spec,
                        _ => {
                            return Err(ScenarioError::at(
                                ln,
                                format!(
                                    "dag `{set}`: expected `edge <pred>-><succ>`, got `{line}`"
                                ),
                            ))
                        }
                    };
                    let (from, to) = spec
                        .split_once("->")
                        .filter(|(f, t)| !f.is_empty() && !t.is_empty())
                        .ok_or_else(|| {
                            ScenarioError::at(
                                ln,
                                format!(
                                    "dag `{set}`: expected `edge <pred>-><succ>`, got `{spec}`"
                                ),
                            )
                        })?;
                    edges.push((from.to_string(), to.to_string(), ln));
                }
                "end" if tokens.len() == 1 => {
                    let (open_ln, set, edges) = dag.take().expect("dag block is open");
                    dag_lines.push((open_ln, edges.iter().map(|(_, _, l)| *l).collect()));
                    sc.dags.push(DagDecl {
                        set,
                        edges: edges.into_iter().map(|(f, t, _)| (f, t)).collect(),
                    });
                }
                other => {
                    return Err(ScenarioError::at(
                        ln,
                        format!("inside dag `{set}`: expected `edge a->b` or `end`, got `{other}`"),
                    ))
                }
            }
            continue;
        }
        match tokens[0] {
            "taskset" => match tokens.as_slice() {
                ["taskset", name] => {
                    check_name(ln, "taskset", name)?;
                    inline = Some((ln, name.to_string(), Vec::new()));
                }
                ["taskset", name, "trace", path] => {
                    check_name(ln, "taskset", name)?;
                    if version < 4 {
                        return Err(ScenarioError::at(
                            ln,
                            "`taskset … trace` needs the `acsched-scenario v4` header".to_string(),
                        ));
                    }
                    sc.task_sets.push(TaskSetDecl::Trace {
                        name: name.to_string(),
                        path: path.to_string(),
                    });
                }
                ["taskset", name, "from", set, rest @ ..] => {
                    check_name(ln, "taskset", name)?;
                    let mut kv = Kv::new(ln, format!("taskset `{name}` from {set}"), rest)?;
                    let decl = TaskSetDecl::RealLife {
                        name: name.to_string(),
                        set: set.to_string(),
                        f_max: kv.req_f64("fmax")?,
                        ratio: kv.opt_f64("ratio")?,
                        util: kv.opt_f64("util")?,
                    };
                    kv.done()?;
                    sc.task_sets.push(decl);
                }
                _ => {
                    return Err(ScenarioError::at(
                        ln,
                        "taskset: expected `taskset <name>` (inline block), \
                         `taskset <name> from <cnc|gap> fmax=...` or \
                         `taskset <name> trace <path>`"
                            .to_string(),
                    ))
                }
            },
            "tasksets" => match tokens.as_slice() {
                ["tasksets", "random", rest @ ..] => {
                    let mut kv = Kv::new(ln, "tasksets random", rest)?;
                    let decl = TaskSetDecl::Random {
                        tasks: kv.req_usize("tasks")?,
                        ratio: kv.req_f64("ratio")?,
                        count: kv.req_usize("count")?,
                        seed: kv.req_u64("seed")?,
                        f_max: kv.req_f64("fmax")?,
                    };
                    kv.done()?;
                    sc.task_sets.push(decl);
                }
                _ => {
                    return Err(ScenarioError::at(
                        ln,
                        "tasksets: expected `tasksets random tasks=... ratio=... count=... \
                         seed=... fmax=...`"
                            .to_string(),
                    ))
                }
            },
            "end" | "task" => {
                return Err(ScenarioError::at(
                    ln,
                    format!("`{}` outside a `taskset <name>` ... `end` block", tokens[0]),
                ))
            }
            "edge" => {
                return Err(ScenarioError::at(
                    ln,
                    "`edge` outside a `dag <taskset>` ... `end` block".to_string(),
                ))
            }
            "dag" => {
                if version < 5 {
                    return Err(ScenarioError::at(
                        ln,
                        "`dag` needs the `acsched-scenario v5` header".to_string(),
                    ));
                }
                let ["dag", name] = tokens.as_slice() else {
                    return Err(ScenarioError::at(
                        ln,
                        "dag: expected `dag <taskset>` (then `edge a->b` lines and `end`)"
                            .to_string(),
                    ));
                };
                check_name(ln, "dag", name)?;
                if sc.dags.iter().any(|d| d.set == *name) {
                    return Err(ScenarioError::at(
                        ln,
                        format!("dag `{name}`: declared twice"),
                    ));
                }
                dag = Some((ln, name.to_string(), Vec::new()));
            }
            "processor" => sc
                .processors
                .push(parse_processor(ln, &tokens[1..], version)?),
            "cores" => {
                singleton(ln, "cores")?;
                if version < 2 {
                    return Err(ScenarioError::at(
                        ln,
                        "`cores` needs the `acsched-scenario v2` header".to_string(),
                    ));
                }
                if tokens.len() == 1 {
                    return Err(ScenarioError::at(
                        ln,
                        "cores: expected at least one core count \
                         (`cores <n>... [partition=<ffd|bfd|wfd>[,...]]`)"
                            .to_string(),
                    ));
                }
                for tok in &tokens[1..] {
                    if let Some(list) = tok.strip_prefix("partition=") {
                        if !sc.partitioners.is_empty() {
                            return Err(ScenarioError::at(
                                ln,
                                "cores: duplicate key `partition`".to_string(),
                            ));
                        }
                        for part in list.split(',') {
                            let h: PartitionHeuristic = part.parse().map_err(|e: String| {
                                ScenarioError::at(ln, format!("cores: {e}"))
                            })?;
                            // Duplicates are dropped keeping the first
                            // position, matching the documented
                            // `seeds`/`schedules`/core-count behavior: a
                            // repeated heuristic would duplicate every
                            // multicore cell of the grid.
                            if !sc.partitioners.contains(&h) {
                                sc.partitioners.push(h);
                            }
                        }
                    } else {
                        let n: usize = tok.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            ScenarioError::at(
                                ln,
                                format!("cores: `{tok}` is not a positive core count"),
                            )
                        })?;
                        sc.cores.push(n);
                    }
                }
                if sc.cores.is_empty() {
                    return Err(ScenarioError::at(
                        ln,
                        "cores: expected at least one core count before `partition=`".to_string(),
                    ));
                }
            }
            "schedules" => {
                singleton(ln, "schedules")?;
                if tokens.len() == 1 {
                    return Err(ScenarioError::at(
                        ln,
                        "schedules: expected at least one of wcs, acs, unscheduled".to_string(),
                    ));
                }
                for tok in &tokens[1..] {
                    let choice = match *tok {
                        "wcs" => ScheduleChoice::Wcs,
                        "acs" => ScheduleChoice::Acs,
                        "unscheduled" => ScheduleChoice::Unscheduled,
                        other => {
                            return Err(ScenarioError::at(
                                ln,
                                format!(
                                    "unknown schedule `{other}` \
                                         (known: wcs, acs, unscheduled)"
                                ),
                            ))
                        }
                    };
                    // Duplicates are dropped keeping the first position
                    // (matching the documented `seeds` behavior): a
                    // repeated choice would duplicate every scheduled
                    // cell of the grid.
                    if !sc.schedules.contains(&choice) {
                        sc.schedules.push(choice);
                    }
                }
            }
            "class" => {
                singleton(ln, "class")?;
                if version < 3 {
                    return Err(ScenarioError::at(
                        ln,
                        "`class` needs the `acsched-scenario v3` header".to_string(),
                    ));
                }
                if tokens.len() == 1 {
                    return Err(ScenarioError::at(
                        ln,
                        "class: expected at least one of rm, edf \
                         (`class <rm|edf>[,...]`)"
                            .to_string(),
                    ));
                }
                for tok in tokens[1..].iter().flat_map(|t| t.split(',')) {
                    let class: SchedulingClass = tok
                        .parse()
                        .map_err(|e: String| ScenarioError::at(ln, format!("class: {e}")))?;
                    // Duplicates are dropped keeping the first position
                    // (matching the documented `seeds`/`schedules`
                    // behavior): a repeated class would duplicate every
                    // cell of the grid.
                    if !sc.classes.contains(&class) {
                        sc.classes.push(class);
                    }
                }
            }
            "arrivals" => {
                singleton(ln, "arrivals")?;
                if version < 4 {
                    return Err(ScenarioError::at(
                        ln,
                        "`arrivals` needs the `acsched-scenario v4` header".to_string(),
                    ));
                }
                if tokens.len() == 1 {
                    return Err(ScenarioError::at(
                        ln,
                        "arrivals: expected at least one of periodic, sporadic, poisson, \
                         mmpp[:light|bursty|heavy] (`arrivals <kind>[,...]`)"
                            .to_string(),
                    ));
                }
                for tok in tokens[1..].iter().flat_map(|t| t.split(',')) {
                    let kind: ArrivalKind = tok
                        .parse()
                        .map_err(|e: String| ScenarioError::at(ln, format!("arrivals: {e}")))?;
                    // Duplicates are dropped keeping the first position
                    // (matching `seeds`/`schedules`/`class`): a repeated
                    // kind would duplicate every cell of the grid.
                    if !sc.arrivals.contains(&kind) {
                        sc.arrivals.push(kind);
                    }
                }
            }
            "placement" => {
                singleton(ln, "placement")?;
                if version < 5 {
                    return Err(ScenarioError::at(
                        ln,
                        "`placement` needs the `acsched-scenario v5` header".to_string(),
                    ));
                }
                if tokens.len() == 1 {
                    return Err(ScenarioError::at(
                        ln,
                        "placement: expected at least one of partitioned, global \
                         (`placement <kind>[,...]`)"
                            .to_string(),
                    ));
                }
                for tok in tokens[1..].iter().flat_map(|t| t.split(',')) {
                    let p: Placement = tok
                        .parse()
                        .map_err(|e: String| ScenarioError::at(ln, format!("placement: {e}")))?;
                    // Duplicates are dropped keeping the first position
                    // (matching `class`/`arrivals`): a repeated placement
                    // would duplicate every multicore cell of the grid.
                    if !sc.placements.contains(&p) {
                        sc.placements.push(p);
                    }
                }
            }
            "policy" => sc.policies.push(parse_policy(ln, &tokens[1..])?),
            "workload" => sc.workloads.push(parse_workload(ln, &tokens[1..])?),
            "seeds" => {
                singleton(ln, "seeds")?;
                if tokens.len() == 1 {
                    return Err(ScenarioError::at(
                        ln,
                        "seeds: expected at least one integer".to_string(),
                    ));
                }
                for tok in &tokens[1..] {
                    sc.seeds.push(tok.parse().map_err(|_| {
                        ScenarioError::at(
                            ln,
                            format!("seeds: `{tok}` is not a non-negative integer"),
                        )
                    })?);
                }
            }
            "hyper_periods" => {
                singleton(ln, "hyper_periods")?;
                let [_, val] = tokens.as_slice() else {
                    return Err(ScenarioError::at(
                        ln,
                        "hyper_periods: expected one integer".to_string(),
                    ));
                };
                // Reject 0 here rather than letting the campaign
                // builder silently clamp it to 1 under a `x 0
                // hyper-periods` label.
                sc.hyper_periods =
                    Some(val.parse().ok().filter(|v: &u64| *v >= 1).ok_or_else(|| {
                        ScenarioError::at(
                            ln,
                            format!("hyper_periods: `{val}` is not a positive integer"),
                        )
                    })?);
            }
            "deadline_tol_ms" => {
                singleton(ln, "deadline_tol_ms")?;
                let [_, val] = tokens.as_slice() else {
                    return Err(ScenarioError::at(
                        ln,
                        "deadline_tol_ms: expected one number".to_string(),
                    ));
                };
                let parsed: f64 = val
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite())
                    .ok_or_else(|| {
                        ScenarioError::at(
                            ln,
                            format!("deadline_tol_ms: `{val}` is not a finite number"),
                        )
                    })?;
                sc.deadline_tol_ms = Some(parsed);
            }
            "synthesis" => {
                singleton(ln, "synthesis")?;
                sc.synthesis = Some(match tokens.as_slice() {
                    ["synthesis", "quick"] => SynthProfile::Quick,
                    ["synthesis", "default"] => SynthProfile::Default,
                    _ => {
                        return Err(ScenarioError::at(
                            ln,
                            "synthesis: expected `quick` or `default`".to_string(),
                        ))
                    }
                });
            }
            "acs_multistart" => {
                singleton(ln, "acs_multistart")?;
                sc.acs_multistart = match tokens.as_slice() {
                    ["acs_multistart", "on"] => true,
                    ["acs_multistart", "off"] => false,
                    _ => {
                        return Err(ScenarioError::at(
                            ln,
                            "acs_multistart: expected `on` or `off`".to_string(),
                        ))
                    }
                };
            }
            "threads" => {
                singleton(ln, "threads")?;
                let [_, val] = tokens.as_slice() else {
                    return Err(ScenarioError::at(
                        ln,
                        "threads: expected one integer".to_string(),
                    ));
                };
                let parsed: usize = val.parse().ok().filter(|v| *v >= 1).ok_or_else(|| {
                    ScenarioError::at(
                        ln,
                        format!(
                            "threads: `{val}` is not a positive integer \
                                 (omit the directive for auto)"
                        ),
                    )
                })?;
                sc.threads = Some(parsed);
            }
            other => {
                return Err(ScenarioError::at(
                    ln,
                    format!(
                        "unknown directive `{other}` (known: taskset, tasksets, dag, processor, \
                         cores, class, arrivals, placement, schedules, policy, workload, seeds, \
                         hyper_periods, deadline_tol_ms, synthesis, acs_multistart, threads)"
                    ),
                ))
            }
        }
    }
    if let Some((start_ln, name, _)) = inline {
        return Err(ScenarioError::msg(format!(
            "taskset `{name}` opened at line {start_ln} is never closed with `end`"
        )));
    }
    if let Some((start_ln, name, _)) = dag {
        return Err(ScenarioError::msg(format!(
            "dag `{name}` opened at line {start_ln} is never closed with `end`"
        )));
    }
    validate_dags(&sc, &dag_lines)?;
    Ok(sc)
}

/// Validates every `dag` block against the inline task set it names:
/// unknown sets/tasks, self-edges, duplicate edges, period mismatches
/// and cycles are all rejected here, anchored to the offending line.
/// [`Scenario::materialize_task_sets`] rebuilds the graph through
/// [`acs_model::TaskGraph`] afterwards, so parsed scenarios never fail
/// graph validation at materialization time.
fn validate_dags(sc: &Scenario, dag_lines: &[(usize, Vec<usize>)]) -> Result<(), ScenarioError> {
    for (decl, (decl_ln, edge_lns)) in sc.dags.iter().zip(dag_lines) {
        let mut named = None;
        for d in &sc.task_sets {
            let (name, tasks) = match d {
                TaskSetDecl::Inline { name, tasks } => (name, Some(tasks)),
                TaskSetDecl::RealLife { name, .. } | TaskSetDecl::Trace { name, .. } => {
                    (name, None)
                }
                TaskSetDecl::Random { .. } => continue,
            };
            if *name == decl.set {
                named = Some(tasks);
                break;
            }
        }
        let tasks = match named {
            Some(Some(tasks)) => tasks,
            Some(None) => {
                return Err(ScenarioError::at(
                    *decl_ln,
                    format!(
                        "dag `{}`: precedence graphs attach to inline `taskset` blocks only",
                        decl.set
                    ),
                ))
            }
            None => {
                return Err(ScenarioError::at(
                    *decl_ln,
                    format!("dag `{}`: no inline `taskset` block of that name", decl.set),
                ))
            }
        };
        let period_of = |task: &str| tasks.iter().find(|t| t.name == task).map(|t| t.period);
        let mut seen: Vec<(&str, &str)> = Vec::new();
        for ((from, to), ln) in decl.edges.iter().zip(edge_lns) {
            let ctx = format!("dag `{}`: edge `{from}->{to}`", decl.set);
            let unknown = |task: &str| {
                ScenarioError::at(
                    *ln,
                    format!("{ctx}: unknown task `{task}` in taskset `{}`", decl.set),
                )
            };
            let pf = period_of(from).ok_or_else(|| unknown(from))?;
            let pt = period_of(to).ok_or_else(|| unknown(to))?;
            if from == to {
                return Err(ScenarioError::at(
                    *ln,
                    format!("{ctx}: a task cannot precede itself"),
                ));
            }
            if seen.contains(&(from, to)) {
                return Err(ScenarioError::at(*ln, format!("{ctx}: duplicate edge")));
            }
            if pf != pt {
                return Err(ScenarioError::at(
                    *ln,
                    format!(
                        "{ctx}: periods differ ({pf} vs {pt}); precedence pairs \
                         same-numbered instances, so both tasks need the same period"
                    ),
                ));
            }
            if reaches(&seen, to, from) {
                return Err(ScenarioError::at(*ln, format!("{ctx}: closes a cycle")));
            }
            seen.push((from, to));
        }
    }
    Ok(())
}

/// Whether `to` is reachable from `from` over the accepted edges
/// (depth-first; the edge sets are tiny).
fn reaches(edges: &[(&str, &str)], from: &str, to: &str) -> bool {
    if from == to {
        return true;
    }
    let mut stack = vec![from];
    let mut visited: Vec<&str> = Vec::new();
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if visited.contains(&node) {
            continue;
        }
        visited.push(node);
        stack.extend(edges.iter().filter(|(f, _)| *f == node).map(|(_, t)| *t));
    }
    false
}
