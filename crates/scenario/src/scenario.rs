//! The parsed scenario model: declarations, canonical serialization and
//! materialization into an `acs-runtime` [`Campaign`].

use crate::error::ScenarioError;
use acs_core::SynthesisOptions;
use acs_model::units::{Cycles, Energy, Freq, Ticks, TimeSpan, Volt};
use acs_model::{Task, TaskGraph, TaskSet};
use acs_power::{FreqModel, LevelTable, Processor};
use acs_runtime::{
    Campaign, CampaignBuilder, PartitionHeuristic, Placement, PolicySpec, ScheduleChoice,
    SchedulingClass, WorkloadSpec,
};
use acs_sim::{ArrivalKind, ReOptConfig, SolverCache};
use acs_trace::TraceReader;
use acs_workloads::{paper_set_batch, real_life};
use std::sync::Arc;

/// One task of an inline task-set declaration. Unset optional fields
/// take the [`acs_model::TaskBuilder`] defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDecl {
    /// Task name (unique within the set).
    pub name: String,
    /// Release period in ticks.
    pub period: u64,
    /// Relative deadline in ticks (default: the period).
    pub deadline: Option<u64>,
    /// Worst-case execution cycles.
    pub wcec: f64,
    /// Average-case execution cycles (default: builder midpoint rule).
    pub acec: Option<f64>,
    /// Best-case execution cycles (default: builder rule).
    pub bcec: Option<f64>,
    /// Effective switching capacitance (default 1).
    pub c_eff: Option<f64>,
}

/// One task-set declaration of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSetDecl {
    /// Tasks written out inline (`taskset <name>` … `end`).
    Inline {
        /// Grid-row name.
        name: String,
        /// The tasks.
        tasks: Vec<TaskDecl>,
    },
    /// A named real-life set from `acs-workloads`
    /// (`taskset <name> from <cnc|gap> fmax=…`).
    RealLife {
        /// Grid-row name.
        name: String,
        /// Which set (`"cnc"` or `"gap"`).
        set: String,
        /// Maximum processor speed the WCECs are scaled against
        /// (cycles/ms).
        f_max: f64,
        /// BCEC/WCEC ratio (default 0.5).
        ratio: Option<f64>,
        /// Target worst-case utilization (default 0.7).
        util: Option<f64>,
    },
    /// A batch of paper-protocol random sets
    /// (`tasksets random tasks=… ratio=… count=… seed=… fmax=…`),
    /// expanding to `count` grid rows named
    /// `n{tasks:02}_r{ratio:.1}_s{idx:03}` via
    /// [`acs_workloads::paper_set_batch`].
    Random {
        /// Tasks per generated set.
        tasks: usize,
        /// BCEC/WCEC ratio.
        ratio: f64,
        /// Number of sets to generate.
        count: usize,
        /// Master seed; set `idx` uses generator seed `seed + idx`.
        seed: u64,
        /// Maximum processor speed for utilization scaling (cycles/ms).
        f_max: f64,
    },
    /// A recorded arrival trace replayed as the cell's release stream
    /// (`taskset <name> trace <path>`, `v4`). The task set itself comes
    /// from the trace file's prologue; the set's cells replay the
    /// recorded arrivals instead of iterating the `arrivals` axis, and
    /// are restricted to single-core grids.
    Trace {
        /// Grid-row name.
        name: String,
        /// Path to the `acsched-trace v1` file, as written in the
        /// scenario (resolved relative to the working directory).
        path: String,
    },
}

/// A precedence-graph declaration (`dag <taskset>` … `end`, `v5`):
/// named edges over one **inline** task set's tasks. The parser
/// validates every edge — unknown tasks, self-edges, duplicates, period
/// mismatches and cycles are rejected with the offending edge's line
/// number — and [`Scenario::materialize_task_sets`] attaches the
/// resulting [`acs_model::TaskGraph`] to the named set.
#[derive(Debug, Clone, PartialEq)]
pub struct DagDecl {
    /// Name of the (inline) task set the edges constrain.
    pub set: String,
    /// `(predecessor, successor)` task-name pairs, in declaration
    /// order.
    pub edges: Vec<(String, String)>,
}

/// A frequency–voltage law declaration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelDecl {
    /// `f = κ·V`.
    Linear {
        /// Proportionality constant (cycles/(ms·V)).
        kappa: f64,
    },
    /// `f = k·(V − Vth)^α / V`.
    Alpha {
        /// Device constant (cycles/ms).
        k: f64,
        /// Threshold voltage (V).
        vth: f64,
        /// Velocity-saturation exponent.
        alpha: f64,
    },
}

/// Static (leakage) power of a processor declaration (`v2`).
#[derive(Debug, Clone, PartialEq)]
pub enum StaticPowerDecl {
    /// One value for every operating point (`static_power=0.5`).
    Uniform(f64),
    /// One value per discrete level (`static_power=0.1,0.2,0.4` with a
    /// matching `levels=` table).
    PerLevel(Vec<f64>),
}

/// One processor declaration of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorDecl {
    /// Grid-column name.
    pub name: String,
    /// Frequency law.
    pub model: ModelDecl,
    /// Minimum usable voltage (V).
    pub vmin: f64,
    /// Maximum usable voltage (V).
    pub vmax: f64,
    /// Discrete level table (V), strictly increasing; `None` =
    /// continuous.
    pub levels: Option<Vec<f64>>,
    /// Per-switch transition overhead `(time_ms, energy)`; `None` =
    /// free switching.
    pub overhead: Option<(f64, f64)>,
    /// Static (leakage) power while executing, energy units per ms
    /// (`v2`; `None` = the paper's lossless model).
    pub static_power: Option<StaticPowerDecl>,
    /// Idle power while not shut down, energy units per ms (`v2`).
    pub idle_power: Option<f64>,
}

/// One online-policy declaration of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyDecl {
    /// Full speed + idle shutdown (reference).
    NoDvs,
    /// Cycle-conserving RM (online-only baseline).
    CcRm,
    /// The schedule's static speeds, no reclamation.
    StaticSpeed,
    /// The paper's greedy slack reclamation.
    Greedy,
    /// The online re-optimizing policy; unset knobs take the
    /// [`ReOptConfig`] defaults.
    Reopt {
        /// Receding-horizon length (`0` = all live sub-instances).
        horizon: Option<usize>,
        /// Minimum relative model-energy gain before adoption.
        min_rel_gain: Option<f64>,
        /// Shared solver-cache capacity (`0` disables; default 4096).
        cache: Option<usize>,
        /// Re-solve on release boundaries.
        resolve_on_release: Option<bool>,
        /// Re-solve at hyper-period starts.
        resolve_at_start: Option<bool>,
    },
}

impl PolicyDecl {
    /// The policy's grid name (matches `Policy::name` of the built-ins).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyDecl::NoDvs => "no-dvs",
            PolicyDecl::CcRm => "ccrm",
            PolicyDecl::StaticSpeed => "static",
            PolicyDecl::Greedy => "greedy",
            PolicyDecl::Reopt { .. } => "reopt",
        }
    }

    /// Instantiates the runtime [`PolicySpec`].
    pub fn to_spec(&self) -> PolicySpec {
        self.to_spec_with(None)
    }

    /// [`PolicyDecl::to_spec`] with an optional **caller-owned** solver
    /// cache for `reopt` policies. With `Some(cache)` the declaration's
    /// own `cache=` capacity knob is ignored — the shared cache's
    /// capacity governs — which is how the campaign server keeps one
    /// process-wide cache warm across submissions. Non-`reopt` policies
    /// never consult the argument.
    pub fn to_spec_with(&self, solver_cache: Option<&Arc<SolverCache>>) -> PolicySpec {
        match self {
            PolicyDecl::NoDvs => PolicySpec::no_dvs(),
            PolicyDecl::CcRm => PolicySpec::ccrm(),
            PolicyDecl::StaticSpeed => PolicySpec::static_speed(),
            PolicyDecl::Greedy => PolicySpec::greedy(),
            PolicyDecl::Reopt {
                horizon,
                min_rel_gain,
                cache,
                resolve_on_release,
                resolve_at_start,
            } => {
                let mut cfg = ReOptConfig::default();
                if let Some(h) = horizon {
                    cfg.horizon = *h;
                }
                if let Some(g) = min_rel_gain {
                    cfg.min_rel_gain = *g;
                }
                if let Some(r) = resolve_on_release {
                    cfg.resolve_on_release = *r;
                }
                if let Some(r) = resolve_at_start {
                    cfg.resolve_at_start = *r;
                }
                match solver_cache {
                    Some(shared) => PolicySpec::reopt_with_cache(cfg, Arc::clone(shared)),
                    None => PolicySpec::reopt_with(cfg, cache.unwrap_or(4096)),
                }
            }
        }
    }
}

/// Which synthesis profile the scenario's schedules use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthProfile {
    /// [`SynthesisOptions::quick`] — fast sweeps (the builder default).
    Quick,
    /// [`SynthesisOptions::default`] — full accuracy.
    Default,
}

/// A parsed scenario: the declarative form of a whole [`Campaign`].
///
/// Obtain one with [`Scenario::from_text`] / [`Scenario::load`],
/// inspect or edit the declarations, serialize back with
/// [`Scenario::to_text`] (canonical form; `parse → to_text → parse` is
/// a fixpoint, per version), and materialize with
/// [`Scenario::to_campaign`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Format version the scenario was parsed from (1 through 5). `v2`
    /// adds the `cores` directive and the `static_power=`/`idle_power=`
    /// processor keys; `v3` adds the `class` directive (scheduling-class
    /// axis); `v4` adds the `arrivals` directive (arrival-process axis)
    /// and `taskset … trace <path>` declarations; `v5` adds the
    /// `placement` directive (partitioned/global multiprocessor axis)
    /// and `dag … end` precedence-graph blocks. [`Scenario::to_text`]
    /// refuses to serialize features of a newer version under an older
    /// header rather than emitting text an old parser would reject with
    /// an unhelpful error.
    pub version: u32,
    /// Task-set declarations (grid rows, in order).
    pub task_sets: Vec<TaskSetDecl>,
    /// Precedence-graph declarations (`v5`), at most one per task set;
    /// each attaches a validated [`TaskGraph`] to the **inline** task
    /// set it names at materialization time.
    pub dags: Vec<DagDecl>,
    /// Processor declarations (grid columns, in order).
    pub processors: Vec<ProcessorDecl>,
    /// Core-count axis (`v2`); empty = single core.
    pub cores: Vec<usize>,
    /// Partitioner axis (`v2`); empty = first-fit decreasing.
    pub partitioners: Vec<PartitionHeuristic>,
    /// Scheduling-class axis (`v3`); empty = fixed-priority RM only.
    pub classes: Vec<SchedulingClass>,
    /// Arrival-process axis (`v4`); empty = strictly periodic releases.
    /// Duplicate entries on the `arrivals` line are dropped at parse
    /// time, keeping first positions (matching `seeds`/`schedules`).
    /// Trace-backed task sets ignore this axis and replay their
    /// recorded stream.
    pub arrivals: Vec<ArrivalKind>,
    /// Placement axis (`v5`); empty = partitioned dispatch only.
    /// Duplicate entries on the `placement` line are dropped at parse
    /// time, keeping first positions (matching `class`/`arrivals`).
    /// Single-core cells ignore this axis — there is nothing to place.
    pub placements: Vec<Placement>,
    /// Schedule axis; empty = the campaign builder's default.
    /// Duplicate entries on the `schedules` line are dropped at parse
    /// time, keeping first positions (matching the documented `seeds`
    /// behavior).
    pub schedules: Vec<ScheduleChoice>,
    /// Policy declarations.
    pub policies: Vec<PolicyDecl>,
    /// Workload families.
    pub workloads: Vec<WorkloadSpec>,
    /// Seed axis; empty = the campaign builder's default (`[0]`).
    pub seeds: Vec<u64>,
    /// Hyper-periods per run.
    pub hyper_periods: Option<u64>,
    /// Deadline-miss tolerance (ms).
    pub deadline_tol_ms: Option<f64>,
    /// Synthesis profile.
    pub synthesis: Option<SynthProfile>,
    /// Multi-start ACS synthesis.
    pub acs_multistart: bool,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
}

impl Default for Scenario {
    /// An empty `v1` scenario; bump [`Scenario::version`] to 2 before
    /// using the multicore/leakage fields programmatically.
    fn default() -> Self {
        Scenario {
            version: 1,
            task_sets: Vec::new(),
            dags: Vec::new(),
            processors: Vec::new(),
            cores: Vec::new(),
            partitioners: Vec::new(),
            classes: Vec::new(),
            arrivals: Vec::new(),
            placements: Vec::new(),
            schedules: Vec::new(),
            policies: Vec::new(),
            workloads: Vec::new(),
            seeds: Vec::new(),
            hyper_periods: None,
            deadline_tol_ms: None,
            synthesis: None,
            acs_multistart: false,
            threads: None,
        }
    }
}

/// Rejects names the line-oriented, whitespace-split format cannot
/// carry through a round trip.
fn writable_name(what: &str, name: &str) -> Result<(), ScenarioError> {
    if name.is_empty()
        || name.contains('=')
        || name.starts_with('#')
        || name.chars().any(char::is_whitespace)
    {
        return Err(ScenarioError::msg(format!(
            "{what} name `{name}` is not representable in the text format (must be \
             non-empty, contain no whitespace or `=`, and not start with `#`)"
        )));
    }
    Ok(())
}

fn schedule_keyword(choice: ScheduleChoice) -> &'static str {
    match choice {
        ScheduleChoice::Unscheduled => "unscheduled",
        ScheduleChoice::Wcs => "wcs",
        ScheduleChoice::Acs => "acs",
    }
}

fn workload_keywords(spec: &WorkloadSpec) -> String {
    match spec {
        WorkloadSpec::Paper => "paper".into(),
        WorkloadSpec::Uniform => "uniform".into(),
        WorkloadSpec::ConstantAcec => "acec".into(),
        WorkloadSpec::ConstantWcec => "wcec".into(),
        WorkloadSpec::Bimodal { p_heavy } => format!("bimodal p={p_heavy}"),
    }
}

impl Scenario {
    /// Parses a scenario from its text form (see `docs/SCENARIO_FORMAT.md`).
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] with the 1-based line number of the first
    /// offending directive.
    pub fn from_text(text: &str) -> Result<Scenario, ScenarioError> {
        crate::parse::parse(text)
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// I/O failures (with the path in the message) and parse errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::msg(format!("cannot read `{}`: {e}", path.display())))?;
        // Keep the line anchor but name the file, so `acsched check
        // scenarios/*.txt` points at the broken input.
        Scenario::from_text(&text).map_err(|e| ScenarioError {
            line: e.line,
            message: format!("in `{}`: {}", path.display(), e.message),
        })
    }

    /// Serializes to the canonical text form.
    ///
    /// `from_text(&sc.to_text()?)` reproduces `sc` exactly; defaults
    /// that were not declared stay undeclared. Scenarios produced by
    /// [`Scenario::from_text`] always serialize.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] when a programmatically built declaration
    /// carries a name the line-oriented format cannot represent
    /// (empty, containing whitespace or `=`, or starting with `#`) —
    /// rejected here instead of silently emitting text that fails to
    /// reparse.
    pub fn to_text(&self) -> Result<String, ScenarioError> {
        use std::fmt::Write as _;
        if self.version < 2 {
            let leaky = self
                .processors
                .iter()
                .any(|p| p.static_power.is_some() || p.idle_power.is_some());
            if leaky || !self.cores.is_empty() || !self.partitioners.is_empty() {
                return Err(ScenarioError::msg(
                    "scenario uses v2 features (cores/partitioners/static_power/idle_power) \
                     but declares version 1; set `version: 2`"
                        .to_string(),
                ));
            }
        }
        if self.version < 3 && !self.classes.is_empty() {
            return Err(ScenarioError::msg(format!(
                "scenario uses v3 features (the `class` scheduling-class axis) but \
                 declares version {}; set `version: 3`",
                self.version
            )));
        }
        if self.version < 4 {
            let traced = self
                .task_sets
                .iter()
                .any(|d| matches!(d, TaskSetDecl::Trace { .. }));
            if traced || !self.arrivals.is_empty() {
                return Err(ScenarioError::msg(format!(
                    "scenario uses v4 features (the `arrivals` axis or `taskset … trace` \
                     declarations) but declares version {}; set `version: 4`",
                    self.version
                )));
            }
        }
        if self.version < 5 && (!self.placements.is_empty() || !self.dags.is_empty()) {
            return Err(ScenarioError::msg(format!(
                "scenario uses v5 features (the `placement` axis or `dag` blocks) but \
                 declares version {}; set `version: 5`",
                self.version
            )));
        }
        let mut out = String::new();
        let _ = writeln!(out, "acsched-scenario v{}", self.version);
        for decl in &self.task_sets {
            match decl {
                TaskSetDecl::Inline { name, tasks } => {
                    writable_name("taskset", name)?;
                    let _ = writeln!(out, "taskset {name}");
                    for t in tasks {
                        writable_name("task", &t.name)?;
                        let _ = write!(out, "task {} period={}", t.name, t.period);
                        if let Some(d) = t.deadline {
                            let _ = write!(out, " deadline={d}");
                        }
                        let _ = write!(out, " wcec={}", t.wcec);
                        if let Some(a) = t.acec {
                            let _ = write!(out, " acec={a}");
                        }
                        if let Some(b) = t.bcec {
                            let _ = write!(out, " bcec={b}");
                        }
                        if let Some(c) = t.c_eff {
                            let _ = write!(out, " c_eff={c}");
                        }
                        out.push('\n');
                    }
                    let _ = writeln!(out, "end");
                }
                TaskSetDecl::RealLife {
                    name,
                    set,
                    f_max,
                    ratio,
                    util,
                } => {
                    writable_name("taskset", name)?;
                    writable_name("real-life set", set)?;
                    let _ = write!(out, "taskset {name} from {set} fmax={f_max}");
                    if let Some(r) = ratio {
                        let _ = write!(out, " ratio={r}");
                    }
                    if let Some(u) = util {
                        let _ = write!(out, " util={u}");
                    }
                    out.push('\n');
                }
                TaskSetDecl::Random {
                    tasks,
                    ratio,
                    count,
                    seed,
                    f_max,
                } => {
                    let _ = writeln!(
                        out,
                        "tasksets random tasks={tasks} ratio={ratio} count={count} \
                         seed={seed} fmax={f_max}"
                    );
                }
                TaskSetDecl::Trace { name, path } => {
                    writable_name("taskset", name)?;
                    writable_name("trace path", path)?;
                    let _ = writeln!(out, "taskset {name} trace {path}");
                }
            }
        }
        for dag in &self.dags {
            writable_name("dag taskset", &dag.set)?;
            let _ = writeln!(out, "dag {}", dag.set);
            for (from, to) in &dag.edges {
                for name in [from, to] {
                    writable_name("edge task", name)?;
                    if name.contains("->") {
                        return Err(ScenarioError::msg(format!(
                            "edge task name `{name}` is not representable in an `edge` \
                             line (contains `->`)"
                        )));
                    }
                }
                let _ = writeln!(out, "edge {from}->{to}");
            }
            let _ = writeln!(out, "end");
        }
        for p in &self.processors {
            writable_name("processor", &p.name)?;
            match p.model {
                ModelDecl::Linear { kappa } => {
                    let _ = write!(out, "processor {} linear kappa={kappa}", p.name);
                }
                ModelDecl::Alpha { k, vth, alpha } => {
                    let _ = write!(
                        out,
                        "processor {} alpha k={k} vth={vth} alpha={alpha}",
                        p.name
                    );
                }
            }
            let _ = write!(out, " vmin={} vmax={}", p.vmin, p.vmax);
            if let Some(levels) = &p.levels {
                let joined: Vec<String> = levels.iter().map(f64::to_string).collect();
                let _ = write!(out, " levels={}", joined.join(","));
            }
            if let Some((time_ms, energy)) = p.overhead {
                let _ = write!(out, " overhead={time_ms}:{energy}");
            }
            match &p.static_power {
                Some(StaticPowerDecl::Uniform(power)) => {
                    let _ = write!(out, " static_power={power}");
                }
                Some(StaticPowerDecl::PerLevel(powers)) => {
                    let joined: Vec<String> = powers.iter().map(f64::to_string).collect();
                    let _ = write!(out, " static_power={}", joined.join(","));
                }
                None => {}
            }
            if let Some(power) = p.idle_power {
                let _ = write!(out, " idle_power={power}");
            }
            out.push('\n');
        }
        if self.cores.is_empty() && !self.partitioners.is_empty() {
            return Err(ScenarioError::msg(
                "partitioners are declared on the `cores` directive; \
                 declare at least one core count"
                    .to_string(),
            ));
        }
        if !self.cores.is_empty() {
            let counts: Vec<String> = self.cores.iter().map(usize::to_string).collect();
            let _ = write!(out, "cores {}", counts.join(" "));
            if !self.partitioners.is_empty() {
                let parts: Vec<&str> = self.partitioners.iter().map(|h| h.label()).collect();
                let _ = write!(out, " partition={}", parts.join(","));
            }
            out.push('\n');
        }
        if !self.classes.is_empty() {
            let labels: Vec<&str> = self.classes.iter().map(|c| c.label()).collect();
            let _ = writeln!(out, "class {}", labels.join(","));
        }
        if !self.arrivals.is_empty() {
            let labels: Vec<&str> = self.arrivals.iter().map(|a| a.label()).collect();
            let _ = writeln!(out, "arrivals {}", labels.join(","));
        }
        if !self.placements.is_empty() {
            let labels: Vec<&str> = self.placements.iter().map(|p| p.label()).collect();
            let _ = writeln!(out, "placement {}", labels.join(","));
        }
        if !self.schedules.is_empty() {
            let kws: Vec<&str> = self
                .schedules
                .iter()
                .map(|c| schedule_keyword(*c))
                .collect();
            let _ = writeln!(out, "schedules {}", kws.join(" "));
        }
        for p in &self.policies {
            let _ = write!(out, "policy {}", p.name());
            if let PolicyDecl::Reopt {
                horizon,
                min_rel_gain,
                cache,
                resolve_on_release,
                resolve_at_start,
            } = p
            {
                if let Some(h) = horizon {
                    let _ = write!(out, " horizon={h}");
                }
                if let Some(g) = min_rel_gain {
                    let _ = write!(out, " min_rel_gain={g}");
                }
                if let Some(c) = cache {
                    let _ = write!(out, " cache={c}");
                }
                if let Some(r) = resolve_on_release {
                    let _ = write!(out, " resolve_on_release={}", if *r { "on" } else { "off" });
                }
                if let Some(r) = resolve_at_start {
                    let _ = write!(out, " resolve_at_start={}", if *r { "on" } else { "off" });
                }
            }
            out.push('\n');
        }
        for w in &self.workloads {
            let _ = writeln!(out, "workload {}", workload_keywords(w));
        }
        if !self.seeds.is_empty() {
            let joined: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "seeds {}", joined.join(" "));
        }
        if let Some(h) = self.hyper_periods {
            let _ = writeln!(out, "hyper_periods {h}");
        }
        if let Some(t) = self.deadline_tol_ms {
            let _ = writeln!(out, "deadline_tol_ms {t}");
        }
        match self.synthesis {
            Some(SynthProfile::Quick) => {
                let _ = writeln!(out, "synthesis quick");
            }
            Some(SynthProfile::Default) => {
                let _ = writeln!(out, "synthesis default");
            }
            None => {}
        }
        if self.acs_multistart {
            let _ = writeln!(out, "acs_multistart on");
        }
        if let Some(t) = self.threads {
            let _ = writeln!(out, "threads {t}");
        }
        Ok(out)
    }

    /// Materializes the task-set declarations into named [`TaskSet`]s,
    /// in grid-row order (`Random` declarations expand to `count` rows;
    /// generation failures are skipped with a stderr note, matching the
    /// paper protocol's per-set accounting).
    ///
    /// # Errors
    ///
    /// Any model/workload invariant violation, with the declaration
    /// named in the message.
    pub fn materialize_task_sets(&self) -> Result<Vec<(String, TaskSet)>, ScenarioError> {
        let mut out = Vec::new();
        for decl in &self.task_sets {
            match decl {
                TaskSetDecl::Inline { name, tasks } => {
                    let ctx = |e: &dyn std::fmt::Display| {
                        ScenarioError::msg(format!("taskset `{name}`: {e}"))
                    };
                    let built: Vec<Task> = tasks
                        .iter()
                        .map(|t| {
                            let mut b = Task::builder(&t.name, Ticks::new(t.period))
                                .wcec(Cycles::from_cycles(t.wcec));
                            if let Some(d) = t.deadline {
                                b = b.deadline(Ticks::new(d));
                            }
                            if let Some(a) = t.acec {
                                b = b.acec(Cycles::from_cycles(a));
                            }
                            if let Some(bc) = t.bcec {
                                b = b.bcec(Cycles::from_cycles(bc));
                            }
                            if let Some(c) = t.c_eff {
                                b = b.c_eff(c);
                            }
                            b.build()
                        })
                        .collect::<Result<_, _>>()
                        .map_err(|e| ctx(&e))?;
                    out.push((name.clone(), TaskSet::new(built).map_err(|e| ctx(&e))?));
                }
                TaskSetDecl::RealLife {
                    name,
                    set,
                    f_max,
                    ratio,
                    util,
                } => {
                    let ts = real_life(
                        set,
                        Freq::from_cycles_per_ms(*f_max),
                        ratio.unwrap_or(0.5),
                        util.unwrap_or(0.7),
                    )
                    .map_err(|e| ScenarioError::msg(format!("taskset `{name}`: {e}")))?;
                    out.push((name.clone(), ts));
                }
                TaskSetDecl::Random {
                    tasks,
                    ratio,
                    count,
                    seed,
                    f_max,
                } => {
                    out.extend(paper_set_batch(
                        *tasks,
                        *ratio,
                        *count,
                        *seed,
                        Freq::from_cycles_per_ms(*f_max),
                    ));
                }
                TaskSetDecl::Trace { name, path } => {
                    let reader = TraceReader::open(path).map_err(|e| {
                        ScenarioError::msg(format!("taskset `{name}`: trace `{path}`: {e}"))
                    })?;
                    out.push((name.clone(), reader.set().clone()));
                }
            }
        }
        // Attach declared precedence graphs. The parser already
        // validated edges against the inline declarations, so failures
        // here only reach programmatically built scenarios.
        for dag in &self.dags {
            let slot = out
                .iter_mut()
                .find(|(name, _)| *name == dag.set)
                .ok_or_else(|| {
                    ScenarioError::msg(format!(
                        "dag `{}`: no task set of that name to attach to",
                        dag.set
                    ))
                })?;
            let graph = TaskGraph::new(&slot.1, dag.edges.iter().map(|(a, b)| (a, b)))
                .map_err(|e| ScenarioError::msg(format!("dag `{}`: {e}", dag.set)))?;
            slot.1 = slot.1.clone().with_graph(graph);
        }
        Ok(out)
    }

    /// The `(name, path)` pairs of every `taskset … trace` declaration,
    /// in declaration order. Used by `acsched check` to report trace
    /// fingerprints and by the campaign server to fold trace file
    /// contents into the submission fingerprint.
    pub fn trace_paths(&self) -> Vec<(String, String)> {
        self.task_sets
            .iter()
            .filter_map(|d| match d {
                TaskSetDecl::Trace { name, path } => Some((name.clone(), path.clone())),
                _ => None,
            })
            .collect()
    }

    /// Materializes the processor declarations, in grid-column order.
    ///
    /// # Errors
    ///
    /// Any power-model invariant violation, with the declaration named
    /// in the message.
    pub fn materialize_processors(&self) -> Result<Vec<(String, Processor)>, ScenarioError> {
        let mut out = Vec::new();
        for decl in &self.processors {
            let ctx = |e: &dyn std::fmt::Display| {
                ScenarioError::msg(format!("processor `{}`: {e}", decl.name))
            };
            let model = match decl.model {
                ModelDecl::Linear { kappa } => FreqModel::linear(kappa).map_err(|e| ctx(&e))?,
                ModelDecl::Alpha { k, vth, alpha } => {
                    FreqModel::alpha(k, Volt::from_volts(vth), alpha).map_err(|e| ctx(&e))?
                }
            };
            let mut builder = Processor::builder(model)
                .vmin(Volt::from_volts(decl.vmin))
                .vmax(Volt::from_volts(decl.vmax));
            if let Some(levels) = &decl.levels {
                let table = LevelTable::new(levels.iter().map(|v| Volt::from_volts(*v)).collect())
                    .map_err(|e| ctx(&e))?;
                builder = builder.discrete_levels(table);
            }
            if let Some((time_ms, energy)) = decl.overhead {
                builder = builder.transition_overhead(acs_power::TransitionOverhead {
                    time: TimeSpan::from_ms(time_ms),
                    energy: Energy::from_units(energy),
                });
            }
            match &decl.static_power {
                Some(StaticPowerDecl::Uniform(power)) => {
                    builder = builder.static_power(*power);
                }
                Some(StaticPowerDecl::PerLevel(powers)) => {
                    // Accounting uses the per-level values; the scalar
                    // model (which `critical_speed` derives from) is set
                    // to their minimum — the guaranteed leakage floor,
                    // so the dispatch floor never over-raises.
                    let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
                    builder = builder.level_static_power(powers.clone()).static_power(min);
                }
                None => {}
            }
            if let Some(power) = decl.idle_power {
                builder = builder.idle_power(power);
            }
            out.push((decl.name.clone(), builder.build().map_err(|e| ctx(&e))?));
        }
        Ok(out)
    }

    /// Assembles a [`CampaignBuilder`] with every declared axis and
    /// option applied — callers may still override (e.g. the CLI's
    /// `--threads`) before [`build`](CampaignBuilder::build).
    ///
    /// # Errors
    ///
    /// Materialization errors (see [`Scenario::materialize_task_sets`] /
    /// [`Scenario::materialize_processors`]).
    pub fn campaign_builder(&self) -> Result<CampaignBuilder, ScenarioError> {
        self.campaign_builder_with_cache(None)
    }

    /// [`Scenario::campaign_builder`] with an optional shared solver
    /// cache wired into every `reopt` policy (see
    /// [`PolicyDecl::to_spec_with`]) — the campaign server passes its
    /// process-wide cache here so repeated submissions hit warm solves.
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::campaign_builder`].
    pub fn campaign_builder_with_cache(
        &self,
        solver_cache: Option<&Arc<SolverCache>>,
    ) -> Result<CampaignBuilder, ScenarioError> {
        let mut b = Campaign::builder();
        let traced: std::collections::HashMap<String, String> =
            self.trace_paths().into_iter().collect();
        for (name, set) in self.materialize_task_sets()? {
            match traced.get(&name) {
                Some(path) => b = b.task_set_traced(name, set, path.clone()),
                None => b = b.task_set(name, set),
            }
        }
        for (name, cpu) in self.materialize_processors()? {
            b = b.processor(name, cpu);
        }
        if !self.cores.is_empty() {
            b = b.cores(self.cores.iter().copied());
        }
        if !self.partitioners.is_empty() {
            b = b.partitioners(self.partitioners.iter().copied());
        }
        if !self.classes.is_empty() {
            b = b.classes(self.classes.iter().copied());
        }
        if !self.arrivals.is_empty() {
            b = b.arrivals(self.arrivals.iter().copied());
        }
        if !self.placements.is_empty() {
            b = b.placements(self.placements.iter().copied());
        }
        if !self.schedules.is_empty() {
            b = b.schedules(self.schedules.iter().copied());
        }
        for p in &self.policies {
            b = b.policy(p.to_spec_with(solver_cache));
        }
        for w in &self.workloads {
            b = b.workload(w.clone());
        }
        if !self.seeds.is_empty() {
            b = b.seeds(self.seeds.iter().copied());
        }
        if let Some(h) = self.hyper_periods {
            b = b.hyper_periods(h);
        }
        if let Some(t) = self.deadline_tol_ms {
            b = b.deadline_tol_ms(t);
        }
        match self.synthesis {
            Some(SynthProfile::Quick) => b = b.synthesis(SynthesisOptions::quick()),
            Some(SynthProfile::Default) => b = b.synthesis(SynthesisOptions::default()),
            None => {}
        }
        b = b.acs_multistart(self.acs_multistart);
        if let Some(t) = self.threads {
            b = b.threads(t);
        }
        Ok(b)
    }

    /// Materializes and validates the full campaign.
    ///
    /// # Errors
    ///
    /// Materialization errors plus grid-validation errors from
    /// [`CampaignBuilder::build`] (empty axes, duplicate names,
    /// schedule-required policies), re-wrapped with their message text
    /// intact.
    pub fn to_campaign(&self) -> Result<Campaign, ScenarioError> {
        self.campaign_builder()?
            .build()
            .map_err(|e| ScenarioError::msg(e.to_string()))
    }
}
