//! Scenario-format acceptance: `parse → to_text → parse` fixpoint over
//! a scenario exercising every directive, materialization equivalence
//! with hand-built objects, and a malformed-input table checking that
//! every error names its line and its problem.

use acs_model::units::{Freq, Ticks};
use acs_scenario::{Scenario, TaskSetDecl};
use acs_workloads::real_life;

/// A scenario using every directive and every optional knob at least
/// once.
const FULL: &str = "\
# Fig-6-style grid plus hardware variations -- exercises the whole grammar.
acsched-scenario v1

taskset pair
task ctrl period=10 wcec=300 acec=120 bcec=30
task telemetry period=20 deadline=15 wcec=600 acec=200 bcec=60 c_eff=1.5
end
taskset cnc@0.1 from cnc fmax=200 ratio=0.1 util=0.7
tasksets random tasks=4 ratio=0.5 count=2 seed=2005 fmax=200

processor linear50 linear kappa=50 vmin=0.3 vmax=4
processor disc alpha k=120 vth=0.8 alpha=1.6 vmin=1 vmax=4 levels=1.5,2.5,4 overhead=0.001:1.25

schedules wcs acs unscheduled
policy greedy
policy ccrm
policy reopt horizon=8 min_rel_gain=0.02 cache=512 resolve_on_release=off resolve_at_start=on
workload paper
workload bimodal p=0.25
seeds 1 2 3
hyper_periods 50
deadline_tol_ms 0.001
synthesis default
acs_multistart on
threads 2
";

/// A `v2` scenario exercising the multicore and leakage grammar.
const FULL_V2: &str = "\
acsched-scenario v2

taskset pair
task ctrl period=10 wcec=300 acec=120 bcec=30
task telemetry period=20 wcec=600 acec=200 bcec=60
end

processor leaky linear kappa=50 vmin=0.3 vmax=4 static_power=5 idle_power=0.5
processor stepped linear kappa=50 vmin=0.3 vmax=4 levels=1,2,4 static_power=1,2,4

cores 1 2 4 partition=ffd,wfd
schedules wcs acs
policy greedy
workload paper
seeds 1 2
hyper_periods 5
";

/// A `v3` scenario exercising the scheduling-class axis on top of the
/// v2 grammar.
const FULL_V3: &str = "\
acsched-scenario v3

taskset pair
task ctrl period=10 wcec=300 acec=120 bcec=30
task telemetry period=20 wcec=600 acec=200 bcec=60
end

processor linear50 linear kappa=50 vmin=0.3 vmax=4

cores 1 2
class rm,edf
schedules wcs acs
policy greedy
workload paper
seeds 1 2
hyper_periods 5
";

/// A `v4` scenario exercising the arrival-process axis and a
/// trace-backed task set on top of the v3 grammar. Parses and
/// round-trips without the trace file existing; materialization
/// needs the file (see `trace_backed_task_set_materializes`).
const FULL_V4: &str = "\
acsched-scenario v4

taskset pair
task ctrl period=10 wcec=300 acec=120 bcec=30
task telemetry period=20 wcec=600 acec=200 bcec=60
end
taskset replay trace traces/replay.trace

processor linear50 linear kappa=50 vmin=0.3 vmax=4

class rm,edf
arrivals periodic,sporadic,mmpp:bursty
schedules wcs acs
policy greedy
workload paper
seeds 1 2
hyper_periods 5
";

/// A `v5` scenario exercising the placement axis and a precedence
/// graph on top of the v4 grammar.
const FULL_V5: &str = "\
acsched-scenario v5

taskset pair
task ctrl period=10 wcec=300 acec=120 bcec=30
task telemetry period=20 wcec=600 acec=200 bcec=60
end
taskset pipe
task stage_a period=10 wcec=200 acec=80 bcec=20
task stage_b period=10 wcec=300 acec=120 bcec=30
task stage_c period=10 wcec=250 acec=100 bcec=25
end

dag pipe
edge stage_a->stage_b
edge stage_b->stage_c
end

processor linear50 linear kappa=50 vmin=0.3 vmax=4

cores 1 2
class rm,edf
arrivals periodic,sporadic
placement partitioned,global
schedules wcs acs
policy ccrm
workload paper
seeds 1 2
hyper_periods 5
";

#[test]
fn full_scenario_round_trip_fixpoint() {
    for (text, version) in [
        (FULL, 1),
        (FULL_V2, 2),
        (FULL_V3, 3),
        (FULL_V4, 4),
        (FULL_V5, 5),
    ] {
        let first = Scenario::from_text(text).expect("full scenario parses");
        assert_eq!(first.version, version);
        let canonical = first.to_text().expect("parsed scenarios serialize");
        let second = Scenario::from_text(&canonical).expect("canonical form parses");
        assert_eq!(first, second, "parse -> to_text -> parse is a fixpoint");
        // And the canonical form itself is stable.
        assert_eq!(canonical, second.to_text().unwrap());
        assert!(canonical.starts_with(&format!("acsched-scenario v{version}\n")));
    }
}

/// Every checked-in scenario under `scenarios/` keeps parsing, and the
/// canonical serialization is a parse fixpoint for each — `v1` files
/// must survive the `v2` format extension unchanged.
#[test]
fn checked_in_scenarios_parse_and_round_trip() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("scenarios/ directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let sc = Scenario::from_text(&text)
            .unwrap_or_else(|e| panic!("{} no longer parses: {e}", path.display()));
        let canonical = sc.to_text().unwrap();
        assert_eq!(
            sc,
            Scenario::from_text(&canonical).unwrap(),
            "{} canonical form is not a parse fixpoint",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 6, "expected the checked-in grids, saw {checked}");
}

#[test]
fn v2_features_materialize() {
    let sc = Scenario::from_text(FULL_V2).unwrap();
    assert_eq!(sc.cores, vec![1, 2, 4]);
    assert_eq!(sc.partitioners.len(), 2);
    let cpus = sc.materialize_processors().unwrap();
    assert_eq!(cpus[0].1.static_power(), 5.0);
    assert_eq!(cpus[0].1.idle_power(), 0.5);
    // Per-level powers: accounting per level, scalar model at the
    // guaranteed minimum.
    assert_eq!(cpus[1].1.level_static_power(), Some(&[1.0, 2.0, 4.0][..]));
    assert_eq!(cpus[1].1.static_power(), 1.0);
    // The campaign grid gets the cores/partitioner axes: cores=1
    // collapses the partitioner, so greedy x {wcs,acs} x (1 + 2x2) = 10
    // cells per processor-pair... processors share the grid:
    // 2 processors x 2 schedules x 5 (cores,part) combos = 20 cells.
    let campaign = sc.to_campaign().unwrap();
    assert_eq!(campaign.cell_count(), 20);
    assert_eq!(campaign.run_count(), 40);

    // A v1 scenario hand-upgraded with v2 fields must be re-versioned
    // before it serializes.
    let mut v1 =
        Scenario::from_text("acsched-scenario v1\nprocessor p linear kappa=50 vmin=1 vmax=4\n")
            .unwrap();
    v1.cores = vec![2];
    let err = v1.to_text().unwrap_err().to_string();
    assert!(err.contains("v2 features"), "{err}");
    v1.version = 2;
    let text = v1.to_text().unwrap();
    assert!(text.starts_with("acsched-scenario v2\n"), "{text}");
    assert_eq!(v1, Scenario::from_text(&text).unwrap());
}

#[test]
fn duplicate_partitioners_dedupe_preserving_order() {
    // Like seeds, schedules and core counts, repeated `partition=`
    // entries collapse to their first occurrence instead of erroring —
    // a repeated heuristic would duplicate every multicore cell.
    let sc = Scenario::from_text(
        "acsched-scenario v2\n\
         processor p linear kappa=50 vmin=1 vmax=4\n\
         cores 2 partition=wfd,ffd,wfd,ffd,bfd\n",
    )
    .unwrap();
    let labels: Vec<String> = sc.partitioners.iter().map(|h| h.to_string()).collect();
    assert_eq!(labels, ["wfd", "ffd", "bfd"]);
    // Identical to declaring the unique heuristics outright, including
    // the canonical serialization.
    let clean = Scenario::from_text(
        "acsched-scenario v2\n\
         processor p linear kappa=50 vmin=1 vmax=4\n\
         cores 2 partition=wfd,ffd,bfd\n",
    )
    .unwrap();
    assert_eq!(sc, clean);
    assert_eq!(sc.to_text().unwrap(), clean.to_text().unwrap());
}

#[test]
fn v3_class_axis_materializes_and_gates() {
    use acs_runtime::SchedulingClass;
    let sc = Scenario::from_text(FULL_V3).unwrap();
    assert_eq!(
        sc.classes,
        vec![SchedulingClass::FixedPriorityRm, SchedulingClass::Edf]
    );
    // greedy x {wcs, acs} x (cores 1 + 2) x 2 classes = 8 cells.
    let campaign = sc.to_campaign().unwrap();
    assert_eq!(campaign.cell_count(), 8);
    // The class line round-trips in canonical comma form.
    let text = sc.to_text().unwrap();
    assert!(text.contains("\nclass rm,edf\n"), "{text}");

    // A v2 scenario hand-upgraded with a class axis must be
    // re-versioned before it serializes.
    let mut v2 = Scenario::from_text(FULL_V2).unwrap();
    v2.classes = vec![SchedulingClass::Edf];
    let err = v2.to_text().unwrap_err().to_string();
    assert!(err.contains("v3 features"), "{err}");
    assert!(err.contains("version 2"), "{err}");
    v2.version = 3;
    let text = v2.to_text().unwrap();
    assert!(text.starts_with("acsched-scenario v3\n"), "{text}");
    assert_eq!(v2, Scenario::from_text(&text).unwrap());
}

#[test]
fn v4_arrivals_axis_materializes_and_gates() {
    use acs_sim::{ArrivalKind, MmppProfile};
    let sc = Scenario::from_text(
        "acsched-scenario v4\n\
         taskset one\ntask t period=10 wcec=100\nend\n\
         processor p linear kappa=50 vmin=1 vmax=4\n\
         arrivals periodic,sporadic,mmpp\n\
         schedules wcs acs\n\
         policy greedy\nworkload paper\n",
    )
    .unwrap();
    assert_eq!(
        sc.arrivals,
        vec![
            ArrivalKind::Periodic,
            ArrivalKind::Sporadic,
            ArrivalKind::Mmpp(MmppProfile::Bursty)
        ]
    );
    // greedy x {wcs, acs} x 3 arrival kinds = 6 cells.
    let campaign = sc.to_campaign().unwrap();
    assert_eq!(campaign.cell_count(), 6);
    // Bare `mmpp` canonicalizes to its preset label and the line
    // round-trips in comma form.
    let text = sc.to_text().unwrap();
    assert!(
        text.contains("\narrivals periodic,sporadic,mmpp:bursty\n"),
        "{text}"
    );
    assert_eq!(sc, Scenario::from_text(&text).unwrap());

    // A v3 scenario hand-upgraded with an arrivals axis must be
    // re-versioned before it serializes.
    let mut v3 = Scenario::from_text(FULL_V3).unwrap();
    v3.arrivals = vec![ArrivalKind::Poisson];
    let err = v3.to_text().unwrap_err().to_string();
    assert!(err.contains("v4 features"), "{err}");
    assert!(err.contains("version 3"), "{err}");
    v3.version = 4;
    let text = v3.to_text().unwrap();
    assert!(text.starts_with("acsched-scenario v4\n"), "{text}");
    assert_eq!(v3, Scenario::from_text(&text).unwrap());
}

#[test]
fn v5_placement_and_dag_materialize_and_gate() {
    use acs_runtime::Placement;
    let sc = Scenario::from_text(
        "acsched-scenario v5\n\
         taskset pipe\n\
         task a period=10 wcec=100\n\
         task b period=10 wcec=200\n\
         end\n\
         dag pipe\nedge a->b\nend\n\
         processor p linear kappa=50 vmin=1 vmax=4\n\
         cores 1 2\n\
         placement global,partitioned\n\
         schedules wcs\n\
         policy ccrm\nworkload paper\n",
    )
    .unwrap();
    assert_eq!(
        sc.placements,
        vec![Placement::Global, Placement::Partitioned]
    );
    assert_eq!(sc.dags.len(), 1);
    assert_eq!(sc.dags[0].set, "pipe");
    assert_eq!(sc.dags[0].edges, vec![("a".to_string(), "b".to_string())]);
    // The validated graph attaches to the named set at materialization.
    let sets = sc.materialize_task_sets().unwrap();
    let graph = sets[0].1.graph().expect("dag attaches to the named set");
    assert_eq!(graph.edge_count(), 1);
    // ccrm (schedule-free) x [cores=1 (placement collapses) + cores=2
    // global] = 2 cells: the DAG set skips partitioned multicore cells
    // because precedence edges cannot cross a partition.
    let campaign = sc.to_campaign().unwrap();
    assert_eq!(campaign.cell_count(), 2);
    // The canonical form carries the dag block and placement line, and
    // stays a fixpoint.
    let text = sc.to_text().unwrap();
    assert!(text.contains("\ndag pipe\nedge a->b\nend\n"), "{text}");
    assert!(text.contains("\nplacement global,partitioned\n"), "{text}");
    assert_eq!(sc, Scenario::from_text(&text).unwrap());

    // A v4 scenario hand-upgraded with v5 features must be re-versioned
    // before it serializes.
    let mut v4 = Scenario::from_text(FULL_V4).unwrap();
    v4.placements = vec![Placement::Global];
    let err = v4.to_text().unwrap_err().to_string();
    assert!(err.contains("v5 features"), "{err}");
    assert!(err.contains("version 4"), "{err}");
    v4.version = 5;
    let text = v4.to_text().unwrap();
    assert!(text.starts_with("acsched-scenario v5\n"), "{text}");
    assert_eq!(v4, Scenario::from_text(&text).unwrap());
}

#[test]
fn duplicate_placements_dedupe_preserving_order() {
    // Repeated entries on the `placement` line collapse to their first
    // occurrence — the documented `class`/`arrivals` behavior — instead
    // of duplicating every multicore cell of the grid.
    use acs_runtime::Placement;
    let sc = Scenario::from_text(
        "acsched-scenario v5\n\
         processor p linear kappa=50 vmin=1 vmax=4\n\
         placement global,partitioned,global,partitioned\n",
    )
    .unwrap();
    assert_eq!(
        sc.placements,
        vec![Placement::Global, Placement::Partitioned]
    );
    let text = sc.to_text().unwrap();
    assert!(text.contains("\nplacement global,partitioned\n"), "{text}");
    assert_eq!(sc, Scenario::from_text(&text).unwrap());
}

#[test]
fn duplicate_classes_and_arrivals_dedupe_preserving_order() {
    // Repeated entries on `class` and `arrivals` lines collapse to
    // their first occurrence — the documented `seeds`/`schedules`
    // behavior — instead of erroring (`class`) or duplicating every
    // cell of the grid.
    let sc = Scenario::from_text(
        "acsched-scenario v4\n\
         processor p linear kappa=50 vmin=1 vmax=4\n\
         class edf,rm,edf,rm\n\
         arrivals poisson,periodic,poisson\n",
    )
    .unwrap();
    use acs_runtime::SchedulingClass;
    use acs_sim::ArrivalKind;
    assert_eq!(
        sc.classes,
        vec![SchedulingClass::Edf, SchedulingClass::FixedPriorityRm]
    );
    assert_eq!(
        sc.arrivals,
        vec![ArrivalKind::Poisson, ArrivalKind::Periodic]
    );
    let text = sc.to_text().unwrap();
    assert!(text.contains("\nclass edf,rm\n"), "{text}");
    assert!(text.contains("\narrivals poisson,periodic\n"), "{text}");
    assert_eq!(sc, Scenario::from_text(&text).unwrap());
}

#[test]
fn trace_backed_task_set_materializes_from_prologue() {
    // Generate a small trace, point a v4 scenario at it, and check the
    // set comes from the prologue, the arrivals axis collapses for the
    // traced row, and `trace_paths` reports the declaration.
    let dir = std::env::temp_dir().join(format!("acs-scenario-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replay.trace");
    let cfg = acs_trace::GenConfig {
        profile: acs_sim::MmppProfile::Bursty,
        jobs: 200,
        seed: 7,
        tasks: 3,
    };
    acs_trace::generate(
        &cfg,
        std::io::BufWriter::new(std::fs::File::create(&path).unwrap()),
    )
    .unwrap();
    let text = format!(
        "acsched-scenario v4\n\
         taskset replay trace {}\n\
         processor p linear kappa=50 vmin=1 vmax=4\n\
         arrivals periodic,poisson\n\
         schedules wcs\n\
         policy greedy\nworkload wcec\nhyper_periods 2\n",
        path.display()
    );
    let sc = Scenario::from_text(&text).unwrap();
    assert_eq!(
        sc.trace_paths(),
        vec![("replay".to_string(), path.display().to_string())]
    );
    let sets = sc.materialize_task_sets().unwrap();
    assert_eq!(sets.len(), 1);
    assert_eq!(sets[0].1.len(), 3, "set comes from the trace prologue");
    // The traced row replays its recorded stream instead of iterating
    // the two-kind arrivals axis: greedy x 1 set x 1 arrival = 1 cell.
    let campaign = sc.to_campaign().unwrap();
    assert_eq!(campaign.cell_count(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_schedules_dedupe_preserving_order() {
    // Duplicates on the `schedules` line are dropped keeping first
    // positions — the documented `seeds` behavior — instead of silently
    // duplicating every scheduled cell of the grid.
    let sc = Scenario::from_text(
        "acsched-scenario v1\n\
         taskset one\ntask t period=10 wcec=100\nend\n\
         processor p linear kappa=50 vmin=1 vmax=4\n\
         schedules acs wcs acs acs wcs\n\
         policy greedy\nworkload paper\n",
    )
    .unwrap();
    use acs_runtime::ScheduleChoice;
    assert_eq!(sc.schedules, vec![ScheduleChoice::Acs, ScheduleChoice::Wcs]);
    assert_eq!(sc.to_campaign().unwrap().cell_count(), 2);
    // The canonical form carries the deduped line and stays a fixpoint.
    let text = sc.to_text().unwrap();
    assert!(text.contains("\nschedules acs wcs\n"), "{text}");
    assert_eq!(sc, Scenario::from_text(&text).unwrap());
}

#[test]
fn full_scenario_materializes() {
    let sc = Scenario::from_text(FULL).unwrap();
    let sets = sc.materialize_task_sets().unwrap();
    // pair + cnc + 2 random = 4 grid rows.
    assert_eq!(sets.len(), 4);
    assert_eq!(sets[0].0, "pair");
    assert_eq!(sets[1].0, "cnc@0.1");
    assert_eq!(sets[2].0, "n04_r0.5_s000");
    assert_eq!(sets[3].0, "n04_r0.5_s001");
    // The named lookup resolves to the same set as the direct call.
    assert_eq!(
        sets[1].1,
        real_life("cnc", Freq::from_cycles_per_ms(200.0), 0.1, 0.7).unwrap()
    );
    // Inline tasks carry their declared fields (RM order: ctrl first).
    let pair = &sets[0].1;
    assert_eq!(pair.tasks()[0].name(), "ctrl");
    assert_eq!(pair.tasks()[1].deadline(), Ticks::new(15));
    assert_eq!(pair.tasks()[1].c_eff(), 1.5);

    let cpus = sc.materialize_processors().unwrap();
    assert_eq!(cpus.len(), 2);
    assert_eq!(cpus[0].1.f_max().as_cycles_per_ms(), 200.0);
    assert!(matches!(
        cpus[1].1.levels(),
        acs_power::VoltageLevels::Discrete(_)
    ));
    assert_eq!(cpus[1].1.overhead().time.as_ms(), 0.001);
}

#[test]
fn defaults_stay_undeclared() {
    let minimal = "\
acsched-scenario v1
taskset one
task t period=10 wcec=100
end
processor p linear kappa=50 vmin=1 vmax=4
policy greedy
workload paper
";
    let sc = Scenario::from_text(minimal).unwrap();
    assert!(sc.schedules.is_empty());
    assert!(sc.seeds.is_empty());
    assert_eq!(sc.hyper_periods, None);
    assert_eq!(sc.synthesis, None);
    assert!(!sc.acs_multistart);
    assert_eq!(sc.threads, None);
    // Fixpoint holds for the minimal form too, and nothing invents
    // defaults in the output.
    let text = sc.to_text().unwrap();
    assert_eq!(sc, Scenario::from_text(&text).unwrap());
    for absent in [
        "schedules",
        "seeds",
        "hyper_periods",
        "synthesis",
        "threads",
    ] {
        assert!(!text.contains(absent), "`{absent}` appeared in:\n{text}");
    }
    // The campaign still builds: the builder supplies its defaults.
    let campaign = sc.to_campaign().unwrap();
    assert_eq!(campaign.cell_count(), 2); // greedy x default {WCS, ACS}
}

#[test]
fn random_decl_matches_programmatic_batch() {
    let sc = Scenario::from_text(
        "acsched-scenario v1\ntasksets random tasks=3 ratio=0.1 count=2 seed=77 fmax=200\n",
    )
    .unwrap();
    assert_eq!(
        sc.task_sets,
        vec![TaskSetDecl::Random {
            tasks: 3,
            ratio: 0.1,
            count: 2,
            seed: 77,
            f_max: 200.0
        }]
    );
    let sets = sc.materialize_task_sets().unwrap();
    let direct = acs_workloads::paper_set_batch(3, 0.1, 2, 77, Freq::from_cycles_per_ms(200.0));
    assert_eq!(sets, direct, "scenario and programmatic batches agree");
}

/// The malformed-input table: every row is (broken scenario, substrings
/// the error must contain — including the line number).
#[test]
fn malformed_inputs_report_line_and_cause() {
    let table: &[(&str, &[&str])] = &[
        ("", &["empty scenario"]),
        ("acsched-scenario v6\n", &["line 1", "unsupported header"]),
        (
            "acsched-scenario v1\nfrobnicate all\n",
            &["line 2", "unknown directive `frobnicate`"],
        ),
        (
            "acsched-scenario v1\ntask t period=1 wcec=1\n",
            &["line 2", "outside a `taskset"],
        ),
        (
            "acsched-scenario v1\ntaskset a\ntask t period=1 wcec=1\n",
            &["taskset `a`", "never closed with `end`"],
        ),
        (
            "acsched-scenario v1\ntaskset a\nprocessor p linear kappa=50 vmin=1 vmax=4\n",
            &[
                "line 3",
                "inside taskset `a`",
                "expected `task ...` or `end`",
            ],
        ),
        (
            "acsched-scenario v1\ntaskset a\ntask t wcec=1\nend\n",
            &["line 3", "task `t`", "missing required key `period`"],
        ),
        (
            "acsched-scenario v1\ntaskset a\ntask t period=ten wcec=1\nend\n",
            &["line 3", "bad value for `period`", "`ten`"],
        ),
        (
            "acsched-scenario v1\ntaskset a\ntask t period=1 wcec=1 wcec=2\nend\n",
            &["line 3", "duplicate key `wcec`"],
        ),
        (
            "acsched-scenario v1\ntaskset a\ntask t period=1 wcec=1 colour=red\nend\n",
            &["line 3", "unknown key `colour`"],
        ),
        (
            "acsched-scenario v1\ntaskset x from avionics fmax=200\n",
            &[
                "taskset `x`",
                "unknown real-life set `avionics`",
                "cnc, gap",
            ],
        ),
        (
            "acsched-scenario v1\ntasksets random tasks=2 ratio=0.1 seed=1 fmax=200\n",
            &["line 2", "missing required key `count`"],
        ),
        (
            "acsched-scenario v1\nprocessor p cubic kappa=50 vmin=1 vmax=4\n",
            &["line 2", "unknown frequency model `cubic`"],
        ),
        (
            "acsched-scenario v1\nprocessor p linear kappa=50 vmin=1 vmax=4 overhead=1\n",
            &["line 2", "expected `time_ms:energy`"],
        ),
        (
            "acsched-scenario v1\nprocessor p linear kappa=50 vmin=1 vmax=4 levels=1,two\n",
            &["line 2", "bad value for `levels`", "`two`"],
        ),
        (
            "acsched-scenario v1\nschedules wcs acs dvs\n",
            &["line 2", "unknown schedule `dvs`"],
        ),
        (
            "acsched-scenario v1\npolicy lazy\n",
            &["line 2", "unknown policy `lazy`", "reopt"],
        ),
        (
            "acsched-scenario v1\npolicy greedy horizon=4\n",
            &["line 2", "policy `greedy` takes no options"],
        ),
        (
            "acsched-scenario v1\npolicy reopt resolve_at_start=maybe\n",
            &[
                "line 2",
                "bad value for `resolve_at_start`",
                "expected on/off",
            ],
        ),
        (
            "acsched-scenario v1\nworkload bimodal\n",
            &["line 2", "missing required key `p`"],
        ),
        (
            "acsched-scenario v1\nseeds 1 two 3\n",
            &["line 2", "seeds", "`two`"],
        ),
        (
            "acsched-scenario v1\nseeds 1\nseeds 2\n",
            &["line 3", "directive `seeds` declared twice"],
        ),
        (
            "acsched-scenario v1\nhyper_periods many\n",
            &["line 2", "hyper_periods", "`many`"],
        ),
        (
            "acsched-scenario v1\nhyper_periods 0\n",
            &["line 2", "hyper_periods", "positive integer"],
        ),
        (
            "acsched-scenario v1\nsynthesis sloppy\n",
            &["line 2", "synthesis", "`quick` or `default`"],
        ),
        (
            "acsched-scenario v1\nacs_multistart yes\n",
            &["line 2", "acs_multistart", "`on` or `off`"],
        ),
        (
            "acsched-scenario v1\nthreads 0\n",
            &["line 2", "threads", "positive integer"],
        ),
        // ---- v2 grammar: multicore + leakage ----
        (
            "acsched-scenario v1\ncores 2\n",
            &["line 2", "`cores`", "acsched-scenario v2"],
        ),
        (
            "acsched-scenario v1\nprocessor p linear kappa=50 vmin=1 vmax=4 static_power=1\n",
            &["line 2", "static_power", "acsched-scenario v2"],
        ),
        (
            "acsched-scenario v2\ncores\n",
            &["line 2", "cores", "at least one core count"],
        ),
        (
            "acsched-scenario v2\ncores 0\n",
            &["line 2", "cores", "`0` is not a positive core count"],
        ),
        (
            "acsched-scenario v2\ncores two\n",
            &["line 2", "cores", "`two` is not a positive core count"],
        ),
        (
            "acsched-scenario v2\ncores 2 partition=zfd\n",
            &["line 2", "cores", "unknown partition heuristic `zfd`"],
        ),
        (
            "acsched-scenario v2\ncores partition=ffd\n",
            &["line 2", "at least one core count before `partition=`"],
        ),
        (
            "acsched-scenario v2\ncores 2\ncores 4\n",
            &["line 3", "directive `cores` declared twice"],
        ),
        (
            "acsched-scenario v2\nprocessor p linear kappa=50 vmin=1 vmax=4 static_power=-1\n",
            &["line 2", "static_power must be non-negative", "-1"],
        ),
        (
            "acsched-scenario v2\nprocessor p linear kappa=50 vmin=1 vmax=4 idle_power=-0.5\n",
            &["line 2", "idle_power must be non-negative"],
        ),
        (
            "acsched-scenario v2\nprocessor p linear kappa=50 vmin=1 vmax=4 static_power=lots\n",
            &["line 2", "bad value for `static_power`", "`lots`"],
        ),
        (
            "acsched-scenario v2\nprocessor p linear kappa=50 vmin=1 vmax=4 static_power=1,2\n",
            &["line 2", "per-level static_power needs a `levels=` table"],
        ),
        (
            "acsched-scenario v2\nprocessor p linear kappa=50 vmin=1 vmax=4 \
             levels=1,2,4 static_power=1,2\n",
            &["line 2", "2 static_power entries for 3 levels"],
        ),
        // ---- v3 grammar: scheduling classes ----
        (
            "acsched-scenario v2\nclass edf\n",
            &["line 2", "`class`", "acsched-scenario v3"],
        ),
        (
            "acsched-scenario v3\nclass\n",
            &["line 2", "class", "at least one of rm, edf"],
        ),
        (
            "acsched-scenario v3\nclass dm\n",
            &["line 2", "class", "unknown scheduling class `dm`"],
        ),
        // A conflicting `class` redeclaration: the singleton rule names
        // the second line.
        (
            "acsched-scenario v3\nclass rm\nclass edf\n",
            &["line 3", "directive `class` declared twice"],
        ),
        // ---- v4 grammar: arrival processes and traces ----
        (
            "acsched-scenario v3\narrivals poisson\n",
            &["line 2", "`arrivals`", "acsched-scenario v4"],
        ),
        (
            "acsched-scenario v3\ntaskset t trace traces/t.trace\n",
            &["line 2", "`taskset … trace`", "acsched-scenario v4"],
        ),
        (
            "acsched-scenario v4\narrivals\nprocessor p linear kappa=50 vmin=1 vmax=4\n",
            &[
                "line 2",
                "arrivals",
                "at least one of periodic, sporadic, poisson",
            ],
        ),
        (
            "acsched-scenario v4\narrivals uniform\nprocessor p linear kappa=50 vmin=1 vmax=4\n",
            &["line 2", "arrivals", "unknown arrival kind `uniform`"],
        ),
        (
            "acsched-scenario v4\narrivals poisson\narrivals sporadic\n\
             processor p linear kappa=50 vmin=1 vmax=4\n",
            &["line 3", "directive `arrivals` declared twice"],
        ),
        (
            "acsched-scenario v4\ntaskset t trace /no/such/file.trace\n\
             processor p linear kappa=50 vmin=1 vmax=4\n",
            &["taskset `t`", "trace `/no/such/file.trace`"],
        ),
        // ---- v5 grammar: placement axis and precedence graphs ----
        (
            "acsched-scenario v4\nplacement global\n",
            &["line 2", "`placement`", "acsched-scenario v5"],
        ),
        (
            "acsched-scenario v4\ndag x\n",
            &["line 2", "`dag`", "acsched-scenario v5"],
        ),
        (
            "acsched-scenario v5\nplacement\n",
            &["line 2", "placement", "at least one of partitioned, global"],
        ),
        (
            "acsched-scenario v5\nplacement clustered\n",
            &["line 2", "placement", "unknown placement `clustered`"],
        ),
        (
            "acsched-scenario v5\nplacement global\nplacement partitioned\n",
            &["line 3", "directive `placement` declared twice"],
        ),
        (
            "acsched-scenario v5\nedge a->b\n",
            &["line 2", "`edge` outside a `dag"],
        ),
        (
            "acsched-scenario v5\ndag ghost\nend\n",
            &["line 2", "dag `ghost`", "no inline `taskset` block"],
        ),
        (
            "acsched-scenario v5\ntaskset mill from cnc fmax=200\n\
             dag mill\nend\n",
            &["line 3", "dag `mill`", "inline `taskset` blocks only"],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\ntask b period=10 wcec=100\nend\n\
             dag pipe\nedge a->c\nend\n",
            &["line 7", "edge `a->c`", "unknown task `c`"],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\ntask b period=10 wcec=100\nend\n\
             dag pipe\nedge a->a\nend\n",
            &["line 7", "edge `a->a`", "cannot precede itself"],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\ntask b period=10 wcec=100\nend\n\
             dag pipe\nedge a->b\nedge a->b\nend\n",
            &["line 8", "edge `a->b`", "duplicate edge"],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\ntask b period=20 wcec=100\nend\n\
             dag pipe\nedge a->b\nend\n",
            &["line 7", "edge `a->b`", "periods differ", "10 vs 20"],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\ntask b period=10 wcec=100\nend\n\
             dag pipe\nedge a->b\nedge b->a\nend\n",
            &["line 8", "edge `b->a`", "closes a cycle"],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\ntask b period=10 wcec=100\nend\n\
             dag pipe\nedge a->b\nend\n\
             dag pipe\nend\n",
            &["line 9", "dag `pipe`", "declared twice"],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\nend\n\
             dag pipe\nedge a b\n",
            &["line 6", "dag `pipe`", "expected `edge <pred>-><succ>`"],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\nend\n\
             dag pipe\nprocessor p linear kappa=50 vmin=1 vmax=4\n",
            &[
                "line 6",
                "inside dag `pipe`",
                "expected `edge a->b` or `end`",
            ],
        ),
        (
            "acsched-scenario v5\n\
             taskset pipe\ntask a period=10 wcec=100\nend\n\
             dag pipe\nedge a->a\n",
            &["dag `pipe`", "never closed with `end`"],
        ),
    ];
    for (input, needles) in table {
        let err = match Scenario::from_text(input) {
            Err(e) => e.to_string(),
            Ok(sc) => match sc.materialize_task_sets() {
                Err(e) => e.to_string(),
                Ok(_) => panic!("input unexpectedly accepted:\n{input}"),
            },
        };
        for needle in *needles {
            assert!(
                err.contains(needle),
                "error for:\n{input}\nwas `{err}`, missing `{needle}`"
            );
        }
    }
}

#[test]
fn unrepresentable_names_rejected_at_serialization() {
    // A programmatically built scenario whose name cannot survive the
    // whitespace-split line format must fail `to_text` loudly instead
    // of emitting text that reparses as something else.
    let mut sc =
        Scenario::from_text("acsched-scenario v1\nprocessor p linear kappa=50 vmin=1 vmax=4\n")
            .unwrap();
    sc.processors[0].name = "discrete 4".into();
    let err = sc.to_text().unwrap_err().to_string();
    assert!(err.contains("discrete 4"), "{err}");
    assert!(err.contains("not representable"), "{err}");
}

#[test]
fn grid_errors_surface_through_to_campaign() {
    // A parseable scenario whose grid is invalid: the improved
    // CampaignError names every empty axis through the ScenarioError.
    let sc = Scenario::from_text("acsched-scenario v1\npolicy greedy\nworkload paper\n").unwrap();
    let err = sc.to_campaign().unwrap_err().to_string();
    assert!(err.contains("`task_sets`"), "{err}");
    assert!(err.contains("`processors`"), "{err}");
    assert!(!err.contains("`policies`"), "{err}");
}
