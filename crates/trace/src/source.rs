//! Arrival sources: deterministic, seed-keyed job release streams.
//!
//! An [`ArrivalSource`] produces the job releases of one hyper-period
//! *window* at a time — window `w` covers absolute time
//! `[w·H, (w+1)·H)` ms and releases are reported window-local, which is
//! exactly the coordinate system the engine's per-hyper-period event
//! queue runs in. A release near the end of a window may carry a
//! deadline past `H`; the engine lets the window overrun until its
//! jobs complete.
//!
//! Determinism contract: every generated stream is a pure function of
//! `(seed, task)` — task `i` draws from a private
//! [`Stream`](crate::rng::Stream) keyed `mix(seed, i)`, so the stream
//! of one task is unchanged by the presence, parameters or consumption
//! of any other.

use crate::error::TraceError;
use crate::rng::{mix, Stream};
use acs_model::TaskSet;
use std::fmt;
use std::str::FromStr;

/// One job release produced by an [`ArrivalSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalJob {
    /// Task index within the set.
    pub task: usize,
    /// Release time, ms, window-local (`0 ≤ release < H`).
    pub release_ms: f64,
    /// Absolute deadline, ms, window-local (may exceed `H`).
    pub deadline_ms: f64,
    /// Index handed to the workload draw function when
    /// [`ArrivalJob::cycles`] is `None`. The periodic source emits the
    /// legacy hyper-period-major absolute instance index; generated
    /// sources emit a per-task sequence number (pure in
    /// `(seed, task)`).
    pub draw_index: u64,
    /// Execution cycles when the source carries them (trace-driven
    /// jobs); `None` lets the cell's workload model draw.
    pub cycles: Option<f64>,
    /// For periodic sources: the in-hyper-period instance index, which
    /// maps the job onto the static schedule's chunk plan. Aperiodic
    /// jobs (`None`) run on a synthetic single-chunk plan instead.
    pub periodic_instance: Option<u64>,
}

/// A deterministic producer of job releases, consumed one hyper-period
/// window at a time (windows must be filled in order, `0, 1, 2, …`).
///
/// `Send` so campaign runners can build a source on one thread and
/// consume it on a worker.
pub trait ArrivalSource: Send {
    /// Short stable name (doubles as the campaign's `arrivals` label).
    fn name(&self) -> &'static str;

    /// Appends every job released in window `window` to `out`, with
    /// window-local release times. Jobs of one task must be emitted in
    /// release order.
    ///
    /// `out` is a caller-owned scratch buffer: the engine clears and
    /// reuses **one** buffer across every window of a run (its
    /// steady-state loop is allocation-free), so implementations must
    /// only append — never clear, shrink or replace the vector — and
    /// should `reserve` when the window's job count is known up front.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on malformed trace records or out-of-order
    /// window requests.
    fn fill_window(&mut self, window: u64, out: &mut Vec<ArrivalJob>) -> Result<(), TraceError>;

    /// `true` when the source reproduces the strictly periodic release
    /// pattern (enables schedule-boundary callbacks and the legacy
    /// byte-identity guarantees).
    fn periodic(&self) -> bool {
        false
    }

    /// `true` once the source can produce no further job in any later
    /// window (finite traces; generators never exhaust).
    fn exhausted(&self) -> bool {
        false
    }
}

/// The legacy periodic release pattern: task-major instances on the
/// grid `k·Pᵢ`, absolute draw indices in hyper-period-major order —
/// bit-identical to the engine's built-in periodic path.
#[derive(Debug, Clone)]
pub struct Periodic {
    periods: Vec<u64>,
    deadlines: Vec<u64>,
    instances: Vec<u64>,
    total: u64,
}

impl Periodic {
    /// A periodic source over `set`'s release grid.
    pub fn new(set: &TaskSet) -> Self {
        let periods: Vec<u64> = set.tasks().iter().map(|t| t.period().get()).collect();
        let deadlines: Vec<u64> = set.tasks().iter().map(|t| t.deadline().get()).collect();
        let instances: Vec<u64> = set.iter().map(|(tid, _)| set.instances_of(tid)).collect();
        Periodic {
            periods,
            deadlines,
            instances,
            total: set.total_instances(),
        }
    }
}

impl ArrivalSource for Periodic {
    fn name(&self) -> &'static str {
        "periodic"
    }

    fn fill_window(&mut self, window: u64, out: &mut Vec<ArrivalJob>) -> Result<(), TraceError> {
        // Every window releases exactly one hyper-period of jobs; size
        // the (engine-reused) buffer once instead of growing it.
        out.reserve(self.total as usize);
        let mut draw_index = window * self.total;
        for task in 0..self.periods.len() {
            for inst in 0..self.instances[task] {
                // Integer-to-float exactly as the legacy path computes
                // releases — bit-identity depends on it.
                let release = (inst * self.periods[task]) as f64;
                out.push(ArrivalJob {
                    task,
                    release_ms: release,
                    deadline_ms: release + self.deadlines[task] as f64,
                    draw_index,
                    cycles: None,
                    periodic_instance: Some(inst),
                });
                draw_index += 1;
            }
        }
        Ok(())
    }

    fn periodic(&self) -> bool {
        true
    }
}

/// MMPP burstiness presets (rate multipliers and dwell lengths for the
/// two modulating states, all relative to each task's period `P`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmppProfile {
    /// Calm traffic: both states release *below* the periodic rate
    /// (0.3×/0.7× for ~8P each) — mean demand ≈ half the periodic load.
    Light,
    /// Long quiet spells (0.15× for ~12P) punctuated by 3× bursts
    /// (~3P) — mean demand ≈ 0.72× periodic, but burst demand is 3×.
    Bursty,
    /// Sustained overload: 0.8×/1.6× in equal measure — mean demand
    /// 1.2× periodic, the loud-infeasibility stress profile.
    Heavy,
}

impl MmppProfile {
    /// The preset's stable label (`light`/`bursty`/`heavy`).
    pub fn label(&self) -> &'static str {
        match self {
            MmppProfile::Light => "light",
            MmppProfile::Bursty => "bursty",
            MmppProfile::Heavy => "heavy",
        }
    }

    /// `(rates, dwells)`: per-state arrival-rate multipliers of `1/P`
    /// and mean state dwell times in multiples of `P`.
    pub(crate) fn params(&self) -> ([f64; 2], [f64; 2]) {
        match self {
            MmppProfile::Light => ([0.3, 0.7], [8.0, 8.0]),
            MmppProfile::Bursty => ([0.15, 3.0], [12.0, 3.0]),
            MmppProfile::Heavy => ([0.8, 1.6], [6.0, 6.0]),
        }
    }
}

impl fmt::Display for MmppProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for MmppProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "light" => Ok(MmppProfile::Light),
            "bursty" => Ok(MmppProfile::Bursty),
            "heavy" => Ok(MmppProfile::Heavy),
            other => Err(format!(
                "unknown mmpp profile `{other}` (known: light, bursty, heavy)"
            )),
        }
    }
}

/// The per-task generator state machine behind the generated sources.
#[derive(Debug, Clone)]
enum Process {
    /// Next gap `P·(1 + jitter·u)`, `u ∈ [0, 1)` — never below `P`.
    Sporadic { jitter: f64 },
    /// Memoryless gaps with mean `P`.
    Poisson,
    /// Two-state MMPP: exponential gaps at the current state's rate;
    /// a candidate past the state's end is discarded (memorylessness
    /// makes that exact) and the state flips.
    Mmpp {
        rates: [f64; 2],
        dwells: [f64; 2],
        state: usize,
        state_end: f64,
    },
}

/// One task's private stream: RNG, timing parameters, and the next
/// not-yet-emitted arrival.
#[derive(Debug, Clone)]
struct TaskStream {
    rng: Stream,
    period_ms: f64,
    deadline_ms: f64,
    /// Absolute time of the next arrival to emit.
    pending: f64,
    /// Per-task arrival sequence number (the job's `draw_index`).
    seq: u64,
    proc: Process,
}

impl TaskStream {
    fn new(period_ms: f64, deadline_ms: f64, seed: u64, proc: Process) -> Self {
        let mut s = TaskStream {
            rng: Stream::new(seed),
            period_ms,
            deadline_ms,
            pending: 0.0,
            seq: 0,
            proc,
        };
        // The first arrival is one gap past time zero, so no stream
        // collides with the schedule-relevant release at t = 0.
        s.pending = s.next_after(0.0);
        s
    }

    /// The first arrival strictly following time `from`.
    fn next_after(&mut self, from: f64) -> f64 {
        match &mut self.proc {
            Process::Sporadic { jitter } => {
                from + self.period_ms * (1.0 + *jitter * self.rng.next_f64())
            }
            Process::Poisson => from + self.rng.next_exp(self.period_ms),
            Process::Mmpp {
                rates,
                dwells,
                state,
                state_end,
            } => {
                let mut now = from;
                loop {
                    let mean_gap = self.period_ms / rates[*state];
                    let gap = self.rng.next_exp(mean_gap);
                    if now + gap <= *state_end {
                        return now + gap;
                    }
                    // No arrival before the state ends: jump to the
                    // boundary, flip, redraw (exact for a Poisson
                    // process by memorylessness).
                    now = *state_end;
                    *state = 1 - *state;
                    *state_end = now + self.rng.next_exp(self.period_ms * dwells[*state]);
                }
            }
        }
    }
}

/// Shared machinery of the generated sources.
#[derive(Debug, Clone)]
struct Generated {
    streams: Vec<TaskStream>,
    h_ms: f64,
    next_window: u64,
}

impl Generated {
    fn new(set: &TaskSet, seed: u64, make: impl Fn(&mut Stream, f64) -> Process) -> Self {
        let streams = set
            .tasks()
            .iter()
            .enumerate()
            .map(|(i, t)| {
                // Key the task's stream by (seed, task). `make` may
                // draw from the key stream (MMPP seeds its initial
                // dwell there) before the arrival stream is forked off.
                let period_ms = t.period().get() as f64;
                let mut key = Stream::new(mix(seed, i as u64));
                let proc = make(&mut key, period_ms);
                TaskStream::new(period_ms, t.deadline().get() as f64, key.next_u64(), proc)
            })
            .collect();
        Generated {
            streams,
            h_ms: set.hyper_period().get() as f64,
            next_window: 0,
        }
    }

    fn fill_window(&mut self, window: u64, out: &mut Vec<ArrivalJob>) -> Result<(), TraceError> {
        if window != self.next_window {
            return Err(TraceError::msg(format!(
                "arrival windows must be filled in order: expected {}, got {window}",
                self.next_window
            )));
        }
        self.next_window += 1;
        let start = window as f64 * self.h_ms;
        let end = (window + 1) as f64 * self.h_ms;
        for (task, s) in self.streams.iter_mut().enumerate() {
            while s.pending < end {
                let release = s.pending - start;
                out.push(ArrivalJob {
                    task,
                    release_ms: release,
                    deadline_ms: release + s.deadline_ms,
                    draw_index: s.seq,
                    cycles: None,
                    periodic_instance: None,
                });
                s.seq += 1;
                s.pending = s.next_after(s.pending);
            }
        }
        Ok(())
    }
}

/// Sporadic arrivals: minimum inter-arrival `Pᵢ` plus bounded uniform
/// jitter (`gap ∈ [P, P·(1 + JITTER))`).
#[derive(Debug, Clone)]
pub struct Sporadic {
    gen: Generated,
}

impl Sporadic {
    /// Upper jitter bound as a fraction of the period.
    pub const JITTER: f64 = 0.5;

    /// A sporadic source over `set`, keyed by `seed`.
    pub fn new(set: &TaskSet, seed: u64) -> Self {
        Sporadic {
            gen: Generated::new(set, seed, |_, _| Process::Sporadic {
                jitter: Self::JITTER,
            }),
        }
    }
}

impl ArrivalSource for Sporadic {
    fn name(&self) -> &'static str {
        "sporadic"
    }

    fn fill_window(&mut self, window: u64, out: &mut Vec<ArrivalJob>) -> Result<(), TraceError> {
        self.gen.fill_window(window, out)
    }
}

/// Poisson arrivals with mean inter-arrival `Pᵢ` per task.
#[derive(Debug, Clone)]
pub struct Poisson {
    gen: Generated,
}

impl Poisson {
    /// A Poisson source over `set`, keyed by `seed`.
    pub fn new(set: &TaskSet, seed: u64) -> Self {
        Poisson {
            gen: Generated::new(set, seed, |_, _| Process::Poisson),
        }
    }
}

impl ArrivalSource for Poisson {
    fn name(&self) -> &'static str {
        "poisson"
    }

    fn fill_window(&mut self, window: u64, out: &mut Vec<ArrivalJob>) -> Result<(), TraceError> {
        self.gen.fill_window(window, out)
    }
}

/// Markov-modulated Poisson arrivals (two states, [`MmppProfile`]
/// presets).
#[derive(Debug, Clone)]
pub struct Mmpp {
    gen: Generated,
    profile: MmppProfile,
}

impl Mmpp {
    /// An MMPP source over `set`, keyed by `seed`, with the preset's
    /// rates and dwells.
    pub fn new(set: &TaskSet, seed: u64, profile: MmppProfile) -> Self {
        let (rates, dwells) = profile.params();
        Mmpp {
            gen: Generated::new(set, seed, |key, period_ms| Process::Mmpp {
                rates,
                dwells,
                state: 0,
                state_end: key.next_exp(period_ms * dwells[0]),
            }),
            profile,
        }
    }
}

impl ArrivalSource for Mmpp {
    fn name(&self) -> &'static str {
        match self.profile {
            MmppProfile::Light => "mmpp:light",
            MmppProfile::Bursty => "mmpp:bursty",
            MmppProfile::Heavy => "mmpp:heavy",
        }
    }

    fn fill_window(&mut self, window: u64, out: &mut Vec<ArrivalJob>) -> Result<(), TraceError> {
        self.gen.fill_window(window, out)
    }
}

/// The campaign's `arrivals` axis value: which arrival process drives
/// a cell's releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalKind {
    /// Strictly periodic releases (the legacy behavior; the default).
    Periodic,
    /// Minimum inter-arrival plus bounded jitter.
    Sporadic,
    /// Memoryless arrivals at the periodic rate.
    Poisson,
    /// Markov-modulated bursts with the given preset.
    Mmpp(MmppProfile),
}

impl ArrivalKind {
    /// The axis value's stable label, used in reports, CSV/JSONL
    /// columns and the scenario text format.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalKind::Periodic => "periodic",
            ArrivalKind::Sporadic => "sporadic",
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Mmpp(MmppProfile::Light) => "mmpp:light",
            ArrivalKind::Mmpp(MmppProfile::Bursty) => "mmpp:bursty",
            ArrivalKind::Mmpp(MmppProfile::Heavy) => "mmpp:heavy",
        }
    }

    /// `true` for the periodic kind (cells run the legacy release path
    /// with no source attached, guaranteeing byte-identity with v3).
    pub fn is_periodic(&self) -> bool {
        matches!(self, ArrivalKind::Periodic)
    }

    /// Instantiates the source for one cell, keyed by `seed` (callers
    /// mix set and core indices into the seed first).
    pub fn source(&self, set: &TaskSet, seed: u64) -> Box<dyn ArrivalSource> {
        match self {
            ArrivalKind::Periodic => Box::new(Periodic::new(set)),
            ArrivalKind::Sporadic => Box::new(Sporadic::new(set, seed)),
            ArrivalKind::Poisson => Box::new(Poisson::new(set, seed)),
            ArrivalKind::Mmpp(profile) => Box::new(Mmpp::new(set, seed, *profile)),
        }
    }
}

impl fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ArrivalKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "periodic" => Ok(ArrivalKind::Periodic),
            "sporadic" => Ok(ArrivalKind::Sporadic),
            "poisson" => Ok(ArrivalKind::Poisson),
            // Bare `mmpp` means the bursty preset — the profile this
            // axis exists for.
            "mmpp" => Ok(ArrivalKind::Mmpp(MmppProfile::Bursty)),
            other => match other.strip_prefix("mmpp:") {
                Some(profile) => Ok(ArrivalKind::Mmpp(profile.parse()?)),
                None => Err(format!(
                    "unknown arrival kind `{other}` (known: periodic, sporadic, poisson, \
                     mmpp[:light|bursty|heavy])"
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Cycles, Ticks};
    use acs_model::Task;

    fn set() -> TaskSet {
        TaskSet::new(vec![
            Task::builder("a", Ticks::new(10))
                .wcec(Cycles::from_cycles(100.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(20))
                .wcec(Cycles::from_cycles(200.0))
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    fn drain(src: &mut dyn ArrivalSource, windows: u64) -> Vec<ArrivalJob> {
        let mut out = Vec::new();
        for w in 0..windows {
            src.fill_window(w, &mut out).unwrap();
        }
        out
    }

    #[test]
    fn periodic_reproduces_the_release_grid() {
        let set = set();
        let mut src = Periodic::new(&set);
        let jobs = drain(&mut src, 2);
        // 2 + 1 instances per window, task-major, draw indices
        // hyper-period-major.
        assert_eq!(jobs.len(), 6);
        let expected: Vec<(usize, f64, u64)> = vec![
            (0, 0.0, 0),
            (0, 10.0, 1),
            (1, 0.0, 2),
            (0, 0.0, 3),
            (0, 10.0, 4),
            (1, 0.0, 5),
        ];
        let got: Vec<(usize, f64, u64)> = jobs
            .iter()
            .map(|j| (j.task, j.release_ms, j.draw_index))
            .collect();
        assert_eq!(got, expected);
        assert!(jobs.iter().all(|j| j.periodic_instance.is_some()));
        assert!(src.periodic());
    }

    #[test]
    fn sporadic_never_violates_minimum_inter_arrival() {
        let set = set();
        for seed in 0..16 {
            let h = set.hyper_period().get() as f64;
            let mut out = Vec::new();
            let mut src = Sporadic::new(&set, seed);
            let mut last = vec![f64::NEG_INFINITY; set.len()];
            for w in 0..50u64 {
                out.clear();
                src.fill_window(w, &mut out).unwrap();
                for j in &out {
                    let abs = w as f64 * h + j.release_ms;
                    let period = set.tasks()[j.task].period().get() as f64;
                    if last[j.task].is_finite() {
                        assert!(
                            abs - last[j.task] >= period - 1e-9,
                            "seed {seed} task {} gap {} < {period}",
                            j.task,
                            abs - last[j.task]
                        );
                    }
                    last[j.task] = abs;
                }
            }
        }
    }

    #[test]
    fn generated_streams_are_pure_in_seed_and_task() {
        let set = set();
        let a = drain(&mut Poisson::new(&set, 7), 20);
        let b = drain(&mut Poisson::new(&set, 7), 20);
        assert_eq!(a, b);
        let c = drain(&mut Poisson::new(&set, 8), 20);
        assert_ne!(a, c);
        // Task 0's stream is identical even when the set grows another
        // task: streams are keyed (seed, task), not global.
        let bigger = TaskSet::new(vec![
            Task::builder("a", Ticks::new(10))
                .wcec(Cycles::from_cycles(100.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(20))
                .wcec(Cycles::from_cycles(200.0))
                .build()
                .unwrap(),
            Task::builder("c", Ticks::new(20))
                .wcec(Cycles::from_cycles(50.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let d = drain(&mut Poisson::new(&bigger, 7), 20);
        let t0_a: Vec<f64> = a
            .iter()
            .filter(|j| j.task == 0)
            .map(|j| j.release_ms)
            .collect();
        let t0_d: Vec<f64> = d
            .iter()
            .filter(|j| j.task == 0)
            .map(|j| j.release_ms)
            .collect();
        assert_eq!(t0_a, t0_d);
    }

    #[test]
    fn mmpp_presets_modulate_the_rate() {
        let set = set();
        let windows = 200;
        let count = |profile| {
            drain(&mut Mmpp::new(&set, 3, profile), windows)
                .iter()
                .filter(|j| j.task == 0)
                .count() as f64
        };
        let periodic_jobs = (windows * 2) as f64; // task 0: 2 instances/window
        let light = count(MmppProfile::Light);
        let bursty = count(MmppProfile::Bursty);
        let heavy = count(MmppProfile::Heavy);
        // Mean rates: light ≈ 0.5×, bursty ≈ 0.72×, heavy ≈ 1.2×.
        assert!(light < periodic_jobs, "light {light} vs {periodic_jobs}");
        assert!(heavy > periodic_jobs, "heavy {heavy} vs {periodic_jobs}");
        assert!(light < bursty && bursty < heavy, "{light} {bursty} {heavy}");
    }

    #[test]
    fn windows_must_be_filled_in_order() {
        let set = set();
        let mut src = Poisson::new(&set, 1);
        let mut out = Vec::new();
        src.fill_window(0, &mut out).unwrap();
        let err = src.fill_window(2, &mut out).unwrap_err();
        assert!(err.message.contains("in order"), "{err}");
    }

    #[test]
    fn arrival_kind_labels_round_trip() {
        let kinds = [
            ArrivalKind::Periodic,
            ArrivalKind::Sporadic,
            ArrivalKind::Poisson,
            ArrivalKind::Mmpp(MmppProfile::Light),
            ArrivalKind::Mmpp(MmppProfile::Bursty),
            ArrivalKind::Mmpp(MmppProfile::Heavy),
        ];
        for k in kinds {
            assert_eq!(k.label().parse::<ArrivalKind>().unwrap(), k);
        }
        assert_eq!(
            "mmpp".parse::<ArrivalKind>().unwrap(),
            ArrivalKind::Mmpp(MmppProfile::Bursty)
        );
        assert!("warp".parse::<ArrivalKind>().unwrap_err().contains("known"));
        // Source names agree with axis labels.
        let set = set();
        for k in kinds {
            assert_eq!(k.source(&set, 0).name(), k.label());
        }
    }

    #[test]
    fn releases_are_window_local_and_in_range() {
        let set = set();
        let h = set.hyper_period().get() as f64;
        for kind in [
            ArrivalKind::Sporadic,
            ArrivalKind::Poisson,
            ArrivalKind::Mmpp(MmppProfile::Bursty),
        ] {
            let mut src = kind.source(&set, 11);
            let mut out = Vec::new();
            for w in 0..30u64 {
                out.clear();
                src.fill_window(w, &mut out).unwrap();
                for j in &out {
                    assert!(
                        j.release_ms >= 0.0 && j.release_ms < h,
                        "{kind}: release {} outside [0, {h})",
                        j.release_ms
                    );
                    assert!(j.deadline_ms > j.release_ms);
                    assert!(j.cycles.is_none() && j.periodic_instance.is_none());
                }
            }
            assert!(!src.exhausted(), "{kind}: generators never exhaust");
        }
    }
}
