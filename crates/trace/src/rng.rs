//! Hermetic SplitMix64 streams for deterministic arrival generation.
//!
//! The workspace has no crate-registry RNG; arrival sources need
//! streams that are (a) dependency-free, (b) fast, and (c) *keyable* —
//! `stream(mix(seed, task))` must be a pure function of its key so
//! per-task streams never interact. SplitMix64 satisfies all three,
//! and [`mix`] uses the exact finalizer the campaign runner already
//! uses to derive per-set draw seeds, so seed discipline is uniform
//! across the workspace.

/// Mixes a salt into a seed (SplitMix64 finalizer). Pure, and
/// identical to the campaign runner's per-set seed derivation.
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xD129_0793_66CA_8C21));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 stream: 2⁶⁴-period, allocation-free, `Copy`-cheap.
#[derive(Debug, Clone)]
pub struct Stream {
    state: u64,
}

impl Stream {
    /// A stream keyed by `seed` (use [`mix`] to derive sub-keys).
    pub fn new(seed: u64) -> Self {
        Stream { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53-bit mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential draw with the given mean (inverse-CDF;
    /// `-mean·ln(1-u)` with `u ∈ [0, 1)`, so the result is finite).
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_campaign_finalizer() {
        // Pinned values: the campaign runner derives per-set draw seeds
        // with this exact finalizer, and arrival keying must agree.
        assert_eq!(mix(7, 0), mix(7, 0));
        assert_ne!(mix(7, 0), mix(7, 1));
        assert_ne!(mix(7, 0), mix(8, 0));
    }

    #[test]
    fn stream_is_pure_in_its_seed() {
        let a: Vec<u64> = {
            let mut s = Stream::new(42);
            (0..32).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = Stream::new(42);
            (0..32).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut s = Stream::new(43);
            (0..32).map(|_| s.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_draws_live_in_unit_interval() {
        let mut s = Stream::new(1);
        for _ in 0..10_000 {
            let u = s.next_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn exponential_draws_are_finite_positive_with_plausible_mean() {
        let mut s = Stream::new(2);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n)
            .map(|_| {
                let x = s.next_exp(mean);
                assert!(x.is_finite() && x >= 0.0, "{x}");
                x
            })
            .sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.2 * mean,
            "observed mean {observed} vs {mean}"
        );
    }
}
