//! # acs-trace
//!
//! Arrival sources and the streaming `acsched-trace v1` format for the
//! `acsched` workspace — the layer that opens the strictly periodic
//! simulator to sporadic, bursty and trace-driven traffic.
//!
//! Everything the engine ran before this crate existed was released on
//! the periodic grid `k·Pᵢ`. An [`ArrivalSource`] instead *produces*
//! job releases, one hyper-period window at a time, and `acs-sim`
//! feeds them to its event queue as native `Release` events. Four
//! sources ship here:
//!
//! * [`Periodic`] — reproduces the legacy periodic release pattern
//!   bit-for-bit (proven by the workspace's differential tests);
//! * [`Sporadic`] — minimum inter-arrival `Pᵢ` plus bounded uniform
//!   jitter, the classic sporadic task model;
//! * [`Poisson`] — memoryless arrivals with mean inter-arrival `Pᵢ`;
//! * [`Mmpp`] — a two-state Markov-modulated Poisson process with
//!   [`MmppProfile`] light/bursty/heavy presets, in the spirit of the
//!   EAPS workload generator.
//!
//! Every generated stream is a **pure function of `(seed, task)`**:
//! each task draws from its own [`rng`] stream keyed by
//! `mix(seed, task)`, so streams never interact and a campaign can
//! re-key per core as `(seed, set, core)` without cross-talk.
//!
//! The second half of the crate is the `acsched-trace v1` text format
//! (`docs/TRACE_FORMAT.md`): a self-contained task prologue followed by
//! one `arrival_ms task_id cycles` record per job. [`TraceReader`]
//! streams records through a bounded buffer — a multi-GB trace never
//! loads fully — and [`TraceSource`] adapts it into an
//! [`ArrivalSource`]. [`TraceWriter`] and [`generate`] produce traces
//! (the CLI's `acsched trace gen` synthesizes million-job traces from
//! the MMPP presets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;
mod gen;
pub mod rng;
mod source;

pub use error::TraceError;
pub use format::{TraceReader, TraceRecord, TraceSource, TraceWriter, TRACE_HEADER};
pub use gen::{builtin_task_set, generate, GenConfig, GenSummary};
pub use source::{
    ArrivalJob, ArrivalKind, ArrivalSource, Mmpp, MmppProfile, Periodic, Poisson, Sporadic,
};
