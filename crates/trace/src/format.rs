//! The `acsched-trace v1` streaming text format.
//!
//! ```text
//! acsched-trace v1
//! tasks 2
//! # name period deadline wcec acec bcec c_eff
//! video 10 10 100 40 10 1
//! audio 20 20 200 80 20 1
//! # arrival_ms task_id cycles
//! 3.5 0 87
//! 11.25 1 190
//! 14 0 62
//! ```
//!
//! A trace is self-contained: a small *prologue* declares the task set
//! (one task per line, the exact 7-field grammar of the
//! `acsched-taskset v1` artifact, in priority order), and every
//! following non-comment line is one job release:
//! `arrival_ms task_id cycles`, with arrivals nondecreasing and
//! `task_id` a 0-based index into the prologue.
//!
//! [`TraceReader`] keeps **bounded memory**: the prologue is read
//! eagerly (it is O(tasks)), records stream through a single reusable
//! line buffer plus one pushed-back record of lookahead — a multi-GB
//! trace never loads fully. [`TraceWriter`] is the mirror image and
//! validates what it emits, so a written trace always reads back.
//!
//! See `docs/TRACE_FORMAT.md` for the full grammar and the streaming
//! memory contract.

use crate::error::TraceError;
use crate::source::{ArrivalJob, ArrivalSource};
use acs_model::{text, Task, TaskSet};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// First line of every trace file.
pub const TRACE_HEADER: &str = "acsched-trace v1";

/// One job release of a trace: absolute arrival time, task index, and
/// the job's execution demand in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Absolute arrival time, ms, nondecreasing across the trace.
    pub arrival_ms: f64,
    /// 0-based index into the trace's task prologue.
    pub task: usize,
    /// Execution cycles of this job (the engine clamps to the task's
    /// WCEC, counting the clamp).
    pub cycles: f64,
}

/// Reads the next non-blank, non-comment line into `buf`, returning
/// `Ok(None)` at end of input. `line` is advanced past everything
/// consumed, so errors always carry the right 1-based number.
fn next_payload_line<R: BufRead>(
    input: &mut R,
    buf: &mut String,
    line: &mut usize,
) -> Result<bool, TraceError> {
    loop {
        buf.clear();
        let n = input
            .read_line(buf)
            .map_err(|e| TraceError::at(*line + 1, format!("read failed: {e}")))?;
        if n == 0 {
            return Ok(false);
        }
        *line += 1;
        let t = buf.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        return Ok(true);
    }
}

/// Streaming reader for `acsched-trace v1` files.
///
/// The prologue task set is available immediately after construction
/// via [`TraceReader::set`]; records then stream one at a time through
/// [`TraceReader::next_record`] with one record of pushback.
#[derive(Debug)]
pub struct TraceReader<R = BufReader<File>> {
    input: R,
    set: TaskSet,
    buf: String,
    /// 1-based number of the last line read.
    line: usize,
    /// Arrival of the most recent record (monotonicity check).
    last_arrival: f64,
    pushed_back: Option<TraceRecord>,
    records_read: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file and reads its prologue.
    ///
    /// # Errors
    ///
    /// [`TraceError`] when the file cannot be opened or the prologue is
    /// malformed; the path is folded into the message.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let file = File::open(path)
            .map_err(|e| TraceError::msg(format!("cannot open `{}`: {e}", path.display())))?;
        TraceReader::new(BufReader::new(file)).map_err(|e| TraceError {
            line: e.line,
            message: format!("{} (in `{}`)", e.message, path.display()),
        })
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered reader and eagerly parses the header and task
    /// prologue, leaving the cursor at the first record.
    ///
    /// # Errors
    ///
    /// [`TraceError`] with the offending 1-based line number on any
    /// header or prologue problem.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut buf = String::new();
        let mut line = 0usize;

        if !next_payload_line(&mut input, &mut buf, &mut line)? {
            return Err(TraceError::msg("empty trace"));
        }
        let header = buf.trim();
        if header != TRACE_HEADER {
            return Err(TraceError::at(
                line,
                format!("unsupported header `{header}` (expected `{TRACE_HEADER}`)"),
            ));
        }

        if !next_payload_line(&mut input, &mut buf, &mut line)? {
            return Err(TraceError::at(line, "missing `tasks <count>` line"));
        }
        let count_line = buf.trim().to_string();
        let count: usize = count_line
            .strip_prefix("tasks ")
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| TraceError::at(line, format!("bad tasks line `{count_line}`")))?;

        // Each prologue line is parsed through the model's own task
        // grammar (as a one-task artifact), so field semantics and
        // validation are exactly those of `acsched-taskset v1` — with
        // per-line error anchoring on top.
        let mut tasks: Vec<Task> = Vec::with_capacity(count);
        let mut names: Vec<String> = Vec::with_capacity(count);
        for _ in 0..count {
            if !next_payload_line(&mut input, &mut buf, &mut line)? {
                return Err(TraceError::at(
                    line,
                    format!(
                        "prologue declares {count} tasks but ends after {}",
                        tasks.len()
                    ),
                ));
            }
            let task_line = buf.trim();
            let artifact = format!("acsched-taskset v1\ntasks 1\n{task_line}\n");
            let one = text::from_text(&artifact)
                .map_err(|e| TraceError::at(line, format!("bad task line: {e}")))?;
            let task = one.tasks()[0].clone();
            names.push(task.name().to_string());
            tasks.push(task);
        }
        let set = TaskSet::new(tasks)
            .map_err(|e| TraceError::at(line, format!("invalid task prologue: {e}")))?;
        // Task ids index the prologue; `TaskSet` orders tasks by
        // priority, so an out-of-order prologue would silently remap
        // every record's task id. Refuse instead.
        let sorted: Vec<&str> = set.tasks().iter().map(Task::name).collect();
        if sorted != names.iter().map(String::as_str).collect::<Vec<_>>() {
            return Err(TraceError::at(
                line,
                "prologue tasks must be listed in priority order \
                 (shortest period first); task ids would be remapped otherwise",
            ));
        }

        Ok(TraceReader {
            input,
            set,
            buf,
            line,
            last_arrival: f64::NEG_INFINITY,
            pushed_back: None,
            records_read: 0,
        })
    }

    /// The task set declared by the trace prologue.
    pub fn set(&self) -> &TaskSet {
        &self.set
    }

    /// Number of records returned so far (pushback rewinds it).
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Streams the next record, `Ok(None)` at end of trace.
    ///
    /// # Errors
    ///
    /// [`TraceError`] with the record's 1-based line number on a
    /// malformed field, an out-of-range task id, or a decreasing
    /// arrival time.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if let Some(rec) = self.pushed_back.take() {
            self.records_read += 1;
            return Ok(Some(rec));
        }
        if !next_payload_line(&mut self.input, &mut self.buf, &mut self.line)? {
            return Ok(None);
        }
        let line = self.line;
        let text = self.buf.trim();
        let mut fields = text.split_whitespace();
        let (Some(a), Some(t), Some(c), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(TraceError::at(
                line,
                format!("expected `arrival_ms task_id cycles`, got `{text}`"),
            ));
        };
        let arrival_ms: f64 = a
            .parse()
            .map_err(|_| TraceError::at(line, format!("bad arrival `{a}`")))?;
        if !arrival_ms.is_finite() || arrival_ms < 0.0 {
            return Err(TraceError::at(
                line,
                format!("arrival must be finite and >= 0, got `{a}`"),
            ));
        }
        if arrival_ms < self.last_arrival {
            return Err(TraceError::at(
                line,
                format!(
                    "arrivals must be nondecreasing: {a} after {}",
                    self.last_arrival
                ),
            ));
        }
        let task: usize = t
            .parse()
            .map_err(|_| TraceError::at(line, format!("bad task id `{t}`")))?;
        if task >= self.set.len() {
            return Err(TraceError::at(
                line,
                format!(
                    "task id {task} out of range (trace declares {} tasks)",
                    self.set.len()
                ),
            ));
        }
        let cycles: f64 = c
            .parse()
            .map_err(|_| TraceError::at(line, format!("bad cycles `{c}`")))?;
        if !cycles.is_finite() || cycles < 0.0 {
            return Err(TraceError::at(
                line,
                format!("cycles must be finite and >= 0, got `{c}`"),
            ));
        }
        self.last_arrival = arrival_ms;
        self.records_read += 1;
        Ok(Some(TraceRecord {
            arrival_ms,
            task,
            cycles,
        }))
    }

    /// Returns a record to the reader; the next [`next_record`] call
    /// yields it again. At most one record can be held back.
    ///
    /// [`next_record`]: TraceReader::next_record
    pub fn push_back(&mut self, rec: TraceRecord) {
        debug_assert!(self.pushed_back.is_none(), "single-slot pushback");
        self.records_read -= 1;
        self.pushed_back = Some(rec);
    }
}

/// Streaming writer for `acsched-trace v1` files: emits the header and
/// prologue up front, then validates and appends one record per call.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    task_count: usize,
    last_arrival: f64,
    records_written: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file and writes its prologue.
    ///
    /// # Errors
    ///
    /// [`TraceError`] when the file cannot be created or the set is not
    /// representable in the text format.
    pub fn create(path: impl AsRef<Path>, set: &TaskSet) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| TraceError::msg(format!("cannot create `{}`: {e}", path.display())))?;
        TraceWriter::new(BufWriter::new(file), set)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer and emits the header and task prologue.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on I/O failure or a set whose task names cannot
    /// survive the line-oriented format.
    pub fn new(mut out: W, set: &TaskSet) -> Result<Self, TraceError> {
        let artifact = text::to_text(set)
            .map_err(|e| TraceError::msg(format!("set not representable: {e}")))?;
        // Reuse the taskset artifact body (count + comment + task
        // lines) verbatim under the trace header.
        let body = artifact
            .strip_prefix("acsched-taskset v1\n")
            .expect("taskset artifacts start with their header");
        write!(out, "{TRACE_HEADER}\n{body}# arrival_ms task_id cycles\n")
            .map_err(|e| TraceError::msg(format!("write failed: {e}")))?;
        Ok(TraceWriter {
            out,
            task_count: set.len(),
            last_arrival: 0.0,
            records_written: 0,
        })
    }

    /// Appends one record, enforcing the same invariants the reader
    /// checks (finite nonnegative fields, nondecreasing arrivals,
    /// in-range task id).
    ///
    /// # Errors
    ///
    /// [`TraceError`] on an invalid record or I/O failure.
    pub fn write(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        if !rec.arrival_ms.is_finite() || rec.arrival_ms < self.last_arrival {
            return Err(TraceError::msg(format!(
                "arrival {} not finite-nondecreasing (last {})",
                rec.arrival_ms, self.last_arrival
            )));
        }
        if rec.task >= self.task_count {
            return Err(TraceError::msg(format!(
                "task id {} out of range ({} tasks)",
                rec.task, self.task_count
            )));
        }
        if !rec.cycles.is_finite() || rec.cycles < 0.0 {
            return Err(TraceError::msg(format!("bad cycles {}", rec.cycles)));
        }
        writeln!(self.out, "{} {} {}", rec.arrival_ms, rec.task, rec.cycles)
            .map_err(|e| TraceError::msg(format!("write failed: {e}")))?;
        self.last_arrival = rec.arrival_ms;
        self.records_written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on flush failure.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.out
            .flush()
            .map_err(|e| TraceError::msg(format!("flush failed: {e}")))?;
        Ok(self.out)
    }
}

/// Adapts a [`TraceReader`] into an [`ArrivalSource`]: records are
/// sliced into hyper-period windows of the prologue set, carrying their
/// cycles with them. The source [`exhausted`]s when the trace ends.
///
/// [`exhausted`]: ArrivalSource::exhausted
#[derive(Debug)]
pub struct TraceSource<R = BufReader<File>> {
    reader: TraceReader<R>,
    h_ms: f64,
    deadlines_ms: Vec<f64>,
    next_window: u64,
    done: bool,
    emitted: u64,
}

impl TraceSource<BufReader<File>> {
    /// Opens a trace file as an arrival source.
    ///
    /// # Errors
    ///
    /// [`TraceError`] from [`TraceReader::open`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Ok(TraceSource::new(TraceReader::open(path)?))
    }
}

impl<R: BufRead> TraceSource<R> {
    /// Wraps an already-opened reader.
    pub fn new(reader: TraceReader<R>) -> Self {
        let h_ms = reader.set().hyper_period().get() as f64;
        let deadlines_ms = reader
            .set()
            .tasks()
            .iter()
            .map(|t| t.deadline().get() as f64)
            .collect();
        TraceSource {
            reader,
            h_ms,
            deadlines_ms,
            next_window: 0,
            done: false,
            emitted: 0,
        }
    }

    /// The task set declared by the trace prologue.
    pub fn set(&self) -> &TaskSet {
        self.reader.set()
    }
}

impl<R: BufRead + Send> ArrivalSource for TraceSource<R> {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn fill_window(&mut self, window: u64, out: &mut Vec<ArrivalJob>) -> Result<(), TraceError> {
        if window != self.next_window {
            return Err(TraceError::msg(format!(
                "arrival windows must be filled in order: expected {}, got {window}",
                self.next_window
            )));
        }
        self.next_window += 1;
        if self.done {
            return Ok(());
        }
        let start = window as f64 * self.h_ms;
        let end = (window + 1) as f64 * self.h_ms;
        loop {
            let Some(rec) = self.reader.next_record()? else {
                self.done = true;
                return Ok(());
            };
            if rec.arrival_ms >= end {
                // One record of lookahead: it belongs to a later
                // window, hand it back.
                self.reader.push_back(rec);
                return Ok(());
            }
            let release = rec.arrival_ms - start;
            out.push(ArrivalJob {
                task: rec.task,
                release_ms: release,
                deadline_ms: release + self.deadlines_ms[rec.task],
                draw_index: self.emitted,
                cycles: Some(rec.cycles),
                periodic_instance: None,
            });
            self.emitted += 1;
        }
    }

    fn exhausted(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Cycles, Ticks};
    use std::io::Cursor;

    fn set() -> TaskSet {
        TaskSet::new(vec![
            Task::builder("a", Ticks::new(10))
                .wcec(Cycles::from_cycles(100.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(20))
                .wcec(Cycles::from_cycles(200.0))
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    fn trace_text(records: &[(f64, usize, f64)]) -> String {
        let mut w = TraceWriter::new(Vec::new(), &set()).unwrap();
        for &(arrival_ms, task, cycles) in records {
            w.write(&TraceRecord {
                arrival_ms,
                task,
                cycles,
            })
            .unwrap();
        }
        String::from_utf8(w.finish().unwrap()).unwrap()
    }

    #[test]
    fn written_traces_read_back_exactly() {
        let records = [
            (0.5, 0, 80.0),
            (7.0, 1, 150.0),
            (7.0, 0, 12.5),
            (25.0, 1, 199.0),
        ];
        let text = trace_text(&records);
        assert!(text.starts_with("acsched-trace v1\ntasks 2\n"));
        let mut r = TraceReader::new(Cursor::new(text)).unwrap();
        assert_eq!(r.set(), &set());
        let mut back = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            back.push((rec.arrival_ms, rec.task, rec.cycles));
        }
        assert_eq!(back.as_slice(), records.as_slice());
        assert_eq!(r.records_read(), 4);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# leading comment\nacsched-trace v1\n\ntasks 1\n\
                    # name period deadline wcec acec bcec c_eff\n\
                    a 10 10 100 100 100 1\n\n# records\n1.5 0 50\n\n# trailing\n";
        let mut r = TraceReader::new(Cursor::new(text)).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(
            rec,
            TraceRecord {
                arrival_ms: 1.5,
                task: 0,
                cycles: 50.0
            }
        );
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        // Bad header, line 1.
        let e = TraceReader::new(Cursor::new("acsched-trace v9\n")).unwrap_err();
        assert_eq!(e.line, Some(1));
        // Bad record appended after the 6-line prologue block
        // (header, tasks, field comment, 2 task lines, record comment).
        let good = trace_text(&[]);
        let e = TraceReader::new(Cursor::new(format!("{good}nope 0 1\n")))
            .unwrap()
            .next_record()
            .unwrap_err();
        assert_eq!(e.line, Some(7), "{e}");
        assert!(e.message.contains("bad arrival"), "{e}");
        // Decreasing arrivals.
        let mut r = TraceReader::new(Cursor::new(format!("{good}5 0 1\n4 0 1\n"))).unwrap();
        r.next_record().unwrap();
        let e = r.next_record().unwrap_err();
        assert!(e.message.contains("nondecreasing"), "{e}");
        // Task id out of range.
        let e = TraceReader::new(Cursor::new(format!("{good}5 9 1\n")))
            .unwrap()
            .next_record()
            .unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        // Prologue not in priority order.
        let swapped = "acsched-trace v1\ntasks 2\n\
                       b 20 20 200 200 200 1\na 10 10 100 100 100 1\n";
        let e = TraceReader::new(Cursor::new(swapped)).unwrap_err();
        assert!(e.message.contains("priority order"), "{e}");
    }

    #[test]
    fn writer_rejects_what_the_reader_would() {
        let mut w = TraceWriter::new(Vec::new(), &set()).unwrap();
        w.write(&TraceRecord {
            arrival_ms: 5.0,
            task: 0,
            cycles: 1.0,
        })
        .unwrap();
        assert!(w
            .write(&TraceRecord {
                arrival_ms: 4.0,
                task: 0,
                cycles: 1.0
            })
            .is_err());
        assert!(w
            .write(&TraceRecord {
                arrival_ms: 6.0,
                task: 7,
                cycles: 1.0
            })
            .is_err());
        assert!(w
            .write(&TraceRecord {
                arrival_ms: 6.0,
                task: 0,
                cycles: f64::NAN
            })
            .is_err());
    }

    #[test]
    fn trace_source_slices_records_into_windows() {
        // H = 20ms. Records straddle three windows; 40.0 lands exactly
        // on a boundary and belongs to window 2.
        let text = trace_text(&[
            (0.5, 0, 80.0),
            (19.0, 1, 150.0),
            (21.0, 0, 30.0),
            (40.0, 0, 10.0),
        ]);
        let mut src = TraceSource::new(TraceReader::new(Cursor::new(text)).unwrap());
        assert_eq!(src.name(), "trace");
        assert!(!src.periodic());

        let mut out = Vec::new();
        src.fill_window(0, &mut out).unwrap();
        assert_eq!(
            out.iter()
                .map(|j| (j.task, j.release_ms))
                .collect::<Vec<_>>(),
            vec![(0, 0.5), (1, 19.0)]
        );
        assert_eq!(out[0].cycles, Some(80.0));
        assert_eq!(out[1].deadline_ms, 19.0 + 20.0);
        assert!(!src.exhausted());

        out.clear();
        src.fill_window(1, &mut out).unwrap();
        assert_eq!(
            out.iter()
                .map(|j| (j.task, j.release_ms))
                .collect::<Vec<_>>(),
            vec![(0, 1.0)]
        );

        out.clear();
        src.fill_window(2, &mut out).unwrap();
        assert_eq!(
            out.iter()
                .map(|j| (j.task, j.release_ms))
                .collect::<Vec<_>>(),
            vec![(0, 0.0)]
        );
        out.clear();
        src.fill_window(3, &mut out).unwrap();
        assert!(out.is_empty());
        assert!(src.exhausted());

        // Windows must be sequential.
        assert!(src.fill_window(9, &mut out).is_err());
    }
}
