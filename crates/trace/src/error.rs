//! Error type for trace parsing and arrival-source failures.

use std::error::Error as StdError;
use std::fmt;

/// An error while reading, writing or generating a trace, or while an
/// arrival source fills a window.
///
/// Parse errors carry the 1-based line number of the offending record,
/// matching the scenario format's error style; I/O and generation
/// errors carry none.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// 1-based line number in the trace text, when known.
    pub line: Option<usize>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl TraceError {
    /// An error anchored at a line of the trace text.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        TraceError {
            line: Some(line),
            message: message.into(),
        }
    }

    /// An error with no line anchor (I/O, generation, source state).
    pub fn msg(message: impl Into<String>) -> Self {
        TraceError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "trace line {line}: {}", self.message),
            None => write!(f, "trace: {}", self.message),
        }
    }
}

impl StdError for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_when_known() {
        assert_eq!(
            TraceError::at(7, "bad record").to_string(),
            "trace line 7: bad record"
        );
        assert_eq!(TraceError::msg("boom").to_string(), "trace: boom");
    }
}
