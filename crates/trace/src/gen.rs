//! Deterministic trace synthesis: `acsched trace gen` in library form.
//!
//! [`generate`] drives the [`Mmpp`] arrival source over a small
//! built-in task set and streams the resulting releases straight into a
//! [`TraceWriter`] — memory stays O(jobs-per-hyper-period) no matter
//! how many jobs are requested, so a million-job trace generates in
//! seconds without ever materializing in memory. Everything is a pure
//! function of [`GenConfig`]: same config, byte-identical trace.

use crate::error::TraceError;
use crate::format::{TraceRecord, TraceWriter};
use crate::rng::{mix, Stream};
use crate::source::{ArrivalSource, Mmpp, MmppProfile};
use acs_model::units::{Cycles, Ticks};
use acs_model::{Task, TaskSet};
use std::io::Write;

/// Salt chaining the per-task *cycle* streams away from the per-task
/// *arrival* streams (which are keyed `mix(seed, task)` directly).
const CYCLE_SALT: u64 = 0x00C1_C1E5;

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Burstiness preset driving the MMPP arrival process.
    pub profile: MmppProfile,
    /// Exact number of records to emit.
    pub jobs: u64,
    /// Seed; the trace is a pure function of the whole config.
    pub seed: u64,
    /// Number of tasks in the built-in set (clamped to 1..=8).
    pub tasks: usize,
}

/// What [`generate`] produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenSummary {
    /// Records emitted (always equals the requested job count).
    pub jobs: u64,
    /// Tasks in the prologue.
    pub tasks: usize,
    /// Arrival time of the last record, ms.
    pub span_ms: f64,
    /// Hyper-period windows consumed — the `hyper_periods` a scenario
    /// needs to replay the whole trace.
    pub windows: u64,
}

/// The generator's built-in task set: `n` tasks (clamped to 1..=8) with
/// harmonic periods 10·2^(i mod 4) ms, WCEC 6 cycles per ms of period,
/// ACEC/BCEC at 1/2 and 1/4 of WCEC — a modest per-task load that
/// leaves the burstiness presets room on either side of feasibility.
pub fn builtin_task_set(n: usize) -> TaskSet {
    let n = n.clamp(1, 8);
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            let period = 10u64 << (i % 4);
            let wcec = (period * 6) as f64;
            Task::builder(format!("t{i}"), Ticks::new(period))
                .wcec(Cycles::from_cycles(wcec))
                .acec(Cycles::from_cycles(wcec / 2.0))
                .bcec(Cycles::from_cycles(wcec / 4.0))
                .build()
                .expect("builtin tasks satisfy model invariants")
        })
        .collect();
    TaskSet::new(tasks).expect("builtin set satisfies model invariants")
}

/// Streams `cfg.jobs` MMPP-released records into `out` as a complete
/// `acsched-trace v1` document over [`builtin_task_set`].
///
/// Job cycles are drawn uniformly in `[BCEC, WCEC]` from per-task
/// streams keyed independently of the arrival streams, so arrival
/// times and demands are separately reproducible.
///
/// # Errors
///
/// [`TraceError`] on I/O failure (the generator itself cannot produce
/// an invalid record).
pub fn generate<W: Write>(cfg: &GenConfig, out: W) -> Result<GenSummary, TraceError> {
    let set = builtin_task_set(cfg.tasks);
    let mut writer = TraceWriter::new(out, &set)?;
    let mut src = Mmpp::new(&set, cfg.seed, cfg.profile);
    let h_ms = set.hyper_period().get() as f64;
    let mut cycle_streams: Vec<Stream> = (0..set.len())
        .map(|i| Stream::new(mix(mix(cfg.seed, CYCLE_SALT), i as u64)))
        .collect();
    let ranges: Vec<(f64, f64)> = set
        .tasks()
        .iter()
        .map(|t| (t.bcec().as_cycles(), t.wcec().as_cycles()))
        .collect();

    let mut written = 0u64;
    let mut window = 0u64;
    let mut span_ms = 0.0f64;
    let mut buf = Vec::new();
    while written < cfg.jobs {
        buf.clear();
        src.fill_window(window, &mut buf)?;
        let start = window as f64 * h_ms;
        // Window emission is task-major; the format wants global
        // arrival order. Stable sort keeps ties task-major, so the
        // record sequence stays deterministic.
        buf.sort_by(|a, b| a.release_ms.total_cmp(&b.release_ms));
        for job in &buf {
            if written == cfg.jobs {
                break;
            }
            let (lo, hi) = ranges[job.task];
            let cycles = lo + (hi - lo) * cycle_streams[job.task].next_f64();
            let arrival_ms = start + job.release_ms;
            writer.write(&TraceRecord {
                arrival_ms,
                task: job.task,
                cycles,
            })?;
            span_ms = arrival_ms;
            written += 1;
        }
        window += 1;
    }
    writer.finish()?;
    Ok(GenSummary {
        jobs: written,
        tasks: set.len(),
        span_ms,
        windows: window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceReader;
    use std::io::Cursor;

    fn gen_bytes(cfg: &GenConfig) -> Vec<u8> {
        let mut out = Vec::new();
        generate(cfg, &mut out).unwrap();
        out
    }

    #[test]
    fn generation_is_a_pure_function_of_the_config() {
        let cfg = GenConfig {
            profile: MmppProfile::Bursty,
            jobs: 500,
            seed: 42,
            tasks: 4,
        };
        assert_eq!(gen_bytes(&cfg), gen_bytes(&cfg));
        assert_ne!(gen_bytes(&cfg), gen_bytes(&GenConfig { seed: 43, ..cfg }));
        assert_ne!(
            gen_bytes(&cfg),
            gen_bytes(&GenConfig {
                profile: MmppProfile::Heavy,
                ..cfg
            })
        );
    }

    #[test]
    fn generated_traces_validate_end_to_end() {
        let cfg = GenConfig {
            profile: MmppProfile::Light,
            jobs: 1000,
            seed: 7,
            tasks: 3,
        };
        let mut out = Vec::new();
        let summary = generate(&cfg, &mut out).unwrap();
        assert_eq!(summary.jobs, 1000);
        assert_eq!(summary.tasks, 3);
        assert!(summary.span_ms > 0.0);
        assert!(summary.windows >= 1);

        // The reader re-validates every record (monotone arrivals,
        // in-range ids, finite cycles) while streaming.
        let mut r = TraceReader::new(Cursor::new(out)).unwrap();
        assert_eq!(r.set(), &builtin_task_set(3));
        let mut n = 0u64;
        let mut last_span = 0.0;
        while let Some(rec) = r.next_record().unwrap() {
            let t = &r.set().tasks()[rec.task];
            assert!(rec.cycles >= t.bcec().as_cycles() && rec.cycles <= t.wcec().as_cycles());
            last_span = rec.arrival_ms;
            n += 1;
        }
        assert_eq!(n, 1000);
        assert_eq!(last_span, summary.span_ms);
        // The summary's window count replays the whole span.
        assert!(summary.windows as f64 * 80.0 > summary.span_ms);
    }

    #[test]
    fn heavier_profiles_pack_the_same_jobs_into_less_time() {
        let base = GenConfig {
            profile: MmppProfile::Light,
            jobs: 2000,
            seed: 11,
            tasks: 4,
        };
        let span = |profile| {
            let mut out = Vec::new();
            generate(&GenConfig { profile, ..base }, &mut out)
                .unwrap()
                .span_ms
        };
        assert!(span(MmppProfile::Heavy) < span(MmppProfile::Light));
    }

    #[test]
    fn builtin_set_clamps_task_count() {
        assert_eq!(builtin_task_set(0).len(), 1);
        assert_eq!(builtin_task_set(4).len(), 4);
        assert_eq!(builtin_task_set(99).len(), 8);
        // Periods are harmonic, so the hyper-period stays small.
        assert_eq!(builtin_task_set(8).hyper_period().get(), 80);
    }
}
