//! Periodic task definitions.

use crate::error::ModelError;
use crate::units::{Cycles, Ticks};

/// Identifier of a task inside a [`crate::TaskSet`].
///
/// Ids are assigned by the task set after rate-monotonic sorting, so a
/// smaller id means a higher (or equal) priority. `TaskId` indexes directly
/// into [`crate::TaskSet::tasks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A periodic hard real-time task (paper §2.1).
///
/// Every task releases an instance each `period`; the instance must retire
/// `wcec` cycles at most (actual workload varies between `bcec` and `wcec`,
/// averaging `acec`) before its relative `deadline`. `c_eff` is the task's
/// effective switching capacitance in the energy model `E = C_eff·V²·N`.
///
/// Construct via [`TaskBuilder`]:
///
/// ```
/// use acs_model::{Task, units::{Cycles, Ticks}};
/// let t = Task::builder("sensor", Ticks::new(20))
///     .wcec(Cycles::from_cycles(1000.0))
///     .acec(Cycles::from_cycles(500.0))
///     .build()?;
/// assert_eq!(t.deadline(), Ticks::new(20)); // defaults to the period
/// # Ok::<(), acs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    name: String,
    period: Ticks,
    deadline: Ticks,
    wcec: Cycles,
    acec: Cycles,
    bcec: Cycles,
    c_eff: f64,
}

impl Task {
    /// Starts building a task with the two mandatory parameters.
    pub fn builder(name: impl Into<String>, period: Ticks) -> TaskBuilder {
        TaskBuilder::new(name, period)
    }

    /// Task name (unique within a task set).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Release period.
    pub fn period(&self) -> Ticks {
        self.period
    }

    /// Relative deadline (`≤ period`; defaults to the period).
    pub fn deadline(&self) -> Ticks {
        self.deadline
    }

    /// Worst-case execution cycles.
    pub fn wcec(&self) -> Cycles {
        self.wcec
    }

    /// Average-case execution cycles (expected workload, e.g. from
    /// profiling).
    pub fn acec(&self) -> Cycles {
        self.acec
    }

    /// Best-case execution cycles.
    pub fn bcec(&self) -> Cycles {
        self.bcec
    }

    /// Effective switching capacitance (dimensionless scale factor of the
    /// per-cycle energy `C_eff·V²`).
    pub fn c_eff(&self) -> f64 {
        self.c_eff
    }

    /// Ratio `BCEC/WCEC`, the paper's workload-flexibility knob
    /// (0.1 = highly variable, 0.9 = nearly fixed).
    pub fn bcec_wcec_ratio(&self) -> f64 {
        self.bcec / self.wcec
    }
}

/// Builder for [`Task`] ([C-BUILDER]).
///
/// Unset cycle fields default as follows: `wcec` is mandatory in practice
/// (defaults to 1 cycle); `bcec` defaults to `acec` when that is given,
/// else to `wcec` (fixed workload); `acec` defaults to the midpoint
/// `(bcec + wcec)/2`.
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    name: String,
    period: Ticks,
    deadline: Option<Ticks>,
    wcec: Cycles,
    acec: Option<Cycles>,
    bcec: Option<Cycles>,
    c_eff: f64,
}

impl TaskBuilder {
    /// Starts a builder for a task with the given name and period.
    pub fn new(name: impl Into<String>, period: Ticks) -> Self {
        TaskBuilder {
            name: name.into(),
            period,
            deadline: None,
            wcec: Cycles::from_cycles(1.0),
            acec: None,
            bcec: None,
            c_eff: 1.0,
        }
    }

    /// Sets the relative deadline (must be `0 < deadline ≤ period`).
    pub fn deadline(mut self, deadline: Ticks) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the worst-case execution cycles.
    pub fn wcec(mut self, wcec: Cycles) -> Self {
        self.wcec = wcec;
        self
    }

    /// Sets the average-case execution cycles.
    pub fn acec(mut self, acec: Cycles) -> Self {
        self.acec = Some(acec);
        self
    }

    /// Sets the best-case execution cycles.
    pub fn bcec(mut self, bcec: Cycles) -> Self {
        self.bcec = Some(bcec);
        self
    }

    /// Sets the effective switching capacitance.
    pub fn c_eff(mut self, c_eff: f64) -> Self {
        self.c_eff = c_eff;
        self
    }

    /// Finishes the builder, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTask`] for non-positive periods,
    /// deadlines outside `(0, period]`, empty names or non-positive
    /// `c_eff`; [`ModelError::InvalidCycleBounds`] unless
    /// `0 < bcec ≤ acec ≤ wcec` and all are finite.
    pub fn build(self) -> Result<Task, ModelError> {
        let invalid = |reason: &str| ModelError::InvalidTask {
            task: self.name.clone(),
            reason: reason.to_string(),
        };
        if self.name.is_empty() {
            return Err(invalid("name must not be empty"));
        }
        if self.period == Ticks::ZERO {
            return Err(invalid("period must be positive"));
        }
        let deadline = self.deadline.unwrap_or(self.period);
        if deadline == Ticks::ZERO {
            return Err(invalid("deadline must be positive"));
        }
        if deadline > self.period {
            return Err(invalid("deadline must not exceed the period"));
        }
        if !(self.c_eff.is_finite() && self.c_eff > 0.0) {
            return Err(invalid("c_eff must be finite and positive"));
        }
        let wcec = self.wcec;
        // Without an explicit best case, assume the tightest consistent
        // default: the average case if given, otherwise a fixed workload.
        let bcec = self.bcec.unwrap_or_else(|| self.acec.unwrap_or(wcec));
        let acec = self
            .acec
            .unwrap_or_else(|| Cycles::from_cycles((bcec.as_cycles() + wcec.as_cycles()) / 2.0));
        let bounds_ok = bcec.as_cycles() > 0.0
            && bcec <= acec
            && acec <= wcec
            && bcec.is_finite()
            && acec.is_finite()
            && wcec.is_finite();
        if !bounds_ok {
            return Err(ModelError::InvalidCycleBounds {
                task: self.name,
                bcec: bcec.as_cycles(),
                acec: acec.as_cycles(),
                wcec: wcec.as_cycles(),
            });
        }
        Ok(Task {
            name: self.name,
            period: self.period,
            deadline,
            wcec,
            acec,
            bcec,
            c_eff: self.c_eff,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycles(c: f64) -> Cycles {
        Cycles::from_cycles(c)
    }

    #[test]
    fn builder_defaults() {
        let t = Task::builder("a", Ticks::new(10))
            .wcec(cycles(100.0))
            .build()
            .unwrap();
        assert_eq!(t.deadline(), Ticks::new(10));
        assert_eq!(t.bcec(), cycles(100.0));
        assert_eq!(t.acec(), cycles(100.0));
        assert_eq!(t.c_eff(), 1.0);
        assert_eq!(t.bcec_wcec_ratio(), 1.0);
    }

    #[test]
    fn acec_defaults_to_midpoint() {
        let t = Task::builder("a", Ticks::new(10))
            .wcec(cycles(100.0))
            .bcec(cycles(20.0))
            .build()
            .unwrap();
        assert_eq!(t.acec(), cycles(60.0));
        assert!((t.bcec_wcec_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_period() {
        let err = Task::builder("a", Ticks::ZERO).build().unwrap_err();
        assert!(matches!(err, ModelError::InvalidTask { .. }));
    }

    #[test]
    fn rejects_deadline_beyond_period() {
        let err = Task::builder("a", Ticks::new(5))
            .deadline(Ticks::new(6))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn rejects_zero_deadline() {
        let err = Task::builder("a", Ticks::new(5))
            .deadline(Ticks::ZERO)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidTask { .. }));
    }

    #[test]
    fn rejects_empty_name() {
        let err = Task::builder("", Ticks::new(5)).build().unwrap_err();
        assert!(err.to_string().contains("name"));
    }

    #[test]
    fn rejects_bad_cycle_order() {
        let err = Task::builder("a", Ticks::new(5))
            .wcec(cycles(10.0))
            .acec(cycles(20.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidCycleBounds { .. }));
    }

    #[test]
    fn rejects_nonpositive_bcec() {
        let err = Task::builder("a", Ticks::new(5))
            .wcec(cycles(10.0))
            .bcec(cycles(0.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidCycleBounds { .. }));
    }

    #[test]
    fn rejects_nan_wcec() {
        let err = Task::builder("a", Ticks::new(5))
            .wcec(cycles(f64::NAN))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidCycleBounds { .. }));
    }

    #[test]
    fn rejects_nonpositive_c_eff() {
        let err = Task::builder("a", Ticks::new(5))
            .c_eff(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("c_eff"));
    }

    #[test]
    fn constrained_deadline_accepted() {
        let t = Task::builder("a", Ticks::new(10))
            .deadline(Ticks::new(7))
            .wcec(cycles(10.0))
            .build()
            .unwrap();
        assert_eq!(t.deadline(), Ticks::new(7));
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(3).to_string(), "T3");
    }
}
