//! Error type for task-model construction and validation.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while building or validating tasks and task sets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A task field violated a basic invariant (e.g. zero period).
    InvalidTask {
        /// Name of the offending task.
        task: String,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// Execution-cycle bounds must satisfy `0 < BCEC ≤ ACEC ≤ WCEC`.
    InvalidCycleBounds {
        /// Name of the offending task.
        task: String,
        /// Best-case execution cycles as given.
        bcec: f64,
        /// Average-case execution cycles as given.
        acec: f64,
        /// Worst-case execution cycles as given.
        wcec: f64,
    },
    /// A task set must contain at least one task.
    EmptyTaskSet,
    /// Two tasks share a name, which would make reports ambiguous.
    DuplicateTaskName(String),
    /// The least common multiple of the periods overflowed `u64`.
    HyperPeriodOverflow,
    /// Worst-case utilization exceeds 1 at the processor's maximum speed,
    /// so no schedule (DVS or not) can meet all deadlines.
    Overutilized {
        /// Worst-case utilization at maximum speed (`> 1`).
        utilization: f64,
    },
    /// A precedence edge (or the graph it belongs to) is invalid: it
    /// names an unknown task, is a self-edge or a duplicate, joins tasks
    /// of different periods, or closes a cycle.
    InvalidGraph {
        /// The offending edge, rendered as `from->to`.
        edge: String,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidTask { task, reason } => {
                write!(f, "invalid task `{task}`: {reason}")
            }
            ModelError::InvalidCycleBounds {
                task,
                bcec,
                acec,
                wcec,
            } => write!(
                f,
                "task `{task}` cycle bounds must satisfy 0 < BCEC <= ACEC <= WCEC, \
                 got bcec={bcec}, acec={acec}, wcec={wcec}"
            ),
            ModelError::EmptyTaskSet => write!(f, "task set contains no tasks"),
            ModelError::DuplicateTaskName(name) => {
                write!(f, "duplicate task name `{name}`")
            }
            ModelError::HyperPeriodOverflow => {
                write!(f, "hyper-period (lcm of periods) overflows u64")
            }
            ModelError::Overutilized { utilization } => write!(
                f,
                "worst-case utilization {utilization:.3} exceeds 1 at maximum speed"
            ),
            ModelError::InvalidGraph { edge, reason } => {
                write!(f, "invalid precedence edge `{edge}`: {reason}")
            }
        }
    }
}

impl StdError for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidCycleBounds {
            task: "t0".into(),
            bcec: 2.0,
            acec: 1.0,
            wcec: 3.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("t0"));
        assert!(msg.contains("BCEC <= ACEC <= WCEC"));
        assert!(ModelError::EmptyTaskSet.to_string().contains("no tasks"));
        assert!(ModelError::HyperPeriodOverflow.to_string().contains("lcm"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
