//! # acs-model
//!
//! Task, task-set and typed-unit model for frame-based preemptive
//! real-time systems with dynamic voltage scaling (DVS).
//!
//! This is the foundation crate of the `acsched` workspace, a reproduction
//! of *"Exploiting Dynamic Workload Variation in Low Energy Preemptive
//! Task Scheduling"* (Leung, Tsui, Hu — DATE 2005). It defines:
//!
//! * [`units`] — dimension-checked `f64` newtypes ([`units::Time`],
//!   [`units::TimeSpan`], [`units::Cycles`], [`units::Freq`],
//!   [`units::Volt`], [`units::Energy`]) plus exact integer milliseconds
//!   ([`units::Ticks`]) for periods and hyper-periods.
//! * [`Task`] / [`TaskBuilder`] — periodic tasks carrying the three
//!   execution-cycle figures the paper needs: best-case (BCEC),
//!   average-case (ACEC, from profiling) and worst-case (WCEC).
//! * [`TaskSet`] — rate-monotonic priority assignment, hyper-period and
//!   utilization queries.
//!
//! ## Example
//!
//! ```
//! use acs_model::{Task, TaskSet, units::{Cycles, Freq, Ticks}};
//!
//! # fn main() -> Result<(), acs_model::ModelError> {
//! let set = TaskSet::new(vec![
//!     Task::builder("control", Ticks::new(3))
//!         .wcec(Cycles::from_cycles(60.0))
//!         .bcec(Cycles::from_cycles(6.0))
//!         .build()?,
//!     Task::builder("logging", Ticks::new(9))
//!         .wcec(Cycles::from_cycles(90.0))
//!         .build()?,
//! ])?;
//! assert_eq!(set.hyper_period(), Ticks::new(9));
//! assert!(set.utilization_at(Freq::from_cycles_per_ms(60.0)) < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod sched_class;
pub mod task;
pub mod taskset;
pub mod text;
pub mod units;

pub use error::ModelError;
pub use graph::TaskGraph;
pub use sched_class::SchedulingClass;
pub use task::{Task, TaskBuilder, TaskId};
pub use taskset::TaskSet;
