//! Rate-monotonic task sets.

use crate::error::ModelError;
use crate::graph::TaskGraph;
use crate::sched_class::SchedulingClass;
use crate::task::{Task, TaskId};
use crate::units::{Freq, Ticks, TimeSpan};

/// A set of periodic tasks under rate-monotonic (RM) fixed priorities
/// (paper §2.1).
///
/// On construction the tasks are sorted by increasing period (ties broken
/// by insertion order, matching FIFO service among equal-priority tasks);
/// afterwards the index of a task *is* its priority — index 0 is the
/// highest-priority task — and doubles as its [`TaskId`].
///
/// ```
/// use acs_model::{Task, TaskSet, units::{Cycles, Ticks}};
/// let ts = TaskSet::new(vec![
///     Task::builder("slow", Ticks::new(9)).wcec(Cycles::from_cycles(90.0)).build()?,
///     Task::builder("fast", Ticks::new(3)).wcec(Cycles::from_cycles(30.0)).build()?,
/// ])?;
/// assert_eq!(ts.task(acs_model::TaskId(0)).name(), "fast"); // shorter period first
/// assert_eq!(ts.hyper_period(), Ticks::new(9));
/// # Ok::<(), acs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<Task>,
    hyper_period: Ticks,
    class: SchedulingClass,
    graph: Option<TaskGraph>,
}

impl TaskSet {
    /// Builds a task set, sorting tasks rate-monotonically and computing
    /// the hyper-period.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyTaskSet`] when `tasks` is empty,
    /// [`ModelError::DuplicateTaskName`] when two tasks share a name, and
    /// [`ModelError::HyperPeriodOverflow`] when the lcm of the periods does
    /// not fit in `u64`.
    pub fn new(mut tasks: Vec<Task>) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::EmptyTaskSet);
        }
        let mut names: Vec<&str> = tasks.iter().map(Task::name).collect();
        names.sort_unstable();
        for pair in names.windows(2) {
            if pair[0] == pair[1] {
                return Err(ModelError::DuplicateTaskName(pair[0].to_string()));
            }
        }
        // Stable sort keeps insertion order among equal periods, which is
        // the FIFO tie-break the paper's "same priority" rule implies.
        tasks.sort_by_key(Task::period);
        let mut hyper = Ticks::new(1);
        for t in &tasks {
            hyper = hyper
                .lcm(t.period())
                .ok_or(ModelError::HyperPeriodOverflow)?;
        }
        Ok(TaskSet {
            tasks,
            hyper_period: hyper,
            class: SchedulingClass::default(),
            graph: None,
        })
    }

    /// Returns the set with its default scheduling class replaced.
    ///
    /// The tasks stay sorted by period either way — under
    /// [`SchedulingClass::FixedPriorityRm`] the index *is* the priority;
    /// under [`SchedulingClass::Edf`] it is only an id (and the EDF
    /// tie-break). Consumers that take an explicit class override (the
    /// campaign grid's class axis) ignore this default.
    #[must_use]
    pub fn with_class(mut self, class: SchedulingClass) -> Self {
        self.class = class;
        self
    }

    /// The scheduling class jobs of this set are dispatched under by
    /// default ([`SchedulingClass::FixedPriorityRm`] unless changed with
    /// [`TaskSet::with_class`]).
    pub fn class(&self) -> SchedulingClass {
        self.class
    }

    /// Returns the set with precedence constraints attached. The graph
    /// must have been built against this set (see [`TaskGraph::new`]).
    ///
    /// # Panics
    ///
    /// Panics if the graph was validated against a set of a different
    /// size.
    #[must_use]
    pub fn with_graph(mut self, graph: TaskGraph) -> Self {
        assert_eq!(
            graph.task_count(),
            self.tasks.len(),
            "TaskGraph was built against a different task set"
        );
        self.graph = Some(graph);
        self
    }

    /// The precedence graph attached with [`TaskSet::with_graph`], if
    /// any. Independent (edge-free) sets return `None`.
    pub fn graph(&self) -> Option<&TaskGraph> {
        self.graph.as_ref()
    }

    /// All tasks in priority order (highest first).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this set.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set has no tasks (never the case for a constructed
    /// set, but required for API completeness).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over `(TaskId, &Task)` in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// The hyper-period: least common multiple of all periods. The frame
    /// that repeats forever (paper §2.1).
    pub fn hyper_period(&self) -> Ticks {
        self.hyper_period
    }

    /// Number of instances task `id` releases per hyper-period.
    pub fn instances_of(&self, id: TaskId) -> u64 {
        self.hyper_period.get() / self.task(id).period().get()
    }

    /// Total instances released per hyper-period across all tasks.
    pub fn total_instances(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| self.hyper_period.get() / t.period().get())
            .sum()
    }

    /// Worst-case processor utilization at the given maximum speed:
    /// `Σ WCEC_i / (period_i · f_max)`.
    ///
    /// Values `> 1` mean the set cannot be scheduled even without DVS.
    pub fn utilization_at(&self, f_max: Freq) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.wcec() / (t.period().as_span() * f_max))
            .sum()
    }

    /// Average-case utilization at the given maximum speed:
    /// `Σ ACEC_i / (period_i · f_max)`.
    pub fn average_utilization_at(&self, f_max: Freq) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.acec() / (t.period().as_span() * f_max))
            .sum()
    }

    /// Ensures worst-case utilization at `f_max` does not exceed 1
    /// (+`1e-9` slack for rounding).
    ///
    /// # Errors
    ///
    /// [`ModelError::Overutilized`] when it does. Note this is necessary,
    /// not sufficient, for RM feasibility; the expansion-based worst-case
    /// check in `acs-core` is exact for the fully preemptive schedule.
    pub fn check_utilization(&self, f_max: Freq) -> Result<(), ModelError> {
        let u = self.utilization_at(f_max);
        if u > 1.0 + 1e-9 {
            Err(ModelError::Overutilized { utilization: u })
        } else {
            Ok(())
        }
    }

    /// Sum of worst-case execution time over one hyper-period at speed
    /// `f_max` — the busy time of the all-WCEC schedule at full speed.
    pub fn worst_case_demand_at(&self, f_max: Freq) -> TimeSpan {
        self.tasks
            .iter()
            .map(|t| {
                let n = self.hyper_period.get() / t.period().get();
                (t.wcec() / f_max) * n as f64
            })
            .sum()
    }
}

impl std::ops::Index<TaskId> for TaskSet {
    type Output = Task;
    fn index(&self, id: TaskId) -> &Task {
        self.task(id)
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Cycles;

    fn task(name: &str, period: u64, wcec: f64) -> Task {
        Task::builder(name, Ticks::new(period))
            .wcec(Cycles::from_cycles(wcec))
            .build()
            .unwrap()
    }

    fn demo_set() -> TaskSet {
        TaskSet::new(vec![
            task("c", 9, 90.0),
            task("a", 3, 30.0),
            task("b", 6, 60.0),
        ])
        .unwrap()
    }

    #[test]
    fn sorts_rate_monotonically() {
        let ts = demo_set();
        let names: Vec<_> = ts.tasks().iter().map(Task::name).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(ts.task(TaskId(2)).name(), "c");
        assert_eq!(ts[TaskId(0)].name(), "a");
    }

    #[test]
    fn equal_periods_keep_insertion_order() {
        let ts = TaskSet::new(vec![task("x", 5, 1.0), task("y", 5, 1.0)]).unwrap();
        assert_eq!(ts.task(TaskId(0)).name(), "x");
        assert_eq!(ts.task(TaskId(1)).name(), "y");
    }

    #[test]
    fn hyper_period_is_lcm() {
        assert_eq!(demo_set().hyper_period(), Ticks::new(18));
    }

    #[test]
    fn instance_counts() {
        let ts = demo_set();
        assert_eq!(ts.instances_of(TaskId(0)), 6);
        assert_eq!(ts.instances_of(TaskId(1)), 3);
        assert_eq!(ts.instances_of(TaskId(2)), 2);
        assert_eq!(ts.total_instances(), 11);
    }

    #[test]
    fn utilization() {
        let ts = demo_set();
        let f = Freq::from_cycles_per_ms(20.0);
        // 30/(3*20) + 60/(6*20) + 90/(9*20) = 0.5+0.5+0.5
        assert!((ts.utilization_at(f) - 1.5).abs() < 1e-12);
        assert!(ts.check_utilization(f).is_err());
        let f2 = Freq::from_cycles_per_ms(30.0);
        assert!(ts.check_utilization(f2).is_ok());
    }

    #[test]
    fn average_utilization_below_worst() {
        let t = Task::builder("a", Ticks::new(10))
            .wcec(Cycles::from_cycles(100.0))
            .bcec(Cycles::from_cycles(20.0))
            .acec(Cycles::from_cycles(60.0))
            .build()
            .unwrap();
        let ts = TaskSet::new(vec![t]).unwrap();
        let f = Freq::from_cycles_per_ms(20.0);
        assert!(ts.average_utilization_at(f) < ts.utilization_at(f));
    }

    #[test]
    fn worst_case_demand() {
        let ts = demo_set();
        let f = Freq::from_cycles_per_ms(30.0);
        // per hyper-period: 6*1ms + 3*2ms + 2*3ms = 18ms busy
        assert!(ts
            .worst_case_demand_at(f)
            .approx_eq(TimeSpan::from_ms(18.0), 1e-9));
    }

    #[test]
    fn class_defaults_to_rm_and_is_settable() {
        let ts = demo_set();
        assert_eq!(ts.class(), SchedulingClass::FixedPriorityRm);
        let edf = ts.clone().with_class(SchedulingClass::Edf);
        assert_eq!(edf.class(), SchedulingClass::Edf);
        // The class participates in equality; everything else is shared.
        assert_ne!(ts, edf);
        assert_eq!(ts.tasks(), edf.tasks());
        assert_eq!(ts, edf.with_class(SchedulingClass::FixedPriorityRm));
    }

    #[test]
    fn graph_attaches_and_participates_in_equality() {
        let ts = TaskSet::new(vec![task("x", 5, 1.0), task("y", 5, 1.0)]).unwrap();
        assert!(ts.graph().is_none());
        let g = TaskGraph::new(&ts, [("x", "y")]).unwrap();
        let dag = ts.clone().with_graph(g);
        assert_eq!(dag.graph().unwrap().edge_count(), 1);
        assert_ne!(ts, dag);
        assert_eq!(ts.tasks(), dag.tasks());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(TaskSet::new(vec![]).unwrap_err(), ModelError::EmptyTaskSet);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = TaskSet::new(vec![task("a", 3, 1.0), task("a", 6, 1.0)]).unwrap_err();
        assert_eq!(err, ModelError::DuplicateTaskName("a".into()));
    }

    #[test]
    fn rejects_hyper_period_overflow() {
        // Two large coprime periods whose product overflows u64.
        let p1 = (1u64 << 62) - 1; // odd
        let p2 = 1u64 << 62; // power of two => coprime with p1
        let err = TaskSet::new(vec![task("a", p1, 1.0), task("b", p2, 1.0)]).unwrap_err();
        assert_eq!(err, ModelError::HyperPeriodOverflow);
    }

    #[test]
    fn iteration_yields_priority_order() {
        let ts = demo_set();
        let ids: Vec<_> = ts.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, [0, 1, 2]);
        let periods: Vec<_> = (&ts).into_iter().map(|t| t.period().get()).collect();
        assert_eq!(periods, [3, 6, 9]);
    }
}
