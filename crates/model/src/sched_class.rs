//! The scheduling class a task set runs under.

/// Which scheduling discipline orders ready jobs at runtime.
///
/// The paper's ACS formulation only needs job deadlines, not a priority
/// order; the workspace historically simulated fixed-priority
/// rate-monotonic (RM) dispatch only. `Edf` opens the dynamic-priority
/// class evaluated by the related work (Nélis et al.; Berten et al.),
/// where the utilization bound is exactly 1 and slack reclamation
/// behaves differently.
///
/// On per-frame (equal-period) task sets the two classes coincide: all
/// ready jobs share one absolute deadline, EDF's tie-break is the task
/// index — exactly the RM priority — so the engine's EDF path
/// degenerates to the RM path state for state.
///
/// ```
/// use acs_model::SchedulingClass;
///
/// assert_eq!(SchedulingClass::Edf.label(), "edf");
/// assert_eq!("rm".parse(), Ok(SchedulingClass::FixedPriorityRm));
/// assert!("lifo".parse::<SchedulingClass>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SchedulingClass {
    /// Fixed-priority rate-monotonic: the task index inside the
    /// (period-sorted) [`TaskSet`](crate::TaskSet) *is* the priority.
    /// The historical default.
    #[default]
    FixedPriorityRm,
    /// Earliest-deadline-first: at every dispatch the runnable job with
    /// the earliest absolute deadline executes (ties break toward the
    /// lower task index, then the earlier release).
    Edf,
}

impl SchedulingClass {
    /// Both classes, in canonical order.
    pub const ALL: [SchedulingClass; 2] = [SchedulingClass::FixedPriorityRm, SchedulingClass::Edf];

    /// The short label used in scenarios, reports and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            SchedulingClass::FixedPriorityRm => "rm",
            SchedulingClass::Edf => "edf",
        }
    }
}

impl std::fmt::Display for SchedulingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SchedulingClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rm" => Ok(SchedulingClass::FixedPriorityRm),
            "edf" => Ok(SchedulingClass::Edf),
            other => Err(format!(
                "unknown scheduling class `{other}` (known: rm, edf)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for c in SchedulingClass::ALL {
            assert_eq!(c.label().parse::<SchedulingClass>(), Ok(c));
            assert_eq!(c.to_string(), c.label());
        }
    }

    #[test]
    fn default_is_rm() {
        assert_eq!(SchedulingClass::default(), SchedulingClass::FixedPriorityRm);
    }

    #[test]
    fn unknown_class_names_candidates() {
        let err = "dm".parse::<SchedulingClass>().unwrap_err();
        assert!(err.contains("`dm`"), "{err}");
        assert!(err.contains("rm, edf"), "{err}");
    }
}
