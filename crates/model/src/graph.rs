//! Precedence-constrained task graphs (DAGs) over a [`TaskSet`].
//!
//! A [`TaskGraph`] adds directed edges `a -> b` meaning *instance `k` of
//! `b` may only start executing once instance `k` of `a` has completed*.
//! Tying instances pairwise is what makes the constraint well-defined on
//! a periodic frame: both endpoints of every edge must share a period,
//! so the `k`-th jobs of predecessor and successor always coexist in the
//! same hyper-period slot (the per-frame DAG model of Simon et al.,
//! arXiv:1912.09170).
//!
//! Construction validates the graph eagerly: unknown tasks, self-edges,
//! duplicate edges, period mismatches and cycles are all rejected with
//! the offending edge named, and a deterministic topological order is
//! computed once up front (Kahn's algorithm, lowest task id first — the
//! same tie-break the runtime dispatcher uses).

use crate::error::ModelError;
use crate::task::TaskId;
use crate::taskset::TaskSet;

/// A validated directed acyclic graph of precedence edges over a task
/// set.
///
/// ```
/// use acs_model::{Task, TaskGraph, TaskId, TaskSet, units::{Cycles, Ticks}};
/// let set = TaskSet::new(vec![
///     Task::builder("src", Ticks::new(10)).wcec(Cycles::from_cycles(10.0)).build()?,
///     Task::builder("dst", Ticks::new(10)).wcec(Cycles::from_cycles(10.0)).build()?,
/// ])?;
/// let g = TaskGraph::new(&set, [("src", "dst")])?;
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.preds_of(TaskId(1)), &[TaskId(0)]);
/// assert!(TaskGraph::new(&set, [("src", "dst"), ("dst", "src")]).is_err());
/// # Ok::<(), acs_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    /// Validated edges `(from, to)`, in declaration order.
    edges: Vec<(TaskId, TaskId)>,
    /// Predecessors per task, in edge-declaration order.
    preds: Vec<Vec<TaskId>>,
    /// Successors per task, in edge-declaration order.
    succs: Vec<Vec<TaskId>>,
    /// Every task id, topologically sorted (ties toward lower ids).
    topo: Vec<TaskId>,
    /// `rank[t]` = position of task `t` in [`TaskGraph::topo_order`].
    rank: Vec<usize>,
}

impl TaskGraph {
    /// Builds and validates a graph from named edges over `set`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidGraph`] when an edge names an unknown task,
    /// is a self-edge or a duplicate, joins tasks of different periods,
    /// or closes a cycle. The message always names the offending edge.
    pub fn new<N: AsRef<str>>(
        set: &TaskSet,
        edges: impl IntoIterator<Item = (N, N)>,
    ) -> Result<Self, ModelError> {
        let id_of = |name: &str| -> Option<TaskId> {
            set.iter().find(|(_, t)| t.name() == name).map(|(id, _)| id)
        };
        let mut resolved: Vec<(TaskId, TaskId)> = Vec::new();
        for (from, to) in edges {
            let (from, to) = (from.as_ref(), to.as_ref());
            let bad = |reason: String| ModelError::InvalidGraph {
                edge: format!("{from}->{to}"),
                reason,
            };
            let a = id_of(from).ok_or_else(|| bad(format!("unknown task `{from}`")))?;
            let b = id_of(to).ok_or_else(|| bad(format!("unknown task `{to}`")))?;
            if a == b {
                return Err(bad("a task cannot precede itself".into()));
            }
            if resolved.contains(&(a, b)) {
                return Err(bad("duplicate edge".into()));
            }
            let (pa, pb) = (set.task(a).period(), set.task(b).period());
            if pa != pb {
                return Err(bad(format!(
                    "precedence ties instance k to instance k, so both tasks \
                     need one period; got {pa} vs {pb}"
                )));
            }
            resolved.push((a, b));
        }
        Self::from_edges(set, resolved)
    }

    /// Builds a graph from already-resolved task ids (same validation as
    /// [`TaskGraph::new`], minus name resolution).
    ///
    /// # Errors
    ///
    /// See [`TaskGraph::new`].
    pub fn from_edges(set: &TaskSet, edges: Vec<(TaskId, TaskId)>) -> Result<Self, ModelError> {
        let n = set.len();
        let name = |t: TaskId| set.task(t).name().to_string();
        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, &(a, b)) in edges.iter().enumerate() {
            let bad = |reason: String| ModelError::InvalidGraph {
                edge: format!("{}->{}", name(a), name(b)),
                reason,
            };
            if a.0 >= n || b.0 >= n {
                return Err(ModelError::InvalidGraph {
                    edge: format!("{:?}->{:?}", a, b),
                    reason: format!("task id out of range for a {n}-task set"),
                });
            }
            if a == b {
                return Err(bad("a task cannot precede itself".into()));
            }
            if edges[..i].contains(&(a, b)) {
                return Err(bad("duplicate edge".into()));
            }
            if set.task(a).period() != set.task(b).period() {
                return Err(bad(format!(
                    "precedence ties instance k to instance k, so both tasks \
                     need one period; got {} vs {}",
                    set.task(a).period(),
                    set.task(b).period()
                )));
            }
            preds[b.0].push(a);
            succs[a.0].push(b);
        }

        // Kahn's algorithm with a lowest-id-first tie-break: the order is
        // a pure function of the edge set, never of declaration order.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut placed = vec![false; n];
        let mut topo: Vec<TaskId> = Vec::with_capacity(n);
        while topo.len() < n {
            let Some(next) = (0..n).find(|&t| !placed[t] && indeg[t] == 0) else {
                // Stuck: every unplaced task has an unplaced predecessor,
                // so a cycle exists among them. Unplaced tasks that are
                // merely *blocked by* the cycle (dead ends) are trimmed
                // away by dropping nodes with no stuck successor until a
                // fixpoint; what remains always has a stuck successor, so
                // a lowest-id walk must revisit a node — that closes the
                // cycle, and the edge doing so is named.
                let mut stuck: Vec<bool> = placed.iter().map(|&p| !p).collect();
                loop {
                    let mut changed = false;
                    for t in 0..n {
                        if stuck[t] && !succs[t].iter().any(|s| stuck[s.0]) {
                            stuck[t] = false;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                let start = (0..n).find(|&t| stuck[t]).expect("a cycle remains");
                let mut seen = vec![false; n];
                let mut cur = start;
                let closing = loop {
                    seen[cur] = true;
                    let nxt = succs[cur]
                        .iter()
                        .map(|t| t.0)
                        .filter(|&t| stuck[t])
                        .min()
                        .expect("a stuck task has a stuck successor");
                    if seen[nxt] {
                        break (cur, nxt);
                    }
                    cur = nxt;
                };
                return Err(ModelError::InvalidGraph {
                    edge: format!("{}->{}", name(TaskId(closing.0)), name(TaskId(closing.1))),
                    reason: "precedence edges form a cycle".into(),
                });
            };
            placed[next] = true;
            topo.push(TaskId(next));
            for s in &succs[next] {
                indeg[s.0] -= 1;
            }
        }
        let mut rank = vec![0usize; n];
        for (pos, t) in topo.iter().enumerate() {
            rank[t.0] = pos;
        }
        Ok(TaskGraph {
            edges,
            preds,
            succs,
            topo,
            rank,
        })
    }

    /// The validated edges `(from, to)`, in declaration order.
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the graph has no edges (precedence-free).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of tasks the graph was validated against.
    pub fn task_count(&self) -> usize {
        self.preds.len()
    }

    /// Direct predecessors of `task`, in edge-declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn preds_of(&self, task: TaskId) -> &[TaskId] {
        &self.preds[task.0]
    }

    /// Direct successors of `task`, in edge-declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn succs_of(&self, task: TaskId) -> &[TaskId] {
        &self.succs[task.0]
    }

    /// Every task id in a deterministic topological order (predecessors
    /// before successors, ties toward lower ids).
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Position of `task` in [`TaskGraph::topo_order`] — `a` preceding
    /// `b` (transitively) implies `topo_rank(a) < topo_rank(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn topo_rank(&self, task: TaskId) -> usize {
        self.rank[task.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use crate::units::{Cycles, Ticks};

    fn set(periods: &[u64]) -> TaskSet {
        TaskSet::new(
            periods
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    Task::builder(format!("t{i}"), Ticks::new(p))
                        .wcec(Cycles::from_cycles(10.0))
                        .build()
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn builds_and_orders_topologically() {
        let s = set(&[10, 10, 10, 10]);
        // t3 -> t1 -> t0, t3 -> t2: topo must put 3 first.
        let g = TaskGraph::new(&s, [("t3", "t1"), ("t1", "t0"), ("t3", "t2")]).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(
            g.topo_order(),
            &[TaskId(3), TaskId(1), TaskId(0), TaskId(2)]
        );
        assert!(g.topo_rank(TaskId(3)) < g.topo_rank(TaskId(1)));
        assert!(g.topo_rank(TaskId(1)) < g.topo_rank(TaskId(0)));
        assert_eq!(g.preds_of(TaskId(0)), &[TaskId(1)]);
        assert_eq!(g.succs_of(TaskId(3)), &[TaskId(1), TaskId(2)]);
        assert!(!g.is_empty());
        assert_eq!(g.task_count(), 4);
    }

    #[test]
    fn empty_graph_is_identity_order() {
        let s = set(&[5, 10]);
        let g = TaskGraph::new::<&str>(&s, []).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.topo_order(), &[TaskId(0), TaskId(1)]);
    }

    #[test]
    fn rejects_unknown_self_duplicate_and_period_mismatch() {
        let s = set(&[10, 10, 20]);
        let err = TaskGraph::new(&s, [("t0", "zz")]).unwrap_err();
        assert!(err.to_string().contains("unknown task `zz`"), "{err}");
        assert!(err.to_string().contains("t0->zz"), "{err}");
        let err = TaskGraph::new(&s, [("t0", "t0")]).unwrap_err();
        assert!(err.to_string().contains("precede itself"), "{err}");
        let err = TaskGraph::new(&s, [("t0", "t1"), ("t0", "t1")]).unwrap_err();
        assert!(err.to_string().contains("duplicate edge"), "{err}");
        // t2 has period 20; edges across periods are rejected.
        let err = TaskGraph::new(&s, [("t0", "t2")]).unwrap_err();
        assert!(err.to_string().contains("one period"), "{err}");
    }

    #[test]
    fn rejects_cycles_naming_a_cycle_edge() {
        let s = set(&[10, 10, 10]);
        let err = TaskGraph::new(&s, [("t0", "t1"), ("t1", "t2"), ("t2", "t0")]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cycle"), "{msg}");
        // The named edge is one of the cycle's own edges.
        assert!(
            msg.contains("t0->t1") || msg.contains("t1->t2") || msg.contains("t2->t0"),
            "{msg}"
        );
        // A 2-cycle plus an unrelated edge still names a cycle edge.
        let err = TaskGraph::new(&s, [("t2", "t0"), ("t0", "t2"), ("t0", "t1")]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("t2->t0") || msg.contains("t0->t2"), "{msg}");
    }

    #[test]
    fn topo_order_is_declaration_order_independent() {
        let s = set(&[10, 10, 10]);
        let a = TaskGraph::new(&s, [("t2", "t1"), ("t1", "t0")]).unwrap();
        let b = TaskGraph::new(&s, [("t1", "t0"), ("t2", "t1")]).unwrap();
        assert_eq!(a.topo_order(), b.topo_order());
    }
}
