//! Typed physical units used throughout the workspace.
//!
//! All quantities are thin `f64` newtypes ([C-NEWTYPE]): milliseconds for
//! time, raw execution cycles for workload, cycles-per-millisecond for
//! processor speed, volts for supply voltage and `C_eff · V² · cycles` for
//! energy. The arithmetic impls only allow dimensionally meaningful
//! combinations, e.g. [`Cycles`] divided by a [`TimeSpan`] yields a
//! [`Freq`], so unit mistakes become type errors.
//!
//! Integer millisecond periods use [`Ticks`] so hyper-periods can be
//! computed exactly with an lcm.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the boilerplate shared by every `f64` newtype unit:
/// constructors, accessors, ordering helpers and `Display`.
macro_rules! impl_unit_common {
    ($ty:ident, $unit:literal, $ctor:ident, $getter:ident) => {
        impl $ty {
            /// The zero value of this unit.
            pub const ZERO: $ty = $ty(0.0);

            #[doc = concat!("Creates a value from raw ", $unit, ".")]
            #[inline]
            pub const fn $ctor(value: f64) -> Self {
                Self(value)
            }

            #[doc = concat!("Returns the raw value in ", $unit, ".")]
            #[inline]
            pub const fn $getter(self) -> f64 {
                self.0
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the raw value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total ordering following [`f64::total_cmp`]; useful for
            /// sorting slices of unit values.
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }

            /// `true` when `self` and `other` differ by at most `tol`
            /// (compared on raw values).
            #[inline]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Respect an explicit precision, default to a compact form.
                if let Some(p) = f.precision() {
                    write!(f, "{:.*}{}", p, self.0, $unit)
                } else {
                    write!(f, "{}{}", self.0, $unit)
                }
            }
        }
    };
}

/// Implements `Add`/`Sub`/`Neg`/scalar-`Mul`/`Div`/`Sum` for a unit that is
/// closed under linear combinations (durations, cycles, energy...).
macro_rules! impl_unit_linear {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Div<$ty> for $ty {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
    };
}

/// An absolute instant, in milliseconds from the start of the hyper-period.
///
/// ```
/// use acs_model::units::{Time, TimeSpan};
/// let release = Time::from_ms(3.0);
/// let end = release + TimeSpan::from_ms(2.5);
/// assert_eq!(end.as_ms(), 5.5);
/// assert_eq!((end - release).as_ms(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);
impl_unit_common!(Time, "ms", from_ms, as_ms);

/// A signed duration in milliseconds.
///
/// ```
/// use acs_model::units::TimeSpan;
/// let w = TimeSpan::from_ms(4.0) - TimeSpan::from_ms(1.5);
/// assert_eq!(w.as_ms(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct TimeSpan(f64);
impl_unit_common!(TimeSpan, "ms", from_ms, as_ms);
impl_unit_linear!(TimeSpan);

/// A (possibly fractional) number of processor execution cycles.
///
/// Cycle counts are fractional because the NLP splits an instance's
/// workload continuously across its sub-instances.
///
/// ```
/// use acs_model::units::{Cycles, TimeSpan};
/// let speed = Cycles::from_cycles(1000.0) / TimeSpan::from_ms(10.0);
/// assert_eq!(speed.as_cycles_per_ms(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Cycles(f64);
impl_unit_common!(Cycles, "cyc", from_cycles, as_cycles);
impl_unit_linear!(Cycles);

/// Processor speed in cycles per millisecond (i.e. kHz).
///
/// ```
/// use acs_model::units::{Cycles, Freq, TimeSpan};
/// let f = Freq::from_cycles_per_ms(150.0);
/// assert_eq!((f * TimeSpan::from_ms(2.0)).as_cycles(), 300.0);
/// assert_eq!((Cycles::from_cycles(300.0) / f).as_ms(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Freq(f64);
impl_unit_common!(Freq, "cyc/ms", from_cycles_per_ms, as_cycles_per_ms);
impl_unit_linear!(Freq);

/// Supply voltage in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volt(f64);
impl_unit_common!(Volt, "V", from_volts, as_volts);
impl_unit_linear!(Volt);

/// Energy in normalized `C_eff · V² · cycles` units (paper eq. (3)).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);
impl_unit_common!(Energy, "eu", from_units, as_units);
impl_unit_linear!(Energy);

// ---- Cross-unit arithmetic -------------------------------------------------

impl Sub for Time {
    type Output = TimeSpan;
    #[inline]
    fn sub(self, rhs: Time) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl Add<TimeSpan> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: TimeSpan) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl Sub<TimeSpan> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: TimeSpan) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl AddAssign<TimeSpan> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Div<TimeSpan> for Cycles {
    type Output = Freq;
    #[inline]
    fn div(self, rhs: TimeSpan) -> Freq {
        Freq(self.0 / rhs.0)
    }
}

impl Div<Freq> for Cycles {
    type Output = TimeSpan;
    #[inline]
    fn div(self, rhs: Freq) -> TimeSpan {
        TimeSpan(self.0 / rhs.0)
    }
}

impl Mul<TimeSpan> for Freq {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: TimeSpan) -> Cycles {
        Cycles(self.0 * rhs.0)
    }
}

impl Mul<Freq> for TimeSpan {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: Freq) -> Cycles {
        Cycles(self.0 * rhs.0)
    }
}

// ---- Integer milliseconds ---------------------------------------------------

/// An exact, integer number of milliseconds.
///
/// Task periods and deadlines are integral so the hyper-period (the least
/// common multiple of all periods, paper §2.1) is exact.
///
/// ```
/// use acs_model::units::Ticks;
/// assert_eq!(Ticks::new(6).lcm(Ticks::new(9)), Some(Ticks::new(18)));
/// assert_eq!(Ticks::new(20).as_time().as_ms(), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ticks(u64);

impl Ticks {
    /// The zero duration.
    pub const ZERO: Ticks = Ticks(0);

    /// Creates a tick count from whole milliseconds.
    #[inline]
    pub const fn new(ms: u64) -> Self {
        Ticks(ms)
    }

    /// Raw whole-millisecond value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to a floating-point instant.
    #[inline]
    pub fn as_time(self) -> Time {
        Time(self.0 as f64)
    }

    /// Converts to a floating-point duration.
    #[inline]
    pub fn as_span(self) -> TimeSpan {
        TimeSpan(self.0 as f64)
    }

    /// Greatest common divisor (`gcd(0, x) = x`).
    pub fn gcd(self, other: Ticks) -> Ticks {
        let (mut a, mut b) = (self.0, other.0);
        while b != 0 {
            let t = b;
            b = a % b;
            a = t;
        }
        Ticks(a)
    }

    /// Least common multiple; `None` on u64 overflow.
    ///
    /// ```
    /// use acs_model::units::Ticks;
    /// assert_eq!(Ticks::new(4).lcm(Ticks::new(6)), Some(Ticks::new(12)));
    /// assert_eq!(Ticks::new(u64::MAX).lcm(Ticks::new(2)), None);
    /// ```
    pub fn lcm(self, other: Ticks) -> Option<Ticks> {
        if self.0 == 0 || other.0 == 0 {
            return Some(Ticks(0));
        }
        let g = self.gcd(other).0;
        (self.0 / g).checked_mul(other.0).map(Ticks)
    }

    /// Checked multiplication by a plain count.
    pub fn checked_mul(self, n: u64) -> Option<Ticks> {
        self.0.checked_mul(n).map(Ticks)
    }
}

impl Add for Ticks {
    type Output = Ticks;
    #[inline]
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl Mul<u64> for Ticks {
    type Output = Ticks;
    #[inline]
    fn mul(self, rhs: u64) -> Ticks {
        Ticks(self.0 * rhs)
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_ms(7.5);
        let d = TimeSpan::from_ms(2.5);
        assert_eq!(t + d - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, Time::from_ms(5.0));
    }

    #[test]
    fn time_add_assign() {
        let mut t = Time::from_ms(1.0);
        t += TimeSpan::from_ms(2.0);
        assert_eq!(t, Time::from_ms(3.0));
    }

    #[test]
    fn cycles_frequency_duration_triangle() {
        let w = Cycles::from_cycles(1000.0);
        let f = Freq::from_cycles_per_ms(150.0);
        let d = w / f;
        assert!((d.as_ms() - 6.666_666_666_666_667).abs() < 1e-12);
        assert!((f * d).approx_eq(w, 1e-9));
        assert!((w / d).approx_eq(f, 1e-9));
        // Commuted multiplication.
        assert_eq!(d * f, f * d);
    }

    #[test]
    fn dimensionless_ratio() {
        assert_eq!(Cycles::from_cycles(10.0) / Cycles::from_cycles(4.0), 2.5);
        assert_eq!(TimeSpan::from_ms(9.0) / TimeSpan::from_ms(3.0), 3.0);
    }

    #[test]
    fn linear_ops_and_sum() {
        let spans = [1.0, 2.0, 3.5].map(TimeSpan::from_ms);
        let total: TimeSpan = spans.into_iter().sum();
        assert_eq!(total, TimeSpan::from_ms(6.5));
        assert_eq!(-TimeSpan::from_ms(2.0), TimeSpan::from_ms(-2.0));
        assert_eq!(TimeSpan::from_ms(2.0) * 3.0, TimeSpan::from_ms(6.0));
        assert_eq!(3.0 * TimeSpan::from_ms(2.0), TimeSpan::from_ms(6.0));
        assert_eq!(TimeSpan::from_ms(6.0) / 3.0, TimeSpan::from_ms(2.0));
    }

    #[test]
    fn min_max_abs() {
        let a = Energy::from_units(2.0);
        let b = Energy::from_units(-3.0);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(b.abs(), Energy::from_units(3.0));
        assert!(a.is_finite());
        assert!(!Energy::from_units(f64::NAN).is_finite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::from_ms(2.5)), "2.5ms");
        assert_eq!(format!("{:.2}", Volt::from_volts(3.0)), "3.00V");
        assert_eq!(format!("{}", Ticks::new(20)), "20ms");
        assert_eq!(format!("{}", Freq::from_cycles_per_ms(50.0)), "50cyc/ms");
    }

    #[test]
    fn ticks_gcd_lcm() {
        assert_eq!(Ticks::new(12).gcd(Ticks::new(18)), Ticks::new(6));
        assert_eq!(Ticks::new(0).gcd(Ticks::new(5)), Ticks::new(5));
        assert_eq!(Ticks::new(3).lcm(Ticks::new(6)), Some(Ticks::new(6)));
        assert_eq!(Ticks::new(3).lcm(Ticks::new(0)), Some(Ticks::new(0)));
        assert_eq!(
            Ticks::new(10).lcm(Ticks::new(12)).unwrap().as_span(),
            TimeSpan::from_ms(60.0)
        );
    }

    #[test]
    fn ticks_overflow_is_none() {
        assert_eq!(Ticks::new(u64::MAX).lcm(Ticks::new(u64::MAX - 1)), None);
        assert_eq!(Ticks::new(u64::MAX).checked_mul(2), None);
    }

    #[test]
    fn total_cmp_sorts_with_nan_last() {
        let mut v = [
            Time::from_ms(f64::NAN),
            Time::from_ms(1.0),
            Time::from_ms(-2.0),
        ];
        v.sort_by(Time::total_cmp);
        assert_eq!(v[0], Time::from_ms(-2.0));
        assert_eq!(v[1], Time::from_ms(1.0));
        assert!(v[2].as_ms().is_nan());
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(Time::from_ms(1.0).approx_eq(Time::from_ms(1.0 + 1e-12), 1e-9));
        assert!(!Time::from_ms(1.0).approx_eq(Time::from_ms(1.1), 1e-9));
    }
}
