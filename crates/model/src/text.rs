//! Plain-text persistence for [`TaskSet`] artifacts.
//!
//! Same philosophy as the schedule export in `acs-core`: a versioned,
//! line-oriented text table — diff-able, greppable, no framework or
//! binary format — so task sets can be checked into a repository,
//! reviewed in a diff, and fed back into any tool of the workspace
//! (most prominently the `acsched` CLI's scenario files).
//!
//! ```text
//! acsched-taskset v1
//! tasks 2
//! # name period deadline wcec acec bcec c_eff
//! a 4 4 100 40 10 1
//! b 8 8 150 60 15 1
//! ```
//!
//! Numbers are printed with Rust's shortest round-trip `f64` formatting,
//! so `from_text(&to_text(set))` reproduces the set exactly.

use crate::error::ModelError;
use crate::task::Task;
use crate::taskset::TaskSet;
use crate::units::{Cycles, Ticks};

/// Serializes a task set to the v1 text format.
///
/// Tasks appear in priority (rate-monotonic) order, one per line.
///
/// # Errors
///
/// [`ModelError::InvalidTask`] when a task name contains whitespace or
/// starts with `#` — such a name cannot survive the line-oriented
/// round trip, so it is rejected instead of silently corrupting the
/// artifact.
pub fn to_text(set: &TaskSet) -> Result<String, ModelError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "acsched-taskset v1");
    let _ = writeln!(out, "tasks {}", set.len());
    let _ = writeln!(out, "# name period deadline wcec acec bcec c_eff");
    for t in set.tasks() {
        if t.name().chars().any(char::is_whitespace) || t.name().starts_with('#') {
            return Err(ModelError::InvalidTask {
                task: t.name().to_string(),
                reason: "name contains whitespace or starts with `#`; \
                         not representable in the text format"
                    .into(),
            });
        }
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {}",
            t.name(),
            t.period().get(),
            t.deadline().get(),
            t.wcec().as_cycles(),
            t.acec().as_cycles(),
            t.bcec().as_cycles(),
            t.c_eff(),
        );
    }
    Ok(out)
}

/// Parses a v1 text artifact back into a task set.
///
/// # Errors
///
/// [`ModelError::InvalidTask`] (with a `parse:`-prefixed reason) on any
/// syntax error — wrong header, bad field count, malformed numbers,
/// count mismatch — and the usual construction errors when the parsed
/// fields violate task or task-set invariants.
pub fn from_text(text: &str) -> Result<TaskSet, ModelError> {
    let bad = |reason: String| ModelError::InvalidTask {
        task: "<artifact>".into(),
        reason: format!("parse: {reason}"),
    };
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));

    let header = lines.next().ok_or_else(|| bad("empty artifact".into()))?;
    if header != "acsched-taskset v1" {
        return Err(bad(format!("unsupported header `{header}`")));
    }
    let count_line = lines
        .next()
        .ok_or_else(|| bad("missing tasks line".into()))?;
    let count: usize = count_line
        .strip_prefix("tasks ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(format!("bad tasks line `{count_line}`")))?;

    let mut tasks = Vec::with_capacity(count);
    for line in lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 {
            return Err(bad(format!("expected 7 fields, got `{line}`")));
        }
        let parse_u = |s: &str| -> Result<u64, ModelError> {
            s.parse().map_err(|_| bad(format!("bad integer `{s}`")))
        };
        let parse_f = |s: &str| -> Result<f64, ModelError> {
            let v: f64 = s.parse().map_err(|_| bad(format!("bad number `{s}`")))?;
            if !v.is_finite() {
                return Err(bad(format!("non-finite number `{s}`")));
            }
            Ok(v)
        };
        tasks.push(
            Task::builder(fields[0], Ticks::new(parse_u(fields[1])?))
                .deadline(Ticks::new(parse_u(fields[2])?))
                .wcec(Cycles::from_cycles(parse_f(fields[3])?))
                .acec(Cycles::from_cycles(parse_f(fields[4])?))
                .bcec(Cycles::from_cycles(parse_f(fields[5])?))
                .c_eff(parse_f(fields[6])?)
                .build()?,
        );
    }
    if tasks.len() != count {
        return Err(bad(format!(
            "artifact declares {count} tasks but contains {}",
            tasks.len()
        )));
    }
    TaskSet::new(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> TaskSet {
        TaskSet::new(vec![
            Task::builder("slow", Ticks::new(9))
                .wcec(Cycles::from_cycles(90.5))
                .acec(Cycles::from_cycles(33.25))
                .bcec(Cycles::from_cycles(9.125))
                .c_eff(1.5)
                .build()
                .unwrap(),
            Task::builder("fast", Ticks::new(3))
                .deadline(Ticks::new(2))
                .wcec(Cycles::from_cycles(30.0))
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_is_exact() {
        let set = fixture();
        let text = to_text(&set).unwrap();
        let back = from_text(&text).unwrap();
        assert_eq!(set, back);
        // Fixpoint: serializing the parsed set reproduces the bytes.
        assert_eq!(text, to_text(&back).unwrap());
    }

    #[test]
    fn format_is_stable() {
        let text = to_text(&fixture()).unwrap();
        assert!(text.starts_with("acsched-taskset v1\ntasks 2\n"));
        // Priority order: shorter period first. Unset ACEC/BCEC default
        // to the fixed-workload WCEC.
        assert!(text.contains("\nfast 3 2 30 30 30 1\n"));
        assert!(text.contains("\nslow 9 9 90.5 33.25 9.125 1.5\n"));
    }

    #[test]
    fn rejects_unrepresentable_names() {
        let set = TaskSet::new(vec![Task::builder("has space", Ticks::new(3))
            .wcec(Cycles::from_cycles(1.0))
            .build()
            .unwrap()])
        .unwrap();
        assert!(to_text(&set).is_err());
    }

    #[test]
    fn rejects_corruption() {
        let text = to_text(&fixture()).unwrap();
        // Bad header.
        assert!(from_text(&text.replace("v1", "v9")).is_err());
        // Truncated body.
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(from_text(&truncated).is_err());
        // Mangled field count.
        assert!(from_text(&text.replace("fast 3 2", "fast 3")).is_err());
        // Non-numeric field.
        assert!(from_text(&text.replace(" 30 ", " thirty ")).is_err());
        // Non-finite number.
        assert!(from_text(&text.replace(" 30 ", " inf ")).is_err());
        // Empty.
        assert!(from_text("").is_err());
        // Invariant violation surfaces as a model error.
        assert!(from_text(&text.replace("fast 3 2 30 30 30", "fast 3 2 30 45 30")).is_err());
    }
}
