//! Property-based tests for units and task-set invariants.

use acs_model::units::{Cycles, Freq, Ticks, Time, TimeSpan};
use acs_model::{Task, TaskSet};
use proptest::prelude::*;

proptest! {
    #[test]
    fn time_span_arithmetic_is_consistent(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let t = Time::from_ms(a);
        let d = TimeSpan::from_ms(b);
        prop_assert!(((t + d) - t).approx_eq(d, 1e-6));
        prop_assert!(((t + d) - d).approx_eq(t, 1e-6));
    }

    #[test]
    fn cycles_freq_duration_triangle(w in 1e-3f64..1e9, f in 1e-3f64..1e6) {
        let cycles = Cycles::from_cycles(w);
        let freq = Freq::from_cycles_per_ms(f);
        let dt = cycles / freq;
        prop_assert!((freq * dt).approx_eq(cycles, 1e-6 * w.max(1.0)));
        prop_assert!((cycles / dt).approx_eq(freq, 1e-6 * f.max(1.0)));
    }

    #[test]
    fn gcd_lcm_laws(a in 1u64..100_000, b in 1u64..100_000) {
        let (ta, tb) = (Ticks::new(a), Ticks::new(b));
        let g = ta.gcd(tb).get();
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
        let l = ta.lcm(tb).unwrap().get();
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        // gcd · lcm = a · b
        prop_assert_eq!(g as u128 * l as u128, a as u128 * b as u128);
    }

    #[test]
    fn task_builder_accepts_all_ordered_cycle_triples(
        period in 1u64..1000,
        bcec in 1.0f64..1e6,
        mid in 0.0f64..1.0,
        hi in 0.0f64..1.0,
    ) {
        let wcec = bcec * (1.0 + hi * 100.0);
        let acec = bcec + (wcec - bcec) * mid;
        let t = Task::builder("t", Ticks::new(period))
            .wcec(Cycles::from_cycles(wcec))
            .acec(Cycles::from_cycles(acec))
            .bcec(Cycles::from_cycles(bcec))
            .build();
        prop_assert!(t.is_ok());
        let t = t.unwrap();
        prop_assert!(t.bcec() <= t.acec() && t.acec() <= t.wcec());
    }

    #[test]
    fn rm_order_is_total_and_stable(periods in prop::collection::vec(1u64..50, 1..8)) {
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::builder(format!("t{i}"), Ticks::new(p))
                    .wcec(Cycles::from_cycles(1.0))
                    .build()
                    .unwrap()
            })
            .collect();
        let set = TaskSet::new(tasks).unwrap();
        // Periods ascend with priority index.
        for w in set.tasks().windows(2) {
            prop_assert!(w[0].period() <= w[1].period());
        }
        // Hyper-period is a common multiple of every period.
        let h = set.hyper_period().get();
        for t in set.tasks() {
            prop_assert_eq!(h % t.period().get(), 0);
        }
    }

    #[test]
    fn utilization_scales_inversely_with_speed(
        periods in prop::collection::vec(1u64..50, 1..6),
        f in 1.0f64..1e4,
    ) {
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::builder(format!("t{i}"), Ticks::new(p))
                    .wcec(Cycles::from_cycles(p as f64))
                    .build()
                    .unwrap()
            })
            .collect();
        let set = TaskSet::new(tasks).unwrap();
        let u1 = set.utilization_at(Freq::from_cycles_per_ms(f));
        let u2 = set.utilization_at(Freq::from_cycles_per_ms(2.0 * f));
        prop_assert!((u1 - 2.0 * u2).abs() < 1e-9 * u1.abs().max(1.0));
    }
}
