//! The pre-event-queue chunk-scan engine, kept verbatim behind the
//! `legacy-engine` cargo feature **solely as the differential-test
//! oracle** (see `docs/ENGINE.md` and `tests/engine_differential.rs`).
//!
//! The loop below is the engine exactly as it shipped before the
//! discrete-event rewrite: every round re-scans all jobs for zero
//! completions, chunk maintenance, dispatch selection and the next
//! wakeup — `O(jobs)` per event. The event engine must reproduce its
//! output bit-for-bit on periodic sets; this module is what it is
//! measured against. Do not "fix" or optimize it: its value is that it
//! does not change.
//!
//! Two entry points:
//!
//! * [`Simulator::run_legacy`] — run one simulator on the oracle.
//! * [`set_legacy_engine`] — a process-wide default that reroutes every
//!   `Simulator::run` through the oracle, so whole campaigns (which
//!   construct their own simulators internally) can be replayed on it.
//!   Differential tests serialize toggled sections with a lock.

use crate::engine::{fire_boundary, ChunkPlan, Job, RunOutput, SimOptions, Simulator};
use crate::error::SimError;
use crate::exec_trace::{ExecutionTrace, Slice};
use crate::policy::{BoundaryEvent, DispatchContext, Policy};
use crate::report::SimReport;
use acs_core::StaticSchedule;
use acs_model::units::{Cycles, Energy, Freq, Time, TimeSpan};
use acs_model::{SchedulingClass, TaskId, TaskSet};
use acs_power::Processor;
use std::sync::atomic::{AtomicBool, Ordering};

static LEGACY_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Makes every subsequent [`Simulator::run`] in this process execute on
/// the legacy chunk-scan oracle (`true`) or the event engine (`false`,
/// the default). Process-global so campaign runners — which build their
/// simulators internally — can be replayed on the oracle without any
/// API plumbing. Tests toggling this must serialize against each other.
pub fn set_legacy_engine(on: bool) {
    LEGACY_DEFAULT.store(on, Ordering::SeqCst);
}

/// `true` while [`set_legacy_engine`] has routed runs to the oracle.
pub fn legacy_engine_enabled() -> bool {
    LEGACY_DEFAULT.load(Ordering::SeqCst)
}

impl Simulator<'_> {
    /// Runs the simulation on the legacy chunk-scan engine (the
    /// differential-test oracle) instead of the event engine. Same
    /// contract as [`Simulator::run`], except the report's
    /// `events_handled`/`event_queue_peak` stay 0 — the oracle has no
    /// event queue.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_legacy(
        &mut self,
        workload: &mut dyn FnMut(TaskId, u64) -> Cycles,
    ) -> Result<RunOutput, SimError> {
        let plans = self.build_plans()?;
        let mut report = SimReport::empty(self.set.len());
        let mut trace = None;
        let instances_per_hyper: u64 = self.set.total_instances();
        let mut abs_base = 0u64;
        let stats_before = self.policy.solver_stats();
        for h in 0..self.options.hyper_periods {
            let record = self.options.record_trace && h == 0;
            self.policy.on_start(self.set, self.cpu);
            let (hp_report, hp_trace) = run_one_chunk_scan(
                self.set,
                self.cpu,
                self.schedule,
                &self.options,
                &plans,
                abs_base,
                workload,
                record,
                self.policy.as_mut(),
            )?;
            report.absorb(&hp_report);
            if record {
                trace = hp_trace;
            }
            abs_base += instances_per_hyper;
        }
        // Attribute this run's share of the policy's cumulative solver
        // counters (policies persist across consecutive `run` calls).
        if let Some(after) = self.policy.solver_stats() {
            let delta = after.delta_since(stats_before.unwrap_or_default());
            report.solver_lookups = delta.lookups;
            report.solver_cache_hits = delta.cache_hits;
            report.boundary_resolves = delta.resolves;
            report.resolves_adopted = delta.adopted;
            report.warm_carry_hits = delta.warm_carry_hits;
        }
        Ok(RunOutput { report, trace })
    }
}

/// Simulates one hyper-period with the historical chunk-scan loop.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_one_chunk_scan(
    set: &TaskSet,
    cpu: &Processor,
    schedule: Option<&StaticSchedule>,
    options: &SimOptions,
    plans: &[Vec<Vec<ChunkPlan>>],
    abs_base: u64,
    workload: &mut dyn FnMut(TaskId, u64) -> Cycles,
    record: bool,
    policy: &mut dyn Policy,
) -> Result<(SimReport, Option<ExecutionTrace>), SimError> {
    const EPS: f64 = 1e-9;
    let has_schedule = schedule.is_some();
    let wants_boundaries = policy.wants_boundaries();
    let class = options.class.unwrap_or_else(|| set.class());
    // Completion threshold in cycles (see `engine::CYCLE_EPS` for the
    // rationale; the value must match the event engine's exactly).
    const CYCLE_EPS: f64 = 1e-2;
    let mut report = SimReport::empty(set.len());
    report.hyper_periods = 1;
    let mut trace = record.then(ExecutionTrace::new);
    // Leakage-aware dispatch floors, one per task: no request — from any
    // policy — executes below max(f_min, critical speed). With zero
    // static power this degenerates to the historical f_min floor.
    let floors: Vec<f64> = set
        .tasks()
        .iter()
        .map(|t| cpu.floor_speed(t.c_eff()).as_cycles_per_ms())
        .collect();
    let idle_power = cpu.idle_power();
    let charge_idle = |report: &mut SimReport, span_ms: f64| {
        report.idle_time += TimeSpan::from_ms(span_ms);
        if idle_power > 0.0 {
            let e = Energy::from_units(idle_power * span_ms);
            report.idle_energy += e;
            report.energy += e;
        }
    };

    // ---- job construction & workload draws ----
    let mut jobs: Vec<Job> = Vec::with_capacity(set.total_instances() as usize);
    let mut abs_counter = abs_base;
    for (tid, task) in set.iter() {
        for inst in 0..set.instances_of(tid) {
            let release = (inst * task.period().get()) as f64;
            let drawn = workload(tid, abs_counter);
            abs_counter += 1;
            let raw = drawn.as_cycles();
            if !raw.is_finite() || raw < 0.0 {
                return Err(SimError::InvalidWorkload {
                    task: tid.0,
                    instance: inst,
                    cycles: raw,
                });
            }
            let wcec = task.wcec().as_cycles();
            let mut actual = if raw > wcec {
                report.clamped_draws += 1;
                wcec
            } else {
                raw
            };
            // The schedule's budgets are the effective worst case;
            // clamp to their sum so repair rounding cannot leave
            // un-budgeted dust behind.
            let budget_sum: f64 = plans[tid.0][inst as usize].iter().map(|c| c.budget).sum();
            if has_schedule {
                actual = actual.min(budget_sum);
            }
            let plan0 = plans[tid.0][inst as usize][0];
            jobs.push(Job {
                task: tid.0,
                instance_in_hyper: inst,
                release_ms: release,
                deadline_ms: release + task.deadline().get() as f64,
                remaining: actual,
                executed: 0.0,
                chunk: 0,
                chunk_budget_left: plan0.budget,
                done: false,
                // The chunk-scan oracle predates arrival sources and
                // only runs the periodic path.
                own_plan: None,
                // The shared `Job` struct carries the event engine's
                // lazy-maintenance stamp; the chunk-scan loop maintains
                // eagerly and never reads it.
                maintained_at: f64::NEG_INFINITY,
            });
        }
    }
    // The hyper-period starts: schedule-aware policies get the pristine
    // boundary state before anything executes.
    if wants_boundaries {
        fire_boundary(policy, set, cpu, schedule, &jobs, 0.0, BoundaryEvent::Start);
    }

    // Release events, sorted by time (job index attached).
    let mut releases: Vec<(f64, usize)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.release_ms, i))
        .collect();
    releases.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(jobs[a.1].task.cmp(&jobs[b.1].task))
    });

    let mut rel_ptr = 0usize;
    let mut t = 0.0f64;
    let mut last_voltage: Option<f64> = None;
    // Job index of the most recent dispatch, for preemption counting: a
    // dispatch of a *different* job while this one still has work is a
    // displacement (both classes use the same rule, so RM/EDF
    // preemption counts are directly comparable).
    let mut last_dispatched: Option<usize> = None;
    let overhead = cpu.overhead();

    loop {
        // Admit releases (drives policy utilization bookkeeping).
        while rel_ptr < releases.len() && releases[rel_ptr].0 <= t + EPS {
            let task = TaskId(jobs[releases[rel_ptr].1].task);
            policy.on_release(task, set, cpu);
            rel_ptr += 1;
            if wants_boundaries {
                fire_boundary(
                    policy,
                    set,
                    cpu,
                    schedule,
                    &jobs,
                    t,
                    BoundaryEvent::Release(task),
                );
            }
        }

        // Jobs with zero actual workload complete instantly.
        for i in 0..jobs.len() {
            let j = &mut jobs[i];
            if !j.done && j.release_ms <= t + EPS && j.remaining <= CYCLE_EPS {
                j.done = true;
                report.jobs_completed += 1;
                let (task, executed) = (TaskId(j.task), j.executed);
                policy.on_completion(task, Cycles::from_cycles(executed), set, cpu);
                if wants_boundaries {
                    fire_boundary(
                        policy,
                        set,
                        cpu,
                        schedule,
                        &jobs,
                        t,
                        BoundaryEvent::Completion(task),
                    );
                }
            }
        }
        // ---- chunk maintenance for all released jobs ----
        // Advancing here (not just for the dispatched job) keeps the
        // throttle state of every job current before eligibility is
        // decided.
        for j in jobs.iter_mut() {
            if j.done || j.release_ms > t + EPS || j.remaining <= CYCLE_EPS {
                continue;
            }
            let plan = &plans[j.task][j.instance_in_hyper as usize];
            loop {
                // Budget exhausted: the job may only move on once the
                // next chunk's segment opens (budget-enforced
                // schedule; see `ChunkPlan::start_ms`).
                if j.chunk_budget_left <= EPS
                    && j.chunk + 1 < plan.len()
                    && t + EPS >= plan[j.chunk + 1].start_ms
                {
                    j.chunk += 1;
                    j.chunk_budget_left = plan[j.chunk].budget;
                    continue;
                }
                // Roll missed-milestone budget forward — but never
                // before the next chunk's window opens: a re-optimizing
                // policy may legitimately run a chunk past its *static*
                // milestone (its window extends to the segment end), and
                // rolling early would let the job barge into the next
                // segment ahead of lower-priority chunks, breaking the
                // worst-case guarantees budget enforcement exists for. A
                // *spent* chunk past its milestone likewise waits for
                // its next window (first branch), not skips ahead.
                if j.chunk_budget_left > EPS
                    && t >= plan[j.chunk].end_ms + EPS
                    && j.chunk + 1 < plan.len()
                    && t + EPS >= plan[j.chunk + 1].start_ms
                {
                    let left = j.chunk_budget_left;
                    j.chunk += 1;
                    j.chunk_budget_left = plan[j.chunk].budget + left;
                    continue;
                }
                break;
            }
        }
        // A released job is throttled while its current chunk budget
        // is spent and its next chunk's window has not opened.
        let throttled = |j: &Job| {
            let plan = &plans[j.task][j.instance_in_hyper as usize];
            j.chunk_budget_left <= EPS && j.chunk + 1 < plan.len()
        };
        // The eligible job the scheduling class picks. RM: the task
        // index *is* the priority; among instances of one task, the
        // earlier release first. EDF: earliest absolute deadline, ties
        // broken by task index then release — on per-frame
        // (equal-period) sets every ready job shares one deadline, so
        // the EDF order collapses to the exact RM order.
        let ready = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                !j.done && j.release_ms <= t + EPS && j.remaining > CYCLE_EPS && !throttled(j)
            })
            .min_by(|(_, a), (_, b)| {
                let by_deadline = match class {
                    SchedulingClass::FixedPriorityRm => std::cmp::Ordering::Equal,
                    SchedulingClass::Edf => a.deadline_ms.total_cmp(&b.deadline_ms),
                };
                by_deadline
                    .then(a.task.cmp(&b.task))
                    .then(a.release_ms.total_cmp(&b.release_ms))
            })
            .map(|(i, _)| i);
        // The earliest instant a throttled job wakes up.
        let next_wakeup = jobs
            .iter()
            .filter(|j| {
                !j.done && j.release_ms <= t + EPS && j.remaining > CYCLE_EPS && throttled(j)
            })
            .map(|j| plans[j.task][j.instance_in_hyper as usize][j.chunk + 1].start_ms)
            .fold(f64::INFINITY, f64::min);
        let Some(job_idx) = ready else {
            // Idle until the next release or throttle expiry.
            let next_release = releases
                .get(rel_ptr)
                .map(|&(r, _)| r)
                .unwrap_or(f64::INFINITY);
            let next = next_release.min(next_wakeup);
            if next.is_finite() {
                charge_idle(&mut report, next - t);
                t = next;
                continue;
            }
            // Shut down for the rest of the hyper-period (still charged
            // at `idle_power`, which models a platform without
            // power-gating; the paper's processor has it at zero).
            let h = set.hyper_period().get() as f64;
            if t < h {
                charge_idle(&mut report, h - t);
            }
            break;
        };
        let plan = &plans[jobs[job_idx].task][jobs[job_idx].instance_in_hyper as usize];
        if let Some(prev) = last_dispatched {
            if prev != job_idx && !jobs[prev].done && jobs[prev].remaining > CYCLE_EPS {
                report.preemptions += 1;
            }
        }
        last_dispatched = Some(job_idx);

        // ---- dispatch ----
        let (task, chunk, budget_left, remaining) = {
            let j = &jobs[job_idx];
            (j.task, j.chunk, j.chunk_budget_left, j.remaining)
        };
        let cp = plan[chunk];
        let ctx = DispatchContext {
            set,
            cpu,
            task: TaskId(task),
            now: Time::from_ms(t),
            chunk_end: Time::from_ms(cp.end_ms),
            chunk_budget_remaining: Cycles::from_cycles(budget_left),
            static_speed: Freq::from_cycles_per_ms(cp.static_speed),
            sub: cp.sub,
        };
        let (speed, clamped) = cpu.clamp_speed(policy.on_dispatch(&ctx));
        // Leakage floor: under-requests rise (unflagged, like the f_min
        // clamp — running faster than asked never endangers deadlines)
        // to the task's critical speed.
        let speed = speed.max(Freq::from_cycles_per_ms(floors[task]));
        // The clamp keeps `speed` realizable by the *continuous*
        // model; a discrete level table whose highest level sits
        // below `vmax` can still fail to serve it, in which case the
        // engine saturates at `vmax` (the historical fallback). Both
        // paths are one saturated dispatch — never double-counted.
        let (v, table_saturated) = match cpu.dispatch_voltage(speed) {
            Ok(v) => (v, false),
            Err(_) => (cpu.vmax(), true),
        };
        if clamped || table_saturated {
            report.saturated_dispatches += 1;
        }
        let f_actual = cpu
            .freq_at(v)
            .map_err(|_| SimError::StalledProcessor)?
            .as_cycles_per_ms();
        if f_actual <= 1e-12 {
            return Err(SimError::StalledProcessor);
        }

        // Voltage transition accounting (dead time + energy).
        let changed = last_voltage
            .map(|lv| (lv - v.as_volts()).abs() > 1e-9)
            .unwrap_or(false);
        if changed {
            report.voltage_switches += 1;
            report.energy += overhead.energy;
            t += overhead.time.as_ms();
        }
        last_voltage = Some(v.as_volts());

        // ---- execute until the next event ----
        let until_complete = remaining / f_actual;
        // A spent last chunk (possible only with inconsistent custom
        // schedules) no longer gates execution — run the remainder.
        let until_budget = if budget_left > EPS && budget_left < remaining {
            budget_left / f_actual
        } else {
            f64::INFINITY
        };
        let until_release = releases
            .get(rel_ptr)
            .map(|&(next, _)| (next - t).max(0.0))
            .unwrap_or(f64::INFINITY);
        // A throttled higher-priority job waking up preempts too.
        let until_wakeup = if next_wakeup.is_finite() {
            (next_wakeup - t).max(0.0)
        } else {
            f64::INFINITY
        };
        let dt = until_complete
            .min(until_budget)
            .min(until_release)
            .min(until_wakeup);
        // Progress guard: a zero-length slice can only come from a
        // release exactly at `t`, which the admission loop absorbs.
        let dt = dt.max(0.0);
        let cycles = f_actual * dt;

        {
            let j = &mut jobs[job_idx];
            j.remaining = (j.remaining - cycles).max(0.0);
            j.chunk_budget_left -= cycles;
            j.executed += cycles;
        }
        let c_eff = set.tasks()[task].c_eff();
        let e = cpu.energy(c_eff, v, Cycles::from_cycles(cycles));
        report.energy += e;
        report.per_task_energy[task] += e;
        let leak = cpu.static_power_at(v);
        if leak > 0.0 {
            let e_static = Energy::from_units(leak * dt);
            report.static_energy += e_static;
            report.energy += e_static;
        }
        report.busy_time += TimeSpan::from_ms(dt);
        if let Some(tr) = trace.as_mut() {
            if dt > 0.0 {
                tr.push(Slice {
                    task: TaskId(task),
                    instance: jobs[job_idx].instance_in_hyper,
                    start: Time::from_ms(t),
                    end: Time::from_ms(t + dt),
                    voltage: v,
                });
            }
        }
        t += dt;

        // ---- completion ----
        let j = &mut jobs[job_idx];
        if j.remaining <= CYCLE_EPS {
            j.done = true;
            report.jobs_completed += 1;
            report.worst_lateness_ms = report.worst_lateness_ms.max(t - j.deadline_ms);
            if t > j.deadline_ms + options.deadline_tol_ms {
                report.deadline_misses += 1;
            }
            let (ctask, executed) = (TaskId(j.task), j.executed);
            policy.on_completion(ctask, Cycles::from_cycles(executed), set, cpu);
            if wants_boundaries {
                fire_boundary(
                    policy,
                    set,
                    cpu,
                    schedule,
                    &jobs,
                    t,
                    BoundaryEvent::Completion(ctask),
                );
            }
        }
    }

    Ok((report, trace))
}
