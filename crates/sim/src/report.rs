//! Simulation results.

use acs_model::units::{Energy, TimeSpan};

/// Total energy split by where it was spent: switching capacitance
/// (dynamic), leakage while executing (static) and idle draw. All three
/// are zero-cost views over counters the engine maintains anyway; with
/// the paper's lossless processor (`static_power = idle_power = 0`) the
/// static and idle terms are exactly zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Dynamic (switching) energy: `Σ C_eff·V²·N` over execution slices.
    pub dynamic: Energy,
    /// Static (leakage) energy: `Σ P_static(V)·Δt` over execution slices.
    pub static_: Energy,
    /// Idle energy: `P_idle · idle_time`.
    pub idle: Energy,
}

impl EnergyBreakdown {
    /// Sum of all three components.
    pub fn total(&self) -> Energy {
        self.dynamic + self.static_ + self.idle
    }

    /// Component-wise sum (used when folding per-core breakdowns into a
    /// machine-level one).
    pub fn absorb(&mut self, other: &EnergyBreakdown) {
        self.dynamic += other.dynamic;
        self.static_ += other.static_;
        self.idle += other.idle;
    }
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total energy consumed (dynamic + static + idle + transition
    /// overhead).
    pub energy: Energy,
    /// Static (leakage) energy drawn while executing — part of
    /// [`SimReport::energy`].
    pub static_energy: Energy,
    /// Energy drawn while idle (zero under the paper's shutdown
    /// assumption) — part of [`SimReport::energy`].
    pub idle_energy: Energy,
    /// Dynamic energy split per task (indexed by `TaskId`).
    pub per_task_energy: Vec<Energy>,
    /// Number of job completions.
    pub jobs_completed: usize,
    /// Number of jobs that missed their deadline.
    pub deadline_misses: usize,
    /// The subset of [`SimReport::deadline_misses`] from *aperiodic*
    /// jobs — releases produced by a non-periodic arrival source
    /// (sporadic/Poisson/MMPP generators or trace replay), which run on
    /// synthetic per-job plans rather than the static schedule. Always
    /// zero on periodic cells.
    pub misses_aperiodic: usize,
    /// Worst completion lateness past a deadline observed, in ms
    /// (0 when every job met its deadline; includes sub-tolerance
    /// lateness not counted in `deadline_misses`).
    pub worst_lateness_ms: f64,
    /// Dispatches where the requested speed exceeded `f_max` (the
    /// processor saturated at `vmax`).
    pub saturated_dispatches: usize,
    /// Total time the processor was idle (shut down, zero energy).
    pub idle_time: TimeSpan,
    /// Total time the processor executed cycles.
    pub busy_time: TimeSpan,
    /// Number of voltage transitions (changes between consecutive
    /// execution slices).
    pub voltage_switches: usize,
    /// Number of preemptions: dispatches that displaced a different,
    /// still-unfinished job. On per-frame (equal-period) sets the RM
    /// and EDF scheduling classes produce identical counts.
    pub preemptions: usize,
    /// Number of migrations: dispatches where a job resumed on a
    /// different core than the one it last executed on. Always zero for
    /// the single-core engine and for partitioned multiprocessor runs
    /// (jobs are pinned to their core); only global dispatch in
    /// `acs-multi` moves jobs between cores.
    pub migrations: usize,
    /// Workload draws clamped into `[0, WCEC]`.
    pub clamped_draws: usize,
    /// Number of hyper-periods simulated.
    pub hyper_periods: u64,
    /// Boundary states for which the policy's online solver was
    /// consulted (0 unless the policy re-optimizes; see
    /// [`SolverStats`](crate::SolverStats)).
    pub solver_lookups: usize,
    /// Solver lookups answered from the shared solver cache.
    pub solver_cache_hits: usize,
    /// Boundary re-solves actually executed (lookups minus hits).
    pub boundary_resolves: usize,
    /// Re-solved candidates adopted after the feasibility/energy gate.
    pub resolves_adopted: usize,
    /// Solver lookups answered by an incremental carried warm solve
    /// (previous boundary's multipliers seeded one solve that passed
    /// the gate), skipping cache and fan-out alike. Invariant:
    /// `solver_lookups == warm_carry_hits + solver_cache_hits +
    /// boundary_resolves`.
    pub warm_carry_hits: usize,
    /// Events the engine handled: event-queue pops (releases, chunk
    /// wakeups) plus dispatched execution slices. Deterministic for a
    /// given cell — the differential suite pins it as an invariant.
    /// The legacy chunk-scan oracle reports 0.
    pub events_handled: u64,
    /// High-water mark of the engine's event queue (max events pending
    /// at once within any one hyper-period). The legacy chunk-scan
    /// oracle reports 0.
    pub event_queue_peak: usize,
}

impl SimReport {
    /// An empty report (used as the accumulator identity).
    pub fn empty(tasks: usize) -> Self {
        SimReport {
            energy: Energy::ZERO,
            static_energy: Energy::ZERO,
            idle_energy: Energy::ZERO,
            per_task_energy: vec![Energy::ZERO; tasks],
            jobs_completed: 0,
            deadline_misses: 0,
            misses_aperiodic: 0,
            worst_lateness_ms: 0.0,
            saturated_dispatches: 0,
            idle_time: TimeSpan::ZERO,
            busy_time: TimeSpan::ZERO,
            voltage_switches: 0,
            preemptions: 0,
            migrations: 0,
            clamped_draws: 0,
            hyper_periods: 0,
            solver_lookups: 0,
            solver_cache_hits: 0,
            boundary_resolves: 0,
            resolves_adopted: 0,
            warm_carry_hits: 0,
            events_handled: 0,
            event_queue_peak: 0,
        }
    }

    /// Resets every counter to the [`SimReport::empty`] state for
    /// `tasks` tasks, reusing the `per_task_energy` allocation. The
    /// engine recycles one report per hyper-period instead of
    /// allocating a fresh one.
    pub fn reset(&mut self, tasks: usize) {
        let mut per_task = std::mem::take(&mut self.per_task_energy);
        per_task.clear();
        per_task.resize(tasks, Energy::ZERO);
        // `empty(0)`'s vec is zero-length and never allocates.
        *self = SimReport::empty(0);
        self.per_task_energy = per_task;
    }

    /// Folds another report (e.g. one hyper-period) into this one.
    pub fn absorb(&mut self, other: &SimReport) {
        self.energy += other.energy;
        self.static_energy += other.static_energy;
        self.idle_energy += other.idle_energy;
        for (a, b) in self.per_task_energy.iter_mut().zip(&other.per_task_energy) {
            *a += *b;
        }
        self.jobs_completed += other.jobs_completed;
        self.deadline_misses += other.deadline_misses;
        self.misses_aperiodic += other.misses_aperiodic;
        self.worst_lateness_ms = self.worst_lateness_ms.max(other.worst_lateness_ms);
        self.saturated_dispatches += other.saturated_dispatches;
        self.idle_time += other.idle_time;
        self.busy_time += other.busy_time;
        self.voltage_switches += other.voltage_switches;
        self.preemptions += other.preemptions;
        self.migrations += other.migrations;
        self.clamped_draws += other.clamped_draws;
        self.hyper_periods += other.hyper_periods;
        self.solver_lookups += other.solver_lookups;
        self.solver_cache_hits += other.solver_cache_hits;
        self.boundary_resolves += other.boundary_resolves;
        self.resolves_adopted += other.resolves_adopted;
        self.warm_carry_hits += other.warm_carry_hits;
        self.events_handled += other.events_handled;
        self.event_queue_peak = self.event_queue_peak.max(other.event_queue_peak);
    }

    /// Mean energy per hyper-period.
    pub fn energy_per_hyper_period(&self) -> Energy {
        if self.hyper_periods == 0 {
            Energy::ZERO
        } else {
            self.energy / self.hyper_periods as f64
        }
    }

    /// `true` when no deadline was missed.
    pub fn all_deadlines_met(&self) -> bool {
        self.deadline_misses == 0
    }

    /// Energy split dynamic vs static vs idle. The dynamic component is
    /// everything not attributed to leakage or idle draw (it includes
    /// voltage-transition overhead energy, which is switching work).
    pub fn breakdown(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            dynamic: self.energy - self.static_energy - self.idle_energy,
            static_: self.static_energy,
            idle: self.idle_energy,
        }
    }
}

/// Relative energy improvement of `candidate` over `baseline`, as used in
/// the paper's Fig. 6 (positive = candidate is better).
pub fn improvement_over(baseline: Energy, candidate: Energy) -> f64 {
    if baseline.as_units() <= 0.0 {
        0.0
    } else {
        1.0 - candidate / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = SimReport::empty(2);
        let mut b = SimReport::empty(2);
        b.energy = Energy::from_units(10.0);
        b.per_task_energy[1] = Energy::from_units(4.0);
        b.jobs_completed = 3;
        b.hyper_periods = 1;
        b.busy_time = TimeSpan::from_ms(5.0);
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.energy, Energy::from_units(20.0));
        assert_eq!(a.per_task_energy[1], Energy::from_units(8.0));
        assert_eq!(a.jobs_completed, 6);
        assert_eq!(a.hyper_periods, 2);
        assert_eq!(a.energy_per_hyper_period(), Energy::from_units(10.0));
        assert!(a.all_deadlines_met());
    }

    #[test]
    fn improvement_formula() {
        assert!(
            (improvement_over(Energy::from_units(7961.0), Energy::from_units(6000.0)) - 0.2463)
                .abs()
                < 1e-3
        );
        assert_eq!(improvement_over(Energy::ZERO, Energy::from_units(1.0)), 0.0);
    }

    #[test]
    fn empty_report_identity() {
        let r = SimReport::empty(1);
        assert_eq!(r.energy_per_hyper_period(), Energy::ZERO);
        assert!(r.all_deadlines_met());
    }
}
