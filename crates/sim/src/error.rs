//! Error type for the runtime simulator.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The chosen policy needs a static schedule but none was supplied.
    ScheduleRequired {
        /// Name of the policy.
        policy: String,
    },
    /// The supplied schedule was synthesized for a different task set
    /// (task count or hyper-period mismatch).
    ScheduleMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A drawn workload was non-finite or negative.
    InvalidWorkload {
        /// Task index.
        task: usize,
        /// Instance index within the run.
        instance: u64,
        /// The offending value in cycles.
        cycles: f64,
    },
    /// The processor cannot make progress (frequency at the dispatched
    /// voltage is zero — e.g. an alpha-law processor with `vmin ≤ Vth`).
    StalledProcessor,
    /// The attached arrival source failed to produce a window (malformed
    /// trace record, out-of-order window request, I/O error).
    ArrivalSource {
        /// The source's own error message (line-numbered for traces).
        message: String,
    },
    /// The task set carries a precedence graph but the run was
    /// configured with a non-periodic arrival source. Precedence ties
    /// instance `k` of a successor to instance `k` of its predecessor,
    /// which only exists on the built-in periodic release pattern.
    GraphWithArrivals,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScheduleRequired { policy } => {
                write!(f, "policy {policy} requires a static schedule")
            }
            SimError::ScheduleMismatch { reason } => {
                write!(f, "schedule does not match the task set: {reason}")
            }
            SimError::InvalidWorkload {
                task,
                instance,
                cycles,
            } => write!(
                f,
                "invalid workload {cycles} cycles drawn for task {task} instance {instance}"
            ),
            SimError::StalledProcessor => {
                write!(f, "processor frequency is zero at the dispatched voltage")
            }
            SimError::ArrivalSource { message } => {
                write!(f, "arrival source failed: {message}")
            }
            SimError::GraphWithArrivals => write!(
                f,
                "precedence-constrained task sets require the built-in periodic \
                 release pattern (no arrival source)"
            ),
        }
    }
}

impl StdError for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::ScheduleRequired {
            policy: "greedy".into()
        }
        .to_string()
        .contains("greedy"));
        assert!(SimError::StalledProcessor.to_string().contains("zero"));
    }
}
