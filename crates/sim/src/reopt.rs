//! The paper's **online re-optimizing DVS policy** (`ReOpt`).
//!
//! [`GreedyReclaim`](crate::GreedyReclaim) exploits observed slack only
//! *locally*: each dispatch stretches the current chunk's remaining
//! worst-case budget over the time left to its static milestone. `ReOpt`
//! goes the rest of the way: at every job boundary (hyper-period start,
//! release, completion) it rebuilds the remaining-instance formulation —
//! executed cycles subtracted, the boundary time as the new origin,
//! windows and deadlines unchanged — and re-synthesizes the *end times
//! themselves* with the same augmented-Lagrangian solver the offline ACS
//! phase uses ([`acs_core::reopt`]). Early completions thus reshape the
//! whole remaining speed profile, not just the chunk in flight.
//!
//! Four mechanisms keep the boundary solves affordable (the ROADMAP's
//! speed mandate — re-optimization is only viable when each re-solve is
//! cheap):
//!
//! 1. **Warm starts.** A boundary that cannot be answered incrementally
//!    runs two cheap solves — one from the static schedule's end times
//!    projected onto the boundary state, one from the latest-feasible
//!    (ALAP) profile — and keeps the better feasible result
//!    ([`acs_core::reopt::synthesize_remaining_best`]).
//!    Both starts are feasible and structured, so the small default
//!    iteration budget suffices.
//! 2. **Incremental carry.** Successive boundaries are nearly the same
//!    problem: the live set shrinks, `now` advances, the constraint
//!    structure barely moves. The winning solve's end times *and* PHR
//!    inequality multipliers are carried to the next boundary
//!    ([`acs_core::reopt::WarmCarry`], remapped by sub-instance), where
//!    a *single* seeded solve replaces the two-solve fan-out whenever
//!    it already passes the exact gate ([`ReOptConfig::warm_carry`]).
//! 3. **Receding horizon.** Only the next [`ReOptConfig::horizon`] live
//!    sub-instances enter the NLP; the frontier advances with execution,
//!    so successive boundaries cover the whole hyper-period while each
//!    solve stays small.
//! 4. **Solver cache.** Boundary states are quantized
//!    ([`ReOptConfig::time_quantum_frac`] /
//!    [`ReOptConfig::cycle_quantum_frac`]) and solved states are kept in
//!    a shared LRU ([`SolverCache`]), so repeated states — across
//!    hyper-periods and across campaign seeds — skip the solver
//!    entirely. Quantization happens *before* the solve, which makes the
//!    solve a pure function of the cache key: a hit returns bit-identical
//!    end times to what the solver would produce, so results do not
//!    depend on whether the cache is enabled.
//!
//! Safety never rests on the solver: a candidate is adopted only after
//! an exact worst-case chain check *and* only when it strictly lowers
//! the model energy of the expected remaining workload; otherwise the
//! policy keeps its previous end times, degrading gracefully to greedy
//! behavior. Because budgets, windows and milestones are untouched (only
//! dispatch speeds change, still retiring every remaining budget by an
//! end time inside its window), `ReOpt` inherits the static schedule's
//! worst-case guarantees.

use crate::policy::{BoundaryEvent, DispatchContext, Policy, SolverContext, SolverStats};
use acs_core::reopt::{
    synthesize_remaining_best_with_carry, synthesize_remaining_carry, InstanceProgress,
    RemainingInstance, ReoptOptions, WarmCarry,
};
use acs_core::StaticSchedule;
use acs_model::units::Freq;
use acs_model::TaskSet;
use acs_power::Processor;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of the [`ReOpt`] policy.
#[derive(Debug, Clone)]
pub struct ReOptConfig {
    /// Boundary-solver options (iteration budget, acceptance tolerance).
    pub solver: ReoptOptions,
    /// Receding-horizon length: how many live sub-instances enter each
    /// boundary NLP (`0` = all of them). The default (16) keeps release
    /// solves in the low milliseconds on paper-scale expansions while
    /// capturing nearly all of the near-term slack.
    pub horizon: usize,
    /// Re-solve on release boundaries too (default `true`). Releases
    /// carry no new workload observation, but elapsed time itself is
    /// exploitable state.
    pub resolve_on_release: bool,
    /// Re-solve once at every hyper-period start (default `true`); under
    /// a WCS schedule this alone recovers most of the offline ACS gain.
    pub resolve_at_start: bool,
    /// Minimum relative model-energy improvement a candidate must show
    /// before it replaces the current end times. The model evaluates the
    /// *expected* remaining workload; because energy is convex in the
    /// workload (Jensen), marginal model gains routinely fail to
    /// materialize on realized draws. The default (1%) keeps `ReOpt` at
    /// exact greedy behavior unless the re-solve finds a gain that
    /// clears that noise floor.
    pub min_rel_gain: f64,
    /// Boundary-time quantization, as a fraction of the hyper-period
    /// (times are rounded *up*, which is the conservative direction).
    pub time_quantum_frac: f64,
    /// Cycle quantization, as a fraction of the largest WCEC (remaining
    /// budgets round *up*, executed cycles round *down* — both
    /// conservative).
    pub cycle_quantum_frac: f64,
    /// Incremental boundary solves (default `true`): carry the previous
    /// boundary's winning solve — end times *and* PHR inequality
    /// multipliers, remapped by sub-instance — into the next boundary
    /// as one seeded warm solve, and skip both the cache and the
    /// two-solve multi-start fan-out whenever that single solve already
    /// passes the exact worst-case gate and clears
    /// [`ReOptConfig::min_rel_gain`]. The fan-out fallback never
    /// consumes carry state, so cached solutions remain pure functions
    /// of their keys and results stay independent of cache
    /// configuration.
    pub warm_carry: bool,
}

impl Default for ReOptConfig {
    fn default() -> Self {
        ReOptConfig {
            solver: ReoptOptions::default(),
            horizon: 16,
            resolve_on_release: true,
            resolve_at_start: true,
            min_rel_gain: 0.01,
            time_quantum_frac: 1.0 / 512.0,
            cycle_quantum_frac: 1.0 / 256.0,
            warm_carry: true,
        }
    }
}

/// Shared LRU cache of boundary solves, keyed by the quantized remaining
/// workload state. Clone the [`Arc`] into every [`ReOpt`] instance of a
/// campaign so repeated boundary states across seeds and cells hit the
/// cache instead of the solver.
///
/// Cached values are pure functions of their keys, so enabling or
/// sharing the cache never changes simulation results — only how often
/// the solver actually runs. (Hit *counts* can vary with thread
/// interleaving when several simulations share one cache; energies and
/// deadline statistics cannot.)
///
/// Internally the cache is **sharded**: keys are routed by hash to one
/// of [`SolverCache::shard_count`] independent LRU shards, each behind
/// its own lock, so concurrent campaigns sharing one cache stop
/// serializing on a single mutex. Each shard evicts independently with
/// its share of the total capacity; the aggregate lookup/hit counters
/// ([`SolverCache::stats`]) are atomic increments and therefore exact
/// regardless of interleaving.
#[derive(Debug)]
pub struct SolverCache {
    shards: Vec<Mutex<CacheInner>>,
    shard_capacity: usize,
    lookups: AtomicU64,
    hits: AtomicU64,
}

/// Aggregate counters of a [`SolverCache`], exact under concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCacheStats {
    /// Total `get` calls since the cache was created.
    pub lookups: u64,
    /// How many of those lookups found a cached solve.
    pub hits: u64,
    /// Solved states currently resident across all shards.
    pub entries: usize,
    /// Number of independent LRU shards.
    pub shards: usize,
}

impl SolverCacheStats {
    /// `hits / lookups`, or `0.0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    tick: u64,
}

#[derive(Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    state: Vec<u64>,
}

#[derive(Debug)]
struct CacheEntry {
    ends_ms: Vec<f64>,
    /// The fan-out winner's carry state. Stored so a cache hit seeds
    /// the next boundary exactly like the fresh fan-out it replaces —
    /// carry evolution, and therefore every downstream solve, is
    /// bit-identical with and without a cache.
    carry: WarmCarry,
    last_used: u64,
}

/// Default shard count for [`SolverCache::new`]; enough to make lock
/// collisions rare at campaign thread counts without fragmenting small
/// capacities.
const DEFAULT_SHARDS: usize = 8;

impl SolverCache {
    /// Creates a cache holding at most (roughly) `capacity` solved
    /// states, spread over the default number of shards.
    pub fn new(capacity: usize) -> Self {
        SolverCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (clamped to ≥ 1).
    /// Total capacity is split evenly: each shard holds at most
    /// `ceil(capacity / shards)` entries and evicts LRU independently.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        SolverCache {
            shards: (0..shards)
                .map(|_| Mutex::new(CacheInner::default()))
                .collect(),
            shard_capacity: capacity.div_ceil(shards).max(1),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Number of independent LRU shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn lock_shard(&self, key: &CacheKey) -> std::sync::MutexGuard<'_, CacheInner> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() % self.shards.len() as u64) as usize;
        self.shards[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, key: &CacheKey) -> Option<(Vec<f64>, WarmCarry)> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock_shard(key);
        inner.tick += 1;
        let tick = inner.tick;
        let hit = inner.map.get_mut(key).map(|e| {
            e.last_used = tick;
            (e.ends_ms.clone(), e.carry.clone())
        });
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn insert(&self, key: CacheKey, ends_ms: Vec<f64>, carry: WarmCarry) {
        let mut inner = self.lock_shard(&key);
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.shard_capacity && !inner.map.contains_key(&key) {
            // Evict the shard's least-recently-used entry. O(n) scan —
            // per-shard capacities are small (tens to hundreds) and
            // insertions happen only on cache misses, which the cache
            // exists to make rare.
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| CacheKey {
                    fingerprint: k.fingerprint,
                    state: k.state.clone(),
                })
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            CacheEntry {
                ends_ms,
                carry,
                last_used: tick,
            },
        );
    }

    /// Number of cached boundary states across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact aggregate counters: lifetime lookups/hits plus current
    /// occupancy. Lookups and hits are atomic read-modify-writes, so the
    /// totals are exact even when many campaigns share the cache;
    /// `entries` is a point-in-time sum over the shards.
    pub fn stats(&self) -> SolverCacheStats {
        SolverCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            entries: self.len(),
            shards: self.shards.len(),
        }
    }
}

/// The online re-optimizing policy; see the [module docs](self).
///
/// Requires a static schedule ([`Policy::needs_schedule`] is `true`).
/// Construct with [`ReOpt::new`] (private per-run cache) or wire a
/// shared [`SolverCache`] with [`ReOpt::with_cache`]; in campaigns use
/// `acs_runtime::PolicySpec::reopt()`, which shares one cache across the
/// whole grid.
#[derive(Debug, Default)]
pub struct ReOpt {
    cfg: ReOptConfig,
    cache: Option<Arc<SolverCache>>,
    /// Current per-sub-instance end times (ms); dispatch speeds come
    /// from these.
    ends_ms: Vec<f64>,
    /// Quantized state of the most recent boundary handled, so the
    /// coincident boundaries of one instant (a Start plus every task
    /// releasing at t = 0, simultaneous releases on shared grid points)
    /// cost one solve, not one each — with or without a shared cache.
    last_state: Option<Vec<u64>>,
    /// The previous boundary's winning solve (ends + PHR multipliers),
    /// seeding the next boundary's incremental warm solve when
    /// [`ReOptConfig::warm_carry`] is on. Reset at every hyper-period
    /// start.
    carry: Option<WarmCarry>,
    fingerprint: u64,
    q_time_ms: f64,
    q_cycles: f64,
    stats: SolverStats,
    ready: bool,
}

impl ReOpt {
    /// Creates the policy with the default configuration and no shared
    /// cache. Warm starts, the receding horizon and same-instant
    /// boundary coalescing still apply, but repeated boundary states
    /// across hyper-periods are re-solved — attach a [`SolverCache`]
    /// ([`ReOpt::with_cache`]) to skip those too.
    pub fn new() -> Self {
        ReOpt::default()
    }

    /// Creates the policy with an explicit configuration.
    pub fn with_config(cfg: ReOptConfig) -> Self {
        ReOpt {
            cfg,
            ..ReOpt::default()
        }
    }

    /// Attaches a shared solver cache.
    pub fn with_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The policy's configuration.
    pub fn config(&self) -> &ReOptConfig {
        &self.cfg
    }

    fn setup(&mut self, ctx: &SolverContext<'_>) {
        let Some(schedule) = ctx.schedule else {
            self.ready = false;
            return;
        };
        self.ends_ms = schedule
            .milestones()
            .iter()
            .map(|m| m.end_time.as_ms())
            .collect();
        let hyper = ctx.set.hyper_period().get() as f64;
        let max_wcec = ctx
            .set
            .tasks()
            .iter()
            .map(|t| t.wcec().as_cycles())
            .fold(0.0f64, f64::max);
        self.q_time_ms = (hyper * self.cfg.time_quantum_frac).max(1e-9);
        self.q_cycles = (max_wcec * self.cfg.cycle_quantum_frac).max(1e-9);
        self.fingerprint = fingerprint(schedule, ctx.set, ctx.cpu, &self.cfg);
        self.last_state = None;
        self.carry = None;
        self.ready = true;
    }

    /// Quantizes the boundary state conservatively: time up, remaining
    /// budgets up, executed cycles down. The solver then sees a state at
    /// least as demanding as reality, so a feasible candidate is
    /// feasible for the true state too — and equal quantized states
    /// yield equal solves, which is what makes caching sound.
    fn quantize(&self, ctx: &SolverContext<'_>) -> (f64, Vec<InstanceProgress>) {
        let qt = self.q_time_ms;
        let qc = self.q_cycles;
        let now = (ctx.now.as_ms() / qt).ceil() * qt;
        let progress = ctx
            .progress
            .iter()
            .map(|p| InstanceProgress {
                executed: acs_model::units::Cycles::from_cycles(
                    (p.executed.as_cycles() / qc).floor() * qc,
                ),
                chunk_budget_left: acs_model::units::Cycles::from_cycles(
                    (p.chunk_budget_left.as_cycles() / qc).ceil() * qc,
                ),
                ..*p
            })
            .collect();
        (now, progress)
    }

    fn resolve(&mut self, ctx: &SolverContext<'_>) {
        let Some(schedule) = ctx.schedule else {
            return;
        };
        let (q_now, q_progress) = self.quantize(ctx);
        let rem = RemainingInstance::at_boundary(
            schedule,
            ctx.set,
            ctx.cpu,
            acs_model::units::Time::from_ms(q_now),
            &q_progress,
        )
        .with_horizon(self.cfg.horizon);
        if rem.is_settled() {
            return;
        }
        let state = rem.cache_key();
        // Same quantized state as the previous boundary (coincident
        // events at one instant): the solve and the gate would repeat
        // verbatim, so skip without consulting the solver at all.
        if self.last_state.as_ref() == Some(&state) {
            return;
        }
        self.last_state = Some(state.clone());
        self.stats.lookups += 1;
        // Incremental path first: one warm solve seeded from the
        // previous boundary's multipliers and ends. It runs before —
        // and entirely independent of — the cache, so carry evolution
        // is identical with and without one, and is adopted only under
        // the same exact worst-case + energy gate as any other
        // candidate. On a gate pass both the cache lookup and the
        // two-solve fan-out are skipped.
        if self.cfg.warm_carry {
            if let Some(carry) = self.carry.take() {
                let (out, new_carry) = synthesize_remaining_carry(&rem, &carry, &self.cfg.solver);
                let e_cur = rem.energy_of(&self.ends_ms);
                if out.feasible
                    && out.ends_ms.len() == self.ends_ms.len()
                    && out.predicted_energy.as_units() < e_cur * (1.0 - self.cfg.min_rel_gain)
                {
                    self.stats.warm_carry_hits += 1;
                    self.stats.adopted += 1;
                    self.ends_ms = out.ends_ms;
                    self.carry = Some(new_carry);
                    return;
                }
                // Rejected: drop the attempt and fall through to the
                // cache + fan-out, which refreshes the carry.
            }
        }
        let key = CacheKey {
            fingerprint: self.fingerprint,
            state,
        };
        let (candidate, carry) = match self.cache.as_ref().and_then(|c| c.get(&key)) {
            Some(hit) => {
                self.stats.cache_hits += 1;
                hit
            }
            None => {
                self.stats.resolves += 1;
                let (out, carry) = synthesize_remaining_best_with_carry(&rem, &self.cfg.solver);
                if let Some(cache) = &self.cache {
                    cache.insert(key, out.ends_ms.clone(), carry.clone());
                }
                (out.ends_ms, carry)
            }
        };
        // The fan-out (or its cached image — same thing by key purity)
        // seeds the next boundary's carry whether or not its candidate
        // is adopted below.
        self.carry = Some(carry);
        // Exact acceptance gate, independent of where the candidate came
        // from: worst-case feasible AND a strict model-energy improvement
        // over the end times currently driving dispatches.
        if candidate.len() != self.ends_ms.len()
            || !rem.feasible(&candidate, self.cfg.solver.accept_tol_ms)
        {
            return;
        }
        let e_new = rem.energy_of(&candidate);
        let e_cur = rem.energy_of(&self.ends_ms);
        if e_new < e_cur * (1.0 - self.cfg.min_rel_gain) {
            self.stats.adopted += 1;
            self.ends_ms = candidate;
        }
    }
}

impl Policy for ReOpt {
    fn name(&self) -> &str {
        "reopt"
    }

    fn needs_schedule(&self) -> bool {
        true
    }

    fn wants_boundaries(&self) -> bool {
        true
    }

    fn on_start(&mut self, _set: &TaskSet, _cpu: &Processor) {
        // Full state arrives with the Start boundary right after this.
        self.ready = false;
    }

    fn on_boundary(&mut self, ctx: &SolverContext<'_>) {
        match ctx.event {
            BoundaryEvent::Start => {
                self.setup(ctx);
                if self.ready && self.cfg.resolve_at_start {
                    self.resolve(ctx);
                }
            }
            BoundaryEvent::Release(_) => {
                if self.ready && self.cfg.resolve_on_release {
                    self.resolve(ctx);
                }
            }
            BoundaryEvent::Completion(_) => {
                if self.ready {
                    self.resolve(ctx);
                }
            }
        }
    }

    fn solver_stats(&self) -> Option<SolverStats> {
        Some(self.stats)
    }

    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
        let end_ms = match (self.ready, ctx.sub) {
            (true, Some(sub)) if sub.0 < self.ends_ms.len() => self.ends_ms[sub.0],
            _ => ctx.chunk_end.as_ms(),
        };
        let window = end_ms - ctx.now.as_ms();
        if window <= 0.0 {
            ctx.cpu.f_max()
        } else {
            // Repaired end times stretch budgets like greedy does; on a
            // leakage-modeled processor the engine floors the executed
            // speed at the task's precomputed critical speed (below it,
            // slower costs more).
            ctx.chunk_budget_remaining / acs_model::units::TimeSpan::from_ms(window)
        }
    }
}

/// Deterministic fingerprint of the (schedule, task set, processor,
/// policy configuration) tuple, separating cache entries of different
/// cells — and differently-configured `ReOpt` instances — sharing one
/// [`SolverCache`]. The configuration must be part of the key: a cached
/// solution is a pure function of (state, solver options), so two
/// policies with different budgets sharing a cache would otherwise read
/// each other's solutions. Uses the std `DefaultHasher` with its fixed
/// default keys, so the value is stable within a process — which is all
/// a process-local cache needs.
fn fingerprint(
    schedule: &StaticSchedule,
    set: &TaskSet,
    cpu: &Processor,
    cfg: &ReOptConfig,
) -> u64 {
    let mut h = DefaultHasher::new();
    set.len().hash(&mut h);
    for t in set.tasks() {
        t.period().get().hash(&mut h);
        t.deadline().get().hash(&mut h);
        t.wcec().as_cycles().to_bits().hash(&mut h);
        t.acec().as_cycles().to_bits().hash(&mut h);
        t.bcec().as_cycles().to_bits().hash(&mut h);
        t.c_eff().to_bits().hash(&mut h);
    }
    cfg.horizon.hash(&mut h);
    cfg.warm_carry.hash(&mut h);
    cfg.min_rel_gain.to_bits().hash(&mut h);
    cfg.time_quantum_frac.to_bits().hash(&mut h);
    cfg.cycle_quantum_frac.to_bits().hash(&mut h);
    cfg.solver.accept_tol_ms.to_bits().hash(&mut h);
    let al = &cfg.solver.auglag;
    al.outer_iters.hash(&mut h);
    al.inner.max_iters.hash(&mut h);
    al.inner.memory.hash(&mut h);
    al.mu_init.to_bits().hash(&mut h);
    al.mu_growth.to_bits().hash(&mut h);
    al.mu_max.to_bits().hash(&mut h);
    al.violation_tol.to_bits().hash(&mut h);
    al.violation_shrink.to_bits().hash(&mut h);
    al.smoothing_init.to_bits().hash(&mut h);
    al.smoothing_final.to_bits().hash(&mut h);
    al.smoothing_decay.to_bits().hash(&mut h);
    al.inner.grad_tol.to_bits().hash(&mut h);
    al.inner.f_tol_rel.to_bits().hash(&mut h);
    cpu.f_max().as_cycles_per_ms().to_bits().hash(&mut h);
    cpu.f_min().as_cycles_per_ms().to_bits().hash(&mut h);
    cpu.vmin().as_volts().to_bits().hash(&mut h);
    cpu.vmax().as_volts().to_bits().hash(&mut h);
    for m in schedule.milestones() {
        m.end_time.as_ms().to_bits().hash(&mut h);
        m.worst_workload.as_cycles().to_bits().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimOptions, Simulator};
    use crate::policy::GreedyReclaim;
    use acs_core::{synthesize_acs_warm, synthesize_wcs, SynthesisOptions};
    use acs_model::units::{Cycles, Ticks, Volt};
    use acs_model::{Task, TaskId, TaskSet};
    use acs_power::FreqModel;

    fn empty_carry() -> WarmCarry {
        WarmCarry {
            ends_ms: Vec::new(),
            subs: Vec::new(),
            nu: Vec::new(),
        }
    }

    fn motivation() -> (TaskSet, Processor) {
        let mk = |n: &str| {
            Task::builder(n, Ticks::new(20))
                .wcec(Cycles::from_cycles(1000.0))
                .acec(Cycles::from_cycles(500.0))
                .bcec(Cycles::from_cycles(100.0))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")]).unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        (set, cpu)
    }

    fn run(
        set: &TaskSet,
        cpu: &Processor,
        schedule: &acs_core::StaticSchedule,
        policy: impl crate::policy::IntoPolicy,
        totals: &[Cycles],
        hyper_periods: u64,
    ) -> crate::report::SimReport {
        Simulator::new(set, cpu, policy)
            .with_schedule(schedule)
            .with_options(SimOptions {
                hyper_periods,
                ..Default::default()
            })
            .run(&mut |t: TaskId, _| totals[t.0])
            .unwrap()
            .report
    }

    #[test]
    fn reopt_beats_greedy_on_wcs_schedule() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let greedy = run(&set, &cpu, &wcs, GreedyReclaim, &totals, 1);
        let reopt = run(&set, &cpu, &wcs, ReOpt::new(), &totals, 1);
        assert_eq!(reopt.deadline_misses, 0);
        assert_eq!(reopt.jobs_completed, greedy.jobs_completed);
        // Online re-optimization of the WCS ends recovers (most of) the
        // offline ACS gain — far more than float noise.
        assert!(
            reopt.energy.as_units() < 0.95 * greedy.energy.as_units(),
            "reopt {} vs greedy {}",
            reopt.energy,
            greedy.energy
        );
        assert!(reopt.solver_lookups > 0);
        assert!(reopt.resolves_adopted > 0);
    }

    #[test]
    fn reopt_never_worse_than_greedy_on_acs_schedule() {
        let (set, cpu) = motivation();
        let opts = SynthesisOptions::quick();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
        let acs = synthesize_acs_warm(&set, &cpu, &opts, &wcs).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let greedy = run(&set, &cpu, &acs, GreedyReclaim, &totals, 1);
        let reopt = run(&set, &cpu, &acs, ReOpt::new(), &totals, 1);
        assert_eq!(reopt.deadline_misses, 0);
        assert!(
            reopt.energy.as_units() <= greedy.energy.as_units() * (1.0 + 1e-9),
            "reopt {} vs greedy {}",
            reopt.energy,
            greedy.energy
        );
    }

    #[test]
    fn reopt_is_worst_case_safe() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let totals = acs_core::trace::wcec_totals(&set);
        let reopt = run(&set, &cpu, &wcs, ReOpt::new(), &totals, 2);
        assert_eq!(reopt.deadline_misses, 0);
        assert_eq!(reopt.jobs_completed, 2 * set.total_instances() as usize);
    }

    #[test]
    fn shared_cache_changes_counters_not_results() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let uncached = run(&set, &cpu, &wcs, ReOpt::new(), &totals, 3);
        let cache = Arc::new(SolverCache::new(256));
        let cached = run(
            &set,
            &cpu,
            &wcs,
            ReOpt::new().with_cache(cache.clone()),
            &totals,
            3,
        );
        assert_eq!(cached.energy, uncached.energy);
        assert_eq!(cached.deadline_misses, uncached.deadline_misses);
        assert_eq!(cached.voltage_switches, uncached.voltage_switches);
        // Identical states repeat across the 3 hyper-periods: the cache
        // must absorb them.
        assert!(cached.solver_cache_hits > 0, "{cached:?}");
        assert_eq!(cached.solver_lookups, uncached.solver_lookups);
        assert!(cached.boundary_resolves < uncached.boundary_resolves);
        // Carry evolution is cache-independent: the incremental path
        // answers the same lookups either way.
        assert_eq!(cached.warm_carry_hits, uncached.warm_carry_hits);
        for r in [&cached, &uncached] {
            assert_eq!(
                r.solver_lookups,
                r.warm_carry_hits + r.solver_cache_hits + r.boundary_resolves,
                "{r:?}"
            );
        }
        assert!(!cache.is_empty());
        // The cache-level counters agree with the per-run report.
        let stats = cache.stats();
        assert_eq!(stats.lookups, cached.solver_lookups as u64);
        assert_eq!(stats.hits, cached.solver_cache_hits as u64);
        assert_eq!(stats.entries, cache.len());
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn sharded_cache_matches_single_shard_results() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let one = Arc::new(SolverCache::with_shards(256, 1));
        let many = Arc::new(SolverCache::with_shards(256, 16));
        assert_eq!(one.shard_count(), 1);
        assert_eq!(many.shard_count(), 16);
        let a = run(
            &set,
            &cpu,
            &wcs,
            ReOpt::new().with_cache(one.clone()),
            &totals,
            3,
        );
        let b = run(
            &set,
            &cpu,
            &wcs,
            ReOpt::new().with_cache(many.clone()),
            &totals,
            3,
        );
        // Shard routing changes which lock a key lands behind, never what
        // is cached for it: results and (single-threaded) counters match.
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.solver_lookups, b.solver_lookups);
        assert_eq!(a.solver_cache_hits, b.solver_cache_hits);
        assert_eq!(one.len(), many.len());
        assert_eq!(one.stats().lookups, many.stats().lookups);
    }

    #[test]
    fn shard_capacity_bounds_occupancy() {
        // 4 shards x capacity 8 => no shard exceeds ceil(8/4) = 2, so the
        // whole cache can never hold more than 8 entries no matter how
        // many distinct states are inserted.
        let cache = SolverCache::with_shards(8, 4);
        for i in 0..64u64 {
            cache.insert(
                CacheKey {
                    fingerprint: i,
                    state: vec![i],
                },
                vec![i as f64],
                empty_carry(),
            );
        }
        assert!(cache.len() <= 8, "len = {}", cache.len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn cache_counters_are_exact_across_threads() {
        use std::thread;
        // Capacity far above the 1000 inserted keys so hash skew across
        // shards can never trigger eviction.
        let cache = Arc::new(SolverCache::with_shards(8192, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(thread::spawn(move || {
                for i in 0..250u64 {
                    let key = CacheKey {
                        fingerprint: t,
                        state: vec![i],
                    };
                    if cache.get(&key).is_none() {
                        cache.insert(
                            CacheKey {
                                fingerprint: t,
                                state: vec![i],
                            },
                            vec![0.0],
                            empty_carry(),
                        );
                    }
                    // Second lookup of a just-inserted key: guaranteed hit
                    // (keys are disjoint per thread, capacity is ample).
                    assert!(cache.get(&key).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups, 4 * 250 * 2);
        assert_eq!(stats.hits, 4 * 250);
        assert_eq!(stats.entries, 1000);
        assert_eq!(stats.shards, 8);
    }

    #[test]
    fn reopt_without_schedule_is_rejected() {
        let (set, cpu) = motivation();
        let err = Simulator::new(&set, &cpu, ReOpt::new())
            .run(&mut |_, _| Cycles::from_cycles(1.0))
            .unwrap_err();
        assert!(matches!(err, crate::SimError::ScheduleRequired { .. }));
    }
}
