//! # acs-sim
//!
//! Event-driven preemptive simulator (fixed-priority RM or EDF, per
//! [`SchedulingClass`]) with an **open online-DVS policy API**, for
//! the `acsched` workspace.
//!
//! This is the paper's *runtime phase*: the offline synthesizer
//! (`acs-core`) fixes per-sub-instance end times `e_u` and worst-case
//! budgets `R̂_u`; at runtime the dispatcher picks the supply voltage at
//! every scheduling event. Voltage selection is pluggable through the
//! [`Policy`] trait — implement `on_dispatch` (plus optional
//! `on_release`/`on_completion`/`on_start` state hooks) and the engine
//! drives your policy like any built-in, clamping every requested speed
//! into the processor's `[f_min, f_max]`. Four built-ins ship with the
//! crate:
//!
//! * [`NoDvs`] — flat out, idle when nothing is ready;
//! * [`StaticSpeed`] — the static schedule's speeds, no slack
//!   reclamation;
//! * [`GreedyReclaim`] — the paper's greedy slack redistribution:
//!   `speed = R̂_rem / (e_u − now)`;
//! * [`CcRm`] — a cycle-conserving, online-only baseline in the spirit
//!   of Pillai & Shin;
//! * [`ReOpt`] — the paper's online *re-optimizing* ACS: at every job
//!   boundary it re-solves the remaining low-energy schedule against
//!   the workload observed so far (warm-started, receding-horizon,
//!   cache-backed — see the [`reopt`] module docs).
//!
//! (The pre-0.2 closed [`DvsPolicy`] enum still works everywhere a
//! policy is accepted, as a deprecated shim.)
//!
//! The simulator reports energy, deadline misses, saturation events,
//! idle/busy time and voltage switches ([`SimReport`]), optionally
//! recording an [`ExecutionTrace`] renderable as an ASCII Gantt chart
//! ([`render_gantt`]). For batch experiments over grids of task sets,
//! processors, schedules, policies and workloads, see the `acs-runtime`
//! crate's `Campaign` runner, which parallelizes `Simulator` runs.
//!
//! ## Example
//!
//! ```
//! use acs_core::{synthesize_acs, SynthesisOptions};
//! use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Volt}};
//! use acs_power::{FreqModel, Processor};
//! use acs_sim::{GreedyReclaim, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = TaskSet::new(vec![
//!     Task::builder("ctrl", Ticks::new(10))
//!         .wcec(Cycles::from_cycles(200.0))
//!         .acec(Cycles::from_cycles(80.0))
//!         .bcec(Cycles::from_cycles(20.0))
//!         .build()?,
//! ])?;
//! let cpu = Processor::builder(FreqModel::linear(20.0)?)
//!     .vmin(Volt::from_volts(0.5)).vmax(Volt::from_volts(4.0)).build()?;
//! let schedule = synthesize_acs(&set, &cpu, &SynthesisOptions::quick())?;
//!
//! let out = Simulator::new(&set, &cpu, GreedyReclaim)
//!     .with_schedule(&schedule)
//!     .run(&mut |_task, _instance| Cycles::from_cycles(80.0))?;
//! assert!(out.report.all_deadlines_met());
//! # Ok(())
//! # }
//! ```
//!
//! ## Writing your own policy
//!
//! See the [`policy`] module docs for a complete custom-policy example;
//! any `impl Policy` value plugs straight into [`Simulator::new`] (and
//! into `acs-runtime` campaigns) with no engine changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod event;
pub mod exec_trace;
pub mod gantt;
#[cfg(feature = "legacy-engine")]
pub mod legacy;
pub mod policy;
pub mod reopt;
pub mod report;
pub mod stats;
pub mod workload;

pub use acs_model::SchedulingClass;
// Arrival-source surface (re-exported so `Simulator::with_arrivals`
// callers need no direct `acs-trace` dependency).
pub use acs_trace::{ArrivalJob, ArrivalKind, ArrivalSource, MmppProfile};
pub use engine::{simulate_deterministic, RunOutput, SimOptions, Simulator, SteppedRun};
pub use error::SimError;
pub use event::{Event, EventKind, EventQueue, ReadyKey, ReadyQueue};
pub use exec_trace::{ExecutionTrace, Slice};
pub use gantt::render_gantt;
#[cfg(feature = "legacy-engine")]
pub use legacy::{legacy_engine_enabled, set_legacy_engine};
#[allow(deprecated)]
pub use policy::DvsPolicy;
pub use policy::{
    BoundaryEvent, CcRm, DispatchContext, GreedyReclaim, IntoPolicy, NoDvs, Policy, SolverContext,
    SolverStats, StaticSpeed,
};
pub use reopt::{ReOpt, ReOptConfig, SolverCache, SolverCacheStats};
pub use report::{improvement_over, EnergyBreakdown, SimReport};
pub use stats::Summary;
pub use workload::WorkloadSource;
