//! ASCII Gantt rendering of execution traces.
//!
//! Used by the examples and experiment binaries to show schedules the way
//! the paper's Figs. 1–2 do — one row per task, time flowing right, with
//! the supply voltage printed per slice.

use crate::exec_trace::ExecutionTrace;
use acs_model::TaskSet;

/// Renders `trace` over `[0, horizon_ms]` using `width` character
/// columns. Each task occupies one row; an executing slice is drawn with
/// `█` and annotated with its voltage (to one decimal) where space
/// permits; idle time is `·`.
pub fn render_gantt(
    trace: &ExecutionTrace,
    set: &TaskSet,
    horizon_ms: f64,
    width: usize,
) -> String {
    let width = width.max(10);
    let scale = width as f64 / horizon_ms.max(1e-9);
    let mut out = String::new();
    for (tid, task) in set.iter() {
        let mut row: Vec<char> = vec!['·'; width];
        let mut labels: Vec<Option<String>> = vec![None; width];
        for s in trace.slices().iter().filter(|s| s.task == tid) {
            let a = ((s.start.as_ms() * scale).floor() as usize).min(width - 1);
            let b = ((s.end.as_ms() * scale).ceil() as usize).clamp(a + 1, width);
            for c in row.iter_mut().take(b).skip(a) {
                *c = '█';
            }
            labels[a] = Some(format!("{:.1}", s.voltage.as_volts()));
        }
        // Overlay voltage labels onto the bars where they fit.
        for (i, label) in labels.iter().enumerate() {
            if let Some(l) = label {
                for (k, ch) in l.chars().enumerate() {
                    if i + k < width && row[i + k] == '█' {
                        row[i + k] = ch;
                    }
                }
            }
        }
        let bar: String = row.into_iter().collect();
        out.push_str(&format!("{:>13.13} |{}|\n", task.name(), bar));
    }
    // Time axis.
    out.push_str(&format!(
        "{:>13} 0{}{:.0}ms\n",
        "",
        " ".repeat(width.saturating_sub(6)),
        horizon_ms
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_trace::Slice;
    use acs_model::units::{Cycles, Ticks, Time, Volt};
    use acs_model::{Task, TaskId, TaskSet};

    fn set() -> TaskSet {
        TaskSet::new(vec![
            Task::builder("alpha", Ticks::new(10))
                .wcec(Cycles::from_cycles(1.0))
                .build()
                .unwrap(),
            Task::builder("beta", Ticks::new(20))
                .wcec(Cycles::from_cycles(1.0))
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn renders_rows_per_task_plus_axis() {
        let mut tr = ExecutionTrace::new();
        tr.push(Slice {
            task: TaskId(0),
            instance: 0,
            start: Time::from_ms(0.0),
            end: Time::from_ms(5.0),
            voltage: Volt::from_volts(2.0),
        });
        tr.push(Slice {
            task: TaskId(1),
            instance: 0,
            start: Time::from_ms(5.0),
            end: Time::from_ms(20.0),
            voltage: Volt::from_volts(1.5),
        });
        let g = render_gantt(&tr, &set(), 20.0, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("alpha"));
        assert!(lines[1].contains("beta"));
        assert!(lines[0].contains('█'));
        assert!(lines[0].contains("2.0"));
        assert!(lines[1].contains("1.5"));
        assert!(lines[2].contains("20ms"));
    }

    #[test]
    fn empty_trace_is_all_idle() {
        let g = render_gantt(&ExecutionTrace::new(), &set(), 20.0, 30);
        assert!(g.contains("····"));
        assert!(!g.contains('█'));
    }

    #[test]
    fn tiny_width_is_clamped() {
        let g = render_gantt(&ExecutionTrace::new(), &set(), 20.0, 1);
        assert!(g.lines().count() == 3);
    }
}
