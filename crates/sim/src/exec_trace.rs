//! Execution traces for debugging and Gantt rendering.

use acs_model::units::{Time, Volt};
use acs_model::TaskId;

/// One contiguous execution slice of a job at a fixed voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slice {
    /// Executing task.
    pub task: TaskId,
    /// Instance index within the run.
    pub instance: u64,
    /// Slice start (absolute, within the recorded hyper-period).
    pub start: Time,
    /// Slice end.
    pub end: Time,
    /// Supply voltage during the slice.
    pub voltage: Volt,
}

/// A recorded execution trace (typically one hyper-period).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    slices: Vec<Slice>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ExecutionTrace::default()
    }

    /// Appends a slice, merging with the previous one when it is a
    /// seamless continuation (same job, same voltage, touching times).
    pub fn push(&mut self, slice: Slice) {
        if let Some(last) = self.slices.last_mut() {
            let seamless = last.task == slice.task
                && last.instance == slice.instance
                && (last.end.as_ms() - slice.start.as_ms()).abs() < 1e-9
                && (last.voltage.as_volts() - slice.voltage.as_volts()).abs() < 1e-12;
            if seamless {
                last.end = slice.end;
                return;
            }
        }
        self.slices.push(slice);
    }

    /// All slices in time order.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Total busy span covered by slices of one task.
    pub fn task_busy_ms(&self, task: TaskId) -> f64 {
        self.slices
            .iter()
            .filter(|s| s.task == task)
            .map(|s| s.end.as_ms() - s.start.as_ms())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(task: usize, inst: u64, a: f64, b: f64, v: f64) -> Slice {
        Slice {
            task: TaskId(task),
            instance: inst,
            start: Time::from_ms(a),
            end: Time::from_ms(b),
            voltage: Volt::from_volts(v),
        }
    }

    #[test]
    fn merges_seamless_continuations() {
        let mut t = ExecutionTrace::new();
        t.push(slice(0, 0, 0.0, 1.0, 2.0));
        t.push(slice(0, 0, 1.0, 2.0, 2.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.slices()[0].end, Time::from_ms(2.0));
    }

    #[test]
    fn voltage_change_starts_new_slice() {
        let mut t = ExecutionTrace::new();
        t.push(slice(0, 0, 0.0, 1.0, 2.0));
        t.push(slice(0, 0, 1.0, 2.0, 3.0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn task_busy_time() {
        let mut t = ExecutionTrace::new();
        t.push(slice(0, 0, 0.0, 1.0, 2.0));
        t.push(slice(1, 0, 1.0, 3.0, 2.0));
        t.push(slice(0, 1, 3.0, 4.5, 2.0));
        assert!((t.task_busy_ms(TaskId(0)) - 2.5).abs() < 1e-12);
        assert!((t.task_busy_ms(TaskId(1)) - 2.0).abs() < 1e-12);
        assert!(!t.is_empty());
    }
}
