//! Small statistics helpers for the experiment harness.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample standard deviation (0 for fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_mean_and_std() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let e = Summary::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.std_dev(), 0.0);
        assert!(e.min().is_nan());
        let mut s = Summary::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn streaming_matches_batch() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s: Summary = data.iter().copied().collect();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-10);
    }
}
