//! The open online-DVS policy API.
//!
//! The simulator is policy-agnostic: anything implementing [`Policy`]
//! can drive the voltage selection at every dispatch, with no changes to
//! the engine. The four built-ins ([`NoDvs`], [`StaticSpeed`],
//! [`GreedyReclaim`], [`CcRm`]) are ordinary implementations of the same
//! trait — a user-defined policy is a first-class citizen:
//!
//! ```
//! use acs_model::units::Freq;
//! use acs_sim::{DispatchContext, Policy};
//!
//! /// Greedy reclamation, but never below half of f_max — a latency
//! /// hedge against mispredicted workloads.
//! struct CautiousGreedy;
//!
//! impl Policy for CautiousGreedy {
//!     fn name(&self) -> &str {
//!         "cautious-greedy"
//!     }
//!     fn needs_schedule(&self) -> bool {
//!         true
//!     }
//!     fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
//!         let fmax = ctx.cpu.f_max();
//!         let window = ctx.chunk_end - ctx.now;
//!         if window.as_ms() <= 0.0 {
//!             return fmax;
//!         }
//!         let greedy = ctx.chunk_budget_remaining / window;
//!         Freq::from_cycles_per_ms(
//!             greedy.as_cycles_per_ms().max(0.5 * fmax.as_cycles_per_ms()),
//!         )
//!     }
//! }
//! ```
//!
//! The engine clamps whatever [`Policy::on_dispatch`] returns into the
//! processor's `[f_min, f_max]` range (counting over-requests as
//! saturated dispatches), so no policy — built-in or user-provided — can
//! request an unrealizable frequency.

use acs_core::reopt::InstanceProgress;
use acs_core::StaticSchedule;
use acs_model::units::{Cycles, Freq, Time};
use acs_model::{TaskId, TaskSet};
use acs_power::Processor;
use acs_preempt::SubInstanceId;

/// Everything a policy may consult when dispatching a job's chunk.
#[derive(Debug, Clone, Copy)]
pub struct DispatchContext<'a> {
    /// The task set being simulated.
    pub set: &'a TaskSet,
    /// The processor executing it.
    pub cpu: &'a Processor,
    /// The task whose job is being dispatched.
    pub task: TaskId,
    /// Current simulation time (within the hyper-period).
    pub now: Time,
    /// Milestone end time of the current chunk.
    pub chunk_end: Time,
    /// Remaining worst-case budget of the current chunk.
    pub chunk_budget_remaining: Cycles,
    /// Precomputed static speed of the chunk (for [`StaticSpeed`]).
    pub static_speed: Freq,
    /// The static schedule's sub-instance being dispatched (`None` for
    /// schedule-free runs). Lets schedule-aware policies (e.g. [`ReOpt`])
    /// map the chunk to their own per-sub-instance state.
    ///
    /// [`ReOpt`]: crate::ReOpt
    pub sub: Option<SubInstanceId>,
}

/// Why the engine is calling [`Policy::on_boundary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryEvent {
    /// A hyper-period is starting (time 0, nothing executed yet).
    Start,
    /// An instance of the task was just released.
    Release(TaskId),
    /// An instance of the task just completed.
    Completion(TaskId),
}

/// Full boundary state handed to policies that opted into
/// [`Policy::wants_boundaries`]: the schedule under execution plus an
/// [`InstanceProgress`] snapshot of every job in the hyper-period —
/// everything needed to build a remaining-instance formulation and
/// re-solve it (see [`acs_core::reopt`]).
#[derive(Debug, Clone, Copy)]
pub struct SolverContext<'a> {
    /// The task set being simulated.
    pub set: &'a TaskSet,
    /// The processor executing it.
    pub cpu: &'a Processor,
    /// The static schedule the run is driven by, when attached.
    pub schedule: Option<&'a StaticSchedule>,
    /// Current simulation time (within the hyper-period).
    pub now: Time,
    /// What triggered this boundary.
    pub event: BoundaryEvent,
    /// Execution state of every job of the hyper-period, in engine order.
    pub progress: &'a [InstanceProgress],
}

/// Online-solver telemetry a boundary-re-optimizing policy exposes via
/// [`Policy::solver_stats`]; the engine folds the per-run delta into
/// [`SimReport`](crate::SimReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Boundary states for which a solution was needed (cache lookups).
    pub lookups: usize,
    /// Lookups answered by the solver cache.
    pub cache_hits: usize,
    /// Boundary re-solves actually executed.
    pub resolves: usize,
    /// Candidates that passed the feasibility/energy gate and were
    /// adopted.
    pub adopted: usize,
    /// Lookups answered by a carried warm solve (previous boundary's
    /// multipliers + ends seeded one solve that passed the gate), which
    /// skips both the cache and the multi-start fan-out. Invariant:
    /// `lookups == warm_carry_hits + cache_hits + resolves`.
    pub warm_carry_hits: usize,
}

impl SolverStats {
    /// Component-wise difference (`self` minus `earlier`); used by the
    /// engine to attribute cumulative policy counters to one run.
    pub fn delta_since(self, earlier: SolverStats) -> SolverStats {
        SolverStats {
            lookups: self.lookups.saturating_sub(earlier.lookups),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            resolves: self.resolves.saturating_sub(earlier.resolves),
            adopted: self.adopted.saturating_sub(earlier.adopted),
            warm_carry_hits: self.warm_carry_hits.saturating_sub(earlier.warm_carry_hits),
        }
    }

    /// Cache hit rate, `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.lookups == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / self.lookups as f64)
        }
    }
}

/// An online DVS policy: called back by the engine at every scheduling
/// event, returns the speed to run at from [`Policy::on_dispatch`].
///
/// Policies may keep arbitrary internal state; [`Policy::on_start`] runs
/// at the beginning of every hyper-period and must (re)initialize that
/// state so multi-hyper-period runs stay independent and deterministic.
pub trait Policy: Send {
    /// Short display name used in reports and error messages.
    fn name(&self) -> &str;

    /// `true` when the policy dispatches from static-schedule milestones
    /// (the engine then requires [`Simulator::with_schedule`]).
    ///
    /// [`Simulator::with_schedule`]: crate::Simulator::with_schedule
    fn needs_schedule(&self) -> bool {
        false
    }

    /// Called once at the start of every hyper-period; reset internal
    /// state here.
    fn on_start(&mut self, _set: &TaskSet, _cpu: &Processor) {}

    /// A new instance of `task` was released.
    fn on_release(&mut self, _task: TaskId, _set: &TaskSet, _cpu: &Processor) {}

    /// An instance of `task` completed after executing `actual` cycles.
    fn on_completion(&mut self, _task: TaskId, _actual: Cycles, _set: &TaskSet, _cpu: &Processor) {}

    /// `true` when the policy wants [`Policy::on_boundary`] callbacks.
    /// Building the [`SolverContext`] snapshot costs `O(jobs)` per
    /// boundary, so the engine only does it on request.
    fn wants_boundaries(&self) -> bool {
        false
    }

    /// Called at every job boundary (hyper-period start, release,
    /// completion) — *after* the corresponding `on_start`/`on_release`/
    /// `on_completion` hook — with the full [`SolverContext`]. This is
    /// the hook re-optimizing policies ([`ReOpt`]) solve from; the
    /// default does nothing.
    ///
    /// [`ReOpt`]: crate::ReOpt
    fn on_boundary(&mut self, _ctx: &SolverContext<'_>) {}

    /// Cumulative online-solver telemetry, for policies that run one
    /// (`None` otherwise). The engine reports the per-run delta in
    /// [`SimReport`](crate::SimReport).
    fn solver_stats(&self) -> Option<SolverStats> {
        None
    }

    /// The speed to run the dispatched chunk at. The engine clamps the
    /// result into the processor's `[f_min, f_max]`.
    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq;
}

/// Conversion into a boxed [`Policy`], so [`Simulator::new`] accepts
/// policy values, boxed policies, and the deprecated [`DvsPolicy`] enum
/// uniformly.
///
/// [`Simulator::new`]: crate::Simulator::new
pub trait IntoPolicy {
    /// Boxes `self` as a dynamic policy.
    fn into_policy(self) -> Box<dyn Policy>;
}

impl<P: Policy + 'static> IntoPolicy for P {
    fn into_policy(self) -> Box<dyn Policy> {
        Box::new(self)
    }
}

impl IntoPolicy for Box<dyn Policy> {
    fn into_policy(self) -> Box<dyn Policy> {
        self
    }
}

// ---------------------------------------------------------------------
// Built-in policies
// ---------------------------------------------------------------------

/// Always run at maximum speed; idle when nothing is ready. The no-DVS
/// reference point.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDvs;

impl Policy for NoDvs {
    fn name(&self) -> &str {
        "no-dvs"
    }
    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
        ctx.cpu.f_max()
    }
}

/// Use the static schedule's per-chunk speed `R̂_u/(e_u − ŝ_u)`
/// (worst-case start `ŝ_u`), with **no** slack reclamation. Isolates the
/// value of the static schedule alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticSpeed;

impl Policy for StaticSpeed {
    fn name(&self) -> &str {
        "static"
    }
    fn needs_schedule(&self) -> bool {
        true
    }
    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
        ctx.static_speed
    }
}

/// The paper's runtime: at dispatch, stretch the chunk's remaining
/// worst-case budget over the time left until its milestone,
/// `speed = R̂_rem/(e_u − now)` — early completions automatically lower
/// later voltages (greedy slack reclamation).
///
/// On a leakage-modeled processor (`static_power > 0`) the executed
/// speed never drops below the task's
/// [critical speed](acs_power::Processor::critical_speed): stretching
/// below it would *raise* total energy. The engine floors every
/// dispatch at a precomputed per-task critical speed, so the request
/// itself stays the paper's pure stretch formula.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyReclaim;

impl Policy for GreedyReclaim {
    fn name(&self) -> &str {
        "greedy"
    }
    fn needs_schedule(&self) -> bool {
        true
    }
    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
        let window = ctx.chunk_end - ctx.now;
        if window.as_ms() <= 0.0 {
            ctx.cpu.f_max()
        } else {
            ctx.chunk_budget_remaining / window
        }
    }
}

/// Cycle-conserving RM (Pillai & Shin, SOSP 2001 style): a purely
/// online baseline that rescales speed to the dynamic utilization
/// `Σ U_i`, using WCEC for active instances and the actual cycles for
/// completed ones. Ignores the static schedule.
#[derive(Debug, Clone, Default)]
pub struct CcRm {
    /// Per-task utilization contribution.
    util: Vec<f64>,
}

impl CcRm {
    /// Creates the policy; utilizations initialize at
    /// [`Policy::on_start`].
    pub fn new() -> Self {
        CcRm::default()
    }

    fn worst_util(task: TaskId, set: &TaskSet, cpu: &Processor) -> f64 {
        let t = &set.tasks()[task.0];
        t.wcec() / (t.period().as_span() * cpu.f_max())
    }

    /// The engine calls [`Policy::on_start`] before any other hook; for
    /// direct use outside it, lazily fall back to the same
    /// initialization instead of indexing an empty table (the old
    /// `CcRmState::new(set, cpu)` made that state unrepresentable).
    fn ensure_started(&mut self, set: &TaskSet, cpu: &Processor) {
        if self.util.len() != set.len() {
            self.on_start(set, cpu);
        }
    }
}

impl Policy for CcRm {
    fn name(&self) -> &str {
        "ccrm"
    }
    fn on_start(&mut self, set: &TaskSet, cpu: &Processor) {
        self.util = set
            .iter()
            .map(|(tid, _)| CcRm::worst_util(tid, set, cpu))
            .collect();
    }
    fn on_release(&mut self, task: TaskId, set: &TaskSet, cpu: &Processor) {
        self.ensure_started(set, cpu);
        self.util[task.0] = CcRm::worst_util(task, set, cpu);
    }
    fn on_completion(&mut self, task: TaskId, actual: Cycles, set: &TaskSet, cpu: &Processor) {
        self.ensure_started(set, cpu);
        let t = &set.tasks()[task.0];
        self.util[task.0] = actual / (t.period().as_span() * cpu.f_max());
    }
    fn on_dispatch(&mut self, ctx: &DispatchContext<'_>) -> Freq {
        if self.util.is_empty() {
            // Hooks never ran (direct use outside the engine, which
            // always calls `on_start` first): be conservative.
            return ctx.cpu.f_max();
        }
        let u: f64 = self.util.iter().sum();
        ctx.cpu.f_max() * u.clamp(0.0, 1.0)
    }
}

// ---------------------------------------------------------------------
// Deprecated closed enum (compatibility shim)
// ---------------------------------------------------------------------

/// The original closed set of online policies, kept as a thin shim over
/// the [`Policy`] trait: `Simulator::new(&set, &cpu, DvsPolicy::NoDvs)`
/// still works through [`IntoPolicy`].
///
/// # Migrating from `DvsPolicy` to `Policy`
///
/// Each enum variant has a 1:1 replacement that plugs into the exact
/// same call sites (`Simulator::new`, `Box<dyn Policy>` collections,
/// `PolicySpec::custom` in `acs-runtime`):
///
/// | before (≤ 0.1)                | after (0.2+)                  |
/// |-------------------------------|-------------------------------|
/// | `DvsPolicy::NoDvs`            | [`NoDvs`]                     |
/// | `DvsPolicy::StaticSpeed`      | [`StaticSpeed`]               |
/// | `DvsPolicy::GreedyReclaim`    | [`GreedyReclaim`]             |
/// | `DvsPolicy::CcRm`             | [`CcRm::new()`](CcRm::new)    |
///
/// ```
/// # use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Volt}};
/// # use acs_power::{FreqModel, Processor};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let set = TaskSet::new(vec![Task::builder("t", Ticks::new(10))
/// #     .wcec(Cycles::from_cycles(100.0)).build()?])?;
/// # let cpu = Processor::builder(FreqModel::linear(50.0)?)
/// #     .vmax(Volt::from_volts(4.0)).build()?;
/// // Before (deprecated, still compiles with a warning):
/// // let sim = Simulator::new(&set, &cpu, DvsPolicy::GreedyReclaim);
///
/// // After — same behavior, open to user-defined policies:
/// use acs_sim::{GreedyReclaim, Simulator};
/// let sim = Simulator::new(&set, &cpu, GreedyReclaim);
/// # let _ = sim;
/// # Ok(())
/// # }
/// ```
///
/// Match statements over `DvsPolicy` have no direct equivalent — replace
/// them with the trait's own hooks ([`Policy::name`],
/// [`Policy::needs_schedule`], [`Policy::on_dispatch`]) or keep your own
/// enum and implement [`Policy`] for it.
#[deprecated(
    since = "0.2.0",
    note = "use the Policy trait implementations (NoDvs, StaticSpeed, GreedyReclaim, CcRm) \
            or implement Policy directly; see the DvsPolicy rustdoc for a before/after table"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DvsPolicy {
    /// See [`NoDvs`].
    NoDvs,
    /// See [`StaticSpeed`].
    StaticSpeed,
    /// See [`GreedyReclaim`].
    GreedyReclaim,
    /// See [`CcRm`].
    CcRm,
}

#[allow(deprecated)]
impl DvsPolicy {
    /// `true` when the policy dispatches from static milestones.
    pub fn needs_schedule(self) -> bool {
        matches!(self, DvsPolicy::StaticSpeed | DvsPolicy::GreedyReclaim)
    }

    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DvsPolicy::NoDvs => "no-dvs",
            DvsPolicy::StaticSpeed => "static",
            DvsPolicy::GreedyReclaim => "greedy",
            DvsPolicy::CcRm => "ccrm",
        }
    }
}

#[allow(deprecated)]
impl std::fmt::Display for DvsPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[allow(deprecated)]
impl From<DvsPolicy> for Box<dyn Policy> {
    fn from(p: DvsPolicy) -> Box<dyn Policy> {
        match p {
            DvsPolicy::NoDvs => Box::new(NoDvs),
            DvsPolicy::StaticSpeed => Box::new(StaticSpeed),
            DvsPolicy::GreedyReclaim => Box::new(GreedyReclaim),
            DvsPolicy::CcRm => Box::new(CcRm::new()),
        }
    }
}

#[allow(deprecated)]
impl IntoPolicy for DvsPolicy {
    fn into_policy(self) -> Box<dyn Policy> {
        self.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Ticks, Volt};
    use acs_model::Task;
    use acs_power::FreqModel;

    fn fixture() -> (TaskSet, Processor) {
        let set = TaskSet::new(vec![
            Task::builder("a", Ticks::new(10))
                .wcec(Cycles::from_cycles(200.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(20))
                .wcec(Cycles::from_cycles(400.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(2.0)) // fmax = 100 cyc/ms
            .build()
            .unwrap();
        (set, cpu)
    }

    fn ctx<'a>(
        set: &'a TaskSet,
        cpu: &'a Processor,
        now: f64,
        end: f64,
        budget: f64,
        static_speed: f64,
    ) -> DispatchContext<'a> {
        DispatchContext {
            set,
            cpu,
            task: TaskId(0),
            now: Time::from_ms(now),
            chunk_end: Time::from_ms(end),
            chunk_budget_remaining: Cycles::from_cycles(budget),
            static_speed: Freq::from_cycles_per_ms(static_speed),
            sub: None,
        }
    }

    #[test]
    fn needs_schedule_flags() {
        assert!(!NoDvs.needs_schedule());
        assert!(StaticSpeed.needs_schedule());
        assert!(GreedyReclaim.needs_schedule());
        assert!(!CcRm::new().needs_schedule());
        assert_eq!(GreedyReclaim.name(), "greedy");
    }

    #[test]
    fn ccrm_tracks_dynamic_utilization() {
        let (set, cpu) = fixture();
        let mut p = CcRm::new();
        p.on_start(&set, &cpu);
        let speed_of = |p: &mut CcRm| {
            let c = ctx(&set, &cpu, 0.0, 1.0, 1.0, 0.0);
            p.on_dispatch(&c).as_cycles_per_ms()
        };
        // Worst case: 200/(10·100) + 400/(20·100) = 0.2 + 0.2 = 0.4.
        assert!((speed_of(&mut p) - 40.0).abs() < 1e-9);
        // Task a completes with only 50 cycles: U_a = 0.05.
        p.on_completion(TaskId(0), Cycles::from_cycles(50.0), &set, &cpu);
        assert!((speed_of(&mut p) - 25.0).abs() < 1e-9);
        // Next release of a restores the worst case.
        p.on_release(TaskId(0), &set, &cpu);
        assert!((speed_of(&mut p) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn ccrm_tolerates_hooks_before_on_start() {
        let (set, cpu) = fixture();
        let mut p = CcRm::new();
        // No on_start: dispatch is conservative, hooks self-initialize.
        let c = ctx(&set, &cpu, 0.0, 1.0, 1.0, 0.0);
        assert_eq!(p.on_dispatch(&c), cpu.f_max());
        p.on_completion(TaskId(0), Cycles::from_cycles(50.0), &set, &cpu);
        // 50/(10·100) + 400/(20·100) = 0.05 + 0.2.
        assert!((p.on_dispatch(&c).as_cycles_per_ms() - 25.0).abs() < 1e-9);
        let mut q = CcRm::new();
        q.on_release(TaskId(1), &set, &cpu);
        assert!((q.on_dispatch(&c).as_cycles_per_ms() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_speed_from_context() {
        let (set, cpu) = fixture();
        let c = ctx(&set, &cpu, 2.0, 6.0, 200.0, 77.0);
        let f = GreedyReclaim.on_dispatch(&c);
        assert!((f.as_cycles_per_ms() - 50.0).abs() < 1e-12);
        assert_eq!(StaticSpeed.on_dispatch(&c), Freq::from_cycles_per_ms(77.0));
        assert_eq!(NoDvs.on_dispatch(&c), cpu.f_max());
    }

    #[test]
    fn greedy_saturates_past_milestone() {
        let (set, cpu) = fixture();
        let c = ctx(&set, &cpu, 6.0, 6.0, 1.0, 0.0);
        assert_eq!(GreedyReclaim.on_dispatch(&c), cpu.f_max());
    }

    #[test]
    #[allow(deprecated)]
    fn enum_shim_converts_to_matching_trait_policies() {
        let (set, cpu) = fixture();
        for (e, expect_name, expect_sched) in [
            (DvsPolicy::NoDvs, "no-dvs", false),
            (DvsPolicy::StaticSpeed, "static", true),
            (DvsPolicy::GreedyReclaim, "greedy", true),
            (DvsPolicy::CcRm, "ccrm", false),
        ] {
            assert_eq!(e.to_string(), expect_name);
            let mut p: Box<dyn Policy> = e.into();
            p.on_start(&set, &cpu);
            assert_eq!(p.name(), expect_name);
            assert_eq!(p.needs_schedule(), expect_sched);
            assert_eq!(e.needs_schedule(), expect_sched);
        }
    }
}
