//! Online DVS policies.

use acs_model::units::{Cycles, Freq, Time};
use acs_model::TaskSet;
use acs_power::Processor;

/// The online voltage-selection policy used at every dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DvsPolicy {
    /// Always run at maximum speed; idle when nothing is ready. The
    /// no-DVS reference point.
    NoDvs,
    /// Use the static schedule's per-chunk speed `R̂_u/(e_u − ŝ_u)`
    /// (worst-case start `ŝ_u`), with **no** slack reclamation. Isolates
    /// the value of the static schedule alone.
    StaticSpeed,
    /// The paper's runtime: at dispatch, stretch the chunk's remaining
    /// worst-case budget over the time left until its milestone,
    /// `speed = R̂_rem/(e_u − now)` — early completions automatically
    /// lower later voltages (greedy slack reclamation).
    GreedyReclaim,
    /// Cycle-conserving RM (Pillai & Shin, SOSP 2001 style): a purely
    /// online baseline that rescales speed to the dynamic utilization
    /// `Σ U_i`, using WCEC for active instances and the actual cycles for
    /// completed ones. Ignores the static schedule.
    CcRm,
}

impl DvsPolicy {
    /// `true` when the policy dispatches from static milestones.
    pub fn needs_schedule(self) -> bool {
        matches!(self, DvsPolicy::StaticSpeed | DvsPolicy::GreedyReclaim)
    }

    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DvsPolicy::NoDvs => "no-dvs",
            DvsPolicy::StaticSpeed => "static",
            DvsPolicy::GreedyReclaim => "greedy",
            DvsPolicy::CcRm => "ccrm",
        }
    }
}

impl std::fmt::Display for DvsPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Dynamic-utilization state for [`DvsPolicy::CcRm`].
#[derive(Debug, Clone)]
pub struct CcRmState {
    /// Per-task utilization contribution.
    util: Vec<f64>,
}

impl CcRmState {
    /// Initializes with every task at its worst-case utilization.
    pub fn new(set: &TaskSet, cpu: &Processor) -> Self {
        let fmax = cpu.f_max();
        CcRmState {
            util: set
                .tasks()
                .iter()
                .map(|t| t.wcec() / (t.period().as_span() * fmax))
                .collect(),
        }
    }

    /// A new instance of `task` was released: assume its worst case.
    pub fn on_release(&mut self, task: usize, set: &TaskSet, cpu: &Processor) {
        let t = &set.tasks()[task];
        self.util[task] = t.wcec() / (t.period().as_span() * cpu.f_max());
    }

    /// An instance of `task` completed after executing `actual` cycles.
    pub fn on_completion(&mut self, task: usize, actual: Cycles, set: &TaskSet, cpu: &Processor) {
        let t = &set.tasks()[task];
        self.util[task] = actual / (t.period().as_span() * cpu.f_max());
    }

    /// Speed the policy requests right now.
    pub fn speed(&self, cpu: &Processor) -> Freq {
        let u: f64 = self.util.iter().sum();
        cpu.f_max() * u.clamp(0.0, 1.0)
    }
}

/// Everything a policy may consult when dispatching a job's chunk.
#[derive(Debug, Clone, Copy)]
pub struct DispatchContext {
    /// Current simulation time (within the hyper-period).
    pub now: Time,
    /// Milestone end time of the current chunk.
    pub chunk_end: Time,
    /// Remaining worst-case budget of the current chunk.
    pub chunk_budget_remaining: Cycles,
    /// Precomputed static speed of the chunk (for [`DvsPolicy::StaticSpeed`]).
    pub static_speed: Freq,
}

/// Computes the requested speed for a dispatch under `policy`.
pub fn requested_speed(
    policy: DvsPolicy,
    cpu: &Processor,
    ctx: &DispatchContext,
    ccrm: Option<&CcRmState>,
) -> Freq {
    match policy {
        DvsPolicy::NoDvs => cpu.f_max(),
        DvsPolicy::StaticSpeed => ctx.static_speed,
        DvsPolicy::GreedyReclaim => {
            let window = ctx.chunk_end - ctx.now;
            if window.as_ms() <= 0.0 {
                cpu.f_max()
            } else {
                ctx.chunk_budget_remaining / window
            }
        }
        DvsPolicy::CcRm => ccrm
            .map(|s| s.speed(cpu))
            .unwrap_or_else(|| cpu.f_max()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Ticks, Volt};
    use acs_model::Task;
    use acs_power::FreqModel;

    fn fixture() -> (TaskSet, Processor) {
        let set = TaskSet::new(vec![
            Task::builder("a", Ticks::new(10))
                .wcec(Cycles::from_cycles(200.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(20))
                .wcec(Cycles::from_cycles(400.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(2.0)) // fmax = 100 cyc/ms
            .build()
            .unwrap();
        (set, cpu)
    }

    #[test]
    fn needs_schedule_flags() {
        assert!(!DvsPolicy::NoDvs.needs_schedule());
        assert!(DvsPolicy::StaticSpeed.needs_schedule());
        assert!(DvsPolicy::GreedyReclaim.needs_schedule());
        assert!(!DvsPolicy::CcRm.needs_schedule());
        assert_eq!(DvsPolicy::GreedyReclaim.to_string(), "greedy");
    }

    #[test]
    fn ccrm_tracks_dynamic_utilization() {
        let (set, cpu) = fixture();
        let mut s = CcRmState::new(&set, &cpu);
        // Worst case: 200/(10·100) + 400/(20·100) = 0.2 + 0.2 = 0.4.
        assert!((s.speed(&cpu).as_cycles_per_ms() - 40.0).abs() < 1e-9);
        // Task a completes with only 50 cycles: U_a = 0.05.
        s.on_completion(0, Cycles::from_cycles(50.0), &set, &cpu);
        assert!((s.speed(&cpu).as_cycles_per_ms() - 25.0).abs() < 1e-9);
        // Next release of a restores the worst case.
        s.on_release(0, &set, &cpu);
        assert!((s.speed(&cpu).as_cycles_per_ms() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_speed_from_context() {
        let (_, cpu) = fixture();
        let ctx = DispatchContext {
            now: Time::from_ms(2.0),
            chunk_end: Time::from_ms(6.0),
            chunk_budget_remaining: Cycles::from_cycles(200.0),
            static_speed: Freq::from_cycles_per_ms(77.0),
        };
        let f = requested_speed(DvsPolicy::GreedyReclaim, &cpu, &ctx, None);
        assert!((f.as_cycles_per_ms() - 50.0).abs() < 1e-12);
        assert_eq!(
            requested_speed(DvsPolicy::StaticSpeed, &cpu, &ctx, None),
            Freq::from_cycles_per_ms(77.0)
        );
        assert_eq!(
            requested_speed(DvsPolicy::NoDvs, &cpu, &ctx, None),
            cpu.f_max()
        );
    }

    #[test]
    fn greedy_saturates_past_milestone() {
        let (_, cpu) = fixture();
        let ctx = DispatchContext {
            now: Time::from_ms(6.0),
            chunk_end: Time::from_ms(6.0),
            chunk_budget_remaining: Cycles::from_cycles(1.0),
            static_speed: Freq::ZERO,
        };
        assert_eq!(
            requested_speed(DvsPolicy::GreedyReclaim, &cpu, &ctx, None),
            cpu.f_max()
        );
    }

    #[test]
    fn ccrm_without_state_falls_back_to_fmax() {
        let (_, cpu) = fixture();
        let ctx = DispatchContext {
            now: Time::from_ms(0.0),
            chunk_end: Time::from_ms(1.0),
            chunk_budget_remaining: Cycles::from_cycles(1.0),
            static_speed: Freq::ZERO,
        };
        assert_eq!(requested_speed(DvsPolicy::CcRm, &cpu, &ctx, None), cpu.f_max());
    }
}
