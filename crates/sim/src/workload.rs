//! Workload sources: where per-job cycle demands come from.
//!
//! The engine historically took a plain `FnMut(TaskId, u64) -> Cycles`
//! closure, called once per job in **task-major order** within each
//! hyper-period (task 0's instances, then task 1's, …). That per-job
//! call is one of the engine's hot paths, so [`WorkloadSource`] extends
//! the closure contract with a *batched* draw: the engine requests one
//! task's whole hyper-period window in a single call and the source may
//! sample its RNG in a tight loop.
//!
//! ## Purity contract
//!
//! `draw_batch(task, start, count, out)` **must** append exactly
//! `count` values and be bit-identical to `count` sequential
//! `draw(task, start + k)` calls — same values, same internal RNG
//! state afterwards. The engine only ever batches draws it would have
//! made consecutively anyway (it draws task-major), so any source whose
//! stream depends only on call order (a shared sequential RNG) or only
//! on `(task, instance)` (counter-keyed streams) satisfies the contract
//! with the obvious loop. The default implementation *is* that loop;
//! override it only to hoist per-call overhead out of the loop, never
//! to change the stream. `tests/engine_differential.rs` pins the
//! contract: batched and per-job draws must produce byte-identical
//! reports for randomized batch windows.
//!
//! Every `FnMut(TaskId, u64) -> Cycles` closure is a `WorkloadSource`
//! (per-draw only), so the closure-based [`Simulator::run`] API is a
//! thin wrapper over the source-based [`Simulator::run_source`].
//!
//! [`Simulator::run`]: crate::Simulator::run
//! [`Simulator::run_source`]: crate::Simulator::run_source

use acs_model::units::Cycles;
use acs_model::TaskId;

/// A supplier of per-job actual execution cycles.
///
/// Implemented by every `FnMut(TaskId, u64) -> Cycles` closure (blanket
/// impl, per-draw only) and by `acs-workloads`' `TaskWorkloads` (with a
/// genuinely batched override). See the module docs for the batch
/// purity contract.
pub trait WorkloadSource {
    /// Draws the actual cycle demand of one job: `task`'s instance
    /// `instance`, indexed absolutely across the whole run
    /// (hyper-period-major).
    fn draw(&mut self, task: TaskId, instance: u64) -> Cycles;

    /// Draws `count` consecutive instances of `task` starting at
    /// absolute instance `start`, appending exactly `count` values to
    /// `out`. Must be bit-identical to `count` sequential
    /// [`WorkloadSource::draw`] calls (see the module docs); the
    /// default implementation is exactly that loop.
    fn draw_batch(&mut self, task: TaskId, start: u64, count: u64, out: &mut Vec<Cycles>) {
        out.reserve(count as usize);
        for k in 0..count {
            out.push(self.draw(task, start + k));
        }
    }
}

impl<F: FnMut(TaskId, u64) -> Cycles + ?Sized> WorkloadSource for F {
    fn draw(&mut self, task: TaskId, instance: u64) -> Cycles {
        self(task, instance)
    }
}

impl WorkloadSource for acs_workloads::TaskWorkloads {
    fn draw(&mut self, task: TaskId, instance: u64) -> Cycles {
        acs_workloads::TaskWorkloads::draw(self, task, instance)
    }

    /// Batched sampling: one distribution lookup, then a tight loop
    /// over the shared RNG — the same RNG calls in the same order as
    /// per-job draws, so the stream is unchanged.
    fn draw_batch(&mut self, task: TaskId, _start: u64, count: u64, out: &mut Vec<Cycles>) {
        acs_workloads::TaskWorkloads::draw_batch(self, task, count, out);
    }
}

/// The engine's internal view of a workload argument: either the
/// closure-based legacy shape or a genuine [`WorkloadSource`]. Wrapping
/// (rather than trait-object upcasting, which Rust does not offer for
/// sibling traits) lets [`Simulator::run`] keep its closure signature —
/// and closure argument inference — while the engine itself only speaks
/// `WorkloadSource`.
///
/// [`Simulator::run`]: crate::Simulator::run
pub(crate) enum WorkloadRef<'w> {
    /// A plain closure: per-draw only.
    Closure(&'w mut dyn FnMut(TaskId, u64) -> Cycles),
    /// A full source: batched draws reach the implementation.
    Source(&'w mut dyn WorkloadSource),
}

impl WorkloadSource for WorkloadRef<'_> {
    fn draw(&mut self, task: TaskId, instance: u64) -> Cycles {
        match self {
            WorkloadRef::Closure(f) => f(task, instance),
            WorkloadRef::Source(s) => s.draw(task, instance),
        }
    }

    fn draw_batch(&mut self, task: TaskId, start: u64, count: u64, out: &mut Vec<Cycles>) {
        match self {
            WorkloadRef::Closure(f) => {
                out.reserve(count as usize);
                for k in 0..count {
                    out.push(f(task, start + k));
                }
            }
            WorkloadRef::Source(s) => s.draw_batch(task, start, count, out),
        }
    }
}
