//! The event-driven preemptive DVS simulator (fixed-priority RM or
//! EDF, per [`SchedulingClass`]).
//!
//! Jobs are released periodically, preemption is immediate when a more
//! eligible job appears — a higher-priority release under RM (paper
//! §2.1), an earlier-deadline release under EDF — and the processor
//! shuts down (zero energy) when idle. The engine is a discrete-event
//! simulation: releases and chunk-window wakeups live in a
//! deterministic binary-heap [`EventQueue`] keyed
//! `(time, kind-priority, seq)`, dispatch selection pops a
//! [`ReadyQueue`], and completions / budget
//! exhaustions / preemptions are *derived* events computed at dispatch
//! — so simulation cost is `O(events · log jobs)`, independent of
//! cycle counts, and every output bit matches the legacy chunk-scan
//! engine (kept behind the `legacy-engine` feature as a test oracle;
//! see `docs/ENGINE.md` for the determinism contract).
//!
//! The engine is policy-agnostic: it drives any [`Policy`] through the
//! trait's callbacks (`on_start`/`on_release`/`on_completion`/
//! `on_dispatch`) and clamps every requested speed into the processor's
//! `[f_min, f_max]` at the dispatch boundary, so no policy can request an
//! unrealizable frequency.

use crate::error::SimError;
use crate::event::{Event, EventKind, EventQueue, ReadyKey, ReadyQueue};
use crate::exec_trace::{ExecutionTrace, Slice};
use crate::policy::{
    BoundaryEvent, DispatchContext, IntoPolicy, Policy, SolverContext, SolverStats,
};
use crate::report::SimReport;
use crate::workload::{WorkloadRef, WorkloadSource};
use acs_core::reopt::InstanceProgress;
use acs_core::StaticSchedule;
use acs_model::units::{Cycles, Energy, Freq, Time, TimeSpan};
use acs_model::{SchedulingClass, TaskId, TaskSet};
use acs_power::Processor;
use acs_preempt::SubInstanceId;
use acs_trace::{ArrivalJob, ArrivalSource};

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Number of hyper-periods to simulate (the paper uses 1000).
    pub hyper_periods: u64,
    /// Lateness tolerance before a completion counts as a deadline miss
    /// (absorbs floating-point noise).
    pub deadline_tol_ms: f64,
    /// Record an [`ExecutionTrace`] of the *first* hyper-period.
    pub record_trace: bool,
    /// Scheduling class the dispatcher orders ready jobs by; `None`
    /// (the default) inherits the task set's own
    /// [`TaskSet::class`]. The campaign grid sets this explicitly per
    /// cell.
    pub class: Option<SchedulingClass>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            hyper_periods: 1,
            deadline_tol_ms: 1e-6,
            record_trace: false,
            class: None,
        }
    }
}

/// Result of [`Simulator::run`].
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Aggregate counters and energy.
    pub report: SimReport,
    /// Trace of the first hyper-period when requested.
    pub trace: Option<ExecutionTrace>,
}

/// Tolerance for time comparisons (release admission, chunk-window
/// opening, voltage equality), in ms.
pub(crate) const EPS: f64 = 1e-9;

/// Completion threshold in cycles. Schedules are accepted with up
/// to ~1e-6 ms of worst-case trace lateness, which at f_max
/// corresponds to fractions of a cycle of residual work; without a
/// forgiving threshold that dust survives all chunk budgets, loses
/// priority to newly released jobs (RM is not deadline-aware) and
/// "completes" milliseconds late. 1e-2 cycles is tens of
/// nanoseconds of work on any realistic clock — far below anything
/// observable — and comfortably above every gate-permitted
/// residual (including the looser quick-profile solves).
pub(crate) const CYCLE_EPS: f64 = 1e-2;

/// Static per-chunk dispatch data derived from the schedule (or synthetic
/// single-chunk plans for schedule-free policies).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChunkPlan {
    /// Window start of the chunk's segment. A job that exhausts its
    /// current chunk's budget early is *throttled* until the next
    /// chunk's window opens — the budget-enforced semantics the paper's
    /// fill rule assumes ("the next sub-instance will start execution
    /// only if the previous sub-instance already reaches the worst-case
    /// limit", §3.2). Without this, a mid-priority job would barge into
    /// its next chunk and crowd out lower-priority chunks whose
    /// milestones precede it in the total order, breaking worst-case
    /// guarantees.
    pub(crate) start_ms: f64,
    pub(crate) end_ms: f64,
    pub(crate) budget: f64,
    pub(crate) static_speed: f64,
    /// The schedule's sub-instance this chunk executes (`None` for the
    /// synthetic single-chunk plans of schedule-free runs).
    pub(crate) sub: Option<SubInstanceId>,
}

/// A job (task instance) inside one hyper-period.
#[derive(Debug, Clone)]
pub(crate) struct Job {
    pub(crate) task: usize,
    pub(crate) instance_in_hyper: u64,
    pub(crate) release_ms: f64,
    pub(crate) deadline_ms: f64,
    pub(crate) remaining: f64,
    pub(crate) executed: f64,
    pub(crate) chunk: usize,
    pub(crate) chunk_budget_left: f64,
    pub(crate) done: bool,
    /// Synthetic single-chunk plan of an *aperiodic* job (released by a
    /// non-periodic arrival source): budget WCEC, window
    /// release→deadline, static speed sized to just meet the deadline.
    /// `None` for periodic jobs, which use the per-instance plans.
    pub(crate) own_plan: Option<ChunkPlan>,
    /// Virtual time this job's chunk state was last maintained at —
    /// the event engine maintains chunks lazily, and boundary
    /// snapshots use this to forward exactly to the legacy engine's
    /// per-round maintenance basis and no further (the legacy oracle
    /// initializes it and never reads it).
    pub(crate) maintained_at: f64,
}

/// The simulator: borrows the system description, owns the online
/// policy, and runs workloads through them.
///
/// Any [`Policy`] value (built-in or user-defined), a `Box<dyn Policy>`,
/// or the deprecated `DvsPolicy` enum is accepted.
///
/// ```
/// use acs_model::{Task, TaskSet, TaskId, units::{Cycles, Ticks, Volt}};
/// use acs_power::{FreqModel, Processor};
/// use acs_sim::{NoDvs, SimOptions, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TaskSet::new(vec![
///     Task::builder("t", Ticks::new(10)).wcec(Cycles::from_cycles(100.0)).build()?,
/// ])?;
/// let cpu = Processor::builder(FreqModel::linear(50.0)?)
///     .vmax(Volt::from_volts(4.0)).build()?;
/// let out = Simulator::new(&set, &cpu, NoDvs)
///     .run(&mut |_, _| Cycles::from_cycles(100.0))?;
/// assert_eq!(out.report.jobs_completed, 1);
/// assert!(out.report.all_deadlines_met());
/// # Ok(())
/// # }
/// ```
pub struct Simulator<'a> {
    pub(crate) set: &'a TaskSet,
    pub(crate) cpu: &'a Processor,
    pub(crate) policy: Box<dyn Policy>,
    pub(crate) schedule: Option<&'a StaticSchedule>,
    pub(crate) options: SimOptions,
    /// When set, job releases come from this source instead of the
    /// built-in periodic pattern (see [`Simulator::with_arrivals`]).
    pub(crate) arrivals: Option<Box<dyn ArrivalSource>>,
}

impl std::fmt::Debug for Simulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("policy", &self.policy.name())
            .field("schedule", &self.schedule.map(|s| s.kind()))
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with default options and no schedule.
    pub fn new(set: &'a TaskSet, cpu: &'a Processor, policy: impl IntoPolicy) -> Self {
        Simulator {
            set,
            cpu,
            policy: policy.into_policy(),
            schedule: None,
            options: SimOptions::default(),
            arrivals: None,
        }
    }

    /// Attaches an [`ArrivalSource`]: job releases (and, for trace
    /// sources, per-job cycle demands) come from the source instead of
    /// the built-in periodic pattern. One source window is consumed per
    /// hyper-period; `options.hyper_periods` still caps the run, and a
    /// finite source (trace replay) ends the run early once
    /// [`ArrivalSource::exhausted`].
    ///
    /// Aperiodic jobs (no `periodic_instance`) run on synthetic
    /// single-chunk plans — budget WCEC, window release→deadline — so
    /// they need no static schedule; schedule-boundary callbacks are
    /// only fired when the source is [`ArrivalSource::periodic`]
    /// (re-optimizing policies degrade gracefully to their chunk-end
    /// fallback on aperiodic cells). A window whose demand exceeds
    /// capacity overruns the hyper-period until its jobs drain, and
    /// every late job is counted in both `deadline_misses` and
    /// `misses_aperiodic` — overload is loud, never wedged.
    pub fn with_arrivals(mut self, arrivals: Box<dyn ArrivalSource>) -> Self {
        self.arrivals = Some(arrivals);
        self
    }

    /// Attaches the static schedule consumed by milestone-based policies.
    pub fn with_schedule(mut self, schedule: &'a StaticSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Overrides the simulation options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the scheduling class for this run (otherwise the task
    /// set's own [`TaskSet::class`] applies).
    pub fn with_class(mut self, class: SchedulingClass) -> Self {
        self.options.class = Some(class);
        self
    }

    /// Runs the simulation. `workload` is called once per job with the
    /// task id and the *absolute* instance index across the whole run
    /// (hyper-period-major), and returns that job's actual execution
    /// cycles; draws are clamped into `[0, WCEC]` (clamps are counted in
    /// the report).
    ///
    /// Takes `&mut self` because the policy may carry state; the policy's
    /// [`Policy::on_start`] runs at every hyper-period boundary, so
    /// consecutive `run` calls remain independent.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(
        &mut self,
        workload: &mut dyn FnMut(TaskId, u64) -> Cycles,
    ) -> Result<RunOutput, SimError> {
        #[cfg(feature = "legacy-engine")]
        // The chunk-scan oracle predates arrival sources and precedence
        // graphs; it only covers the built-in periodic, independent path.
        if crate::legacy::legacy_engine_enabled()
            && self.arrivals.is_none()
            && self.set.graph().is_none_or(|g| g.is_empty())
        {
            return self.run_legacy(workload);
        }
        self.stepped(workload)?.finish()
    }

    /// [`Simulator::run`] over a [`WorkloadSource`]: identical
    /// semantics and byte-identical output, but batch-capable sources
    /// (e.g. `acs-workloads`' `TaskWorkloads`) are drawn one task per
    /// hyper-period window at a time instead of one call per job. A
    /// closure passed through `run` reaches the same engine with the
    /// per-draw fallback.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_source(&mut self, workload: &mut dyn WorkloadSource) -> Result<RunOutput, SimError> {
        #[cfg(feature = "legacy-engine")]
        if crate::legacy::legacy_engine_enabled()
            && self.arrivals.is_none()
            && self.set.graph().is_none_or(|g| g.is_empty())
        {
            // The frozen oracle predates the source interface; feed it
            // one draw at a time (it stays allocation-unoptimized by
            // design — see docs/ENGINE.md).
            let mut per_draw = |t: TaskId, i: u64| workload.draw(t, i);
            return self.run_legacy(&mut per_draw);
        }
        self.stepped_source(workload)?.finish()
    }

    /// Starts a resumable run: the same simulation `run` performs, but
    /// advanced one event round at a time via [`SteppedRun::step`].
    ///
    /// This is how `acs-multi` interleaves per-core engines on one
    /// shared clock: each core holds a `SteppedRun`, and the machine
    /// repeatedly steps whichever core's [`SteppedRun::clock_ms`] is
    /// smallest. Driving a `SteppedRun` to completion produces exactly
    /// the [`RunOutput`] that `run` would have returned.
    ///
    /// # Errors
    ///
    /// See [`SimError`] (plan construction runs here; execution errors
    /// surface from `step`/`finish`).
    pub fn stepped<'s, 'w>(
        &'s mut self,
        workload: &'w mut dyn FnMut(TaskId, u64) -> Cycles,
    ) -> Result<SteppedRun<'s, 'a, 'w>, SimError> {
        self.stepped_ref(WorkloadRef::Closure(workload))
    }

    /// [`Simulator::stepped`] over a [`WorkloadSource`] — the resumable
    /// form of [`Simulator::run_source`].
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn stepped_source<'s, 'w>(
        &'s mut self,
        workload: &'w mut dyn WorkloadSource,
    ) -> Result<SteppedRun<'s, 'a, 'w>, SimError> {
        self.stepped_ref(WorkloadRef::Source(workload))
    }

    fn stepped_ref<'s, 'w>(
        &'s mut self,
        workload: WorkloadRef<'w>,
    ) -> Result<SteppedRun<'s, 'a, 'w>, SimError> {
        if self.arrivals.is_some() && self.set.graph().is_some_and(|g| !g.is_empty()) {
            return Err(SimError::GraphWithArrivals);
        }
        let plans = self.build_plans()?;
        let stats_before = self.policy.solver_stats();
        let instances_per_hyper = self.set.total_instances();
        Ok(SteppedRun {
            report: SimReport::empty(self.set.len()),
            sim: self,
            workload,
            plans,
            trace: None,
            instances_per_hyper,
            abs_base: 0,
            h: 0,
            stats_before,
            current: None,
            spare: None,
            done: false,
        })
    }

    /// Builds per-task, per-instance chunk plans.
    pub(crate) fn build_plans(&self) -> Result<Vec<Vec<Vec<ChunkPlan>>>, SimError> {
        let fmax = self.cpu.f_max().as_cycles_per_ms();
        // Leakage-aware floor per task: with static power modeled,
        // running a chunk below its critical speed wastes energy, so the
        // static plan speeds never drop below it (zero-leakage
        // processors floor at 0 — no change).
        let floor_of = |c_eff: f64| self.cpu.critical_speed(c_eff).as_cycles_per_ms();
        match self.schedule {
            Some(schedule) => {
                let fps = schedule.fps();
                // Milestones encode a worst-case total order; dispatching
                // them under the other class voids the guarantee (the
                // stretch windows assume this class's interleaving), so
                // the mismatch is an error rather than silent lateness.
                let class = self.options.class.unwrap_or_else(|| self.set.class());
                if fps.class() != class {
                    return Err(SimError::ScheduleMismatch {
                        reason: format!(
                            "schedule synthesized for {} dispatch, run uses {}",
                            fps.class(),
                            class
                        ),
                    });
                }
                if fps.hyper_period() != self.set.hyper_period() {
                    return Err(SimError::ScheduleMismatch {
                        reason: format!(
                            "hyper-period {} vs task set {}",
                            fps.hyper_period(),
                            self.set.hyper_period()
                        ),
                    });
                }
                if fps.task_count() != self.set.len() {
                    return Err(SimError::ScheduleMismatch {
                        reason: format!(
                            "{} tasks in schedule vs {} in set",
                            fps.task_count(),
                            self.set.len()
                        ),
                    });
                }
                // Worst-case start of every sub-instance = max(window
                // start, previous end in total order).
                let mut prev_end = 0.0f64;
                let mut wc_start = vec![0.0f64; fps.len()];
                for (u, sub) in fps.sub_instances().iter().enumerate() {
                    let m = schedule.milestone(sub.id);
                    wc_start[u] = prev_end.max(sub.window_start.as_ms());
                    if m.worst_workload.as_cycles() > 1e-12 {
                        prev_end = m.end_time.as_ms();
                    } else {
                        prev_end = wc_start[u];
                    }
                }
                let mut plans = Vec::with_capacity(self.set.len());
                for (tid, task) in self.set.iter() {
                    let floor = floor_of(task.c_eff());
                    let mut per_task = Vec::new();
                    for inst in 0..fps.instances_of(tid) {
                        let chunks: Vec<ChunkPlan> = fps
                            .chunks_of(acs_preempt::InstanceId {
                                task: tid,
                                index: inst,
                            })
                            .map(|id| {
                                let m = schedule.milestone(id);
                                let end = m.end_time.as_ms();
                                let budget = m.worst_workload.as_cycles();
                                let window = (end - wc_start[id.0]).max(1e-12);
                                ChunkPlan {
                                    start_ms: fps.sub(id).window_start.as_ms(),
                                    end_ms: end,
                                    budget,
                                    static_speed: (budget / window).min(fmax).max(floor),
                                    sub: Some(id),
                                }
                            })
                            .collect();
                        per_task.push(chunks);
                    }
                    plans.push(per_task);
                }
                Ok(plans)
            }
            None => {
                if self.policy.needs_schedule() {
                    return Err(SimError::ScheduleRequired {
                        policy: self.policy.name().to_string(),
                    });
                }
                // One chunk per instance: budget WCEC, milestone at the
                // absolute deadline.
                let mut plans = Vec::with_capacity(self.set.len());
                for (tid, task) in self.set.iter() {
                    let n = self.set.instances_of(tid);
                    let mut per_task = Vec::new();
                    for inst in 0..n {
                        let release = (inst * task.period().get()) as f64;
                        per_task.push(vec![ChunkPlan {
                            start_ms: release,
                            end_ms: release + task.deadline().get() as f64,
                            budget: task.wcec().as_cycles(),
                            static_speed: fmax,
                            sub: None,
                        }]);
                    }
                    plans.push(per_task);
                }
                Ok(plans)
            }
        }
    }
}

/// The engine's borrowed environment, bundled so the per-round methods
/// stay readable (the policy is passed alongside — it needs `&mut`).
struct Env<'e> {
    set: &'e TaskSet,
    cpu: &'e Processor,
    schedule: Option<&'e StaticSchedule>,
    options: &'e SimOptions,
    plans: &'e [Vec<Vec<ChunkPlan>>],
}

/// Advances a job's chunk state to virtual time `t`.
///
/// The advance rules are *path-independent and monotone in `t`*: both
/// branches only depend on the current chunk state and `t`, and a chunk
/// that is advanceable at `t1` stays advanceable at every `t2 > t1`
/// until taken. Running this once at `t` therefore lands in exactly the
/// state the legacy engine reaches by re-running it at every
/// intermediate event — which is what lets the event engine maintain
/// chunks lazily (at selection, wakeup and boundary-snapshot time)
/// instead of scanning every job per round.
fn maintain_job(j: &mut Job, plan: &[ChunkPlan], t: f64) {
    loop {
        // Budget exhausted: the job may only move on once the
        // next chunk's segment opens (budget-enforced
        // schedule; see `ChunkPlan::start_ms`).
        if j.chunk_budget_left <= EPS
            && j.chunk + 1 < plan.len()
            && t + EPS >= plan[j.chunk + 1].start_ms
        {
            j.chunk += 1;
            j.chunk_budget_left = plan[j.chunk].budget;
            continue;
        }
        // Roll missed-milestone budget forward — but never
        // before the next chunk's window opens: a re-optimizing
        // policy may legitimately run a chunk past its *static*
        // milestone (its window extends to the segment end), and
        // rolling early would let the job barge into the next
        // segment ahead of lower-priority chunks, breaking the
        // worst-case guarantees budget enforcement exists for. A
        // *spent* chunk past its milestone likewise waits for
        // its next window (first branch), not skips ahead.
        if j.chunk_budget_left > EPS
            && t >= plan[j.chunk].end_ms + EPS
            && j.chunk + 1 < plan.len()
            && t + EPS >= plan[j.chunk + 1].start_ms
        {
            let left = j.chunk_budget_left;
            j.chunk += 1;
            j.chunk_budget_left = plan[j.chunk].budget + left;
            continue;
        }
        break;
    }
    j.maintained_at = t;
}

/// The predecessor gate (present when the set carries a non-empty
/// [`acs_model::TaskGraph`]): per-job counts of unfinished same-instance
/// predecessor jobs, the dependents to notify on completion, and which
/// released jobs are currently held back. A gated job is *released* —
/// its `Release` event, `on_release` hook and boundary all fire on time
/// — but it stays out of the ready queue until every predecessor job of
/// its graph instance has completed.
struct Gate {
    /// Unfinished predecessor jobs per job index.
    pred_left: Vec<usize>,
    /// Dependent job indices per job index.
    succ_jobs: Vec<Vec<usize>>,
    /// Released jobs currently held back by the gate.
    waiting: Vec<bool>,
}

impl Gate {
    /// Builds the gate from the set's task graph (`n` = job count of
    /// one hyper-period; built-in periodic releases lay jobs out
    /// task-major, one per `(task, instance)`).
    fn build(set: &TaskSet, g: &acs_model::TaskGraph, n: usize) -> Self {
        let mut base = vec![0usize; set.len()];
        let mut acc = 0usize;
        for (tid, _) in set.iter() {
            base[tid.0] = acc;
            acc += set.instances_of(tid) as usize;
        }
        let mut pred_left = vec![0usize; n];
        let mut succ_jobs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in g.edges() {
            // Edge endpoints share a period (validated at graph
            // construction), hence the same instance count.
            for k in 0..set.instances_of(a) as usize {
                succ_jobs[base[a.0] + k].push(base[b.0] + k);
                pred_left[base[b.0] + k] += 1;
            }
        }
        Gate {
            pred_left,
            succ_jobs,
            waiting: vec![false; n],
        }
    }

    /// Re-arms the gate for a new hyper-period: the topology is fixed
    /// per run, so only the counts and the waiting flags reset — no
    /// allocation.
    fn reset(&mut self) {
        self.waiting.iter_mut().for_each(|w| *w = false);
        self.pred_left.iter_mut().for_each(|p| *p = 0);
        for succs in &self.succ_jobs {
            for &s in succs {
                self.pred_left[s] += 1;
            }
        }
    }
}

/// The live state of one hyper-period under the event engine: the jobs,
/// the event queue (pending releases and chunk wakeups), the ready
/// queue, and the virtual clock.
struct HpState {
    jobs: Vec<Job>,
    /// Pending timed events: every not-yet-admitted release, plus one
    /// `ChunkWakeup` per currently throttled job.
    events: EventQueue,
    /// Released, runnable jobs (excluding the one executing a slice).
    ready: ReadyQueue,
    /// Virtual clock, ms within the hyper-period.
    t: f64,
    /// The virtual time chunk maintenance is current *as of* for
    /// boundary snapshots: the legacy engine maintains every job at
    /// each round's entry, so a boundary fired mid-round observes the
    /// previous maintenance pass. Lazy forwarding to this basis (and no
    /// further) reproduces those snapshots bit-for-bit.
    maint_time: f64,
    last_voltage: Option<f64>,
    /// Job index of the most recent dispatch, for preemption counting:
    /// a dispatch of a *different* job while this one still has work is
    /// a displacement (both classes use the same rule, so RM/EDF
    /// preemption counts are directly comparable).
    last_dispatched: Option<usize>,
    /// A job whose slice just ended unfinished; it is re-classified
    /// (ready vs throttled) at the *next* round's entry so boundary
    /// snapshots never observe a post-slice chunk advance early.
    pending: Option<usize>,
    report: SimReport,
    trace: Option<ExecutionTrace>,
    record: bool,
    class: SchedulingClass,
    wants_boundaries: bool,
    /// Leakage-aware dispatch floors, one per task: no request — from
    /// any policy — executes below max(f_min, critical speed). With
    /// zero static power this degenerates to the historical f_min
    /// floor.
    floors: Vec<f64>,
    dispatches: u64,
    /// Predecessor gate, when the set carries a task graph.
    gate: Option<Gate>,
    // Per-round scratch (kept to avoid reallocation).
    admitted: Vec<usize>,
    woken: Vec<usize>,
    /// Jobs the gate freed at a predecessor's completion, awaiting
    /// classification at the next round's entry.
    ungated: Vec<usize>,
    // Arena buffers: owned here so hyper-period recycling (the retired
    // state is handed back to `HpState::new` as `recycle`) carries
    // every backing allocation across hyper-periods. See docs/PERF.md
    // for the ownership rules.
    /// Boundary snapshot scratch (`fire_boundary_with`).
    progress: Vec<InstanceProgress>,
    /// Arrival-window scratch for source-driven releases.
    arrival_buf: Vec<ArrivalJob>,
    /// DFS stack of `release_dependents`.
    dep_stack: Vec<usize>,
    /// One task's batched workload draws.
    draw_buf: Vec<Cycles>,
}

impl HpState {
    /// A state whose containers are all empty but reusable — the
    /// one-time allocations of a run. Per-hyper-period fields are
    /// (re)set by [`HpState::new`], which recycles the previous
    /// hyper-period's state (and with it every backing allocation)
    /// through its `recycle` argument.
    fn fresh(env: &Env<'_>) -> Self {
        let set = env.set;
        let instances = set.total_instances() as usize;
        HpState {
            jobs: Vec::with_capacity(instances),
            events: EventQueue::with_capacity(instances),
            ready: ReadyQueue::new(),
            t: 0.0,
            maint_time: f64::NEG_INFINITY,
            last_voltage: None,
            last_dispatched: None,
            pending: None,
            report: SimReport::empty(set.len()),
            trace: None,
            record: false,
            class: env.options.class.unwrap_or_else(|| set.class()),
            wants_boundaries: false,
            floors: set
                .tasks()
                .iter()
                .map(|t| env.cpu.floor_speed(t.c_eff()).as_cycles_per_ms())
                .collect(),
            dispatches: 0,
            gate: None,
            admitted: Vec::new(),
            woken: Vec::new(),
            ungated: Vec::new(),
            progress: Vec::new(),
            arrival_buf: Vec::new(),
            dep_stack: Vec::new(),
            draw_buf: Vec::new(),
        }
    }

    /// Draws the hyper-period's workloads, builds jobs, fires the
    /// `Start` boundary and queues every release event.
    ///
    /// With no `arrivals` source the built-in periodic pattern applies
    /// (one job per task instance, released on the grid `k·Pᵢ`). With a
    /// source, window `window` is consumed instead; periodic-instance
    /// jobs map onto the static plans, aperiodic jobs get synthetic
    /// single-chunk plans of their own.
    ///
    /// `recycle` hands back the previous hyper-period's state: every
    /// container is cleared (keeping its allocation) and every scalar
    /// reset, so the warm engine loop allocates nothing per job —
    /// pinned by `tests/alloc_budget.rs`. A recycled state is
    /// indistinguishable from a fresh one.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn new(
        env: &Env<'_>,
        policy: &mut dyn Policy,
        workload: &mut dyn WorkloadSource,
        abs_base: u64,
        record: bool,
        arrivals: Option<&mut Box<dyn ArrivalSource>>,
        window: u64,
        recycle: Option<HpState>,
    ) -> Result<Self, SimError> {
        let set = env.set;
        let has_schedule = env.schedule.is_some();
        let mut st = recycle.unwrap_or_else(|| HpState::fresh(env));
        st.jobs.clear();
        st.events.clear();
        st.ready.clear();
        st.t = 0.0;
        st.maint_time = f64::NEG_INFINITY;
        st.last_voltage = None;
        st.last_dispatched = None;
        st.pending = None;
        st.report.reset(set.len());
        st.report.hyper_periods = 1;
        st.trace = record.then(ExecutionTrace::new);
        st.record = record;
        st.dispatches = 0;
        st.admitted.clear();
        st.woken.clear();
        st.ungated.clear();

        // ---- job construction & workload draws ----
        let source_is_periodic = arrivals.as_ref().is_none_or(|s| s.periodic());
        let built_in_releases = arrivals.is_none();
        match arrivals {
            None => {
                let mut abs_counter = abs_base;
                for (tid, task) in set.iter() {
                    let n = set.instances_of(tid);
                    // One batched draw per (task, hyper-period window).
                    // The engine has always drawn task-major, so the
                    // batch is the same consecutive call sequence —
                    // bit-identical streams (see `WorkloadSource`'s
                    // purity contract).
                    st.draw_buf.clear();
                    workload.draw_batch(tid, abs_counter, n, &mut st.draw_buf);
                    abs_counter += n;
                    for inst in 0..n {
                        let release = (inst * task.period().get()) as f64;
                        let drawn = st.draw_buf[inst as usize];
                        let raw = drawn.as_cycles();
                        if !raw.is_finite() || raw < 0.0 {
                            return Err(SimError::InvalidWorkload {
                                task: tid.0,
                                instance: inst,
                                cycles: raw,
                            });
                        }
                        let wcec = task.wcec().as_cycles();
                        let mut actual = if raw > wcec {
                            st.report.clamped_draws += 1;
                            wcec
                        } else {
                            raw
                        };
                        // The schedule's budgets are the effective worst
                        // case; clamp to their sum so repair rounding
                        // cannot leave un-budgeted dust behind.
                        let budget_sum: f64 = env.plans[tid.0][inst as usize]
                            .iter()
                            .map(|c| c.budget)
                            .sum();
                        if has_schedule {
                            actual = actual.min(budget_sum);
                        }
                        let plan0 = env.plans[tid.0][inst as usize][0];
                        st.jobs.push(Job {
                            task: tid.0,
                            instance_in_hyper: inst,
                            release_ms: release,
                            deadline_ms: release + task.deadline().get() as f64,
                            remaining: actual,
                            executed: 0.0,
                            chunk: 0,
                            chunk_budget_left: plan0.budget,
                            done: false,
                            own_plan: None,
                            maintained_at: f64::NEG_INFINITY,
                        });
                    }
                }
            }
            Some(src) => {
                st.arrival_buf.clear();
                src.fill_window(window, &mut st.arrival_buf).map_err(|e| {
                    SimError::ArrivalSource {
                        message: e.to_string(),
                    }
                })?;
                let fmax = env.cpu.f_max().as_cycles_per_ms();
                for (emit_idx, aj) in st.arrival_buf.iter().enumerate() {
                    let Some(task) = set.tasks().get(aj.task) else {
                        return Err(SimError::ArrivalSource {
                            message: format!(
                                "source `{}` released task {} but the set has {}",
                                src.name(),
                                aj.task,
                                set.len()
                            ),
                        });
                    };
                    if !aj.release_ms.is_finite()
                        || aj.release_ms < 0.0
                        || !aj.deadline_ms.is_finite()
                        || aj.deadline_ms <= aj.release_ms
                    {
                        return Err(SimError::ArrivalSource {
                            message: format!(
                                "source `{}` produced invalid timing for task {}: \
                                 release {} deadline {}",
                                src.name(),
                                aj.task,
                                aj.release_ms,
                                aj.deadline_ms
                            ),
                        });
                    }
                    let raw = match aj.cycles {
                        Some(c) => c,
                        None => workload.draw(TaskId(aj.task), aj.draw_index).as_cycles(),
                    };
                    if !raw.is_finite() || raw < 0.0 {
                        return Err(SimError::InvalidWorkload {
                            task: aj.task,
                            instance: aj.draw_index,
                            cycles: raw,
                        });
                    }
                    let wcec = task.wcec().as_cycles();
                    let mut actual = if raw > wcec {
                        st.report.clamped_draws += 1;
                        wcec
                    } else {
                        raw
                    };
                    match aj.periodic_instance {
                        // A source-attested periodic instance runs on
                        // the static per-instance plans, exactly like
                        // the built-in path above.
                        Some(inst) => {
                            let budget_sum: f64 = env.plans[aj.task][inst as usize]
                                .iter()
                                .map(|c| c.budget)
                                .sum();
                            if has_schedule {
                                actual = actual.min(budget_sum);
                            }
                            let plan0 = env.plans[aj.task][inst as usize][0];
                            st.jobs.push(Job {
                                task: aj.task,
                                instance_in_hyper: inst,
                                release_ms: aj.release_ms,
                                deadline_ms: aj.deadline_ms,
                                remaining: actual,
                                executed: 0.0,
                                chunk: 0,
                                chunk_budget_left: plan0.budget,
                                done: false,
                                own_plan: None,
                                maintained_at: f64::NEG_INFINITY,
                            });
                        }
                        // An aperiodic job carries its own single-chunk
                        // plan: budget WCEC, window release→deadline,
                        // static speed sized to just meet the deadline
                        // at worst case (floored at the leakage-aware
                        // critical speed, capped at f_max).
                        None => {
                            let span = (aj.deadline_ms - aj.release_ms).max(1e-12);
                            let floor = env.cpu.critical_speed(task.c_eff()).as_cycles_per_ms();
                            let own = ChunkPlan {
                                start_ms: aj.release_ms,
                                end_ms: aj.deadline_ms,
                                budget: wcec,
                                static_speed: (wcec / span).min(fmax).max(floor),
                                sub: None,
                            };
                            st.jobs.push(Job {
                                task: aj.task,
                                // Never used for plan lookups (own_plan
                                // is authoritative); labels the job in
                                // traces by emission order.
                                instance_in_hyper: emit_idx as u64,
                                release_ms: aj.release_ms,
                                deadline_ms: aj.deadline_ms,
                                remaining: actual,
                                executed: 0.0,
                                chunk: 0,
                                chunk_budget_left: own.budget,
                                done: false,
                                own_plan: Some(own),
                                maintained_at: f64::NEG_INFINITY,
                            });
                        }
                    }
                }
            }
        }
        // Schedule-boundary snapshots index jobs by periodic instance
        // ids; aperiodic windows have none, so re-optimizing policies
        // fall back to their chunk-local dispatch rule there.
        st.wants_boundaries = policy.wants_boundaries() && source_is_periodic;
        // The hyper-period starts: schedule-aware policies get the
        // pristine boundary state before anything executes.
        if st.wants_boundaries {
            fire_boundary_with(
                policy,
                set,
                env.cpu,
                env.schedule,
                &st.jobs,
                0.0,
                BoundaryEvent::Start,
                &mut st.progress,
            );
        }

        // Queue every release. Jobs are task-major, so pushing in job
        // order makes the queue's `(time, kind, seq)` pop order exactly
        // the legacy `(time, task)` admission order.
        for (i, j) in st.jobs.iter().enumerate() {
            st.events.push(Event {
                time: j.release_ms,
                kind: EventKind::Release,
                job: i,
            });
        }

        // ---- predecessor gate ----
        // Only the built-in periodic pattern lays jobs out task-major
        // with one job per (task, instance); `Simulator::stepped`
        // rejects graphs combined with arrival sources up front. Gate
        // presence and topology are invariants of the run, so a
        // recycled gate just re-arms.
        match set.graph().filter(|g| built_in_releases && !g.is_empty()) {
            Some(g) => match st.gate.as_mut() {
                Some(gate) => gate.reset(),
                None => st.gate = Some(Gate::build(set, g, st.jobs.len())),
            },
            None => st.gate = None,
        }

        Ok(st)
    }

    fn charge_idle(&mut self, env: &Env<'_>, span_ms: f64) {
        self.report.idle_time += TimeSpan::from_ms(span_ms);
        let idle_power = env.cpu.idle_power();
        if idle_power > 0.0 {
            let e = Energy::from_units(idle_power * span_ms);
            self.report.idle_energy += e;
            self.report.energy += e;
        }
    }

    /// Forwards chunk maintenance of every released job to the current
    /// snapshot basis ([`HpState::maint_time`]) — the state the legacy
    /// engine's eager per-round maintenance would show a boundary fired
    /// now. Jobs already maintained at (or past) the basis are left
    /// alone: re-maintaining a just-executed job at an *earlier* basis
    /// with its *post-slice* budget would advance chunks the legacy
    /// engine had not advanced yet.
    fn forward_maintenance(&mut self, env: &Env<'_>) {
        let basis = self.maint_time;
        if !basis.is_finite() {
            return;
        }
        for j in self.jobs.iter_mut() {
            if j.done
                || j.release_ms > basis + EPS
                || j.remaining <= CYCLE_EPS
                || j.maintained_at >= basis
            {
                continue;
            }
            let own = j.own_plan;
            let plan: &[ChunkPlan] = match &own {
                Some(cp) => std::slice::from_ref(cp),
                None => &env.plans[j.task][j.instance_in_hyper as usize],
            };
            maintain_job(j, plan, basis);
        }
    }

    /// Snapshots every job at the maintenance basis and hands the
    /// policy the boundary. `t` is the boundary's own timestamp (it can
    /// sit past the basis — e.g. a completion at slice end).
    fn fire_boundary_at(
        &mut self,
        env: &Env<'_>,
        policy: &mut dyn Policy,
        t: f64,
        event: BoundaryEvent,
    ) {
        self.forward_maintenance(env);
        fire_boundary_with(
            policy,
            env.set,
            env.cpu,
            env.schedule,
            &self.jobs,
            t,
            event,
            &mut self.progress,
        );
    }

    /// Maintains job `i` at time `t` and routes it: into the ready
    /// queue when runnable, or a `ChunkWakeup` event at its next
    /// chunk-window opening when throttled.
    fn classify(&mut self, env: &Env<'_>, i: usize, t: f64) {
        let j = &mut self.jobs[i];
        if j.done || j.remaining <= CYCLE_EPS {
            return;
        }
        let own = j.own_plan;
        let plan: &[ChunkPlan] = match &own {
            Some(cp) => std::slice::from_ref(cp),
            None => &env.plans[j.task][j.instance_in_hyper as usize],
        };
        maintain_job(j, plan, t);
        // A released job is throttled while its current chunk budget
        // is spent and its next chunk's window has not opened.
        if j.chunk_budget_left <= EPS && j.chunk + 1 < plan.len() {
            // `maintain_job` stopped short of the advance, so the next
            // window opens strictly later than `t + EPS` — the wakeup
            // is always a future event.
            self.events.push(Event {
                time: plan[j.chunk + 1].start_ms,
                kind: EventKind::ChunkWakeup,
                job: i,
            });
        } else {
            let deadline = match self.class {
                SchedulingClass::FixedPriorityRm => 0.0,
                SchedulingClass::Edf => j.deadline_ms,
            };
            let key = ReadyKey {
                deadline,
                task: self.jobs[i].task,
                release: self.jobs[i].release_ms,
                job: i,
            };
            self.ready.push(key);
        }
    }

    /// One engine round at the current clock: drain due events (admit
    /// releases, buffer wakeups), complete zero-workload jobs, advance
    /// the snapshot basis, re-classify woken/pending jobs, then either
    /// dispatch the most eligible job as an event handler or idle-hop
    /// the clock to the next event. Returns `Ok(false)` when the
    /// hyper-period is finished.
    #[allow(clippy::too_many_lines)]
    fn round(&mut self, env: &Env<'_>, policy: &mut dyn Policy) -> Result<bool, SimError> {
        let mut t = self.t;

        // ---- due events: admissions first, wakeups buffered ----
        // Releases pop ahead of same-timestamp wakeups (kind priority),
        // and every admission — with its policy hooks and boundary —
        // happens before any wakeup is acted on, mirroring the legacy
        // admit-then-maintain round structure.
        self.admitted.clear();
        self.woken.clear();
        while let Some(ev) = self.events.pop_if(|e| e.time <= t + EPS) {
            match ev.kind {
                EventKind::Release => {
                    let task = TaskId(self.jobs[ev.job].task);
                    policy.on_release(task, env.set, env.cpu);
                    self.admitted.push(ev.job);
                    if self.wants_boundaries {
                        self.fire_boundary_at(env, policy, t, BoundaryEvent::Release(task));
                    }
                }
                EventKind::ChunkWakeup => self.woken.push(ev.job),
                _ => debug_assert!(false, "engine queues only releases and wakeups"),
            }
        }

        // ---- zero-workload jobs complete instantly ----
        // In job-index order, like the legacy scan (the order is
        // policy-visible through completion hooks and boundaries).
        self.admitted.sort_unstable();
        // Predecessor gate: an admitted job with unfinished predecessor
        // jobs waits — released (hooks fired above) but neither
        // instantly completed nor classified until the gate opens.
        if let Some(g) = self.gate.as_mut() {
            for &i in &self.admitted {
                if g.pred_left[i] > 0 {
                    g.waiting[i] = true;
                }
            }
        }
        for k in 0..self.admitted.len() {
            let i = self.admitted[k];
            if self.gate.as_ref().is_some_and(|g| g.waiting[i]) {
                continue;
            }
            if !self.jobs[i].done && self.jobs[i].remaining <= CYCLE_EPS {
                let j = &mut self.jobs[i];
                j.done = true;
                let (task, executed) = (TaskId(j.task), j.executed);
                self.report.jobs_completed += 1;
                policy.on_completion(task, Cycles::from_cycles(executed), env.set, env.cpu);
                if self.wants_boundaries {
                    self.fire_boundary_at(env, policy, t, BoundaryEvent::Completion(task));
                }
                self.release_dependents(env, policy, i, t, true);
            }
        }

        // Everything after this point observes maintenance as of `t`.
        self.maint_time = t;

        // ---- classification: pending slice-end job, woken jobs, and
        // newly admitted jobs enter the ready queue (or a wakeup) ----
        if let Some(i) = self.pending.take() {
            self.classify(env, i, t);
        }
        // Jobs the gate freed at a predecessor's completion (in this
        // round's instant scan, or the previous round's slice end).
        if !self.ungated.is_empty() {
            let freed = std::mem::take(&mut self.ungated);
            for i in freed {
                self.classify(env, i, t);
            }
        }
        for k in 0..self.woken.len() {
            let i = self.woken[k];
            self.classify(env, i, t);
        }
        for k in 0..self.admitted.len() {
            let i = self.admitted[k];
            if self.gate.as_ref().is_some_and(|g| g.waiting[i]) {
                continue;
            }
            self.classify(env, i, t);
        }

        // ---- dispatch (or idle) ----
        let Some(key) = self.ready.pop() else {
            // Idle until the next release or throttle expiry.
            let next = self.events.next_time();
            if next.is_finite() {
                self.charge_idle(env, next - t);
                self.t = next;
                return Ok(true);
            }
            // Shut down for the rest of the hyper-period (still charged
            // at `idle_power`, which models a platform without
            // power-gating; the paper's processor has it at zero).
            let h = env.set.hyper_period().get() as f64;
            if t < h {
                self.charge_idle(env, h - t);
            }
            self.report.events_handled = self.events.popped() as u64 + self.dispatches;
            self.report.event_queue_peak = self.events.high_water();
            return Ok(false);
        };
        let job_idx = key.job;
        // The selected job's chunk state is maintained lazily, exactly
        // here (see `maintain_job` for why this equals eager per-round
        // maintenance).
        let own = self.jobs[job_idx].own_plan;
        let plan: &[ChunkPlan] = match &own {
            Some(cp) => std::slice::from_ref(cp),
            None => {
                let j = &self.jobs[job_idx];
                &env.plans[j.task][j.instance_in_hyper as usize]
            }
        };
        maintain_job(&mut self.jobs[job_idx], plan, t);
        if let Some(prev) = self.last_dispatched {
            if prev != job_idx && !self.jobs[prev].done && self.jobs[prev].remaining > CYCLE_EPS {
                self.report.preemptions += 1;
            }
        }
        self.last_dispatched = Some(job_idx);
        self.dispatches += 1;

        let (task, chunk, budget_left, remaining) = {
            let j = &self.jobs[job_idx];
            (j.task, j.chunk, j.chunk_budget_left, j.remaining)
        };
        let cp = match self.jobs[job_idx].own_plan {
            Some(cp) => cp,
            None => env.plans[task][self.jobs[job_idx].instance_in_hyper as usize][chunk],
        };
        let ctx = DispatchContext {
            set: env.set,
            cpu: env.cpu,
            task: TaskId(task),
            now: Time::from_ms(t),
            chunk_end: Time::from_ms(cp.end_ms),
            chunk_budget_remaining: Cycles::from_cycles(budget_left),
            static_speed: Freq::from_cycles_per_ms(cp.static_speed),
            sub: cp.sub,
        };
        let (speed, clamped) = env.cpu.clamp_speed(policy.on_dispatch(&ctx));
        // Leakage floor: under-requests rise (unflagged, like the f_min
        // clamp — running faster than asked never endangers deadlines)
        // to the task's critical speed.
        let speed = speed.max(Freq::from_cycles_per_ms(self.floors[task]));
        // The clamp keeps `speed` realizable by the *continuous*
        // model; a discrete level table whose highest level sits
        // below `vmax` can still fail to serve it, in which case the
        // engine saturates at `vmax` (the historical fallback). Both
        // paths are one saturated dispatch — never double-counted.
        let (v, table_saturated) = match env.cpu.dispatch_voltage(speed) {
            Ok(v) => (v, false),
            Err(_) => (env.cpu.vmax(), true),
        };
        if clamped || table_saturated {
            self.report.saturated_dispatches += 1;
        }
        let f_actual = env
            .cpu
            .freq_at(v)
            .map_err(|_| SimError::StalledProcessor)?
            .as_cycles_per_ms();
        if f_actual <= 1e-12 {
            return Err(SimError::StalledProcessor);
        }

        // Voltage transition accounting (dead time + energy).
        let overhead = env.cpu.overhead();
        let changed = self
            .last_voltage
            .map(|lv| (lv - v.as_volts()).abs() > 1e-9)
            .unwrap_or(false);
        if changed {
            self.report.voltage_switches += 1;
            self.report.energy += overhead.energy;
            t += overhead.time.as_ms();
        }
        self.last_voltage = Some(v.as_volts());

        // ---- execute until the next event ----
        let until_complete = remaining / f_actual;
        // A spent last chunk (possible only with inconsistent custom
        // schedules) no longer gates execution — run the remainder.
        let until_budget = if budget_left > EPS && budget_left < remaining {
            budget_left / f_actual
        } else {
            f64::INFINITY
        };
        // The queue's head is min(next release, next wakeup); IEEE
        // subtraction is monotone, so folding the two legacy terms into
        // one is bit-identical.
        let next_event = self.events.next_time();
        let until_event = if next_event.is_finite() {
            (next_event - t).max(0.0)
        } else {
            f64::INFINITY
        };
        let dt = until_complete.min(until_budget).min(until_event);
        // Progress guard: a zero-length slice can only come from a
        // release exactly at `t`, which the admission drain absorbs.
        let dt = dt.max(0.0);
        let cycles = f_actual * dt;

        {
            let j = &mut self.jobs[job_idx];
            j.remaining = (j.remaining - cycles).max(0.0);
            j.chunk_budget_left -= cycles;
            j.executed += cycles;
        }
        let c_eff = env.set.tasks()[task].c_eff();
        let e = env.cpu.energy(c_eff, v, Cycles::from_cycles(cycles));
        self.report.energy += e;
        self.report.per_task_energy[task] += e;
        let leak = env.cpu.static_power_at(v);
        if leak > 0.0 {
            let e_static = Energy::from_units(leak * dt);
            self.report.static_energy += e_static;
            self.report.energy += e_static;
        }
        self.report.busy_time += TimeSpan::from_ms(dt);
        if let Some(tr) = self.trace.as_mut() {
            if dt > 0.0 {
                tr.push(Slice {
                    task: TaskId(task),
                    instance: self.jobs[job_idx].instance_in_hyper,
                    start: Time::from_ms(t),
                    end: Time::from_ms(t + dt),
                    voltage: v,
                });
            }
        }
        t += dt;
        self.t = t;

        // ---- completion (a derived event: no queue round-trip) ----
        let j = &mut self.jobs[job_idx];
        if j.remaining <= CYCLE_EPS {
            j.done = true;
            self.report.jobs_completed += 1;
            self.report.worst_lateness_ms = self.report.worst_lateness_ms.max(t - j.deadline_ms);
            if t > j.deadline_ms + env.options.deadline_tol_ms {
                self.report.deadline_misses += 1;
                if j.own_plan.is_some() {
                    self.report.misses_aperiodic += 1;
                }
            }
            let (ctask, executed) = (TaskId(j.task), j.executed);
            policy.on_completion(ctask, Cycles::from_cycles(executed), env.set, env.cpu);
            if self.wants_boundaries {
                // The snapshot basis is this round's entry time — the
                // slice's own budget/progress deltas are visible, its
                // chunk advance is not (it happens next round).
                self.fire_boundary_at(env, policy, t, BoundaryEvent::Completion(ctask));
            }
            self.release_dependents(env, policy, job_idx, t, false);
        } else {
            self.pending = Some(job_idx);
        }
        Ok(true)
    }

    /// Propagates a completion through the predecessor gate: every
    /// dependent of `root` loses one outstanding predecessor, and a
    /// *waiting* dependent whose count reaches zero is freed — a job
    /// with no remaining work completes instantly here (full deadline
    /// accounting, hooks, cascading further), one with work is queued
    /// for classification at the next classification pass.
    /// `during_admission` marks calls from the instant-completion scan,
    /// where jobs freed out of this round's own admissions are left to
    /// the admitted classification loop instead of the queue (pushing
    /// both would classify them twice).
    fn release_dependents(
        &mut self,
        env: &Env<'_>,
        policy: &mut dyn Policy,
        root: usize,
        t: f64,
        during_admission: bool,
    ) {
        // The gate moves out of `self` for the traversal (and back in
        // at the end) so dependents can be walked in place — no
        // per-completion clone of the successor list, no per-call stack
        // allocation (`dep_stack` is part of the arena).
        let Some(mut gate) = self.gate.take() else {
            return;
        };
        self.dep_stack.clear();
        self.dep_stack.push(root);
        while let Some(done_job) = self.dep_stack.pop() {
            for k in 0..gate.succ_jobs[done_job].len() {
                let s = gate.succ_jobs[done_job][k];
                gate.pred_left[s] -= 1;
                if gate.pred_left[s] > 0 || !gate.waiting[s] {
                    continue;
                }
                gate.waiting[s] = false;
                if !self.jobs[s].done && self.jobs[s].remaining <= CYCLE_EPS {
                    let j = &mut self.jobs[s];
                    j.done = true;
                    self.report.jobs_completed += 1;
                    self.report.worst_lateness_ms =
                        self.report.worst_lateness_ms.max(t - j.deadline_ms);
                    if t > j.deadline_ms + env.options.deadline_tol_ms {
                        self.report.deadline_misses += 1;
                    }
                    let (ctask, executed) = (TaskId(j.task), j.executed);
                    policy.on_completion(ctask, Cycles::from_cycles(executed), env.set, env.cpu);
                    if self.wants_boundaries {
                        self.fire_boundary_at(env, policy, t, BoundaryEvent::Completion(ctask));
                    }
                    self.dep_stack.push(s);
                } else if !(during_admission && self.admitted.contains(&s)) {
                    self.ungated.push(s);
                }
            }
        }
        self.gate = Some(gate);
    }
}

/// A paused, resumable simulation run created by [`Simulator::stepped`]:
/// the full multi-hyper-period run, advanced one event round at a time.
pub struct SteppedRun<'s, 'a, 'w> {
    sim: &'s mut Simulator<'a>,
    workload: WorkloadRef<'w>,
    plans: Vec<Vec<Vec<ChunkPlan>>>,
    report: SimReport,
    trace: Option<ExecutionTrace>,
    instances_per_hyper: u64,
    abs_base: u64,
    h: u64,
    stats_before: Option<SolverStats>,
    current: Option<HpState>,
    /// The previous hyper-period's retired state: its buffers are
    /// recycled into the next `HpState` so the warm loop allocates
    /// nothing per hyper-period.
    spare: Option<HpState>,
    done: bool,
}

impl std::fmt::Debug for SteppedRun<'_, '_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SteppedRun")
            .field("hyper_period", &self.h)
            .field("clock_ms", &self.clock_ms())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl SteppedRun<'_, '_, '_> {
    /// The absolute virtual clock (ms since the run began, across
    /// hyper-periods), or `None` once the run has finished. The
    /// shared-clock interleaver in `acs-multi` steps whichever core
    /// reports the smallest clock.
    pub fn clock_ms(&self) -> Option<f64> {
        if self.done {
            return None;
        }
        let h_ms = self.sim.set.hyper_period().get() as f64;
        Some(match &self.current {
            Some(s) => self.h as f64 * h_ms + s.t,
            None => self.h as f64 * h_ms,
        })
    }

    /// `true` once every hyper-period has been simulated.
    pub fn is_finished(&self) -> bool {
        self.done
    }

    /// Advances the run by one engine round (one event-queue drain +
    /// dispatch or idle hop). Returns `Ok(false)` once the run is
    /// finished.
    ///
    /// # Errors
    ///
    /// See [`SimError`]; a failed step poisons the run (`done`).
    pub fn step(&mut self) -> Result<bool, SimError> {
        if self.done {
            return Ok(false);
        }
        let sim = &mut *self.sim;
        let env = Env {
            set: sim.set,
            cpu: sim.cpu,
            schedule: sim.schedule,
            options: &sim.options,
            plans: &self.plans,
        };
        let policy = sim.policy.as_mut();
        if self.current.is_none() {
            // A finite source (trace replay) ends the run as soon as no
            // further window can release anything; generators never
            // exhaust, so `hyper_periods` is their only cap.
            let source_done = sim.arrivals.as_ref().is_some_and(|s| s.exhausted());
            if self.h >= env.options.hyper_periods || source_done {
                self.finalize();
                return Ok(false);
            }
            let record = env.options.record_trace && self.h == 0;
            policy.on_start(env.set, env.cpu);
            let state = match HpState::new(
                &env,
                policy,
                &mut self.workload,
                self.abs_base,
                record,
                sim.arrivals.as_mut(),
                self.h,
                self.spare.take(),
            ) {
                Ok(s) => s,
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            self.current = Some(state);
        }
        let state = self.current.as_mut().expect("hyper-period state exists");
        match state.round(&env, policy) {
            Ok(true) => Ok(true),
            Ok(false) => {
                let mut state = self.current.take().expect("hyper-period state exists");
                self.report.absorb(&state.report);
                if state.record {
                    self.trace = state.trace.take();
                }
                // Retire the state: the next hyper-period reuses every
                // backing allocation.
                self.spare = Some(state);
                self.h += 1;
                self.abs_base += self.instances_per_hyper;
                if self.h >= self.sim.options.hyper_periods {
                    self.finalize();
                    return Ok(false);
                }
                Ok(true)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    /// Attribute this run's share of the policy's cumulative solver
    /// counters (policies persist across consecutive `run` calls).
    fn finalize(&mut self) {
        if let Some(after) = self.sim.policy.solver_stats() {
            let delta = after.delta_since(self.stats_before.unwrap_or_default());
            self.report.solver_lookups = delta.lookups;
            self.report.solver_cache_hits = delta.cache_hits;
            self.report.boundary_resolves = delta.resolves;
            self.report.resolves_adopted = delta.adopted;
            self.report.warm_carry_hits = delta.warm_carry_hits;
        }
        self.done = true;
    }

    /// Drives the run to completion and returns the aggregate output —
    /// exactly what [`Simulator::run`] returns.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn finish(mut self) -> Result<RunOutput, SimError> {
        while self.step()? {}
        Ok(RunOutput {
            report: self.report,
            trace: self.trace,
        })
    }
}

/// Snapshots every job's execution state and hands the policy a
/// [`SolverContext`]. Costs `O(jobs)`, so callers gate it behind
/// [`Policy::wants_boundaries`]. Allocating convenience over
/// [`fire_boundary_with`], used by the frozen legacy oracle — which
/// stays allocation-unoptimized by design (see `docs/ENGINE.md`); the
/// event engine always passes its recycled scratch buffer instead.
#[cfg_attr(not(feature = "legacy-engine"), allow(dead_code))]
pub(crate) fn fire_boundary(
    policy: &mut dyn Policy,
    set: &TaskSet,
    cpu: &Processor,
    schedule: Option<&StaticSchedule>,
    jobs: &[Job],
    t: f64,
    event: BoundaryEvent,
) {
    let mut progress = Vec::new();
    fire_boundary_with(policy, set, cpu, schedule, jobs, t, event, &mut progress);
}

/// [`fire_boundary`] writing the per-job snapshot into a reusable
/// `progress` buffer (cleared and refilled here) instead of allocating
/// a fresh `Vec` per boundary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fire_boundary_with(
    policy: &mut dyn Policy,
    set: &TaskSet,
    cpu: &Processor,
    schedule: Option<&StaticSchedule>,
    jobs: &[Job],
    t: f64,
    event: BoundaryEvent,
    progress: &mut Vec<InstanceProgress>,
) {
    const EPS: f64 = 1e-9;
    progress.clear();
    progress.extend(jobs.iter().map(|j| InstanceProgress {
        instance: acs_preempt::InstanceId {
            task: TaskId(j.task),
            index: j.instance_in_hyper,
        },
        executed: Cycles::from_cycles(j.executed),
        current_chunk: j.chunk,
        chunk_budget_left: Cycles::from_cycles(j.chunk_budget_left.max(0.0)),
        released: j.release_ms <= t + EPS,
        done: j.done,
    }));
    let ctx = SolverContext {
        set,
        cpu,
        schedule,
        now: Time::from_ms(t),
        event,
        progress,
    };
    policy.on_boundary(&ctx);
}

/// Convenience energy helper: total energy of running `schedule` under
/// the greedy policy with deterministic per-task workloads, expressed per
/// hyper-period. Thin wrapper used by examples and tests to cross-check
/// against [`acs_core::trace::evaluate_trace`].
pub fn simulate_deterministic(
    set: &TaskSet,
    cpu: &Processor,
    schedule: &StaticSchedule,
    totals: &[Cycles],
) -> Result<Energy, SimError> {
    let mut sim = Simulator::new(set, cpu, crate::policy::GreedyReclaim).with_schedule(schedule);
    let mut draw = |tid: TaskId, _abs: u64| totals[tid.0];
    let out = sim.run(&mut draw)?;
    Ok(out.report.energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CcRm, GreedyReclaim, NoDvs, StaticSpeed};
    use acs_core::{synthesize_acs, synthesize_wcs, SynthesisOptions};
    use acs_model::units::{Ticks, Volt};
    use acs_model::Task;
    use acs_power::FreqModel;

    fn motivation() -> (TaskSet, Processor) {
        let mk = |n: &str| {
            Task::builder(n, Ticks::new(20))
                .wcec(Cycles::from_cycles(1000.0))
                .acec(Cycles::from_cycles(500.0))
                .bcec(Cycles::from_cycles(100.0))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")]).unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        (set, cpu)
    }

    fn preemptive_set() -> (TaskSet, Processor) {
        let set = TaskSet::new(vec![
            Task::builder("hi", Ticks::new(4))
                .wcec(Cycles::from_cycles(100.0))
                .acec(Cycles::from_cycles(40.0))
                .bcec(Cycles::from_cycles(10.0))
                .build()
                .unwrap(),
            Task::builder("lo", Ticks::new(8))
                .wcec(Cycles::from_cycles(150.0))
                .acec(Cycles::from_cycles(60.0))
                .bcec(Cycles::from_cycles(15.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        (set, cpu)
    }

    #[test]
    fn greedy_matches_analytic_trace_on_motivation() {
        let (set, cpu) = motivation();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let analytic = acs_core::evaluate_trace(
            &sched,
            &set,
            &cpu,
            &totals,
            acs_core::SpeedBasis::WorstRemaining,
        );
        let simulated = simulate_deterministic(&set, &cpu, &sched, &totals).unwrap();
        assert!(
            (analytic.energy.as_units() - simulated.as_units()).abs()
                < 1e-6 * analytic.energy.as_units(),
            "analytic {} vs simulated {}",
            analytic.energy,
            simulated
        );
    }

    #[test]
    fn greedy_matches_analytic_trace_on_preemptive_set() {
        let (set, cpu) = preemptive_set();
        for synth in [synthesize_acs, synthesize_wcs] {
            let sched = synth(&set, &cpu, &SynthesisOptions::default()).unwrap();
            for totals in [
                acs_core::trace::acec_totals(&set),
                acs_core::trace::wcec_totals(&set),
                vec![Cycles::from_cycles(25.0), Cycles::from_cycles(80.0)],
            ] {
                let analytic = acs_core::evaluate_trace(
                    &sched,
                    &set,
                    &cpu,
                    &totals,
                    acs_core::SpeedBasis::WorstRemaining,
                );
                let simulated = simulate_deterministic(&set, &cpu, &sched, &totals).unwrap();
                assert!(
                    (analytic.energy.as_units() - simulated.as_units()).abs()
                        < 1e-6 * analytic.energy.as_units().max(1.0),
                    "kind {:?}: analytic {} vs simulated {}",
                    sched.kind(),
                    analytic.energy,
                    simulated
                );
            }
        }
    }

    #[test]
    fn worst_case_meets_deadlines_exactly() {
        let (set, cpu) = preemptive_set();
        let sched = synthesize_acs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let totals = acs_core::trace::wcec_totals(&set);
        let mut sim = Simulator::new(&set, &cpu, GreedyReclaim).with_schedule(&sched);
        let out = sim.run(&mut |tid, _| totals[tid.0]).unwrap();
        assert_eq!(out.report.deadline_misses, 0);
        assert_eq!(out.report.jobs_completed, set.total_instances() as usize);
    }

    #[test]
    fn no_dvs_runs_flat_out_and_idles() {
        let (set, cpu) = motivation();
        let out = Simulator::new(&set, &cpu, NoDvs)
            .with_options(SimOptions {
                record_trace: true,
                ..Default::default()
            })
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        // 3000 cycles at 200 cyc/ms = 15 ms busy, 5 ms idle.
        assert!((out.report.busy_time.as_ms() - 15.0).abs() < 1e-9);
        assert!((out.report.idle_time.as_ms() - 5.0).abs() < 1e-9);
        // All at 4 V: E = 16·3000.
        assert!((out.report.energy.as_units() - 48000.0).abs() < 1e-6);
        let trace = out.trace.unwrap();
        assert!(!trace.is_empty());
    }

    /// The predecessor gate: with `t2 -> t0` on the motivation frame
    /// (where RM alone would run t0 first), every t0 slice starts after
    /// its predecessor's last slice ends, and a graph with an arrival
    /// source is rejected up front.
    #[test]
    fn predecessor_gate_orders_execution() {
        let (set, cpu) = motivation();
        let g = acs_model::TaskGraph::new(&set, [("t3", "t1")]).unwrap();
        let set = set.with_graph(g);
        let out = Simulator::new(&set, &cpu, NoDvs)
            .with_options(SimOptions {
                record_trace: true,
                ..Default::default()
            })
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        assert_eq!(out.report.jobs_completed, 3);
        assert_eq!(out.report.deadline_misses, 0);
        let trace = out.trace.unwrap();
        // "t1" sorts to TaskId(0), "t3" to TaskId(2) (equal periods keep
        // insertion order t1,t2,t3).
        let pred_end = trace
            .slices()
            .iter()
            .filter(|s| s.task == TaskId(2))
            .map(|s| s.end.as_ms())
            .fold(0.0f64, f64::max);
        let succ_start = trace
            .slices()
            .iter()
            .filter(|s| s.task == TaskId(0))
            .map(|s| s.start.as_ms())
            .fold(f64::INFINITY, f64::min);
        assert!(
            succ_start + 1e-9 >= pred_end,
            "successor started at {succ_start} before predecessor finished at {pred_end}"
        );
        // Same seedless deterministic run twice: byte-identical reports.
        let again = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        assert_eq!(out.report, again.report);
        // Graphs require the built-in periodic release pattern.
        let err = Simulator::new(&set, &cpu, NoDvs)
            .with_arrivals(Box::new(acs_trace::Sporadic::new(&set, 1)))
            .run(&mut |_, _| Cycles::from_cycles(1.0))
            .unwrap_err();
        assert_eq!(err, SimError::GraphWithArrivals);
    }

    #[test]
    fn static_policy_between_no_dvs_and_greedy() {
        let (set, cpu) = motivation();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let mut energies = Vec::new();
        let policies: [Box<dyn Policy>; 3] = [
            Box::new(NoDvs),
            Box::new(StaticSpeed),
            Box::new(GreedyReclaim),
        ];
        for policy in policies {
            let name = policy.name().to_string();
            let out = Simulator::new(&set, &cpu, policy)
                .with_schedule(&sched)
                .run(&mut |tid, _| totals[tid.0])
                .unwrap();
            assert_eq!(out.report.deadline_misses, 0, "{name}");
            energies.push(out.report.energy.as_units());
        }
        assert!(energies[1] < energies[0], "static < no-dvs: {energies:?}");
        assert!(
            energies[2] < energies[1] + 1e-9,
            "greedy ≤ static: {energies:?}"
        );
    }

    #[test]
    fn ccrm_reclaims_online_only() {
        let (set, cpu) = motivation();
        let totals = acs_core::trace::acec_totals(&set);
        let out = Simulator::new(&set, &cpu, CcRm::new())
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        assert_eq!(out.report.deadline_misses, 0);
        // Better than no-DVS on average workloads.
        let no_dvs = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        assert!(out.report.energy < no_dvs.report.energy);
    }

    #[test]
    fn multiple_hyper_periods_accumulate() {
        let (set, cpu) = preemptive_set();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let out = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .with_options(SimOptions {
                hyper_periods: 10,
                ..Default::default()
            })
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        assert_eq!(out.report.hyper_periods, 10);
        assert_eq!(
            out.report.jobs_completed,
            10 * set.total_instances() as usize
        );
        let single = simulate_deterministic(&set, &cpu, &sched, &totals).unwrap();
        assert!((out.report.energy_per_hyper_period().as_units() - single.as_units()).abs() < 1e-9);
    }

    #[test]
    fn schedule_required_error() {
        let (set, cpu) = motivation();
        let err = Simulator::new(&set, &cpu, GreedyReclaim)
            .run(&mut |_, _| Cycles::from_cycles(1.0))
            .unwrap_err();
        assert!(matches!(err, SimError::ScheduleRequired { .. }));
    }

    #[test]
    fn schedule_mismatch_detected() {
        let (set, cpu) = motivation();
        let (other_set, other_cpu) = preemptive_set();
        let sched = synthesize_wcs(&other_set, &other_cpu, &SynthesisOptions::default()).unwrap();
        let err = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .run(&mut |_, _| Cycles::from_cycles(1.0))
            .unwrap_err();
        assert!(matches!(err, SimError::ScheduleMismatch { .. }));
    }

    #[test]
    fn invalid_workload_rejected_and_clamped() {
        let (set, cpu) = motivation();
        let err = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |_, _| Cycles::from_cycles(-5.0))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidWorkload { .. }));
        let out = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |_, _| Cycles::from_cycles(9999.0))
            .unwrap();
        assert_eq!(out.report.clamped_draws, 3);
    }

    #[test]
    fn zero_workload_jobs_complete_without_energy() {
        let (set, cpu) = motivation();
        let out = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |_, _| Cycles::from_cycles(0.0))
            .unwrap();
        assert_eq!(out.report.jobs_completed, 3);
        assert_eq!(out.report.energy, Energy::ZERO);
        assert_eq!(out.report.deadline_misses, 0);
    }

    #[test]
    fn preemption_occurs_in_trace() {
        let (set, cpu) = preemptive_set();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let totals = acs_core::trace::wcec_totals(&set);
        let out = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .with_options(SimOptions {
                record_trace: true,
                ..Default::default()
            })
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        let trace = out.trace.unwrap();
        // In the worst case `lo` must be split around `hi`'s release at 4.
        let lo_slices: Vec<_> = trace
            .slices()
            .iter()
            .filter(|s| s.task == TaskId(1))
            .collect();
        assert!(
            lo_slices.len() >= 2,
            "lo executed in {} slices",
            lo_slices.len()
        );
        // Priority invariant: `hi` never waits while `lo` runs after its
        // release.
        for s in trace.slices() {
            if s.task == TaskId(1) {
                // During any lo-slice, hi must have no pending work: hi
                // releases at 0 and 4; a lo slice crossing a release
                // boundary would violate preemption.
                let crosses = s.start.as_ms() < 4.0 && s.end.as_ms() > 4.0 + 1e-9;
                assert!(!crosses, "lo slice crosses hi release: {s:?}");
            }
        }
    }

    #[test]
    fn transition_overhead_accounted() {
        let (set, cpu0) = motivation();
        let cpu = Processor::builder(cpu0.freq_model().clone())
            .vmin(cpu0.vmin())
            .vmax(cpu0.vmax())
            .transition_overhead(acs_power::TransitionOverhead {
                time: TimeSpan::from_ms(0.01),
                energy: Energy::from_units(5.0),
            })
            .build()
            .unwrap();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let out = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        assert!(out.report.voltage_switches > 0);
        // Energy strictly above the zero-overhead run.
        let base = simulate_deterministic(&set, &cpu0, &sched, &totals).unwrap();
        assert!(out.report.energy > base);
    }

    /// A policy requesting wild speeds is clamped at the engine boundary:
    /// the run completes, energy equals the all-fmax run, over-requests
    /// are counted as saturated dispatches.
    #[test]
    fn rogue_policy_speeds_are_clamped() {
        struct Rogue {
            calls: usize,
        }
        impl Policy for Rogue {
            fn name(&self) -> &str {
                "rogue"
            }
            fn on_dispatch(&mut self, _ctx: &DispatchContext<'_>) -> Freq {
                self.calls += 1;
                match self.calls % 3 {
                    0 => Freq::from_cycles_per_ms(f64::INFINITY),
                    1 => Freq::from_cycles_per_ms(1e9),
                    _ => Freq::from_cycles_per_ms(f64::NAN),
                }
            }
        }
        let (set, cpu) = motivation();
        let out = Simulator::new(&set, &cpu, Rogue { calls: 0 })
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        assert_eq!(out.report.deadline_misses, 0);
        assert!(out.report.saturated_dispatches > 0);
        let flat = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        assert!((out.report.energy.as_units() - flat.report.energy.as_units()).abs() < 1e-9);
    }

    /// A discrete level table whose highest level sits below `vmax`
    /// cannot serve a near-`f_max` request: the engine saturates at
    /// `vmax` and counts it — exactly once, even when the request was
    /// also clamped at the engine boundary.
    #[test]
    fn short_level_table_saturation_is_counted_once() {
        use acs_power::LevelTable;
        let (set, _) = motivation();
        let table = LevelTable::new(
            [1.0, 2.0, 3.0]
                .iter()
                .map(|&v| Volt::from_volts(v))
                .collect(),
        )
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(1.0))
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .build()
            .unwrap();
        // NoDvs requests exactly f_max (needs 4 V; the table tops out at
        // 3 V): every dispatch saturates via the table fallback.
        let flat = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        assert!(flat.report.saturated_dispatches > 0);
        // A policy over-requesting past f_max is clamped AND unservable
        // by the table — still one saturation per dispatch, not two.
        struct Over;
        impl Policy for Over {
            fn name(&self) -> &str {
                "over"
            }
            fn on_dispatch(&mut self, _ctx: &DispatchContext<'_>) -> Freq {
                Freq::from_cycles_per_ms(1e9)
            }
        }
        let over = Simulator::new(&set, &cpu, Over)
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        assert_eq!(
            over.report.saturated_dispatches,
            flat.report.saturated_dispatches
        );
        assert_eq!(over.report.energy, flat.report.energy);
    }

    /// With static power modeled, busy slices accrue leakage energy and
    /// idle spans accrue idle energy; the breakdown reconciles exactly
    /// with the total.
    #[test]
    fn leakage_and_idle_energy_accounted() {
        let (set, cpu0) = motivation();
        let cpu = Processor::builder(cpu0.freq_model().clone())
            .vmin(cpu0.vmin())
            .vmax(cpu0.vmax())
            .static_power(2.0)
            .idle_power(0.5)
            .build()
            .unwrap();
        let out = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        // 3000 cycles at 200 cyc/ms = 15 ms busy, 5 ms idle.
        assert!((out.report.static_energy.as_units() - 2.0 * 15.0).abs() < 1e-9);
        assert!((out.report.idle_energy.as_units() - 0.5 * 5.0).abs() < 1e-9);
        // Total = dynamic (16·3000) + static + idle.
        assert!((out.report.energy.as_units() - (48000.0 + 30.0 + 2.5)).abs() < 1e-6);
        let b = out.report.breakdown();
        assert_eq!(b.total(), out.report.energy);
        assert!((b.dynamic.as_units() - 48000.0).abs() < 1e-6);
        // The lossless processor reports zero static/idle energy.
        let lossless = Simulator::new(&set, &cpu0, NoDvs)
            .run(&mut |_, _| Cycles::from_cycles(1000.0))
            .unwrap();
        assert_eq!(lossless.report.static_energy, Energy::ZERO);
        assert_eq!(lossless.report.idle_energy, Energy::ZERO);
    }

    /// With `static_power > 0` no policy runs below the critical speed:
    /// under-requests rise to it (unflagged), and every trace slice sits
    /// at or above the corresponding voltage.
    #[test]
    fn dispatch_floors_at_critical_speed() {
        struct Crawler;
        impl Policy for Crawler {
            fn name(&self) -> &str {
                "crawler"
            }
            fn on_dispatch(&mut self, _ctx: &DispatchContext<'_>) -> Freq {
                Freq::from_cycles_per_ms(1e-6)
            }
        }
        let (set, cpu0) = motivation();
        let cpu = Processor::builder(cpu0.freq_model().clone())
            .vmin(cpu0.vmin())
            .vmax(cpu0.vmax())
            .static_power(1000.0)
            .build()
            .unwrap();
        let crit = cpu.critical_speed(set.tasks()[0].c_eff());
        assert!(crit > cpu.f_min(), "fixture must have a binding floor");
        let out = Simulator::new(&set, &cpu, Crawler)
            .with_options(SimOptions {
                record_trace: true,
                ..Default::default()
            })
            .run(&mut |_, _| Cycles::from_cycles(100.0))
            .unwrap();
        assert_eq!(
            out.report.saturated_dispatches, 0,
            "floor raise is unflagged"
        );
        let v_crit = cpu.volt_for_speed(crit).unwrap();
        for s in out.trace.unwrap().slices() {
            assert!(
                s.voltage >= v_crit - acs_model::units::Volt::from_volts(1e-9),
                "slice below critical speed: {s:?}"
            );
        }
    }

    /// On a discrete table whose top level sits below `vmax`, the
    /// leakage floor caps at the highest *servable* speed: dispatches
    /// stay on-table and are not counted as saturation.
    #[test]
    fn leakage_floor_stays_within_a_short_level_table() {
        use acs_power::LevelTable;
        struct Crawler;
        impl Policy for Crawler {
            fn name(&self) -> &str {
                "crawler"
            }
            fn on_dispatch(&mut self, _ctx: &DispatchContext<'_>) -> Freq {
                Freq::from_cycles_per_ms(1e-6)
            }
        }
        let (set, _) = motivation();
        let table = LevelTable::new(
            [1.0, 2.0, 3.0]
                .iter()
                .map(|&v| Volt::from_volts(v))
                .collect(),
        )
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(1.0))
            .vmax(Volt::from_volts(4.0))
            .discrete_levels(table)
            .static_power(1e9) // continuous optimum far beyond the table
            .build()
            .unwrap();
        let out = Simulator::new(&set, &cpu, Crawler)
            .with_options(SimOptions {
                record_trace: true,
                ..Default::default()
            })
            .run(&mut |_, _| Cycles::from_cycles(100.0))
            .unwrap();
        assert_eq!(
            out.report.saturated_dispatches, 0,
            "the floor must not push dispatches off the table"
        );
        // Everything ran at the table's top level (3 V = 150 cyc/ms).
        for s in out.trace.unwrap().slices() {
            assert_eq!(s.voltage, Volt::from_volts(3.0), "{s:?}");
        }
    }

    /// The classic scheduling-class separator: a non-harmonic set at
    /// utilization 1 misses deadlines under RM but not under EDF (whose
    /// utilization bound is exactly 1).
    #[test]
    fn edf_schedules_full_utilization_where_rm_misses() {
        // Periods {10, 15} at f_max = 200 cyc/ms: U = 0.5 + 0.5 = 1.
        let set = TaskSet::new(vec![
            Task::builder("a", Ticks::new(10))
                .wcec(Cycles::from_cycles(1000.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(15))
                .wcec(Cycles::from_cycles(1500.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        assert!(acs_preempt::edf_demand_feasible(&set, cpu.f_max()));
        assert!(!acs_preempt::rm_feasible(&set, cpu.f_max()));
        let totals = acs_core::trace::wcec_totals(&set);
        let rm = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        assert!(rm.report.deadline_misses > 0, "RM must miss at U = 1");
        let edf = Simulator::new(&set, &cpu, NoDvs)
            .with_class(acs_model::SchedulingClass::Edf)
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        assert_eq!(edf.report.deadline_misses, 0, "EDF is exact at U = 1");
        // The set-level default class works the same way as the
        // explicit override.
        let tagged = set.clone().with_class(acs_model::SchedulingClass::Edf);
        let inherited = Simulator::new(&tagged, &cpu, NoDvs)
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        assert_eq!(inherited.report, edf.report);
    }

    /// Per-frame (equal-period) sets: the EDF dispatcher degenerates to
    /// the exact RM path — identical reports and traces, for scheduled
    /// and schedule-free policies alike.
    #[test]
    fn edf_degenerates_to_rm_on_equal_periods() {
        let (set, cpu) = motivation(); // three tasks, all period 20
        let edf_set = set.clone().with_class(acs_model::SchedulingClass::Edf);
        let sched_rm = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let sched_edf = synthesize_wcs(&edf_set, &cpu, &SynthesisOptions::default()).unwrap();
        // On a per-frame set the EDF expansion *is* the RM expansion, so
        // the synthesized milestones coincide exactly.
        for (a, b) in sched_rm.milestones().iter().zip(sched_edf.milestones()) {
            assert_eq!(a.end_time, b.end_time);
            assert_eq!(a.worst_workload, b.worst_workload);
        }
        let totals = acs_core::trace::acec_totals(&set);
        type MakePolicy = fn() -> Box<dyn Policy>;
        let policies: [(&str, MakePolicy); 3] = [
            ("no-dvs", || Box::new(NoDvs)),
            ("greedy", || Box::new(GreedyReclaim)),
            ("ccrm", || Box::new(CcRm::new())),
        ];
        for (name, make) in policies {
            let run = |class, sched: &StaticSchedule| {
                let mut sim = Simulator::new(&set, &cpu, make()).with_options(SimOptions {
                    record_trace: true,
                    class: Some(class),
                    ..Default::default()
                });
                if make().needs_schedule() {
                    sim = sim.with_schedule(sched);
                }
                sim.run(&mut |tid, _| totals[tid.0]).unwrap()
            };
            let rm = run(acs_model::SchedulingClass::FixedPriorityRm, &sched_rm);
            let edf = run(acs_model::SchedulingClass::Edf, &sched_edf);
            assert_eq!(rm.report, edf.report, "{name}: reports diverge");
            assert_eq!(
                rm.trace.unwrap().slices(),
                edf.trace.unwrap().slices(),
                "{name}: traces diverge"
            );
        }
        // A class-mismatched schedule is rejected loudly rather than
        // silently voiding the worst-case guarantee.
        let err = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched_edf)
            .run(&mut |tid, _| totals[tid.0])
            .unwrap_err();
        assert!(
            matches!(&err, SimError::ScheduleMismatch { reason } if reason.contains("edf")),
            "{err}"
        );
    }

    /// Preemptions are counted as displacements of an unfinished job:
    /// the preemptive fixture's `lo` task is split around `hi`'s
    /// release.
    #[test]
    fn preemptions_counted() {
        let (set, cpu) = preemptive_set();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let totals = acs_core::trace::wcec_totals(&set);
        let out = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        assert!(out.report.preemptions >= 1, "{:?}", out.report);
        // A single-task set can never preempt.
        let solo = TaskSet::new(vec![Task::builder("only", Ticks::new(10))
            .wcec(Cycles::from_cycles(100.0))
            .build()
            .unwrap()])
        .unwrap();
        let out = Simulator::new(&solo, &cpu, NoDvs)
            .with_options(SimOptions {
                hyper_periods: 5,
                ..Default::default()
            })
            .run(&mut |_, _| Cycles::from_cycles(100.0))
            .unwrap();
        assert_eq!(out.report.preemptions, 0);
    }

    /// Speeds below `f_min` rise to `f_min` (the processor cannot run
    /// slower) without being counted as saturation.
    #[test]
    fn under_requests_rise_to_f_min() {
        struct Crawler;
        impl Policy for Crawler {
            fn name(&self) -> &str {
                "crawler"
            }
            fn on_dispatch(&mut self, _ctx: &DispatchContext<'_>) -> Freq {
                Freq::from_cycles_per_ms(1e-6)
            }
        }
        let (set, cpu) = motivation();
        let out = Simulator::new(&set, &cpu, Crawler)
            .run(&mut |_, _| Cycles::from_cycles(100.0)) // light load: vmin is safe
            .unwrap();
        assert_eq!(out.report.saturated_dispatches, 0);
        // Everything ran at vmin: E = c_eff · vmin² · cycles.
        let vmin = cpu.vmin().as_volts();
        let expected: f64 = set
            .tasks()
            .iter()
            .map(|t| t.c_eff() * vmin * vmin * 100.0)
            .sum();
        assert!((out.report.energy.as_units() - expected).abs() < 1e-6);
    }

    /// Driving a [`SteppedRun`] round by round produces exactly what
    /// `run` returns — same report (including event stats), same trace.
    #[test]
    fn stepped_run_matches_run() {
        let (set, cpu) = preemptive_set();
        let sched = synthesize_acs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let totals = acs_core::trace::acec_totals(&set);
        let options = SimOptions {
            hyper_periods: 3,
            record_trace: true,
            ..Default::default()
        };
        let baseline = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .with_options(options.clone())
            .run(&mut |tid, _| totals[tid.0])
            .unwrap();
        let mut sim = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .with_options(options);
        let mut draw = |tid: TaskId, _| totals[tid.0];
        let mut stepped = sim.stepped(&mut draw).unwrap();
        let mut clock = f64::NEG_INFINITY;
        while let Some(now) = stepped.clock_ms() {
            assert!(now >= clock, "clock moved backwards: {now} < {clock}");
            clock = now;
            if !stepped.step().unwrap() {
                break;
            }
        }
        assert!(stepped.is_finished());
        let out = stepped.finish().unwrap();
        assert_eq!(out.report, baseline.report);
        assert_eq!(
            out.trace.unwrap().slices(),
            baseline.trace.unwrap().slices()
        );
    }

    /// The event engine surfaces its queue high-water mark and
    /// handled-event count, and they scale with the horizon.
    #[test]
    fn event_stats_surface_in_report() {
        let (set, cpu) = preemptive_set();
        let run = |hps: u64| {
            Simulator::new(&set, &cpu, NoDvs)
                .with_options(SimOptions {
                    hyper_periods: hps,
                    ..Default::default()
                })
                .run(&mut |_, _| Cycles::from_cycles(50.0))
                .unwrap()
                .report
        };
        let one = run(1);
        // Every job releases through the queue, and every slice is a
        // handled dispatch event.
        assert!(one.event_queue_peak >= 1);
        assert!(one.events_handled >= set.total_instances());
        let five = run(5);
        assert_eq!(five.events_handled, 5 * one.events_handled);
        // The queue is rebuilt per hyper-period: the peak is a max,
        // not a sum.
        assert_eq!(five.event_queue_peak, one.event_queue_peak);
    }
}
