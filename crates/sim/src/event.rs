//! The discrete-event core: a deterministic event queue and the ready
//! (dispatch) queue.
//!
//! Both queues are binary heaps with **fully deterministic ordering**:
//!
//! * [`EventQueue`] orders by `(time, kind-priority, seq)` — time first,
//!   then [`EventKind`] priority (releases outrank chunk wakeups at the
//!   same timestamp, mirroring the engine's admission-before-maintenance
//!   contract), then the monotone insertion sequence number. Two queues
//!   built from the same multiset of events pop identically regardless
//!   of insertion order; same-timestamp, same-kind events pop in
//!   insertion order.
//! * [`ReadyQueue`] orders released, runnable jobs by the scheduling
//!   class's dispatch key — `(task, release)` under RM (the task index
//!   *is* the priority), `(absolute deadline, task, release)` under EDF —
//!   with the job index as a final, never-reached-in-practice tiebreak.
//!
//! The engine pops from these queues instead of scanning every job per
//! event, which is what turns the per-event cost from `O(jobs)` into
//! `O(log jobs)` (see `docs/ENGINE.md`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What an engine event means. The numeric discriminant is the
/// **kind-priority**: at equal timestamps, smaller pops first.
///
/// The event engine queues [`Release`](EventKind::Release) and
/// [`ChunkWakeup`](EventKind::ChunkWakeup) events; completions, budget
/// exhaustions and speed changes are *derived* events — the dispatch
/// handler computes the earliest of them directly from the executing
/// speed, so no queued event ever needs cancelling (see
/// `docs/ENGINE.md`). The remaining kinds name the rest of the engine's
/// event vocabulary for extensions that schedule them explicitly
/// (sporadic arrivals, traced speed changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A job instance is released (becomes eligible to execute).
    Release = 0,
    /// A throttled job's next chunk window opens.
    ChunkWakeup = 1,
    /// A job finishes its remaining work (derived at dispatch today).
    Completion = 2,
    /// A policy boundary (hyper-period start / release / completion
    /// hooks fire here; derived today).
    Boundary = 3,
    /// The processor changes speed/voltage (derived at dispatch today).
    SpeedChange = 4,
}

/// One queued event: a timestamp, a kind, and the job it concerns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time of the event, in ms within the hyper-period.
    pub time: f64,
    /// What happens at `time`.
    pub kind: EventKind,
    /// Index of the job the event concerns.
    pub job: usize,
}

/// A queued event plus its insertion sequence number (the deterministic
/// last-resort tiebreak).
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    event: Event,
    seq: u64,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.event
            .time
            .total_cmp(&other.event.time)
            .then_with(|| self.event.kind.cmp(&other.event.kind))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A deterministic min-heap of engine events, keyed by
/// `(time, kind-priority, seq)`.
///
/// `seq` is assigned by the queue at push time, so for events equal in
/// `(time, kind)` the pop order is exactly the insertion order — the
/// queue is a pure function of its push sequence, never of heap
/// internals. The queue also tracks its high-water mark and the total
/// number of events popped, which the engine surfaces in
/// [`SimReport`](crate::SimReport).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<QueuedEvent>>,
    next_seq: u64,
    high_water: usize,
    popped: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            ..EventQueue::default()
        }
    }

    /// Empties the queue and resets the sequence counter and the
    /// per-run statistics, keeping the heap's backing allocation. A
    /// cleared queue is indistinguishable from a freshly constructed
    /// one (capacity aside) — the engine recycles one queue across
    /// hyper-periods instead of allocating per hyper-period.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.high_water = 0;
        self.popped = 0;
    }

    /// Enqueues `event`; its sequence number is the push order.
    pub fn push(&mut self, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(std::cmp::Reverse(QueuedEvent { event, seq }));
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// The earliest event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|q| &q.0.event)
    }

    /// The earliest event's timestamp, `f64::INFINITY` when empty (the
    /// identity of the engine's next-event `min`-chain).
    pub fn next_time(&self) -> f64 {
        self.peek().map_or(f64::INFINITY, |e| e.time)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop().map(|q| q.0.event);
        if e.is_some() {
            self.popped += 1;
        }
        e
    }

    /// Removes and returns the earliest event if `pred` accepts it.
    pub fn pop_if(&mut self, pred: impl FnOnce(&Event) -> bool) -> Option<Event> {
        if pred(self.peek()?) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of events ever queued at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total number of events popped over the queue's lifetime.
    pub fn popped(&self) -> usize {
        self.popped
    }
}

/// Dispatch key of one ready job. Under RM `deadline` is held at `0.0`
/// for every entry, so the ordering degenerates to `(task, release)` —
/// exactly the fixed-priority order; under EDF it is the job's absolute
/// deadline. Distinct jobs always differ in `(task, release)` (two
/// instances of one task have distinct releases), so `job` is a pure
/// formality for `Ord` totality.
#[derive(Debug, Clone, Copy)]
pub struct ReadyKey {
    /// Absolute deadline in ms (0 under RM — see above).
    pub deadline: f64,
    /// Task index (the RM priority).
    pub task: usize,
    /// Release time in ms.
    pub release: f64,
    /// Job index (final tiebreak).
    pub job: usize,
}

impl PartialEq for ReadyKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ReadyKey {}

impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.deadline
            .total_cmp(&other.deadline)
            .then_with(|| self.task.cmp(&other.task))
            .then_with(|| self.release.total_cmp(&other.release))
            .then_with(|| self.job.cmp(&other.job))
    }
}

/// The ready queue: a min-heap of [`ReadyKey`]s. Popping yields the
/// job the scheduling class dispatches next in `O(log n)`.
///
/// Membership is managed strictly by the engine (a job is pushed
/// exactly when it becomes runnable and popped exactly when selected),
/// so the queue never holds stale entries and needs no lazy deletion.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    heap: BinaryHeap<std::cmp::Reverse<ReadyKey>>,
}

impl ReadyQueue {
    /// Creates an empty ready queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// Empties the queue, keeping its backing allocation (hyper-period
    /// recycling, like [`EventQueue::clear`]).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Inserts a runnable job.
    pub fn push(&mut self, key: ReadyKey) {
        self.heap.push(std::cmp::Reverse(key));
    }

    /// Removes and returns the most eligible job.
    pub fn pop(&mut self) -> Option<ReadyKey> {
        self.heap.pop().map(|q| q.0)
    }

    /// The most eligible job without removing it.
    pub fn peek(&self) -> Option<&ReadyKey> {
        self.heap.peek().map(|q| &q.0)
    }

    /// Number of ready jobs.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no job is ready.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, kind: EventKind, job: usize) -> Event {
        Event { time, kind, job }
    }

    #[test]
    fn pops_in_time_then_kind_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(ev(5.0, EventKind::ChunkWakeup, 0));
        q.push(ev(3.0, EventKind::ChunkWakeup, 1));
        q.push(ev(3.0, EventKind::Release, 2));
        q.push(ev(3.0, EventKind::Release, 3));
        q.push(ev(1.0, EventKind::SpeedChange, 4));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.job).collect();
        // time 1 first; at time 3 the Release events outrank the wakeup,
        // in insertion order (job 2 then 3); time 5 last.
        assert_eq!(order, vec![4, 2, 3, 1, 0]);
        assert_eq!(q.popped(), 5);
        assert_eq!(q.high_water(), 5);
    }

    #[test]
    fn same_key_pops_in_insertion_order() {
        let mut q = EventQueue::new();
        for job in 0..100 {
            q.push(ev(7.0, EventKind::Release, job));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.job).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_is_infinity_when_empty() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), f64::INFINITY);
        q.push(ev(2.5, EventKind::Release, 0));
        assert_eq!(q.next_time(), 2.5);
        assert!(q.pop_if(|e| e.time <= 3.0).is_some());
        assert!(q.pop_if(|e| e.time <= 3.0).is_none());
    }

    #[test]
    fn ready_queue_rm_order_ignores_deadline() {
        let mut r = ReadyQueue::new();
        // RM keys carry deadline 0: order is (task, release).
        r.push(ReadyKey {
            deadline: 0.0,
            task: 2,
            release: 0.0,
            job: 0,
        });
        r.push(ReadyKey {
            deadline: 0.0,
            task: 0,
            release: 10.0,
            job: 1,
        });
        r.push(ReadyKey {
            deadline: 0.0,
            task: 0,
            release: 0.0,
            job: 2,
        });
        let order: Vec<usize> = std::iter::from_fn(|| r.pop()).map(|k| k.job).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn ready_queue_edf_order_uses_deadline_first() {
        let mut r = ReadyQueue::new();
        r.push(ReadyKey {
            deadline: 20.0,
            task: 0,
            release: 0.0,
            job: 0,
        });
        r.push(ReadyKey {
            deadline: 15.0,
            task: 2,
            release: 5.0,
            job: 1,
        });
        r.push(ReadyKey {
            deadline: 15.0,
            task: 1,
            release: 5.0,
            job: 2,
        });
        let order: Vec<usize> = std::iter::from_fn(|| r.pop()).map(|k| k.job).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }
}
