//! Property-based tests for the simulator's accounting invariants.

use acs_core::{synthesize_wcs, SynthesisOptions};
use acs_model::units::{Cycles, Ticks, Volt};
use acs_model::{Task, TaskId, TaskSet};
use acs_power::{FreqModel, Processor};
use acs_sim::{GreedyReclaim, NoDvs, SimOptions, Simulator};
use proptest::prelude::*;

fn cpu() -> Processor {
    Processor::builder(FreqModel::linear(50.0).unwrap())
        .vmin(Volt::from_volts(0.3))
        .vmax(Volt::from_volts(4.0))
        .build()
        .unwrap()
}

/// A small feasible task set from raw parts (utilization ≤ 60%).
fn arb_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((2u64..16, 0.05f64..0.3), 1..4).prop_map(|specs| {
        let fmax = 200.0;
        let tasks: Vec<Task> = specs
            .iter()
            .enumerate()
            .map(|(i, &(p, u))| {
                let wcec = u * p as f64 * fmax;
                Task::builder(format!("t{i}"), Ticks::new(p))
                    .wcec(Cycles::from_cycles(wcec))
                    .bcec(Cycles::from_cycles(wcec * 0.1))
                    .acec(Cycles::from_cycles(wcec * 0.55))
                    .build()
                    .unwrap()
            })
            .collect();
        TaskSet::new(tasks).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Accounting: per-task energies sum to the total; busy + idle covers
    /// the horizon exactly (no overhead configured, feasible schedule).
    #[test]
    fn energy_and_time_accounting(set in arb_set(), frac in 0.1f64..1.0) {
        let cpu = cpu();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let totals: Vec<Cycles> = set.tasks().iter().map(|t| t.wcec() * frac).collect();
        let hp = 3u64;
        let out = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .with_options(SimOptions { hyper_periods: hp, deadline_tol_ms: 1e-3, ..Default::default() })
            .run(&mut |t: TaskId, _| totals[t.0])
            .unwrap();
        let r = &out.report;
        prop_assert_eq!(r.deadline_misses, 0);
        let per_task: f64 = r.per_task_energy.iter().map(|e| e.as_units()).sum();
        prop_assert!((per_task - r.energy.as_units()).abs() < 1e-9 * r.energy.as_units().max(1.0));
        let horizon = hp as f64 * set.hyper_period().get() as f64;
        let covered = r.busy_time.as_ms() + r.idle_time.as_ms();
        prop_assert!((covered - horizon).abs() < 1e-6 * horizon,
            "busy {} + idle {} != horizon {}", r.busy_time, r.idle_time, horizon);
        prop_assert_eq!(r.jobs_completed as u64, hp * set.total_instances());
    }

    /// Determinism: identical seeds and configurations give identical
    /// reports.
    #[test]
    fn runs_are_deterministic(set in arb_set(), seed in 0u64..1000) {
        let cpu = cpu();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let run = || {
            let mut draws = acs_workloads::TaskWorkloads::paper(&set, seed);
            Simulator::new(&set, &cpu, GreedyReclaim)
                .with_schedule(&sched)
                .with_options(SimOptions { hyper_periods: 2, deadline_tol_ms: 1e-3, ..Default::default() })
                .run(&mut |t, i| draws.draw(t, i))
                .unwrap()
        };
        let (a, b) = (run().report, run().report);
        prop_assert_eq!(a, b);
    }

    /// No-DVS energy is exactly `Σ c_eff·vmax²·executed` and the busy
    /// time is `executed / f_max`.
    #[test]
    fn no_dvs_energy_closed_form(set in arb_set(), frac in 0.1f64..1.0) {
        let cpu = cpu();
        let totals: Vec<Cycles> = set.tasks().iter().map(|t| t.wcec() * frac).collect();
        let out = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |t: TaskId, _| totals[t.0])
            .unwrap();
        let vmax = cpu.vmax().as_volts();
        let expected: f64 = set
            .iter()
            .map(|(tid, t)| {
                t.c_eff() * vmax * vmax * totals[tid.0].as_cycles()
                    * set.instances_of(tid) as f64
            })
            .sum();
        prop_assert!((out.report.energy.as_units() - expected).abs() < 1e-6 * expected.max(1.0));
        let cycles: f64 = set
            .iter()
            .map(|(tid, _)| totals[tid.0].as_cycles() * set.instances_of(tid) as f64)
            .sum();
        let expected_busy = cycles / cpu.f_max().as_cycles_per_ms();
        prop_assert!((out.report.busy_time.as_ms() - expected_busy).abs() < 1e-6 * expected_busy.max(1.0));
    }

    /// Greedy never uses more energy than no-DVS on the same draws.
    #[test]
    fn greedy_bounded_by_no_dvs(set in arb_set(), frac in 0.1f64..1.0) {
        let cpu = cpu();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let totals: Vec<Cycles> = set.tasks().iter().map(|t| t.wcec() * frac).collect();
        let greedy = Simulator::new(&set, &cpu, GreedyReclaim)
            .with_schedule(&sched)
            .with_options(SimOptions { deadline_tol_ms: 1e-3, ..Default::default() })
            .run(&mut |t: TaskId, _| totals[t.0])
            .unwrap();
        let flat = Simulator::new(&set, &cpu, NoDvs)
            .run(&mut |t: TaskId, _| totals[t.0])
            .unwrap();
        prop_assert!(greedy.report.energy.as_units() <= flat.report.energy.as_units() * (1.0 + 1e-9));
    }
}
