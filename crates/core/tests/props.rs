//! Property-based tests for the fill rule, quantiles and the NLP
//! formulation's structural invariants.

use acs_core::fill::{fill_amounts, remaining_after};
use acs_core::quantile::{normal_cdf, normal_inverse_cdf, truncated_normal_strata};
use acs_core::{ObjectiveKind, ScheduleProblem};
use acs_model::units::{Cycles, Ticks, Volt};
use acs_model::{Task, TaskSet};
use acs_opt::problem::ConstrainedProblem;
use acs_opt::tape::Graph;
use acs_power::{FreqModel, Processor};
use acs_preempt::FullyPreemptiveSchedule;
use proptest::prelude::*;

proptest! {
    /// Fill conservation: shares are within budgets and sum to
    /// min(total, Σ budgets); the fill is "greedy-prefix": once a chunk
    /// is partial, the rest are zero.
    #[test]
    fn fill_rule_invariants(
        budgets in prop::collection::vec(0.0f64..100.0, 1..10),
        total in 0.0f64..500.0,
    ) {
        let fills = fill_amounts(&budgets, total);
        prop_assert_eq!(fills.len(), budgets.len());
        let cap: f64 = budgets.iter().sum();
        let sum: f64 = fills.iter().sum();
        prop_assert!((sum - total.min(cap)).abs() < 1e-9);
        let mut partial_seen = false;
        for (f, b) in fills.iter().zip(&budgets) {
            prop_assert!(*f >= 0.0 && *f <= b + 1e-9);
            if partial_seen {
                prop_assert!(*f < 1e-9);
            }
            if f + 1e-9 < *b {
                partial_seen = true;
            }
        }
    }

    /// `remaining_after` is consistent with the fills.
    #[test]
    fn remaining_after_consistent(
        budgets in prop::collection::vec(0.1f64..50.0, 1..6),
        total in 0.0f64..200.0,
    ) {
        for k in 0..budgets.len() {
            let rem = remaining_after(&budgets, total, k);
            let executed: f64 = fill_amounts(&budgets, total)[..=k].iter().sum();
            prop_assert!((rem - (total - executed).max(0.0)).abs() < 1e-9);
        }
    }

    /// Φ and Φ⁻¹ are inverse on (0, 1).
    #[test]
    fn normal_cdf_inverse_round_trip(p in 1e-4f64..0.9999) {
        let x = normal_inverse_cdf(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-6);
    }

    /// Truncated-normal strata: monotone, in-bounds, unit mass.
    #[test]
    fn strata_invariants(
        mean in -10.0f64..10.0,
        sd in 0.0f64..5.0,
        half_width in 0.1f64..10.0,
        n in 1usize..32,
    ) {
        let (lo, hi) = (mean - half_width, mean + half_width);
        let strata = truncated_normal_strata(mean, sd, lo, hi, n);
        prop_assert_eq!(strata.len(), n);
        let mass: f64 = strata.iter().map(|s| s.weight).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        for w in strata.windows(2) {
            prop_assert!(w[0].value <= w[1].value + 1e-12);
        }
        for s in &strata {
            prop_assert!(s.value >= lo - 1e-9 && s.value <= hi + 1e-9);
        }
    }

    /// The NLP formulation's structural counts hold for arbitrary small
    /// task sets, and the heuristic initial point always satisfies the
    /// workload-conservation equalities.
    #[test]
    fn formulation_structure(periods in prop::collection::vec(2u64..20, 1..4)) {
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::builder(format!("t{i}"), Ticks::new(p))
                    .wcec(Cycles::from_cycles(p as f64 * 20.0))
                    .bcec(Cycles::from_cycles(p as f64 * 2.0))
                    .build()
                    .unwrap()
            })
            .collect();
        let set = TaskSet::new(tasks).unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let p = ScheduleProblem::new(&set, &cpu, &fps, ObjectiveKind::AcecTrace);
        prop_assert_eq!(p.dim(), 2 * fps.len());
        let x0 = p.initial_point();
        let g = Graph::new();
        let xs: Vec<_> = x0.iter().map(|&v| g.input(v)).collect();
        let exprs = p.build(&g, &xs, 0.0);
        prop_assert_eq!(exprs.inequalities.len(), 5 * fps.len());
        prop_assert_eq!(exprs.equalities.len(), set.total_instances() as usize);
        for eq in &exprs.equalities {
            prop_assert!(eq.value().abs() < 1e-6, "eq residual {}", eq.value());
        }
        prop_assert!(exprs.objective.value().is_finite());
        prop_assert!(exprs.objective.value() >= 0.0);
    }
}
