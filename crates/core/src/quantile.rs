//! Truncated-normal quantiles for the probability-weighted objective.
//!
//! The paper's experiments draw execution cycles from a normal
//! distribution with mean ACEC, truncated to `[BCEC, WCEC]` (§4), and
//! note that the objective may use the full probability density instead
//! of the single ACEC point (§3.2). This module provides equal-mass
//! strata midpoints of that truncated normal so
//! `ObjectiveKind::Quantiles(n)` can average the trace energy over `n`
//! representative workloads.

/// Standard normal cumulative distribution function.
///
/// Uses the complementary-error-function identity with an Abramowitz &
/// Stegun 7.1.26-style polynomial; absolute error below `7.5e-8`, ample
/// for stratifying workloads.
pub fn normal_cdf(x: f64) -> f64 {
    // erf via A&S 7.1.26 on |x|/√2.
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * z.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf_abs = 1.0 - poly * (-z * z).exp();
    let erf = if z >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// relative error ≈ 1.15e-9), refined by one Newton step on
/// [`normal_cdf`].
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn normal_inverse_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "probability must lie in (0, 1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Newton refinement: x -= (Φ(x) − p)/φ(x).
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if pdf > 1e-300 {
        x - (normal_cdf(x) - p) / pdf
    } else {
        x
    }
}

/// One representative workload scenario: `weight`s sum to 1 across a
/// stratification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedValue {
    /// Scenario probability mass.
    pub weight: f64,
    /// Scenario value (e.g. execution cycles).
    pub value: f64,
}

/// Equal-mass strata midpoints of a normal `N(mean, sd²)` truncated to
/// `[lo, hi]`.
///
/// Returns `n` scenarios with weight `1/n` whose values are the quantiles
/// at probabilities `(j + 0.5)/n` of the truncated distribution. For
/// `sd = 0` (or a degenerate interval) all scenarios collapse to the
/// clamped mean.
///
/// # Panics
///
/// Panics if `n == 0` or `lo > hi`.
pub fn truncated_normal_strata(
    mean: f64,
    sd: f64,
    lo: f64,
    hi: f64,
    n: usize,
) -> Vec<WeightedValue> {
    assert!(n > 0, "need at least one stratum");
    assert!(lo <= hi, "invalid truncation interval [{lo}, {hi}]");
    let w = 1.0 / n as f64;
    if sd <= 0.0 || hi - lo <= 0.0 {
        let v = mean.clamp(lo, hi);
        return vec![
            WeightedValue {
                weight: w,
                value: v
            };
            n
        ];
    }
    let a = normal_cdf((lo - mean) / sd);
    let b = normal_cdf((hi - mean) / sd);
    let mass = (b - a).max(1e-12);
    (0..n)
        .map(|j| {
            let p = a + mass * ((j as f64 + 0.5) / n as f64);
            let v = mean + sd * normal_inverse_cdf(p.clamp(1e-12, 1.0 - 1e-12));
            WeightedValue {
                weight: w,
                value: v.clamp(lo, hi),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.024_997_9).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for p in [0.001, 0.01, 0.2, 0.5, 0.77, 0.99, 0.999] {
            let x = normal_inverse_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-7, "p = {p}, x = {x}");
        }
    }

    #[test]
    fn inverse_cdf_symmetry() {
        for p in [0.1, 0.25, 0.4] {
            let a = normal_inverse_cdf(p);
            let b = normal_inverse_cdf(1.0 - p);
            assert!((a + b).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn inverse_cdf_rejects_out_of_range() {
        let _ = normal_inverse_cdf(0.0);
    }

    #[test]
    fn strata_stay_in_bounds_and_average_near_truncated_mean() {
        let strata = truncated_normal_strata(50.0, 20.0, 10.0, 100.0, 64);
        let mean: f64 = strata.iter().map(|s| s.weight * s.value).sum();
        for s in &strata {
            assert!(s.value >= 10.0 && s.value <= 100.0);
        }
        // Truncated mean stays close to 50 for this near-symmetric window.
        assert!((mean - 50.0).abs() < 1.5, "mean = {mean}");
        let total_w: f64 = strata.iter().map(|s| s.weight).sum();
        assert!((total_w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strata_are_monotone() {
        let strata = truncated_normal_strata(0.0, 1.0, -3.0, 3.0, 16);
        for w in strata.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
    }

    #[test]
    fn degenerate_sd_collapses() {
        let strata = truncated_normal_strata(5.0, 0.0, 0.0, 10.0, 4);
        assert!(strata.iter().all(|s| s.value == 5.0));
    }

    #[test]
    fn paper_sigma_convention() {
        // σ = (WCEC − BCEC)/6 keeps ±3σ inside the bounds, so truncation
        // barely shifts the mean.
        let (bcec, wcec) = (100.0, 1000.0);
        let mean = (bcec + wcec) / 2.0;
        let sd = (wcec - bcec) / 6.0;
        let strata = truncated_normal_strata(mean, sd, bcec, wcec, 32);
        let m: f64 = strata.iter().map(|s| s.weight * s.value).sum();
        assert!((m - mean).abs() < 5.0, "m = {m}");
    }
}
