//! The voltage-scheduling NLP (paper §3.2).
//!
//! Decision variables, for the `M` sub-instances of the fully preemptive
//! expansion in total order:
//!
//! * `e_u` — scheduled end time of sub-instance `u` (ms). Shared between
//!   the average- and worst-case scenarios (paper: "the end-times are the
//!   same for both").
//! * `w_u` — worst-case workload share `R̂_u`, *scaled to milliseconds at
//!   maximum speed* (`w_u = R̂_u / f_max`) so every variable is O(window
//!   length) and the problem is well conditioned.
//!
//! Constraints (all linear):
//!
//! * window: `r_u ≤ e_u ≤ L_u`;
//! * non-negativity: `w_u ≥ 0`;
//! * worst-case feasibility: `w_u ≤ e_u − e_{u−1}` and `w_u ≤ e_u − r_u`
//!   — together they guarantee `R̂_u` cycles fit at `f_max` after the
//!   worst-case start `ŝ_u = max(r_u, e_{u−1})` (paper constraint (8));
//! * conservation: `Σ_k w_{(i,j),k} = WCEC_i / f_max` per instance
//!   (paper constraints (10)–(11)).
//!
//! The objective is the energy of the greedy runtime's trace when every
//! instance draws a prescribed workload (ACEC by default): the fill rule
//! (paper (12)–(14), here an exact clamp instead of the indicator-variable
//! encoding), the average start-time recursion `s̄_u = max(r_u, f̄_{u−1})`
//! (paper constraint (9) models this with a slack bound; we use the exact
//! greedy recursion), and the per-cycle energy `C·V(σ_u)²` at the dispatch
//! speed `σ_u`. Piecewise constructs are softened with a temperature the
//! augmented-Lagrangian driver anneals to zero.

use crate::quantile::truncated_normal_strata;
use crate::trace::SpeedBasis;
use acs_model::TaskSet;
use acs_opt::problem::{ConstrainedProblem, LinearConstraints, ProblemExprs, SparseLinear};
use acs_opt::tape::{Expr, Graph};
use acs_power::{FreqModel, Processor};
use acs_preempt::FullyPreemptiveSchedule;

/// Objective flavor for schedule synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// Energy of the greedy runtime trace when every instance takes its
    /// ACEC — the paper's formulation with the exact greedy start-time
    /// recursion. The default for ACS.
    AcecTrace,
    /// Like [`ObjectiveKind::AcecTrace`] but pretends the runtime
    /// stretches the *average* workload over each window (a literal
    /// reading of the paper's eq. (4)); kept for the objective ablation.
    PaperIdealSpeed,
    /// Energy when every instance takes its WCEC — the classic
    /// worst-case-only static schedule (the paper's WCS baseline).
    WorstCase,
    /// Probability-weighted energy over `n` equal-mass workload quantiles
    /// of each task's truncated normal `N(ACEC, ((WCEC−BCEC)/6)²)`
    /// (paper §3.2's "probability weighted workload" remark; the strata
    /// are coupled comonotonically across tasks).
    Quantiles(usize),
}

/// One deterministic workload scenario entering the objective.
#[derive(Debug, Clone)]
struct Scenario {
    weight: f64,
    /// Per-task instance workload, scaled to ms at `f_max`.
    totals_ms: Vec<f64>,
    basis: SpeedBasis,
}

/// The NLP instance for one (task set, processor, expansion) triple.
#[derive(Debug)]
pub struct ScheduleProblem<'a> {
    set: &'a TaskSet,
    cpu: &'a Processor,
    fps: &'a FullyPreemptiveSchedule,
    scenarios: Vec<Scenario>,
    /// Objective normalization (worst-case all-`vmax` energy).
    norm: f64,
    /// Guard added to time denominators (ms).
    eps_t: f64,
    /// Guard added to workload denominators (ms at `f_max`).
    eps_w: f64,
    /// Optional warm-start point overriding the built-in heuristic.
    warm_start: Option<Vec<f64>>,
}

impl<'a> ScheduleProblem<'a> {
    /// Builds the problem for the given objective.
    pub fn new(
        set: &'a TaskSet,
        cpu: &'a Processor,
        fps: &'a FullyPreemptiveSchedule,
        objective: ObjectiveKind,
    ) -> Self {
        let fmax = cpu.f_max().as_cycles_per_ms();
        let scale = |cycles: f64| cycles / fmax;
        let scenarios = match objective {
            ObjectiveKind::AcecTrace => vec![Scenario {
                weight: 1.0,
                totals_ms: set
                    .tasks()
                    .iter()
                    .map(|t| scale(t.acec().as_cycles()))
                    .collect(),
                basis: SpeedBasis::WorstRemaining,
            }],
            ObjectiveKind::PaperIdealSpeed => vec![Scenario {
                weight: 1.0,
                totals_ms: set
                    .tasks()
                    .iter()
                    .map(|t| scale(t.acec().as_cycles()))
                    .collect(),
                basis: SpeedBasis::AverageWork,
            }],
            ObjectiveKind::WorstCase => vec![Scenario {
                weight: 1.0,
                totals_ms: set
                    .tasks()
                    .iter()
                    .map(|t| scale(t.wcec().as_cycles()))
                    .collect(),
                basis: SpeedBasis::WorstRemaining,
            }],
            ObjectiveKind::Quantiles(n) => {
                let n = n.max(1);
                let per_task: Vec<Vec<f64>> = set
                    .tasks()
                    .iter()
                    .map(|t| {
                        let sd = (t.wcec().as_cycles() - t.bcec().as_cycles()) / 6.0;
                        truncated_normal_strata(
                            t.acec().as_cycles(),
                            sd,
                            t.bcec().as_cycles(),
                            t.wcec().as_cycles(),
                            n,
                        )
                        .into_iter()
                        .map(|s| scale(s.value))
                        .collect()
                    })
                    .collect();
                (0..n)
                    .map(|j| Scenario {
                        weight: 1.0 / n as f64,
                        totals_ms: per_task.iter().map(|q| q[j]).collect(),
                        basis: SpeedBasis::WorstRemaining,
                    })
                    .collect()
            }
        };
        let vmax = cpu.vmax().as_volts();
        let norm: f64 = set
            .iter()
            .map(|(id, t)| {
                t.c_eff() * vmax * vmax * t.wcec().as_cycles() * fps.instances_of(id) as f64
            })
            .sum::<f64>()
            .max(1e-12);
        ScheduleProblem {
            set,
            cpu,
            fps,
            scenarios,
            norm,
            eps_t: 1e-6,
            eps_w: 1e-9,
            warm_start: None,
        }
    }

    /// Overrides the starting point of the solve (layout:
    /// `[e_0..e_{M−1}, R̂_0/f_max..R̂_{M−1}/f_max]`). Typically the
    /// solution of a previous (e.g. WCS) synthesis — since the
    /// augmented-Lagrangian driver keeps the best feasible point seen,
    /// warm-starting ACS from a feasible WCS schedule guarantees the
    /// result is no worse than that schedule under the ACS objective.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match `2 · num_subs()`.
    pub fn set_warm_start(&mut self, x0: Vec<f64>) {
        assert_eq!(
            x0.len(),
            2 * self.fps.len(),
            "warm start dimension mismatch"
        );
        self.warm_start = Some(x0);
    }

    /// Number of sub-instances `M` (the problem has `2M` variables).
    pub fn num_subs(&self) -> usize {
        self.fps.len()
    }

    /// Voltage expression for a (non-negative) speed expression, clamped
    /// below at `vmin`.
    fn voltage_expr<'g>(&self, speed: Expr<'g>, tau: f64) -> Expr<'g> {
        voltage_for_speed(self.cpu, speed, tau)
    }

    /// Energy of one scenario's greedy trace, as an expression.
    fn scenario_energy<'g>(
        &self,
        g: &'g Graph,
        e: &[Expr<'g>],
        w: &[Expr<'g>],
        scenario: &Scenario,
        tau: f64,
    ) -> Expr<'g> {
        let m = self.fps.len();
        let fmax = self.cpu.f_max().as_cycles_per_ms();

        // Fill rule: executed share per sub-instance (ms at f_max).
        let mut exec: Vec<Option<Expr<'g>>> = vec![None; m];
        for (tid, _task) in self.set.iter() {
            for inst in 0..self.fps.instances_of(tid) {
                let total = g.constant(scenario.totals_ms[tid.0]);
                let mut prefix = g.constant(0.0);
                for id in self.fps.chunks_of(acs_preempt::InstanceId {
                    task: tid,
                    index: inst,
                }) {
                    let wk = w[id.0];
                    let rem = total - prefix;
                    exec[id.0] = Some(clamp01(rem, wk, tau));
                    prefix = prefix + wk;
                }
            }
        }

        // Greedy start-time recursion along the total order.
        let mut energy = g.constant(0.0);
        let mut f_prev = g.constant(0.0);
        for (u, sub) in self.fps.sub_instances().iter().enumerate() {
            let r = g.constant(sub.window_start.as_ms());
            let s = smax(f_prev, r, tau);
            let a = exec[u].expect("fill visited every sub-instance");
            let gap = e[u] - s;
            let denom = smax_const(gap, self.eps_t, tau) + self.eps_t;
            let basis_w = match scenario.basis {
                SpeedBasis::WorstRemaining => w[u],
                SpeedBasis::AverageWork => a,
            };
            let speed = basis_w * fmax / denom;
            let v = self.voltage_expr(speed, tau);
            let c_eff = self.set.task(sub.instance.task).c_eff();
            energy = energy + c_eff * v.sqr() * (a * fmax);
            let rho = a / (w[u] + self.eps_w);
            f_prev = s + rho * (e[u] - s);
        }
        energy
    }
}

/// Voltage expression for a (non-negative) speed expression under `cpu`'s
/// frequency law, clamped below at `vmin`. Shared between the offline
/// [`ScheduleProblem`] and the online remaining-schedule re-optimization
/// ([`crate::reopt`]).
pub(crate) fn voltage_for_speed<'g>(cpu: &Processor, speed: Expr<'g>, tau: f64) -> Expr<'g> {
    let speed = speed.relu();
    let v = match *cpu.freq_model() {
        FreqModel::Linear { kappa } => speed / kappa,
        FreqModel::Alpha { .. } => {
            let model = cpu.freq_model();
            let f_val = speed.value();
            let freq = acs_model::units::Freq::from_cycles_per_ms(f_val.max(0.0));
            let v_val = model.volt_for(freq).as_volts();
            let dv = model.dvolt_dfreq(freq);
            speed.custom_unary(v_val, dv)
        }
    };
    let vmin = cpu.vmin().as_volts();
    smax_const(v, vmin, tau)
}

/// `max(a, b)`: smooth when `tau > 0`, exact otherwise.
pub(crate) fn smax<'g>(a: Expr<'g>, b: Expr<'g>, tau: f64) -> Expr<'g> {
    if tau > 0.0 {
        a.smooth_max(b, tau)
    } else {
        a.max_exact(b)
    }
}

/// `max(a, c)` with a constant — same cost, fewer nodes.
pub(crate) fn smax_const<'g>(a: Expr<'g>, c: f64, tau: f64) -> Expr<'g> {
    if tau > 0.0 {
        (a - c).softplus(tau) + c
    } else {
        (a - c).relu() + c
    }
}

/// `clamp(x, 0, max(hi, 0))`: smooth when `tau > 0`, exact otherwise.
/// The upper bound is sanitized to be non-negative so transiently negative
/// budgets cannot produce negative energy.
fn clamp01<'g>(x: Expr<'g>, hi: Expr<'g>, tau: f64) -> Expr<'g> {
    if tau > 0.0 {
        let hi_pos = hi.softplus(tau);
        x.softplus(tau) - (x - hi_pos).softplus(tau)
    } else {
        x.relu().min_exact(hi.relu())
    }
}

impl ConstrainedProblem for ScheduleProblem<'_> {
    fn dim(&self) -> usize {
        2 * self.fps.len()
    }

    fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], smoothing: f64) -> ProblemExprs<'g> {
        let m = self.fps.len();
        let (e, w) = x.split_at(m);
        let fmax = self.cpu.f_max().as_cycles_per_ms();

        let mut inequalities = Vec::with_capacity(5 * m);
        for (u, sub) in self.fps.sub_instances().iter().enumerate() {
            let r = sub.window_start.as_ms();
            let l = sub.window_end.as_ms();
            inequalities.push(r - e[u]); // e ≥ r
            inequalities.push(e[u] - l); // e ≤ L
            inequalities.push(-w[u]); // w ≥ 0
            let prev_end = if u == 0 { g.constant(0.0) } else { e[u - 1] };
            inequalities.push(w[u] - (e[u] - prev_end)); // fits after prev
            inequalities.push(w[u] - (e[u] - r)); // fits after release
        }

        let mut equalities = Vec::new();
        for (tid, task) in self.set.iter() {
            let budget_ms = task.wcec().as_cycles() / fmax;
            for inst in 0..self.fps.instances_of(tid) {
                let mut sum = g.constant(0.0);
                for id in self.fps.chunks_of(acs_preempt::InstanceId {
                    task: tid,
                    index: inst,
                }) {
                    sum = sum + w[id.0];
                }
                equalities.push(sum - budget_ms);
            }
        }

        let mut objective = g.constant(0.0);
        for scenario in &self.scenarios {
            let energy = self.scenario_energy(g, e, w, scenario, smoothing);
            objective = objective + scenario.weight * energy;
        }
        objective = objective / self.norm;

        ProblemExprs {
            objective,
            inequalities,
            equalities,
        }
    }

    fn linear_constraints(&self) -> Option<LinearConstraints> {
        // Every constraint of the NLP is linear (module docs); the rows
        // mirror `build`'s push order exactly so multiplier vectors are
        // interchangeable between the two evaluation paths.
        let m = self.fps.len();
        let mut ineq = SparseLinear::new();
        for (u, sub) in self.fps.sub_instances().iter().enumerate() {
            let r = sub.window_start.as_ms();
            let l = sub.window_end.as_ms();
            ineq.push_row(&[(u, -1.0)], r); // e ≥ r
            ineq.push_row(&[(u, 1.0)], -l); // e ≤ L
            ineq.push_row(&[(m + u, -1.0)], 0.0); // w ≥ 0
            if u == 0 {
                ineq.push_row(&[(m + u, 1.0), (u, -1.0)], 0.0); // fits after prev
            } else {
                ineq.push_row(&[(m + u, 1.0), (u, -1.0), (u - 1, 1.0)], 0.0);
            }
            ineq.push_row(&[(m + u, 1.0), (u, -1.0)], r); // fits after release
        }
        let fmax = self.cpu.f_max().as_cycles_per_ms();
        let mut eq = SparseLinear::new();
        let mut terms = Vec::new();
        for (tid, task) in self.set.iter() {
            let budget_ms = task.wcec().as_cycles() / fmax;
            for inst in 0..self.fps.instances_of(tid) {
                terms.clear();
                terms.extend(
                    self.fps
                        .chunks_of(acs_preempt::InstanceId {
                            task: tid,
                            index: inst,
                        })
                        .map(|id| (m + id.0, 1.0)),
                );
                eq.push_row(&terms, -budget_ms);
            }
        }
        Some(LinearConstraints { ineq, eq })
    }

    fn build_objective<'g>(&self, g: &'g Graph, x: &[Expr<'g>], smoothing: f64) -> Expr<'g> {
        let m = self.fps.len();
        let (e, w) = x.split_at(m);
        let mut objective = g.constant(0.0);
        for scenario in &self.scenarios {
            let energy = self.scenario_energy(g, e, w, scenario, smoothing);
            objective = objective + scenario.weight * energy;
        }
        objective / self.norm
    }

    fn initial_point(&self) -> Vec<f64> {
        if let Some(x0) = &self.warm_start {
            return x0.clone();
        }
        let m = self.fps.len();
        let fmax = self.cpu.f_max().as_cycles_per_ms();
        let mut x = vec![0.0; 2 * m];
        // End times: stack sub-instances evenly inside each segment.
        for s in 0..self.fps.grid().segment_count() {
            let subs = self.fps.segment_subs(s);
            let n = subs.len().max(1) as f64;
            for (i, sub) in subs.iter().enumerate() {
                let a = sub.window_start.as_ms();
                let b = sub.window_end.as_ms();
                x[sub.id.0] = a + (b - a) * (i as f64 + 1.0) / n;
            }
        }
        // Workloads: split each instance's budget across chunks in
        // proportion to the chunk windows.
        for (tid, task) in self.set.iter() {
            let budget_ms = task.wcec().as_cycles() / fmax;
            for inst in 0..self.fps.instances_of(tid) {
                let ids: Vec<_> = self
                    .fps
                    .chunks_of(acs_preempt::InstanceId {
                        task: tid,
                        index: inst,
                    })
                    .collect();
                let spans: Vec<f64> = ids
                    .iter()
                    .map(|id| self.fps.sub(*id).window_span().as_ms())
                    .collect();
                let total: f64 = spans.iter().sum();
                for (id, span) in ids.iter().zip(&spans) {
                    x[m + id.0] = budget_ms * span / total.max(1e-12);
                }
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Cycles, Ticks, Volt};
    use acs_model::Task;
    use acs_opt::numgrad::max_gradient_error;

    fn fixture() -> (TaskSet, Processor) {
        let set = TaskSet::new(vec![
            Task::builder("a", Ticks::new(4))
                .wcec(Cycles::from_cycles(60.0))
                .acec(Cycles::from_cycles(30.0))
                .bcec(Cycles::from_cycles(6.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(8))
                .wcec(Cycles::from_cycles(80.0))
                .acec(Cycles::from_cycles(40.0))
                .bcec(Cycles::from_cycles(8.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.1))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        (set, cpu)
    }

    #[test]
    fn dimensions_and_counts() {
        let (set, cpu) = fixture();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let p = ScheduleProblem::new(&set, &cpu, &fps, ObjectiveKind::AcecTrace);
        assert_eq!(p.dim(), 2 * fps.len());
        let g = Graph::new();
        let x0 = p.initial_point();
        let xs: Vec<_> = x0.iter().map(|&v| g.input(v)).collect();
        let exprs = p.build(&g, &xs, 1e-3);
        assert_eq!(exprs.inequalities.len(), 5 * fps.len());
        // instances: a has 2, b has 1 => 3 equalities.
        assert_eq!(exprs.equalities.len(), 3);
        assert!(exprs.objective.value().is_finite());
        assert!(exprs.objective.value() > 0.0);
    }

    #[test]
    fn initial_point_satisfies_conservation() {
        let (set, cpu) = fixture();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let p = ScheduleProblem::new(&set, &cpu, &fps, ObjectiveKind::AcecTrace);
        let x0 = p.initial_point();
        let g = Graph::new();
        let xs: Vec<_> = x0.iter().map(|&v| g.input(v)).collect();
        let exprs = p.build(&g, &xs, 0.0);
        for eq in &exprs.equalities {
            assert!(eq.value().abs() < 1e-9, "eq violated: {}", eq.value());
        }
        // Windows respected at the initial point.
        for (i, ineq) in exprs.inequalities.iter().enumerate() {
            // Only the window/non-negativity families are guaranteed.
            if i % 5 < 3 {
                assert!(ineq.value() <= 1e-9, "ineq {i}: {}", ineq.value());
            }
        }
    }

    #[test]
    fn objective_gradient_matches_finite_differences() {
        let (set, cpu) = fixture();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        for kind in [
            ObjectiveKind::AcecTrace,
            ObjectiveKind::PaperIdealSpeed,
            ObjectiveKind::WorstCase,
            ObjectiveKind::Quantiles(3),
        ] {
            let p = ScheduleProblem::new(&set, &cpu, &fps, kind);
            let x0 = p.initial_point();
            let smoothing = 1e-2;
            let eval = |xv: &[f64]| {
                let g = Graph::new();
                let xs: Vec<_> = xv.iter().map(|&v| g.input(v)).collect();
                p.build(&g, &xs, smoothing).objective.value()
            };
            let g = Graph::new();
            let xs: Vec<_> = x0.iter().map(|&v| g.input(v)).collect();
            let exprs = p.build(&g, &xs, smoothing);
            let grads = g.gradient(exprs.objective);
            let mut analytic = vec![0.0; x0.len()];
            grads.write_wrt(&xs, &mut analytic);
            let err = max_gradient_error(eval, &x0, &analytic, 1e-7);
            assert!(err < 1e-4, "{kind:?}: gradient error {err}");
        }
    }

    #[test]
    fn alpha_model_gradient_matches_finite_differences() {
        let (set, _) = fixture();
        let cpu = Processor::builder(FreqModel::alpha(120.0, Volt::from_volts(0.4), 1.6).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let p = ScheduleProblem::new(&set, &cpu, &fps, ObjectiveKind::AcecTrace);
        let x0 = p.initial_point();
        let eval = |xv: &[f64]| {
            let g = Graph::new();
            let xs: Vec<_> = xv.iter().map(|&v| g.input(v)).collect();
            p.build(&g, &xs, 1e-2).objective.value()
        };
        let g = Graph::new();
        let xs: Vec<_> = x0.iter().map(|&v| g.input(v)).collect();
        let exprs = p.build(&g, &xs, 1e-2);
        let grads = g.gradient(exprs.objective);
        let mut analytic = vec![0.0; x0.len()];
        grads.write_wrt(&xs, &mut analytic);
        let err = max_gradient_error(eval, &x0, &analytic, 1e-7);
        assert!(err < 1e-3, "alpha gradient error {err}");
    }

    #[test]
    fn worst_case_objective_exceeds_average() {
        let (set, cpu) = fixture();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let x0 = ScheduleProblem::new(&set, &cpu, &fps, ObjectiveKind::AcecTrace).initial_point();
        let value = |kind: ObjectiveKind| {
            let p = ScheduleProblem::new(&set, &cpu, &fps, kind);
            let g = Graph::new();
            let xs: Vec<_> = x0.iter().map(|&v| g.input(v)).collect();
            p.build(&g, &xs, 0.0).objective.value()
        };
        assert!(value(ObjectiveKind::WorstCase) > value(ObjectiveKind::AcecTrace));
        // The ideal-speed reading can only reduce energy further.
        assert!(value(ObjectiveKind::PaperIdealSpeed) <= value(ObjectiveKind::AcecTrace) + 1e-12);
    }

    #[test]
    fn quantile_objective_brackets_acec() {
        // With a near-symmetric distribution, the quantile-averaged
        // energy is at least the single-ACEC energy (Jensen: energy is
        // convex in the workload) but far below the worst case.
        let (set, cpu) = fixture();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let x0 = ScheduleProblem::new(&set, &cpu, &fps, ObjectiveKind::AcecTrace).initial_point();
        let value = |kind: ObjectiveKind| {
            let p = ScheduleProblem::new(&set, &cpu, &fps, kind);
            let g = Graph::new();
            let xs: Vec<_> = x0.iter().map(|&v| g.input(v)).collect();
            p.build(&g, &xs, 0.0).objective.value()
        };
        let acec = value(ObjectiveKind::AcecTrace);
        let quant = value(ObjectiveKind::Quantiles(8));
        let worst = value(ObjectiveKind::WorstCase);
        assert!(quant >= acec - 1e-12, "quant={quant} acec={acec}");
        assert!(quant < worst);
    }
}
