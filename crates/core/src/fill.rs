//! The workload fill rule (paper §3.2, Fig. 5).
//!
//! A preempted instance executes through its sub-instances in order, and
//! the runtime dispatches sub-instance `k+1` only after sub-instance `k`
//! has exhausted its worst-case budget `R̂_k`. Consequently, when the
//! instance's actual total workload is `c`, the cycles executed inside
//! sub-instance `k` are
//!
//! ```text
//! a_k = clamp(c − Σ_{l<k} R̂_l, 0, R̂_k)
//! ```
//!
//! The paper's Fig. 5 example: WCEC = 30, budgets (10, 10, 10), actual
//! (average) workload 15 ⇒ executed (10, 5, 0).

use acs_model::units::Cycles;

/// Distributes a total workload of `total` cycles over sub-instance
/// budgets according to the fill rule, in raw `f64` cycles.
///
/// Negative budgets (possible as transient solver iterates) are treated
/// as zero. Totals beyond the budget sum saturate every chunk.
pub fn fill_amounts(budgets: &[f64], total: f64) -> Vec<f64> {
    let mut remaining = total.max(0.0);
    budgets
        .iter()
        .map(|&b| {
            let b = b.max(0.0);
            let a = remaining.min(b);
            remaining -= a;
            a
        })
        .collect()
}

/// Typed wrapper over [`fill_amounts`].
pub fn fill_cycles(budgets: &[Cycles], total: Cycles) -> Vec<Cycles> {
    let raw: Vec<f64> = budgets.iter().map(|c| c.as_cycles()).collect();
    fill_amounts(&raw, total.as_cycles())
        .into_iter()
        .map(Cycles::from_cycles)
        .collect()
}

/// Cycles left to execute *after* chunk `k` under the fill rule — i.e.
/// the remaining workload when chunk `k+1` is dispatched.
pub fn remaining_after(budgets: &[f64], total: f64, k: usize) -> f64 {
    let executed: f64 = fill_amounts(budgets, total)[..=k].iter().sum();
    (total - executed).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig5_example() {
        // ACEC 15, three chunks of WCEC 10 each → (10, 5, 0).
        assert_eq!(
            fill_amounts(&[10.0, 10.0, 10.0], 15.0),
            vec![10.0, 5.0, 0.0]
        );
    }

    #[test]
    fn worst_case_fills_everything() {
        assert_eq!(fill_amounts(&[10.0, 20.0], 30.0), vec![10.0, 20.0]);
    }

    #[test]
    fn overflow_saturates() {
        assert_eq!(fill_amounts(&[10.0, 20.0], 99.0), vec![10.0, 20.0]);
    }

    #[test]
    fn zero_total_executes_nothing() {
        assert_eq!(fill_amounts(&[10.0, 20.0], 0.0), vec![0.0, 0.0]);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        assert_eq!(fill_amounts(&[-5.0, 10.0], 7.0), vec![0.0, 7.0]);
        assert_eq!(fill_amounts(&[10.0], -3.0), vec![0.0]);
    }

    #[test]
    fn typed_wrapper_round_trips() {
        let budgets = [Cycles::from_cycles(10.0), Cycles::from_cycles(10.0)];
        let out = fill_cycles(&budgets, Cycles::from_cycles(12.0));
        assert_eq!(out[0], Cycles::from_cycles(10.0));
        assert_eq!(out[1], Cycles::from_cycles(2.0));
    }

    #[test]
    fn remaining_after_tracks_prefix() {
        let budgets = [10.0, 10.0, 10.0];
        assert_eq!(remaining_after(&budgets, 15.0, 0), 5.0);
        assert_eq!(remaining_after(&budgets, 15.0, 1), 0.0);
        assert_eq!(remaining_after(&budgets, 15.0, 2), 0.0);
    }

    #[test]
    fn conservation_property() {
        // Sum of fills equals min(total, sum of budgets).
        for (budgets, total) in [
            (vec![3.0, 4.0, 5.0], 6.0),
            (vec![1.0, 1.0], 5.0),
            (vec![0.0, 2.0], 1.0),
        ] {
            let fills = fill_amounts(&budgets, total);
            let sum: f64 = fills.iter().sum();
            let cap: f64 = budgets.iter().map(|b| b.max(0.0)).sum();
            assert!((sum - total.min(cap)).abs() < 1e-12);
            for (f, b) in fills.iter().zip(&budgets) {
                assert!(*f >= 0.0 && *f <= b.max(0.0) + 1e-12);
            }
        }
    }
}
