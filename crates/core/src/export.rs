//! Plain-text persistence for [`StaticSchedule`] artifacts.
//!
//! The offline phase typically runs on a workstation while the milestone
//! table is consumed by an embedded runtime, so the artifact needs a
//! stable serialization. The format is a versioned, line-oriented text
//! table (one sub-instance per line) that is diff-able, greppable and
//! trivially parseable from C on the target — deliberately not a binary
//! or framework format.
//!
//! ```text
//! acsched-schedule v1
//! kind ACS
//! subs 3
//! # sub  task  instance  chunk  end_ms  worst_cycles  avg_cycles
//! 0 0 0 0 10.000000000000 1000.000000000000 500.000000000000
//! ...
//! ```

use crate::error::CoreError;
use crate::schedule::{Milestone, ScheduleKind, SolveDiagnostics, StaticSchedule};
use acs_model::units::{Cycles, Energy, Time};
use acs_model::TaskSet;
use acs_preempt::{FullyPreemptiveSchedule, SubInstanceId};

/// Serializes a schedule to the v1 text format.
pub fn to_text(schedule: &StaticSchedule) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "acsched-schedule v1");
    let _ = writeln!(
        out,
        "kind {}",
        match schedule.kind() {
            ScheduleKind::Acs => "ACS",
            ScheduleKind::Wcs => "WCS",
            ScheduleKind::Custom => "CUSTOM",
        }
    );
    let _ = writeln!(out, "subs {}", schedule.milestones().len());
    let _ = writeln!(
        out,
        "# sub task instance chunk end_ms worst_cycles avg_cycles"
    );
    for m in schedule.milestones() {
        let s = schedule.fps().sub(m.sub);
        let _ = writeln!(
            out,
            "{} {} {} {} {:.12} {:.12} {:.12}",
            m.sub.0,
            s.instance.task.0,
            s.instance.index,
            s.chunk,
            m.end_time.as_ms(),
            m.worst_workload.as_cycles(),
            m.avg_workload.as_cycles(),
        );
    }
    out
}

/// Parses a v1 text artifact back into a schedule.
///
/// The task set is re-expanded to rebuild the sub-instance structure; the
/// file's `(task, instance, chunk)` triples are cross-checked against it,
/// so loading a schedule against the wrong task set fails loudly instead
/// of silently misassigning milestones. Solver diagnostics are not
/// persisted; the loaded schedule carries zeroed diagnostics with
/// `converged = true` (the artifact is assumed to have been gated before
/// export — re-verify with [`crate::verify_worst_case`] when in doubt).
///
/// # Errors
///
/// [`CoreError::ScheduleMismatch`] on any syntax error, version mismatch,
/// count mismatch or structural disagreement with `set`'s expansion.
pub fn from_text(text: &str, set: &TaskSet) -> Result<StaticSchedule, CoreError> {
    let bad = |reason: String| CoreError::ScheduleMismatch { reason };
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));

    let header = lines.next().ok_or_else(|| bad("empty artifact".into()))?;
    if header != "acsched-schedule v1" {
        return Err(bad(format!("unsupported header `{header}`")));
    }
    let kind_line = lines
        .next()
        .ok_or_else(|| bad("missing kind line".into()))?;
    let kind = match kind_line.strip_prefix("kind ") {
        Some("ACS") => ScheduleKind::Acs,
        Some("WCS") => ScheduleKind::Wcs,
        Some("CUSTOM") => ScheduleKind::Custom,
        _ => return Err(bad(format!("bad kind line `{kind_line}`"))),
    };
    let subs_line = lines
        .next()
        .ok_or_else(|| bad("missing subs line".into()))?;
    let count: usize = subs_line
        .strip_prefix("subs ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(format!("bad subs line `{subs_line}`")))?;

    let fps = FullyPreemptiveSchedule::expand(set)?;
    if fps.len() != count {
        return Err(bad(format!(
            "artifact has {count} sub-instances, task set expands to {}",
            fps.len()
        )));
    }

    let mut milestones: Vec<Option<Milestone>> = vec![None; count];
    for line in lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 {
            return Err(bad(format!("expected 7 fields, got `{line}`")));
        }
        let parse_u = |s: &str| -> Result<u64, CoreError> {
            s.parse().map_err(|_| bad(format!("bad integer `{s}`")))
        };
        let parse_f = |s: &str| -> Result<f64, CoreError> {
            let v: f64 = s.parse().map_err(|_| bad(format!("bad number `{s}`")))?;
            if !v.is_finite() {
                return Err(bad(format!("non-finite number `{s}`")));
            }
            Ok(v)
        };
        let idx = parse_u(fields[0])? as usize;
        if idx >= count {
            return Err(bad(format!("sub index {idx} out of range")));
        }
        let sub = fps.sub(SubInstanceId(idx));
        if sub.instance.task.0 as u64 != parse_u(fields[1])?
            || sub.instance.index != parse_u(fields[2])?
            || sub.chunk as u64 != parse_u(fields[3])?
        {
            return Err(bad(format!(
                "structure mismatch at sub {idx}: artifact says task/instance/chunk \
                 {}/{}/{}, expansion says {}",
                fields[1],
                fields[2],
                fields[3],
                sub.label(),
            )));
        }
        if milestones[idx].is_some() {
            return Err(bad(format!("duplicate entry for sub {idx}")));
        }
        milestones[idx] = Some(Milestone {
            sub: SubInstanceId(idx),
            end_time: Time::from_ms(parse_f(fields[4])?),
            worst_workload: Cycles::from_cycles(parse_f(fields[5])?),
            avg_workload: Cycles::from_cycles(parse_f(fields[6])?),
        });
    }
    let milestones: Vec<Milestone> = milestones
        .into_iter()
        .enumerate()
        .map(|(i, m)| m.ok_or_else(|| bad(format!("missing entry for sub {i}"))))
        .collect::<Result<_, _>>()?;

    StaticSchedule::from_parts(
        fps,
        milestones,
        kind,
        SolveDiagnostics {
            converged: true,
            max_violation: 0.0,
            outer_iterations: 0,
            evaluations: 0,
            predicted_avg_energy: Energy::ZERO,
            predicted_worst_energy: Energy::ZERO,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize_wcs, SynthesisOptions};
    use acs_model::units::{Ticks, Volt};
    use acs_model::Task;
    use acs_power::{FreqModel, Processor};

    fn fixture() -> (TaskSet, Processor) {
        let set = TaskSet::new(vec![
            Task::builder("a", Ticks::new(4))
                .wcec(Cycles::from_cycles(100.0))
                .acec(Cycles::from_cycles(40.0))
                .bcec(Cycles::from_cycles(10.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(8))
                .wcec(Cycles::from_cycles(150.0))
                .acec(Cycles::from_cycles(60.0))
                .bcec(Cycles::from_cycles(15.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        (set, cpu)
    }

    #[test]
    fn round_trip_preserves_milestones() {
        let (set, cpu) = fixture();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let text = to_text(&sched);
        let back = from_text(&text, &set).unwrap();
        assert_eq!(back.kind(), sched.kind());
        for (a, b) in sched.milestones().iter().zip(back.milestones()) {
            assert_eq!(a.sub, b.sub);
            assert!(a.end_time.approx_eq(b.end_time, 1e-9));
            assert!(a.worst_workload.approx_eq(b.worst_workload, 1e-6));
            assert!(a.avg_workload.approx_eq(b.avg_workload, 1e-6));
        }
    }

    #[test]
    fn format_is_stable_and_commented() {
        let (set, cpu) = fixture();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let text = to_text(&sched);
        assert!(text.starts_with("acsched-schedule v1\nkind WCS\nsubs 4\n"));
        assert!(text.contains("# sub task instance chunk"));
        assert_eq!(text.lines().count(), 4 + 4);
    }

    #[test]
    fn rejects_wrong_task_set() {
        let (set, cpu) = fixture();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let text = to_text(&sched);
        let other = TaskSet::new(vec![Task::builder("x", Ticks::new(5))
            .wcec(Cycles::from_cycles(10.0))
            .build()
            .unwrap()])
        .unwrap();
        let err = from_text(&text, &other).unwrap_err();
        assert!(err.to_string().contains("sub-instances"));
    }

    #[test]
    fn rejects_corruption() {
        let (set, cpu) = fixture();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let text = to_text(&sched);

        // Bad header.
        assert!(from_text(&text.replace("v1", "v9"), &set).is_err());
        // Bad kind.
        assert!(from_text(&text.replace("kind WCS", "kind XXX"), &set).is_err());
        // Truncated body.
        let truncated: String = text.lines().take(6).collect::<Vec<_>>().join("\n");
        assert!(from_text(&truncated, &set).is_err());
        // Mangled field count.
        let mangled = text.replace(" 0 0 0 ", " 0 0 ");
        assert!(from_text(&mangled, &set).is_err());
        // Non-finite number.
        let nan = {
            let mut lines: Vec<String> = text.lines().map(String::from).collect();
            let last = lines.last_mut().unwrap();
            let mut parts: Vec<&str> = last.split_whitespace().collect();
            parts[4] = "NaN";
            *last = parts.join(" ");
            lines.join("\n")
        };
        assert!(from_text(&nan, &set).is_err());
        // Duplicate entry.
        let dup = {
            let body_line = text.lines().nth(4).unwrap();
            format!("{text}\n{body_line}")
        };
        assert!(from_text(&dup, &set).is_err());
    }

    #[test]
    fn structure_mismatch_detected() {
        let (set, cpu) = fixture();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        // Swap the task column of the first body line.
        let mut lines: Vec<String> = to_text(&sched).lines().map(String::from).collect();
        let first_body = lines.iter().position(|l| l.starts_with("0 ")).unwrap();
        lines[first_body] = lines[first_body].replacen("0 0 0 0", "0 1 0 0", 1);
        let err = from_text(&lines.join("\n"), &set).unwrap_err();
        assert!(err.to_string().contains("structure mismatch"));
    }

    #[test]
    fn loaded_schedule_verifies_and_simulates() {
        let (set, cpu) = fixture();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let back = from_text(&to_text(&sched), &set).unwrap();
        assert!(crate::verify::verify_worst_case(&back, &set, &cpu, 1e-4).is_ok());
    }
}
