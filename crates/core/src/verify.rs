//! Analytic worst-case feasibility verification of a static schedule.
//!
//! Independent of the NLP: walks the total order assuming every instance
//! takes its WCEC, checks that every milestone is reachable at `f_max`,
//! that end times respect windows, and that workload shares conserve each
//! instance's WCEC. Used as the acceptance gate after synthesis and as an
//! oracle in tests.

use crate::schedule::StaticSchedule;
use acs_model::units::{Cycles, Energy, Freq, Time};
use acs_model::TaskSet;
use acs_power::Processor;
use acs_preempt::SubInstanceId;

/// A single feasibility violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The offending sub-instance (or the first chunk for instance-level
    /// violations).
    pub sub: SubInstanceId,
    /// What went wrong.
    pub kind: ViolationKind,
    /// Magnitude of the violation (ms, cycles or cycles/ms depending on
    /// the kind).
    pub amount: f64,
}

/// Classification of feasibility violations.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// End time before the sub-instance's window opens.
    EndBeforeWindow,
    /// End time after the sub-instance's window closes (deadline risk).
    EndAfterWindow,
    /// Worst-case workload does not fit between the worst-case start and
    /// the end time at maximum speed.
    SpeedExceedsMax,
    /// Negative worst-case workload share.
    NegativeWorkload,
    /// Chunk shares of an instance do not sum to the task's WCEC.
    WorkloadSumMismatch,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::EndBeforeWindow => write!(f, "end time before window"),
            ViolationKind::EndAfterWindow => write!(f, "end time after window"),
            ViolationKind::SpeedExceedsMax => write!(f, "required speed exceeds f_max"),
            ViolationKind::NegativeWorkload => write!(f, "negative workload share"),
            ViolationKind::WorkloadSumMismatch => write!(f, "workload shares do not sum to WCEC"),
        }
    }
}

/// Summary of a successful worst-case check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstCaseReport {
    /// Energy of the all-WCEC trace under the schedule's milestones.
    pub energy: Energy,
    /// Highest speed any sub-instance requires in the worst case.
    pub max_speed: Freq,
    /// Smallest slack `e_u − ŝ_u − R̂_u/f_max` over sub-instances with
    /// positive workload (ms); how close the schedule sails to `f_max`.
    pub min_slack_ms: f64,
}

/// Verifies worst-case feasibility within tolerance `tol_ms`
/// (milliseconds; also used, scaled by `f_max`, for cycle comparisons).
///
/// # Errors
///
/// Returns every violation found (never an empty list).
pub fn verify_worst_case(
    schedule: &StaticSchedule,
    set: &TaskSet,
    cpu: &Processor,
    tol_ms: f64,
) -> Result<WorstCaseReport, Vec<Violation>> {
    let fps = schedule.fps();
    let fmax = cpu.f_max();
    let tol_cycles = tol_ms * fmax.as_cycles_per_ms();
    let mut violations = Vec::new();

    // Per-sub checks and the worst-case walk.
    let mut prev_end = Time::from_ms(0.0);
    let mut energy = Energy::ZERO;
    let mut max_speed = Freq::ZERO;
    let mut min_slack = f64::INFINITY;
    for sub in fps.sub_instances() {
        let m = schedule.milestone(sub.id);
        let e = m.end_time;
        if e.as_ms() < sub.window_start.as_ms() - tol_ms {
            violations.push(Violation {
                sub: sub.id,
                kind: ViolationKind::EndBeforeWindow,
                amount: sub.window_start.as_ms() - e.as_ms(),
            });
        }
        if e.as_ms() > sub.window_end.as_ms() + tol_ms {
            violations.push(Violation {
                sub: sub.id,
                kind: ViolationKind::EndAfterWindow,
                amount: e.as_ms() - sub.window_end.as_ms(),
            });
        }
        let w = m.worst_workload;
        if w.as_cycles() < -tol_cycles {
            violations.push(Violation {
                sub: sub.id,
                kind: ViolationKind::NegativeWorkload,
                amount: -w.as_cycles(),
            });
        }
        let start = prev_end.max(sub.window_start);
        let window = e - start;
        let needed = w / fmax;
        let slack = (window - needed).as_ms();
        if w.as_cycles() > tol_cycles {
            if slack < -tol_ms {
                violations.push(Violation {
                    sub: sub.id,
                    kind: ViolationKind::SpeedExceedsMax,
                    amount: -slack,
                });
            } else {
                let speed = if window.as_ms() > 0.0 {
                    w / window
                } else {
                    fmax
                };
                let speed = speed.min(fmax);
                max_speed = max_speed.max(speed);
                min_slack = min_slack.min(slack);
                let (v, _) = cpu.volt_for_speed_clamped(speed);
                let c_eff = set.task(sub.instance.task).c_eff();
                energy += cpu.energy(c_eff, v, w);
            }
        }
        // Worst case: the sub-instance runs until exactly its end time
        // whenever it has work; zero-work milestones take no time.
        prev_end = if w.as_cycles() > tol_cycles { e } else { start };
    }

    // Conservation per instance.
    for (tid, task) in set.iter() {
        for inst in 0..fps.instances_of(tid) {
            let id = acs_preempt::InstanceId {
                task: tid,
                index: inst,
            };
            let sum: Cycles = fps
                .chunks_of(id)
                .map(|s| schedule.milestone(s).worst_workload)
                .sum();
            if (sum - task.wcec()).abs().as_cycles() > tol_cycles.max(1e-9) {
                let first = fps.chunks_of(id).next().expect("instances have chunks");
                violations.push(Violation {
                    sub: first,
                    kind: ViolationKind::WorkloadSumMismatch,
                    amount: (sum - task.wcec()).as_cycles(),
                });
            }
        }
    }

    if violations.is_empty() {
        Ok(WorstCaseReport {
            energy,
            max_speed,
            min_slack_ms: if min_slack.is_finite() {
                min_slack
            } else {
                0.0
            },
        })
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Milestone, ScheduleKind, SolveDiagnostics};
    use acs_model::units::{Ticks, Volt};
    use acs_model::Task;
    use acs_power::FreqModel;
    use acs_preempt::FullyPreemptiveSchedule;

    fn diag() -> SolveDiagnostics {
        SolveDiagnostics {
            converged: true,
            max_violation: 0.0,
            outer_iterations: 0,
            evaluations: 0,
            predicted_avg_energy: Energy::ZERO,
            predicted_worst_energy: Energy::ZERO,
        }
    }

    /// Motivation example with explicit milestone ends.
    fn fixture(ends: &[f64]) -> (TaskSet, Processor, StaticSchedule) {
        let mk = |n: &str| {
            Task::builder(n, Ticks::new(20))
                .wcec(Cycles::from_cycles(1000.0))
                .acec(Cycles::from_cycles(500.0))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")]).unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        let ms: Vec<Milestone> = fps
            .sub_instances()
            .iter()
            .zip(ends)
            .map(|(s, &e)| Milestone {
                sub: s.id,
                end_time: Time::from_ms(e),
                worst_workload: Cycles::from_cycles(1000.0),
                avg_workload: Cycles::from_cycles(500.0),
            })
            .collect();
        let sched = StaticSchedule::from_parts(fps, ms, ScheduleKind::Custom, diag()).unwrap();
        (set, cpu, sched)
    }

    #[test]
    fn feasible_schedule_passes_with_report() {
        // Ends {10, 15, 20} need exactly 4 V (=200 cyc/ms) for T2/T3.
        let (set, cpu, sched) = fixture(&[10.0, 15.0, 20.0]);
        let report = verify_worst_case(&sched, &set, &cpu, 1e-6).unwrap();
        assert!((report.energy.as_units() - 36000.0).abs() < 1e-6);
        assert!((report.max_speed.as_cycles_per_ms() - 200.0).abs() < 1e-9);
        assert!(report.min_slack_ms.abs() < 1e-9);
    }

    #[test]
    fn overtight_schedule_fails_speed() {
        // T2 gets only 4 ms for 1000 cycles: needs 250 cyc/ms > 200.
        let (set, cpu, sched) = fixture(&[10.0, 14.0, 20.0]);
        let errs = verify_worst_case(&sched, &set, &cpu, 1e-6).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| v.kind == ViolationKind::SpeedExceedsMax));
    }

    #[test]
    fn end_after_window_detected() {
        let (set, cpu, sched) = fixture(&[10.0, 15.0, 20.0]);
        // Tamper: rebuild with an end time beyond the frame by bypassing
        // from_parts validation tolerance — use 20.5 via Custom parts.
        let fps = sched.fps().clone();
        let mut ms: Vec<Milestone> = sched.milestones().to_vec();
        ms[2].end_time = Time::from_ms(20.0 + 2e-6);
        // from_parts itself tolerates 1e-6; hand the verifier a tighter
        // tolerance to catch it.
        let sched2 = StaticSchedule::from_parts(fps, ms, ScheduleKind::Custom, diag()).unwrap_err();
        // from_parts already rejects: windows are hard bounds.
        let _ = sched2;
        let (set2, cpu2) = (set, cpu);
        // Alternative: end before window.
        let (.., sched3) = fixture(&[10.0, 15.0, 20.0]);
        let fps3 = sched3.fps().clone();
        let mut ms3: Vec<Milestone> = sched3.milestones().to_vec();
        ms3[0].end_time = Time::from_ms(0.0); // within window [0,20] so fine
        let ok = StaticSchedule::from_parts(fps3, ms3, ScheduleKind::Custom, diag()).unwrap();
        // T1's 1000 cycles now need to finish at t=0 — speed violation.
        let errs = verify_worst_case(&ok, &set2, &cpu2, 1e-6).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| v.kind == ViolationKind::SpeedExceedsMax));
    }

    #[test]
    fn workload_sum_mismatch_detected() {
        let (set, cpu, sched) = fixture(&[10.0, 15.0, 20.0]);
        let fps = sched.fps().clone();
        let mut ms: Vec<Milestone> = sched.milestones().to_vec();
        ms[1].worst_workload = Cycles::from_cycles(900.0);
        let bad = StaticSchedule::from_parts(fps, ms, ScheduleKind::Custom, diag()).unwrap();
        let errs = verify_worst_case(&bad, &set, &cpu, 1e-6).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| v.kind == ViolationKind::WorkloadSumMismatch));
    }

    #[test]
    fn zero_workload_milestones_are_skipped_in_walk() {
        // Give T2 zero budget; its milestone takes no time in the worst
        // case, so T3 can start at T1's end.
        let (set, cpu, sched) = fixture(&[10.0, 15.0, 20.0]);
        let fps = sched.fps().clone();
        let mut ms: Vec<Milestone> = sched.milestones().to_vec();
        ms[1].worst_workload = Cycles::from_cycles(0.0);
        let s2 = StaticSchedule::from_parts(fps, ms, ScheduleKind::Custom, diag()).unwrap();
        let errs = verify_worst_case(&s2, &set, &cpu, 1e-6).unwrap_err();
        // Only the conservation check fires; no speed violation.
        assert!(errs
            .iter()
            .all(|v| v.kind == ViolationKind::WorkloadSumMismatch));
    }

    #[test]
    fn violation_kind_display() {
        assert_eq!(
            ViolationKind::SpeedExceedsMax.to_string(),
            "required speed exceeds f_max"
        );
    }
}
