//! # acs-core
//!
//! Offline voltage-schedule synthesis — the contribution of *"Exploiting
//! Dynamic Workload Variation in Low Energy Preemptive Task Scheduling"*
//! (Leung, Tsui, Hu — DATE 2005).
//!
//! Three synthesizers share one NLP machine:
//!
//! * [`synthesize_acs`] — **ACS**: chooses per-sub-instance end times and
//!   worst-case workload shares that minimize the energy of the greedy
//!   runtime under *average-case* (ACEC) workloads while guaranteeing
//!   worst-case (WCEC) feasibility. This is the paper's proposal (§3).
//! * [`synthesize_wcs`] — **WCS**: the classic baseline minimizing energy
//!   under worst-case workloads only (§4's comparison point).
//! * [`synthesize_remaining`] (module [`reopt`]) — the **online** ACS
//!   step: at a job boundary, rebuild the *remaining-instance*
//!   formulation (executed cycles subtracted, the boundary time as the
//!   new origin, windows unchanged) and re-synthesize the end times
//!   against the workload observed so far. This powers the `ReOpt`
//!   policy in `acs-sim`.
//!
//! The resulting [`StaticSchedule`] carries, per sub-instance of the
//! fully preemptive expansion, the scheduled end time `e_u` and
//! worst-case workload share `R̂_u` — exactly what the online DVS phase
//! consumes (see `acs-sim`).
//!
//! ## Example
//!
//! ```
//! use acs_core::{synthesize_acs, synthesize_wcs, SynthesisOptions};
//! use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Volt}};
//! use acs_power::{FreqModel, Processor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = TaskSet::new(vec![
//!     Task::builder("ctrl", Ticks::new(10))
//!         .wcec(Cycles::from_cycles(200.0))
//!         .acec(Cycles::from_cycles(80.0))
//!         .bcec(Cycles::from_cycles(20.0))
//!         .build()?,
//!     Task::builder("ui", Ticks::new(20))
//!         .wcec(Cycles::from_cycles(300.0))
//!         .acec(Cycles::from_cycles(120.0))
//!         .bcec(Cycles::from_cycles(30.0))
//!         .build()?,
//! ])?;
//! let cpu = Processor::builder(FreqModel::linear(20.0)?)
//!     .vmin(Volt::from_volts(0.5))
//!     .vmax(Volt::from_volts(4.0))
//!     .build()?;
//!
//! let opts = SynthesisOptions::quick();
//! let acs = synthesize_acs(&set, &cpu, &opts)?;
//! let wcs = synthesize_wcs(&set, &cpu, &opts)?;
//! // ACS never predicts more average energy than WCS.
//! assert!(acs.diagnostics().predicted_avg_energy
//!     <= wcs.diagnostics().predicted_avg_energy);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod export;
pub mod fill;
pub mod formulation;
pub mod quantile;
pub mod reopt;
pub mod schedule;
pub mod synthesis;
pub mod trace;
pub mod verify;

pub use error::CoreError;
pub use export::{from_text, to_text};
pub use formulation::{ObjectiveKind, ScheduleProblem};
pub use reopt::{
    synthesize_remaining, synthesize_remaining_best_carry, synthesize_remaining_carry,
    synthesize_remaining_from, CarrySolve, InstanceProgress, RemainingInstance, ReoptOptions,
    ReoptOutcome, WarmCarry,
};
pub use schedule::{Milestone, ScheduleKind, SolveDiagnostics, StaticSchedule};
pub use synthesis::{
    synthesize_acs, synthesize_acs_best, synthesize_acs_warm, synthesize_wcs, synthesize_wcs_warm,
    SynthesisOptions,
};
pub use trace::{evaluate_trace, SpeedBasis, TraceOutcome};
pub use verify::{verify_worst_case, Violation, ViolationKind, WorstCaseReport};
