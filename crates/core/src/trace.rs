//! Analytic evaluation of the greedy online DVS policy for a
//! deterministic workload draw.
//!
//! Given a [`StaticSchedule`] and one total workload per task (applied to
//! every instance of that task), this walks the total order of the fully
//! preemptive expansion exactly as the online phase would: each
//! sub-instance starts when its predecessor finishes (never before its
//! window opens), runs at the voltage that would retire its *worst-case*
//! budget by its scheduled end time, executes its fill-rule share of the
//! actual workload, and passes the resulting slack downstream.
//!
//! This is the reference model for (a) the NLP objective (`formulation`),
//! (b) the event-driven simulator in `acs-sim` (cross-checked by tests),
//! and (c) the predicted energies reported in
//! [`crate::schedule::SolveDiagnostics`].

use crate::fill::fill_amounts;
use crate::schedule::StaticSchedule;
use acs_model::units::{Cycles, Energy, Freq, Time, TimeSpan, Volt};
use acs_model::TaskSet;
use acs_power::Processor;

/// Which workload figure the runtime divides by the remaining window to
/// pick a speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedBasis {
    /// Guarantee the milestone even if the rest of the chunk takes its
    /// worst case: `speed = R̂_u / (e_u − now)`. This is the paper's
    /// online rule and the only *safe* choice.
    WorstRemaining,
    /// Idealized: stretch the *actual* (average) share over the window.
    /// Matches a literal reading of the paper's objective (eq. 4); not
    /// deadline-safe, provided for the objective ablation.
    AverageWork,
}

/// Outcome of one deterministic trace.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// Total dynamic energy over the hyper-period.
    pub energy: Energy,
    /// Dispatch time of each sub-instance (total order).
    pub start: Vec<Time>,
    /// Completion time of each sub-instance.
    pub finish: Vec<Time>,
    /// Cycles executed in each sub-instance (fill rule applied to the
    /// actual workloads).
    pub executed: Vec<Cycles>,
    /// Supply voltage used by each sub-instance (`None` when it executed
    /// nothing).
    pub voltage: Vec<Option<Volt>>,
    /// `true` when some sub-instance demanded more than `f_max` (schedule
    /// infeasible at runtime; the processor saturated at `vmax`).
    pub saturated: bool,
    /// Worst lateness of any completion past its milestone end time, in
    /// ms (≤ ~1e-9 for a feasible schedule).
    pub max_lateness_ms: f64,
}

/// Evaluates the greedy trace; `totals[i]` is the workload taken by every
/// instance of task `i` in this scenario.
///
/// # Panics
///
/// Panics if `totals.len()` differs from the task count.
pub fn evaluate_trace(
    schedule: &StaticSchedule,
    set: &TaskSet,
    cpu: &Processor,
    totals: &[Cycles],
    basis: SpeedBasis,
) -> TraceOutcome {
    assert_eq!(totals.len(), set.len(), "one total per task required");
    let fps = schedule.fps();
    let m = fps.len();

    // Fill-rule share of every sub-instance for this scenario.
    let mut executed_raw = vec![0.0f64; m];
    for (tid, _task) in set.iter() {
        for inst in 0..fps.instances_of(tid) {
            let ids: Vec<_> = fps
                .chunks_of(acs_preempt::InstanceId {
                    task: tid,
                    index: inst,
                })
                .collect();
            let budgets: Vec<f64> = ids
                .iter()
                .map(|id| schedule.milestone(*id).worst_workload.as_cycles())
                .collect();
            let fills = fill_amounts(&budgets, totals[tid.0].as_cycles());
            for (id, a) in ids.iter().zip(fills) {
                executed_raw[id.0] = a;
            }
        }
    }

    let mut start = Vec::with_capacity(m);
    let mut finish = Vec::with_capacity(m);
    let mut voltage = Vec::with_capacity(m);
    let mut energy = Energy::ZERO;
    let mut saturated = false;
    let mut max_lateness = 0.0f64;
    let mut prev_finish = Time::from_ms(0.0);

    for (sub, &a) in fps.sub_instances().iter().zip(&executed_raw) {
        let ms = schedule.milestone(sub.id);
        let s = prev_finish.max(sub.window_start);
        start.push(s);
        if a <= 0.0 {
            finish.push(s);
            voltage.push(None);
            prev_finish = s;
            continue;
        }
        let window = ms.end_time - s;
        let demand = match basis {
            SpeedBasis::WorstRemaining => ms.worst_workload.as_cycles(),
            SpeedBasis::AverageWork => a,
        };
        let speed = if window.as_ms() > 0.0 {
            Cycles::from_cycles(demand) / window
        } else {
            // Already at/past the milestone: flat out.
            cpu.f_max()
        };
        let (v, sat) = cpu.volt_for_speed_clamped(speed);
        saturated |= sat;
        let f_actual = cpu
            .freq_at(v)
            .expect("voltage from volt_for_speed_clamped is always in range");
        let dt: TimeSpan = Cycles::from_cycles(a) / f_actual;
        let f = s + dt;
        let c_eff = set.task(sub.instance.task).c_eff();
        energy += cpu.energy(c_eff, v, Cycles::from_cycles(a));
        max_lateness = max_lateness.max((f - ms.end_time).as_ms());
        finish.push(f);
        voltage.push(Some(v));
        prev_finish = f;
    }

    TraceOutcome {
        energy,
        start,
        finish,
        executed: executed_raw.into_iter().map(Cycles::from_cycles).collect(),
        voltage,
        saturated,
        max_lateness_ms: max_lateness,
    }
}

/// Convenience: per-task totals set to each task's ACEC.
pub fn acec_totals(set: &TaskSet) -> Vec<Cycles> {
    set.tasks().iter().map(|t| t.acec()).collect()
}

/// Convenience: per-task totals set to each task's WCEC.
pub fn wcec_totals(set: &TaskSet) -> Vec<Cycles> {
    set.tasks().iter().map(|t| t.wcec()).collect()
}

/// Hook for speed queries shared with the simulator: the speed the greedy
/// policy requests when `remaining_worst` cycles must retire by
/// `end_time` starting at `now`. Saturates at `f_max` when the window is
/// non-positive.
pub fn greedy_speed(cpu: &Processor, remaining_worst: Cycles, now: Time, end_time: Time) -> Freq {
    let window = end_time - now;
    if window.as_ms() <= 0.0 {
        cpu.f_max()
    } else {
        remaining_worst / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Milestone, ScheduleKind, SolveDiagnostics, StaticSchedule};
    use acs_model::units::Ticks;
    use acs_model::Task;
    use acs_power::FreqModel;
    use acs_preempt::FullyPreemptiveSchedule;

    /// The motivational example: 3 tasks, one 20 ms frame, WCEC 1000,
    /// ACEC 500, f = 50·V, Vmax large enough to avoid saturation.
    fn motivation(vmax: f64) -> (TaskSet, Processor, FullyPreemptiveSchedule) {
        let mk = |n: &str| {
            Task::builder(n, Ticks::new(20))
                .wcec(Cycles::from_cycles(1000.0))
                .acec(Cycles::from_cycles(500.0))
                .bcec(Cycles::from_cycles(100.0))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")]).unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.1))
            .vmax(Volt::from_volts(vmax))
            .build()
            .unwrap();
        let fps = FullyPreemptiveSchedule::expand(&set).unwrap();
        (set, cpu, fps)
    }

    fn schedule_with_ends(
        fps: &FullyPreemptiveSchedule,
        ends: &[f64],
        budget: f64,
    ) -> StaticSchedule {
        let milestones: Vec<Milestone> = fps
            .sub_instances()
            .iter()
            .zip(ends)
            .map(|(s, &e)| Milestone {
                sub: s.id,
                end_time: Time::from_ms(e),
                worst_workload: Cycles::from_cycles(budget),
                avg_workload: Cycles::from_cycles(budget / 2.0),
            })
            .collect();
        StaticSchedule::from_parts(
            fps.clone(),
            milestones,
            ScheduleKind::Custom,
            SolveDiagnostics {
                converged: true,
                max_violation: 0.0,
                outer_iterations: 0,
                evaluations: 0,
                predicted_avg_energy: Energy::ZERO,
                predicted_worst_energy: Energy::ZERO,
            },
        )
        .unwrap()
    }

    /// Paper Fig. 1(b): WCS end times {6.67, 13.33, 20}; ACEC run gives
    /// finishes {3.33, 8.33, 14.1} and energy 7961·C.
    #[test]
    fn paper_fig1b_numbers() {
        let (set, cpu, fps) = motivation(5.0);
        let sched = schedule_with_ends(&fps, &[20.0 / 3.0, 40.0 / 3.0, 20.0], 1000.0);
        let out = evaluate_trace(
            &sched,
            &set,
            &cpu,
            &acec_totals(&set),
            SpeedBasis::WorstRemaining,
        );
        assert!(!out.saturated);
        assert!((out.finish[0].as_ms() - 10.0 / 3.0).abs() < 1e-9);
        assert!((out.finish[1].as_ms() - 25.0 / 3.0).abs() < 1e-9);
        assert!((out.finish[2].as_ms() - 14.166_666).abs() < 1e-3);
        // E = 9·500 + 4·500 + (1000/11.6667/50)²·500
        let expected = 4500.0 + 2000.0 + (1000.0_f64 / (35.0 / 3.0) / 50.0).powi(2) * 500.0;
        assert!(
            (out.energy.as_units() - expected).abs() < 1e-6,
            "energy = {}",
            out.energy
        );
        assert!((out.energy.as_units() - 7961.0).abs() < 30.0);
    }

    /// Paper Fig. 2: end times {10, 15, 20} give energy 6000·C on the
    /// ACEC trace — the 24% improvement.
    #[test]
    fn paper_fig2_numbers() {
        let (set, cpu, fps) = motivation(5.0);
        let sched = schedule_with_ends(&fps, &[10.0, 15.0, 20.0], 1000.0);
        let out = evaluate_trace(
            &sched,
            &set,
            &cpu,
            &acec_totals(&set),
            SpeedBasis::WorstRemaining,
        );
        assert!(
            (out.energy.as_units() - 6000.0).abs() < 1e-9,
            "E = {}",
            out.energy
        );
        // Improvement over Fig. 1(b).
        let improvement = 1.0 - 6000.0_f64 / 7961.0;
        assert!((improvement - 0.246).abs() < 0.01);
    }

    /// Paper Fig. 2 worst case: 2 V for T1, then 4 V for T2 and T3 —
    /// energy 36000·C, a 33% increase over the WCS worst case 27000·C.
    #[test]
    fn paper_fig2_worst_case() {
        let (set, cpu, fps) = motivation(5.0);
        let sched = schedule_with_ends(&fps, &[10.0, 15.0, 20.0], 1000.0);
        let out = evaluate_trace(
            &sched,
            &set,
            &cpu,
            &wcec_totals(&set),
            SpeedBasis::WorstRemaining,
        );
        assert!(!out.saturated);
        assert_eq!(out.voltage[0].unwrap(), Volt::from_volts(2.0));
        assert!((out.voltage[1].unwrap().as_volts() - 4.0).abs() < 1e-9);
        assert!((out.voltage[2].unwrap().as_volts() - 4.0).abs() < 1e-9);
        assert!((out.energy.as_units() - 36000.0).abs() < 1e-6);
        assert!(out.max_lateness_ms < 1e-9);
    }

    /// With Vmax = 3 V the Fig. 2 schedule saturates in the worst case —
    /// the paper's infeasibility observation.
    #[test]
    fn paper_fig2_infeasible_at_3v() {
        let (set, cpu, fps) = motivation(3.0);
        let sched = schedule_with_ends(&fps, &[10.0, 15.0, 20.0], 1000.0);
        let out = evaluate_trace(
            &sched,
            &set,
            &cpu,
            &wcec_totals(&set),
            SpeedBasis::WorstRemaining,
        );
        assert!(out.saturated);
        assert!(out.max_lateness_ms > 1.0); // misses by milliseconds
    }

    #[test]
    fn zero_workload_subs_cost_nothing() {
        let (set, cpu, fps) = motivation(5.0);
        let sched = schedule_with_ends(&fps, &[10.0, 15.0, 20.0], 1000.0);
        let zeros = vec![Cycles::from_cycles(0.0); 3];
        // Fill with total 0 executes nothing... but BCEC floor in practice
        // is positive; this is the degenerate robustness check.
        let out = evaluate_trace(&sched, &set, &cpu, &zeros, SpeedBasis::WorstRemaining);
        assert_eq!(out.energy, Energy::ZERO);
        assert!(out.voltage.iter().all(Option::is_none));
    }

    #[test]
    fn average_basis_uses_less_energy() {
        let (set, cpu, fps) = motivation(5.0);
        let sched = schedule_with_ends(&fps, &[10.0, 15.0, 20.0], 1000.0);
        let worst = evaluate_trace(
            &sched,
            &set,
            &cpu,
            &acec_totals(&set),
            SpeedBasis::WorstRemaining,
        );
        let ideal = evaluate_trace(
            &sched,
            &set,
            &cpu,
            &acec_totals(&set),
            SpeedBasis::AverageWork,
        );
        assert!(ideal.energy < worst.energy);
    }

    #[test]
    fn greedy_speed_saturates_on_closed_window() {
        let (_, cpu, _) = motivation(5.0);
        let f = greedy_speed(
            &cpu,
            Cycles::from_cycles(100.0),
            Time::from_ms(5.0),
            Time::from_ms(5.0),
        );
        assert_eq!(f, cpu.f_max());
        let f2 = greedy_speed(
            &cpu,
            Cycles::from_cycles(100.0),
            Time::from_ms(0.0),
            Time::from_ms(2.0),
        );
        assert_eq!(f2.as_cycles_per_ms(), 50.0);
    }
}
