//! Online re-optimization of the **remaining** schedule — the solver side
//! of the `ReOpt` policy in `acs-sim`.
//!
//! The paper's ACS synthesis runs offline against *expected* (ACEC)
//! workloads. At run time the workload actually observed so far keeps
//! diverging from that expectation, and every job boundary (a release or
//! a completion) is an opportunity to re-solve the remaining low-energy
//! schedule against the observed state: executed cycles subtracted from
//! the budgets, the current time as the new origin, windows and deadlines
//! unchanged. This module builds that *remaining-instance* formulation
//! and re-synthesizes end times with the same augmented-Lagrangian stack
//! the offline phase uses ([`acs_opt::auglag`]).
//!
//! Design constraints that shape the API:
//!
//! * **Re-solves must be cheap.** Boundary solves happen thousands of
//!   times per simulation, so the problem is reduced to the end-time
//!   variables only (the worst-case budgets `R̂_u` are fixed by the static
//!   schedule and enforced by the engine), an optional receding
//!   [`horizon`](RemainingInstance::with_horizon) caps the dimension, and
//!   every solve is warm-started from the static schedule's end times
//!   projected onto the remaining window ([`RemainingInstance::warm_ends_ms`]).
//! * **Safety is gated outside the solver.** Candidate end times are
//!   exact-ified and checked by [`RemainingInstance::feasible`] — the
//!   worst-case chain `e_u ≥ max(r_u, e_{u−1}) + R̂_u^rem/f_max` inside
//!   windows — before the runtime may adopt them; infeasible candidates
//!   are discarded and the runtime keeps its previous (greedy-safe) end
//!   times.
//! * **Determinism.** The solve is a pure function of the
//!   [`RemainingInstance`] (which callers build from *quantized*
//!   observations), so identical boundary states produce bit-identical
//!   end times — the property the `ReOpt` policy's solver cache relies
//!   on ([`RemainingInstance::cache_key`]).
//!
//! ```
//! use acs_core::{synthesize_wcs, SynthesisOptions};
//! use acs_core::reopt::{synthesize_remaining, RemainingInstance, ReoptOptions};
//! use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Time, Volt}};
//! use acs_power::{FreqModel, Processor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mk = |n: &str| Task::builder(n, Ticks::new(20))
//!     .wcec(Cycles::from_cycles(1000.0))
//!     .acec(Cycles::from_cycles(500.0))
//!     .bcec(Cycles::from_cycles(100.0))
//!     .build().unwrap();
//! let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")])?;
//! let cpu = Processor::builder(FreqModel::linear(50.0)?)
//!     .vmin(Volt::from_volts(0.5)).vmax(Volt::from_volts(4.0)).build()?;
//! let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick())?;
//!
//! // Re-optimize the WCS end times at t = 0 against expected workloads:
//! // this is exactly the online ACS step, and it recovers most of the
//! // offline ACS-vs-WCS gain.
//! let rem = RemainingInstance::at_boundary(&wcs, &set, &cpu, Time::from_ms(0.0), &[]);
//! let before = rem.energy_of(rem.static_ends_ms());
//! let out = synthesize_remaining(&rem, &ReoptOptions::default());
//! assert!(out.feasible);
//! assert!(out.predicted_energy.as_units() < before);
//! # Ok(())
//! # }
//! ```

use crate::fill::fill_amounts;
use crate::formulation::{smax_const, voltage_for_speed};
use crate::schedule::StaticSchedule;
use acs_model::units::{Cycles, Energy, Freq, Time};
use acs_model::TaskSet;
use acs_opt::auglag::{self, AugLagConfig};
use acs_opt::lbfgs::LbfgsConfig;
use acs_opt::problem::{ConstrainedProblem, LinearConstraints, ProblemExprs, SparseLinear};
use acs_opt::tape::{Expr, Graph};
use acs_power::Processor;
use acs_preempt::InstanceId;

/// Observable runtime state of one task instance at a job boundary, as
/// reported by the simulation engine (`acs-sim` fills one of these per
/// job when a policy asks for boundary callbacks).
///
/// `current_chunk`/`chunk_budget_left` describe the budget-enforcement
/// state: chunks before `current_chunk` have exhausted their worst-case
/// budgets, the current chunk has `chunk_budget_left` of its budget
/// remaining, and later chunks are untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceProgress {
    /// Which instance this progress describes.
    pub instance: InstanceId,
    /// Cycles executed so far (over all chunks).
    pub executed: Cycles,
    /// Index of the chunk currently armed (0-based, within the instance).
    pub current_chunk: usize,
    /// Remaining worst-case budget of the current chunk.
    pub chunk_budget_left: Cycles,
    /// `true` once the instance's release time has passed.
    pub released: bool,
    /// `true` once the instance completed.
    pub done: bool,
}

/// The remaining-instance formulation at one job boundary: everything the
/// re-optimizer needs, flattened to plain vectors so the value is
/// self-contained (no borrows), cheap to hash and safe to cache.
///
/// Built by [`RemainingInstance::at_boundary`] from a [`StaticSchedule`]
/// and the engine's [`InstanceProgress`] snapshot.
#[derive(Debug, Clone)]
pub struct RemainingInstance {
    now_ms: f64,
    cpu: Processor,
    fmax: f64,
    /// Per sub-instance (total order): earliest permitted end time
    /// `max(window start, now)` (ms).
    lo_ms: Vec<f64>,
    /// Window end `L_u` (ms).
    hi_ms: Vec<f64>,
    /// Remaining worst-case budget, in ms at `f_max`.
    rem_w_ms: Vec<f64>,
    /// Expected executed share (fill rule over remaining budgets), in ms
    /// at `f_max`.
    a_ms: Vec<f64>,
    /// Per sub-instance effective switching capacitance.
    c_eff: Vec<f64>,
    /// The static schedule's end times (ms) — warm-start anchor and the
    /// value frozen subs keep.
    static_ends_ms: Vec<f64>,
    /// Total-order indices of subs with remaining work and an open window.
    live: Vec<usize>,
    /// Prefix of `live` entering the NLP (receding horizon); the tail is
    /// kept fixed at the caller's current end times.
    opt_live: Vec<usize>,
    /// Effective upper bound of the *last* horizon variable (never past
    /// its static end time when a tail exists, so the tail's slack is not
    /// consumed blindly).
    last_hi_ms: f64,
}

impl RemainingInstance {
    /// Builds the remaining formulation at boundary time `now`.
    ///
    /// `progress` may cover any subset of the hyper-period's instances;
    /// instances not mentioned are treated as untouched (full budgets).
    /// Completed instances contribute nothing; a chunk whose window has
    /// already closed rolls any leftover budget into the instance's next
    /// chunk (mirroring the engine's roll-forward rule).
    pub fn at_boundary(
        schedule: &StaticSchedule,
        set: &TaskSet,
        cpu: &Processor,
        now: Time,
        progress: &[InstanceProgress],
    ) -> RemainingInstance {
        let fps = schedule.fps();
        let m = fps.len();
        let fmax = cpu.f_max().as_cycles_per_ms();
        let now_ms = now.as_ms();
        let mut lo_ms = vec![0.0; m];
        let mut hi_ms = vec![0.0; m];
        let mut rem_w_ms = vec![0.0; m];
        let mut a_ms = vec![0.0; m];
        let mut c_eff = vec![0.0; m];
        let mut static_ends_ms = vec![0.0; m];
        for (u, sub) in fps.sub_instances().iter().enumerate() {
            lo_ms[u] = sub.window_start.as_ms().max(now_ms);
            hi_ms[u] = sub.window_end.as_ms();
            c_eff[u] = set.task(sub.instance.task).c_eff();
            static_ends_ms[u] = schedule.milestone(sub.id).end_time.as_ms();
        }

        // Index progress by (task, instance).
        let mut by_instance: Vec<Vec<Option<&InstanceProgress>>> = set
            .iter()
            .map(|(tid, _)| vec![None; fps.instances_of(tid) as usize])
            .collect();
        for p in progress {
            let t = p.instance.task.0;
            let i = p.instance.index as usize;
            if t < by_instance.len() && i < by_instance[t].len() {
                by_instance[t][i] = Some(p);
            }
        }

        for (tid, task) in set.iter() {
            for inst in 0..fps.instances_of(tid) {
                let ids: Vec<_> = fps
                    .chunks_of(InstanceId {
                        task: tid,
                        index: inst,
                    })
                    .collect();
                let budgets: Vec<f64> = ids
                    .iter()
                    .map(|id| schedule.milestone(*id).worst_workload.as_cycles())
                    .collect();
                let p = by_instance[tid.0][inst as usize];
                let (executed, cur, left, done) = match p {
                    Some(p) => (
                        p.executed.as_cycles().max(0.0),
                        p.current_chunk.min(ids.len().saturating_sub(1)),
                        p.chunk_budget_left.as_cycles().max(0.0),
                        p.done,
                    ),
                    None => (0.0, 0, budgets.first().copied().unwrap_or(0.0), false),
                };
                // Remaining worst-case budget per chunk. The current
                // chunk's `left` is NOT clamped to its static budget:
                // the engine rolls a predecessor's leftover budget
                // forward, and dropping that surplus would make the
                // worst-case gate optimistic.
                let mut rem: Vec<f64> = if done {
                    vec![0.0; ids.len()]
                } else {
                    budgets
                        .iter()
                        .enumerate()
                        .map(|(k, &b)| match k.cmp(&cur) {
                            std::cmp::Ordering::Less => 0.0,
                            std::cmp::Ordering::Equal => left,
                            std::cmp::Ordering::Greater => b,
                        })
                        .collect()
                };
                // Roll budget out of closed windows (engine roll-forward).
                for k in 0..rem.len() {
                    if rem[k] > 0.0 && hi_ms[ids[k].0] <= now_ms + 1e-9 && k + 1 < rem.len() {
                        rem[k + 1] += rem[k];
                        rem[k] = 0.0;
                    }
                }
                let rem_total: f64 = rem.iter().sum();
                // Expected remaining workload: what is left of the ACEC
                // after the observed prefix, capped by what can still
                // execute.
                let rem_avg = (task.acec().as_cycles() - executed).clamp(0.0, rem_total);
                let fills = fill_amounts(&rem, rem_avg);
                for ((id, r), a) in ids.iter().zip(&rem).zip(fills) {
                    rem_w_ms[id.0] = r / fmax;
                    a_ms[id.0] = a / fmax;
                }
            }
        }

        let live: Vec<usize> = (0..m)
            .filter(|&u| rem_w_ms[u] > 1e-12 && hi_ms[u] > now_ms + 1e-9)
            .collect();
        let opt_live = live.clone();
        let last_hi_ms = opt_live.last().map(|&u| hi_ms[u]).unwrap_or(0.0);
        RemainingInstance {
            now_ms,
            cpu: cpu.clone(),
            fmax,
            lo_ms,
            hi_ms,
            rem_w_ms,
            a_ms,
            c_eff,
            static_ends_ms,
            live,
            opt_live,
            last_hi_ms,
        }
    }

    /// Restricts the NLP to the first `horizon` live sub-instances (a
    /// receding horizon); `0` means unlimited. The tail keeps the
    /// caller's current end times, and the last in-horizon end time may
    /// not stretch past its static end (so the tail's slack is
    /// preserved). [`RemainingInstance::energy_of`] and
    /// [`RemainingInstance::feasible`] always evaluate the *full* chain,
    /// so acceptance decisions still see tail effects.
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        if horizon > 0 && horizon < self.live.len() {
            self.opt_live = self.live[..horizon].to_vec();
            let last = *self.opt_live.last().expect("horizon > 0");
            self.last_hi_ms = self.hi_ms[last].min(self.static_ends_ms[last].max(self.lo_ms[last]));
        }
        self
    }

    /// The boundary time (the re-optimization origin).
    pub fn now(&self) -> Time {
        Time::from_ms(self.now_ms)
    }

    /// Number of sub-instances with remaining work and an open window.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of end-time variables the NLP will optimize.
    pub fn opt_count(&self) -> usize {
        self.opt_live.len()
    }

    /// `true` when nothing is left to optimize.
    pub fn is_settled(&self) -> bool {
        self.opt_live.is_empty()
    }

    /// The static schedule's end times (ms), one per sub-instance.
    pub fn static_ends_ms(&self) -> &[f64] {
        &self.static_ends_ms
    }

    /// Warm-start end times: the static schedule's ends projected onto
    /// the remaining problem — clamped into `[max(lo, prev + R̂ᵣₑₘ), L]`
    /// along the live chain so the start is (near-)feasible.
    pub fn warm_ends_ms(&self) -> Vec<f64> {
        let mut ends = Vec::new();
        self.warm_ends_into(&mut ends);
        ends
    }

    /// [`RemainingInstance::warm_ends_ms`] into a caller-owned buffer:
    /// clears `out`, fills it with the projected warm start. Boundary
    /// solves run thousands of times per simulation; reusing one buffer
    /// keeps the warm-start projection off the allocator's hot path.
    pub fn warm_ends_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.static_ends_ms);
        self.repair(out);
    }

    /// Exact-ifies candidate end times in place along the live chain:
    /// clamps into windows, enforces monotonicity and the worst-case fit
    /// `e_u ≥ max(r_u, e_prev) + R̂_u^rem/f_max` wherever the window
    /// permits. Returns the worst residual violation (ms); `> tol` means
    /// the candidate must be rejected.
    pub fn repair(&self, ends_ms: &mut [f64]) -> f64 {
        let mut prev = self.now_ms;
        let mut worst = 0.0f64;
        for (k, &u) in self.live.iter().enumerate() {
            let hi = if k + 1 == self.opt_live.len() && self.opt_live.len() < self.live.len() {
                self.last_hi_ms
            } else {
                self.hi_ms[u]
            };
            let need = self.lo_ms[u].max(prev) + self.rem_w_ms[u];
            let e = ends_ms[u].max(need).min(hi.max(self.lo_ms[u]));
            worst = worst.max(need - e);
            ends_ms[u] = e;
            prev = e;
        }
        worst
    }

    /// `true` when `ends_ms` survives the exact worst-case chain check
    /// within `tol_ms`: every live sub-instance retires its remaining
    /// worst-case budget at `f_max` by its end time, inside its window.
    pub fn feasible(&self, ends_ms: &[f64], tol_ms: f64) -> bool {
        let mut prev = self.now_ms;
        for &u in &self.live {
            let e = ends_ms[u];
            if e > self.hi_ms[u] + tol_ms || e < self.lo_ms[u] - tol_ms {
                return false;
            }
            if self.lo_ms[u].max(prev) + self.rem_w_ms[u] > e + tol_ms {
                return false;
            }
            prev = e;
        }
        true
    }

    /// Exact model energy of running the greedy rule with the given end
    /// times over the *expected* remaining workloads — the quantity the
    /// `ReOpt` policy compares before adopting a candidate. Mirrors
    /// [`crate::trace::evaluate_trace`] restricted to the remaining chain
    /// (including saturation at `f_max`).
    pub fn energy_of(&self, ends_ms: &[f64]) -> f64 {
        let mut energy = 0.0f64;
        let mut prev_finish = self.now_ms;
        for &u in &self.live {
            let a = self.a_ms[u];
            let s = prev_finish.max(self.lo_ms[u]);
            if a <= 0.0 {
                continue;
            }
            let window = ends_ms[u] - s;
            let speed = if window > 0.0 {
                Freq::from_cycles_per_ms(self.rem_w_ms[u] * self.fmax / window)
            } else {
                self.cpu.f_max()
            };
            let (v, _) = self.cpu.volt_for_speed_clamped(speed);
            let f_actual = self
                .cpu
                .freq_at(v)
                .expect("clamped voltage is in range")
                .as_cycles_per_ms();
            let cycles = a * self.fmax;
            energy += self
                .cpu
                .energy(self.c_eff[u], v, Cycles::from_cycles(cycles))
                .as_units();
            prev_finish = s + cycles / f_actual;
        }
        energy
    }

    /// A canonical encoding of everything that determines the solve
    /// result: the boundary time, the horizon, and each live
    /// sub-instance's identity, remaining budget and expected share.
    /// Callers combine it with a fingerprint of the (schedule, processor)
    /// pair to key a solver cache; equal keys guarantee bit-identical
    /// [`synthesize_remaining`] outcomes.
    pub fn cache_key(&self) -> Vec<u64> {
        let mut key = Vec::with_capacity(3 * self.live.len() + 2);
        key.push(self.now_ms.to_bits());
        key.push(self.opt_live.len() as u64);
        for &u in &self.live {
            key.push(u as u64);
            key.push(self.rem_w_ms[u].to_bits());
            key.push(self.a_ms[u].to_bits());
        }
        key
    }
}

/// The boundary NLP: end times of the in-horizon live sub-instances,
/// minimizing the greedy model energy of the expected remaining workload
/// subject to the exact worst-case fit constraints. Budgets are fixed —
/// the engine enforces the static schedule's worst-case budgets, so only
/// the speed profile (equivalently the end times) is re-optimized online.
struct RemainingProblem<'a> {
    rem: &'a RemainingInstance,
    /// Full-length starting end times, **borrowed** from the caller's
    /// buffer: the per-solve sub-vector used to exist twice (collected
    /// here, cloned again by `initial_point`) — now the only
    /// materialization is the one `initial_point` hands the solver.
    warm_full: &'a [f64],
    norm: f64,
    eps_t: f64,
    eps_w: f64,
}

impl<'a> RemainingProblem<'a> {
    fn new(rem: &'a RemainingInstance, warm_full: &'a [f64]) -> Self {
        let vmax = rem.cpu.vmax().as_volts();
        let norm = rem
            .opt_live
            .iter()
            .map(|&u| rem.c_eff[u] * vmax * vmax * rem.rem_w_ms[u] * rem.fmax)
            .sum::<f64>()
            .max(1e-12);
        RemainingProblem {
            rem,
            warm_full,
            norm,
            eps_t: 1e-6,
            eps_w: 1e-9,
        }
    }
}

impl ConstrainedProblem for RemainingProblem<'_> {
    fn dim(&self) -> usize {
        self.rem.opt_live.len()
    }

    fn build<'g>(&self, g: &'g Graph, x: &[Expr<'g>], smoothing: f64) -> ProblemExprs<'g> {
        let rem = self.rem;
        let n = rem.opt_live.len();
        let mut inequalities = Vec::with_capacity(4 * n);
        let mut prev: Option<Expr<'g>> = None;
        for (k, &u) in rem.opt_live.iter().enumerate() {
            let lo = rem.lo_ms[u];
            let hi = if k + 1 == n && n < rem.live.len() {
                rem.last_hi_ms
            } else {
                rem.hi_ms[u]
            };
            let w = rem.rem_w_ms[u];
            inequalities.push(lo - x[k]); // e ≥ max(r, now)
            inequalities.push(x[k] - hi); // e ≤ L
            let prev_e = prev.unwrap_or_else(|| g.constant(rem.now_ms));
            inequalities.push(w - (x[k] - prev_e)); // fits after predecessor
            inequalities.push(w + lo - x[k]); // fits after its own release
            prev = Some(x[k]);
        }

        // Greedy chain energy over the expected remaining workload.
        let mut energy = g.constant(0.0);
        let mut f_prev = g.constant(rem.now_ms);
        for (k, &u) in rem.opt_live.iter().enumerate() {
            let a = rem.a_ms[u];
            let w = rem.rem_w_ms[u];
            let s = smax_const(f_prev, rem.lo_ms[u], smoothing);
            let gap = x[k] - s;
            let denom = smax_const(gap, self.eps_t, smoothing) + self.eps_t;
            let speed = g.constant(w * rem.fmax) / denom;
            let v = voltage_for_speed(&rem.cpu, speed, smoothing);
            energy = energy + rem.c_eff[u] * v.sqr() * (a * rem.fmax);
            let rho = a / (w + self.eps_w);
            f_prev = s + rho * (x[k] - s);
        }

        ProblemExprs {
            objective: energy / self.norm,
            inequalities,
            equalities: Vec::new(),
        }
    }

    fn linear_constraints(&self) -> Option<LinearConstraints> {
        // All four fit/window families are linear in the end times; the
        // row order mirrors `build` exactly (the [`auglag::solve_seeded`]
        // ν vectors the warm-carry path replays are indexed by it).
        let rem = self.rem;
        let n = rem.opt_live.len();
        let mut ineq = SparseLinear::new();
        for (k, &u) in rem.opt_live.iter().enumerate() {
            let lo = rem.lo_ms[u];
            let hi = if k + 1 == n && n < rem.live.len() {
                rem.last_hi_ms
            } else {
                rem.hi_ms[u]
            };
            let w = rem.rem_w_ms[u];
            ineq.push_row(&[(k, -1.0)], lo); // e ≥ max(r, now)
            ineq.push_row(&[(k, 1.0)], -hi); // e ≤ L
            if k == 0 {
                ineq.push_row(&[(k, -1.0)], w + rem.now_ms); // fits after predecessor
            } else {
                ineq.push_row(&[(k, -1.0), (k - 1, 1.0)], w);
            }
            ineq.push_row(&[(k, -1.0)], w + lo); // fits after its own release
        }
        Some(LinearConstraints {
            ineq,
            eq: SparseLinear::new(),
        })
    }

    fn build_objective<'g>(&self, g: &'g Graph, x: &[Expr<'g>], smoothing: f64) -> Expr<'g> {
        let rem = self.rem;
        let mut energy = g.constant(0.0);
        let mut f_prev = g.constant(rem.now_ms);
        for (k, &u) in rem.opt_live.iter().enumerate() {
            let a = rem.a_ms[u];
            let w = rem.rem_w_ms[u];
            let s = smax_const(f_prev, rem.lo_ms[u], smoothing);
            let gap = x[k] - s;
            let denom = smax_const(gap, self.eps_t, smoothing) + self.eps_t;
            let speed = g.constant(w * rem.fmax) / denom;
            let v = voltage_for_speed(&rem.cpu, speed, smoothing);
            energy = energy + rem.c_eff[u] * v.sqr() * (a * rem.fmax);
            let rho = a / (w + self.eps_w);
            f_prev = s + rho * (x[k] - s);
        }
        energy / self.norm
    }

    fn initial_point(&self) -> Vec<f64> {
        self.rem
            .opt_live
            .iter()
            .map(|&u| self.warm_full[u])
            .collect()
    }
}

/// Options for one boundary re-solve.
#[derive(Debug, Clone)]
pub struct ReoptOptions {
    /// Augmented-Lagrangian configuration. The default is deliberately
    /// small: boundary solves start from a feasible, near-optimal warm
    /// point and only refine it.
    pub auglag: AugLagConfig,
    /// Tolerance (ms) for the exact feasibility gate applied to the
    /// repaired candidate. The default (`1e-5` ms) sits an order of
    /// magnitude above the solver's violation tolerance and corresponds
    /// to fractions of a cycle at any realistic clock — below the
    /// completion dust the simulation engine already absorbs.
    pub accept_tol_ms: f64,
}

impl Default for ReoptOptions {
    fn default() -> Self {
        ReoptOptions {
            auglag: AugLagConfig {
                outer_iters: 5,
                mu_init: 100.0,
                mu_growth: 10.0,
                mu_max: 1e8,
                violation_tol: 1e-6,
                violation_shrink: 0.25,
                smoothing_init: 1e-3,
                smoothing_final: 1e-7,
                smoothing_decay: 0.1,
                inner: LbfgsConfig {
                    memory: 8,
                    max_iters: 40,
                    grad_tol: 1e-4,
                    f_tol_rel: 1e-12,
                    ..LbfgsConfig::default()
                },
            },
            accept_tol_ms: 1e-5,
        }
    }
}

impl ReoptOptions {
    /// A cold-solve budget: what a boundary solve needs when it *cannot*
    /// be warm-started (it must first find feasibility). Used as the
    /// baseline in the `reopt` bench; the warm default beats it by well
    /// over the 5× the speed mandate asks for.
    pub fn cold() -> Self {
        let mut o = ReoptOptions::default();
        o.auglag.outer_iters = 18;
        o.auglag.smoothing_init = 1e-2;
        o.auglag.smoothing_decay = 0.25;
        o.auglag.inner.max_iters = 250;
        o.auglag.inner.grad_tol = 1e-6;
        o
    }
}

/// Outcome of one boundary re-solve.
#[derive(Debug, Clone)]
pub struct ReoptOutcome {
    /// End times (ms) for *all* sub-instances: re-optimized on the live
    /// horizon, the warm-start base everywhere else.
    pub ends_ms: Vec<f64>,
    /// Exact model energy of the repaired candidate over the expected
    /// remaining workload ([`RemainingInstance::energy_of`]).
    pub predicted_energy: Energy,
    /// `true` when the repaired candidate passed the exact worst-case
    /// chain gate — only then may a runtime adopt it.
    pub feasible: bool,
    /// Live sub-instances at this boundary.
    pub live: usize,
    /// Objective/gradient evaluations the solver spent.
    pub evaluations: usize,
    /// Whether the solver reported constraint convergence.
    pub converged: bool,
}

/// The state one boundary solve hands the next: the solved end times
/// plus the augmented-Lagrangian inequality multipliers, keyed by the
/// sub-instances they were solved for. Successive boundaries shrink the
/// live set and shift `now`, but the active constraint structure is
/// nearly identical — so the previous multipliers, remapped by
/// sub-instance, let a *single* warm solve replace the two-solve
/// multi-start fan-out most of the time
/// ([`synthesize_remaining_best_carry`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmCarry {
    /// Full-length end times of the carrying solve — the next
    /// boundary's starting point.
    pub ends_ms: Vec<f64>,
    /// Total-order sub-instance indices the multipliers belong to (the
    /// carrying solve's in-horizon live set, ascending).
    pub subs: Vec<usize>,
    /// PHR inequality multipliers, four per entry of `subs` in
    /// constraint build order (lower window, upper window, chain fit,
    /// release fit).
    pub nu: Vec<f64>,
}

/// Outcome of [`synthesize_remaining_best_carry`].
#[derive(Debug, Clone)]
pub struct CarrySolve {
    /// The winning solve.
    pub outcome: ReoptOutcome,
    /// Carry state for the *next* boundary (always from the winning
    /// solve, whether carried or multi-start).
    pub carry: WarmCarry,
    /// `true` when the carried warm solve passed the gate and the
    /// multi-start fan-out was skipped.
    pub carried: bool,
}

/// One boundary solve: owns its starting point, optionally seeds the
/// inequality multipliers, returns the outcome plus the final
/// multipliers (empty when the boundary is settled and no NLP ran).
fn solve_live(
    rem: &RemainingInstance,
    mut ends: Vec<f64>,
    nu0: Option<&[f64]>,
    options: &ReoptOptions,
) -> (ReoptOutcome, Vec<f64>) {
    // Project the starting point onto the feasible set first: a feasible
    // start keeps the multiplier loop quiet and is most of the warm-start
    // speedup.
    let start_residual = rem.repair(&mut ends);
    if rem.is_settled() {
        let energy = rem.energy_of(&ends);
        let outcome = ReoptOutcome {
            feasible: start_residual <= options.accept_tol_ms
                && rem.feasible(&ends, options.accept_tol_ms),
            predicted_energy: Energy::from_units(energy),
            ends_ms: ends,
            live: rem.live_count(),
            evaluations: 0,
            converged: true,
        };
        return (outcome, Vec::new());
    }
    let result = {
        let problem = RemainingProblem::new(rem, &ends);
        auglag::solve_seeded(&problem, &options.auglag, nu0)
    };
    for (k, &u) in rem.opt_live.iter().enumerate() {
        ends[u] = result.x[k];
    }
    let residual = rem.repair(&mut ends);
    let feasible = residual <= options.accept_tol_ms && rem.feasible(&ends, options.accept_tol_ms);
    let energy = rem.energy_of(&ends);
    let outcome = ReoptOutcome {
        ends_ms: ends,
        predicted_energy: Energy::from_units(energy),
        feasible,
        live: rem.live_count(),
        evaluations: result.evaluations,
        converged: result.converged,
    };
    (outcome, result.nu)
}

/// Re-synthesizes the remaining schedule's end times, warm-started from
/// the static schedule's ends projected onto the boundary state
/// ([`RemainingInstance::warm_ends_ms`]).
///
/// Deterministic: equal `rem` (compare [`RemainingInstance::cache_key`])
/// and equal options yield bit-identical outcomes.
pub fn synthesize_remaining(rem: &RemainingInstance, options: &ReoptOptions) -> ReoptOutcome {
    let mut ends = Vec::new();
    rem.warm_ends_into(&mut ends);
    solve_live(rem, ends, None, options).0
}

/// [`synthesize_remaining`] from an explicit full-length starting point
/// (e.g. [`cold_start_ends_ms`] for the cold baseline, or a runtime's
/// current end times).
pub fn synthesize_remaining_from(
    rem: &RemainingInstance,
    start_ends_ms: &[f64],
    options: &ReoptOptions,
) -> ReoptOutcome {
    solve_live(rem, start_ends_ms.to_vec(), None, options).0
}

/// Multi-start boundary re-solve: one solve warm-started from the
/// static schedule's projected ends, one from the ALAP (latest-feasible,
/// "procrastinating") profile, keeping the lower-energy feasible result.
///
/// The greedy chain objective is non-convex — the compressed profile a
/// worst-case (WCS) schedule warm-starts into and the stretched profile
/// low *expected* energy wants are distinct basins, and a single local
/// solve cannot cross between them. Two cheap solves recover the spread
/// (the online analog of [`crate::synthesize_acs_best`]); the reported
/// `evaluations` is their sum. Deterministic like
/// [`synthesize_remaining`].
pub fn synthesize_remaining_best(rem: &RemainingInstance, options: &ReoptOptions) -> ReoptOutcome {
    synthesize_remaining_best_with_carry(rem, options).0
}

/// [`synthesize_remaining_best`], also returning the winner's
/// [`WarmCarry`] so a runtime (or a solver cache) can seed the next
/// boundary. The outcome is bit-identical to
/// [`synthesize_remaining_best`]: the fan-out never *consumes* carry
/// state, so its result stays a pure function of `(rem, options)` —
/// the property solver caches key on.
pub fn synthesize_remaining_best_with_carry(
    rem: &RemainingInstance,
    options: &ReoptOptions,
) -> (ReoptOutcome, WarmCarry) {
    let mut warm_start = Vec::new();
    rem.warm_ends_into(&mut warm_start);
    let (warm, warm_nu) = solve_live(rem, warm_start, None, options);
    let (mut alap, alap_nu) = solve_live(rem, alap_start_ends_ms(rem), None, options);
    alap.evaluations += warm.evaluations;
    let (best, nu) =
        if alap.feasible && (!warm.feasible || alap.predicted_energy < warm.predicted_energy) {
            (alap, alap_nu)
        } else {
            let mut best = warm;
            best.evaluations = alap.evaluations;
            (best, warm_nu)
        };
    let carry = WarmCarry {
        ends_ms: best.ends_ms.clone(),
        subs: rem.opt_live.clone(),
        nu,
    };
    (best, carry)
}

/// A single warm solve seeded from the previous boundary's
/// [`WarmCarry`]: end times start where the last solve finished, and
/// the inequality multipliers are remapped by sub-instance (subs that
/// left the horizon drop out, new subs enter at zero). Returns the
/// outcome plus the refreshed carry. The caller gates adoption — a
/// carried solve is only trusted under the same exact feasibility check
/// as any other candidate.
pub fn synthesize_remaining_carry(
    rem: &RemainingInstance,
    carry: &WarmCarry,
    options: &ReoptOptions,
) -> (ReoptOutcome, WarmCarry) {
    let mut nu0 = vec![0.0f64; 4 * rem.opt_live.len()];
    let mut j = 0usize;
    for (k, &u) in rem.opt_live.iter().enumerate() {
        while j < carry.subs.len() && carry.subs[j] < u {
            j += 1;
        }
        if j < carry.subs.len() && carry.subs[j] == u && 4 * (j + 1) <= carry.nu.len() {
            nu0[4 * k..4 * (k + 1)].copy_from_slice(&carry.nu[4 * j..4 * (j + 1)]);
        }
    }
    let start = if carry.ends_ms.len() == rem.static_ends_ms.len() {
        carry.ends_ms.clone()
    } else {
        // A carry from a different expansion cannot seed end times;
        // fall back to the projected static warm start.
        rem.warm_ends_ms()
    };
    let (outcome, nu) = solve_live(rem, start, Some(&nu0), options);
    let new_carry = WarmCarry {
        ends_ms: outcome.ends_ms.clone(),
        subs: rem.opt_live.clone(),
        nu,
    };
    (outcome, new_carry)
}

/// The incremental boundary solve: try the carried warm solve first and
/// **skip the multi-start fan-out** when it passes the exact
/// feasibility gate *and* improves on `baseline_energy` by at least
/// `min_rel_gain` (relative). Otherwise fall back to
/// [`synthesize_remaining_best_with_carry`], folding the spent carry
/// evaluations into the reported total. With `carry = None` this *is*
/// the multi-start fan-out.
pub fn synthesize_remaining_best_carry(
    rem: &RemainingInstance,
    carry: Option<&WarmCarry>,
    baseline_energy: f64,
    min_rel_gain: f64,
    options: &ReoptOptions,
) -> CarrySolve {
    let mut spent = 0usize;
    if let Some(c) = carry {
        let (outcome, new_carry) = synthesize_remaining_carry(rem, c, options);
        if outcome.feasible
            && outcome.predicted_energy.as_units() < baseline_energy * (1.0 - min_rel_gain)
        {
            return CarrySolve {
                outcome,
                carry: new_carry,
                carried: true,
            };
        }
        spent = outcome.evaluations;
    }
    let (mut outcome, carry) = synthesize_remaining_best_with_carry(rem, options);
    outcome.evaluations += spent;
    CarrySolve {
        outcome,
        carry,
        carried: false,
    }
}

/// The ALAP starting profile: every in-horizon live end time pushed as
/// late as its window, the worst-case chain and the frozen tail allow
/// (computed by a reverse sweep). This is the "procrastinate, then
/// reclaim" basin the expected-energy objective usually prefers.
pub fn alap_start_ends_ms(rem: &RemainingInstance) -> Vec<f64> {
    let mut ends = rem.static_ends_ms.clone();
    let n = rem.opt_live.len();
    // The first frozen tail sub pins how late the horizon may run.
    let mut cap = if n < rem.live.len() {
        let tail = rem.live[n];
        ends[tail] - rem.rem_w_ms[tail]
    } else {
        f64::INFINITY
    };
    for (k, &u) in rem.opt_live.iter().enumerate().rev() {
        let hi = if k + 1 == n && n < rem.live.len() {
            rem.last_hi_ms
        } else {
            rem.hi_ms[u]
        };
        let e = hi.min(cap).max(rem.lo_ms[u]);
        ends[u] = e;
        cap = e - rem.rem_w_ms[u];
    }
    ends
}

/// A schedule-oblivious starting point for the cold baseline: every live
/// end time pushed as late as its window (and the worst-case chain
/// minimum) allows, mimicking a solver that knows nothing about the
/// static schedule.
pub fn cold_start_ends_ms(rem: &RemainingInstance) -> Vec<f64> {
    let mut ends = rem.static_ends_ms.clone();
    let mut prev = rem.now_ms;
    for &u in &rem.live {
        let lo_eff = rem.lo_ms[u].max(prev);
        let e = (lo_eff + rem.rem_w_ms[u]).max(0.5 * (lo_eff + rem.hi_ms[u]));
        let e = e.min(rem.hi_ms[u]).max(lo_eff);
        ends[u] = e;
        prev = e;
    }
    ends
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize_acs, synthesize_wcs, SynthesisOptions};
    use acs_model::units::{Ticks, Volt};
    use acs_model::{Task, TaskId};
    use acs_power::FreqModel;

    fn motivation() -> (TaskSet, Processor) {
        let mk = |n: &str| {
            Task::builder(n, Ticks::new(20))
                .wcec(Cycles::from_cycles(1000.0))
                .acec(Cycles::from_cycles(500.0))
                .bcec(Cycles::from_cycles(100.0))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")]).unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        (set, cpu)
    }

    #[test]
    fn untouched_boundary_mirrors_full_problem() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let rem = RemainingInstance::at_boundary(&wcs, &set, &cpu, Time::from_ms(0.0), &[]);
        assert_eq!(rem.live_count(), 3);
        assert_eq!(rem.opt_count(), 3);
        assert!(!rem.is_settled());
        // Remaining budgets equal the schedule's (nothing executed).
        for (u, ms) in wcs.milestones().iter().enumerate() {
            assert!(
                (rem.rem_w_ms[u] * rem.fmax - ms.worst_workload.as_cycles()).abs() < 1e-9,
                "sub {u}"
            );
        }
        // Static ends are feasible as-is.
        assert!(rem.feasible(rem.static_ends_ms(), 1e-4));
    }

    #[test]
    fn reopt_of_wcs_ends_recovers_acs_gain() {
        let (set, cpu) = motivation();
        let opts = SynthesisOptions::quick();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
        let rem = RemainingInstance::at_boundary(&wcs, &set, &cpu, Time::from_ms(0.0), &[]);
        let before = rem.energy_of(rem.static_ends_ms());
        let out = synthesize_remaining(&rem, &ReoptOptions::default());
        assert!(out.feasible, "candidate must pass the worst-case gate");
        let after = out.predicted_energy.as_units();
        // Paper Fig. 1–2: WCS ends cost ≈7961 on the ACEC trace, the
        // optimum ≈6000 — a ≈24% gap. Online re-opt at t=0 must recover
        // most of it.
        let improvement = 1.0 - after / before;
        assert!(
            improvement > 0.15,
            "before {before}, after {after} (improvement {improvement:.3})"
        );
        // And the result must agree with what offline ACS predicts.
        let acs = synthesize_acs(&set, &cpu, &opts).unwrap();
        let acs_pred = rem.energy_of(
            &acs.milestones()
                .iter()
                .map(|m| m.end_time.as_ms())
                .collect::<Vec<_>>(),
        );
        assert!(after <= acs_pred * 1.05, "reopt {after} vs ACS {acs_pred}");
    }

    #[test]
    fn boundary_after_early_completion_improves_remaining_energy() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        // Task 0 finished early (500 of 1000 cycles) at t = 10/3 ms.
        let progress = vec![InstanceProgress {
            instance: InstanceId {
                task: TaskId(0),
                index: 0,
            },
            executed: Cycles::from_cycles(500.0),
            current_chunk: 0,
            chunk_budget_left: Cycles::from_cycles(500.0),
            released: true,
            done: true,
        }];
        let rem =
            RemainingInstance::at_boundary(&wcs, &set, &cpu, Time::from_ms(10.0 / 3.0), &progress);
        assert_eq!(rem.live_count(), 2);
        let before = rem.energy_of(rem.static_ends_ms());
        let out = synthesize_remaining(&rem, &ReoptOptions::default());
        assert!(out.feasible);
        assert!(
            out.predicted_energy.as_units() < before,
            "reopt {} vs greedy-on-static {before}",
            out.predicted_energy.as_units()
        );
    }

    #[test]
    fn solve_is_deterministic() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let rem = RemainingInstance::at_boundary(&wcs, &set, &cpu, Time::from_ms(0.0), &[]);
        let a = synthesize_remaining(&rem, &ReoptOptions::default());
        let b = synthesize_remaining(&rem, &ReoptOptions::default());
        assert_eq!(a.ends_ms, b.ends_ms);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(rem.cache_key(), rem.cache_key());
    }

    #[test]
    fn infeasible_states_are_flagged_not_adopted() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        // A boundary so late that the remaining worst case cannot fit.
        let rem = RemainingInstance::at_boundary(&wcs, &set, &cpu, Time::from_ms(19.0), &[]);
        let out = synthesize_remaining(&rem, &ReoptOptions::default());
        assert!(!out.feasible);
    }

    #[test]
    fn horizon_truncates_variables_but_not_the_gate() {
        let (set, cpu) = motivation();
        let wcs = synthesize_wcs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        let rem = RemainingInstance::at_boundary(&wcs, &set, &cpu, Time::from_ms(0.0), &[])
            .with_horizon(1);
        assert_eq!(rem.opt_count(), 1);
        assert_eq!(rem.live_count(), 3);
        let out = synthesize_remaining(&rem, &ReoptOptions::default());
        assert!(out.feasible);
        // The untouched tail keeps its warm (static-projected) ends.
        let warm = rem.warm_ends_ms();
        assert_eq!(out.ends_ms[1], warm[1]);
        assert_eq!(out.ends_ms[2], warm[2]);
    }

    /// A paper-scale fixture: 8 tasks over a uniform 5 ms release grid
    /// (64 sub-instances, like the CNC controller set) with a
    /// handcrafted proportional static schedule, so the test measures
    /// solver cost without paying for a full offline synthesis in debug
    /// builds.
    fn large_with_schedule() -> (TaskSet, Processor, StaticSchedule) {
        let periods = [5u64, 5, 10, 10, 20, 20, 40, 40];
        let fmax = 200.0;
        let per_task_util = 0.65 / periods.len() as f64;
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let wcec = per_task_util * p as f64 * fmax;
                Task::builder(format!("t{i}"), Ticks::new(p))
                    .wcec(Cycles::from_cycles(wcec))
                    .acec(Cycles::from_cycles(0.45 * wcec))
                    .bcec(Cycles::from_cycles(0.1 * wcec))
                    .build()
                    .unwrap()
            })
            .collect();
        let set = TaskSet::new(tasks).unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        let fps =
            acs_preempt::FullyPreemptiveSchedule::expand(&set).expect("uniform grid expansion");
        // Equal budget split per chunk; within each segment, ends stack
        // proportionally across the whole segment — chain-feasible by
        // construction because every segment's load at f_max (65% of the
        // segment) fits its length.
        let m = fps.len();
        let mut budgets = vec![0.0f64; m];
        for (tid, task) in set.iter() {
            for inst in 0..fps.instances_of(tid) {
                let ids: Vec<_> = fps
                    .chunks_of(InstanceId {
                        task: tid,
                        index: inst,
                    })
                    .collect();
                for id in &ids {
                    budgets[id.0] = task.wcec().as_cycles() / ids.len() as f64;
                }
            }
        }
        let mut ends = vec![0.0f64; m];
        for s in 0..fps.grid().segment_count() {
            let subs = fps.segment_subs(s);
            let seg_start = subs[0].window_start.as_ms();
            let seg_len = subs[0].window_span().as_ms();
            let load_ms: f64 = subs.iter().map(|u| budgets[u.id.0] / fmax).sum();
            let scale = seg_len / load_ms.max(1e-12);
            let mut cum = 0.0;
            for u in subs {
                cum += budgets[u.id.0] / fmax;
                ends[u.id.0] = seg_start + cum * scale;
            }
        }
        let milestones: Vec<crate::schedule::Milestone> = fps
            .sub_instances()
            .iter()
            .map(|sub| crate::schedule::Milestone {
                sub: sub.id,
                end_time: Time::from_ms(ends[sub.id.0]),
                worst_workload: Cycles::from_cycles(budgets[sub.id.0]),
                avg_workload: Cycles::from_cycles(0.45 * budgets[sub.id.0]),
            })
            .collect();
        let schedule = StaticSchedule::from_parts(
            fps,
            milestones,
            crate::schedule::ScheduleKind::Custom,
            crate::schedule::SolveDiagnostics {
                converged: true,
                max_violation: 0.0,
                outer_iterations: 0,
                evaluations: 0,
                predicted_avg_energy: Energy::ZERO,
                predicted_worst_energy: Energy::ZERO,
            },
        )
        .unwrap();
        (set, cpu, schedule)
    }

    #[test]
    fn warm_start_beats_cold_start_by_5x() {
        let (set, cpu, schedule) = large_with_schedule();
        // A mid-run boundary: the first instance of `t0` completed early.
        let wcec0 = set.tasks()[0].wcec().as_cycles();
        let progress = vec![InstanceProgress {
            instance: InstanceId {
                task: TaskId(0),
                index: 0,
            },
            executed: Cycles::from_cycles(0.4 * wcec0),
            current_chunk: 0,
            chunk_budget_left: Cycles::from_cycles(0.6 * wcec0),
            released: true,
            done: true,
        }];
        let rem =
            RemainingInstance::at_boundary(&schedule, &set, &cpu, Time::from_ms(2.0), &progress);
        assert!(rem.live_count() > 50, "live = {}", rem.live_count());
        // Static ends from before `now` are stale at a boundary; the warm
        // projection re-chains them into a feasible profile.
        assert!(rem.feasible(&rem.warm_ends_ms(), 1e-6));
        // Warm: the ReOpt policy's production configuration — two
        // warm-started solves over a receding horizon.
        let warm =
            synthesize_remaining_best(&rem.clone().with_horizon(16), &ReoptOptions::default());
        // Cold: schedule-oblivious start, full horizon, the budget needed
        // to reach feasibility from scratch.
        let cold =
            synthesize_remaining_from(&rem, &cold_start_ends_ms(&rem), &ReoptOptions::cold());
        assert!(warm.feasible && cold.feasible);
        // Speed must not come from giving the improvement up: the warm
        // horizon solve has to find a real gain, not return the start.
        let base = rem.energy_of(rem.static_ends_ms());
        let warm_gain = base - rem.energy_of(&warm.ends_ms);
        assert!(
            warm_gain > 0.01 * base,
            "warm gain {warm_gain} vs base {base}"
        );
        // Evaluations are the deterministic proxy for wall clock (the
        // criterion `reopt` bench measures the actual times: ≈4 ms warm
        // vs ≈400 ms cold on the 64-sub CNC set, well past the required
        // 5×).
        assert!(
            5 * warm.evaluations <= cold.evaluations,
            "warm {} vs cold {} evaluations",
            warm.evaluations,
            cold.evaluations
        );
    }

    #[test]
    fn carry_solve_is_cheaper_and_fanout_stays_carry_independent() {
        let (set, cpu, schedule) = large_with_schedule();
        let opts = ReoptOptions::default();
        let rem0 = RemainingInstance::at_boundary(&schedule, &set, &cpu, Time::from_ms(0.0), &[])
            .with_horizon(16);
        // The with-carry fan-out must be bit-identical to the plain one:
        // it never consumes carry state (cache purity).
        let plain = synthesize_remaining_best(&rem0, &opts);
        let (best, carry) = synthesize_remaining_best_with_carry(&rem0, &opts);
        assert_eq!(plain.ends_ms, best.ends_ms);
        assert_eq!(plain.evaluations, best.evaluations);
        assert_eq!(carry.subs, rem0.opt_live);
        assert_eq!(carry.nu.len(), 4 * rem0.opt_live.len());

        // Next boundary: first instance of t0 done early.
        let wcec0 = set.tasks()[0].wcec().as_cycles();
        let progress = vec![InstanceProgress {
            instance: InstanceId {
                task: TaskId(0),
                index: 0,
            },
            executed: Cycles::from_cycles(0.4 * wcec0),
            current_chunk: 0,
            chunk_budget_left: Cycles::from_cycles(0.6 * wcec0),
            released: true,
            done: true,
        }];
        let rem1 =
            RemainingInstance::at_boundary(&schedule, &set, &cpu, Time::from_ms(2.0), &progress)
                .with_horizon(16);
        let (carried, carry1) = synthesize_remaining_carry(&rem1, &carry, &opts);
        let fresh = synthesize_remaining_best(&rem1, &opts);
        assert!(carried.feasible, "carried warm solve must pass the gate");
        assert_eq!(carry1.subs, rem1.opt_live);
        // The whole point: one seeded solve undercuts the two-solve
        // fan-out, at essentially the fan-out's energy.
        assert!(
            carried.evaluations < fresh.evaluations,
            "carried {} vs fan-out {} evaluations",
            carried.evaluations,
            fresh.evaluations
        );
        assert!(
            carried.predicted_energy.as_units() <= fresh.predicted_energy.as_units() * 1.02,
            "carried {} vs fan-out {}",
            carried.predicted_energy.as_units(),
            fresh.predicted_energy.as_units()
        );

        // Gated entry point: with a baseline the carried solve beats,
        // the fan-out is skipped...
        let base = rem1.energy_of(rem1.static_ends_ms());
        let hit = synthesize_remaining_best_carry(&rem1, Some(&carry), base, 0.01, &opts);
        assert!(hit.carried);
        assert_eq!(hit.outcome.ends_ms, carried.ends_ms);
        // ...and with an unbeatable baseline it falls back to the exact
        // fan-out result, folding the spent carry evaluations in.
        let miss = synthesize_remaining_best_carry(&rem1, Some(&carry), 0.0, 0.01, &opts);
        assert!(!miss.carried);
        assert_eq!(miss.outcome.ends_ms, fresh.ends_ms);
        assert_eq!(
            miss.outcome.evaluations,
            fresh.evaluations + carried.evaluations
        );
        // No carry at all degenerates to the plain fan-out.
        let none = synthesize_remaining_best_carry(&rem1, None, base, 0.01, &opts);
        assert!(!none.carried);
        assert_eq!(none.outcome.ends_ms, fresh.ends_ms);
        assert_eq!(none.outcome.evaluations, fresh.evaluations);
    }
}
