//! Top-level schedule synthesis: ACS (the paper's contribution) and the
//! WCS baseline.

use crate::error::CoreError;
use crate::fill::fill_amounts;
use crate::formulation::{ObjectiveKind, ScheduleProblem};
use crate::schedule::{Milestone, ScheduleKind, SolveDiagnostics, StaticSchedule};
use crate::trace::{self, SpeedBasis};
use crate::verify;
use acs_model::units::{Cycles, Time};
use acs_model::TaskSet;
use acs_opt::auglag::{self, AugLagConfig};
use acs_opt::lbfgs::LbfgsConfig;
use acs_power::Processor;
use acs_preempt::FullyPreemptiveSchedule;

/// Options controlling schedule synthesis.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Objective used for ACS synthesis ([`synthesize_wcs`] always uses
    /// [`ObjectiveKind::WorstCase`]).
    pub objective: ObjectiveKind,
    /// Augmented-Lagrangian configuration.
    pub auglag: AugLagConfig,
    /// Cap on sub-instances accepted from the expansion (the paper's
    /// experiments cap at 1000).
    pub sub_instance_cap: usize,
    /// Feasibility tolerance (ms) for the post-solve verification gate.
    pub verify_tol_ms: f64,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            objective: ObjectiveKind::AcecTrace,
            auglag: default_auglag(),
            sub_instance_cap: 100_000,
            verify_tol_ms: 2e-5,
        }
    }
}

impl SynthesisOptions {
    /// Fast, lower-accuracy settings for large experiment sweeps: fewer
    /// outer/inner iterations, looser tolerances. The resulting schedules
    /// remain feasibility-gated (to the looser `1e-5 ms` tolerance, i.e.
    /// sub-microsecond worst-case lateness per sub-instance, absorbed at
    /// runtime by the `vmax` saturation clamp); only optimality degrades
    /// gracefully.
    pub fn quick() -> Self {
        let mut o = SynthesisOptions::default();
        o.auglag.outer_iters = 14;
        o.auglag.inner.max_iters = 120;
        o.auglag.inner.grad_tol = 1e-5;
        // The default profile's 1e-14 effectively disables the
        // stagnation stop; at sweep accuracy an inner solve that twice
        // fails to move the (normalized, O(1)) objective by 1e-9 is
        // done — letting it stop also lets the outer loop's early-break
        // fire instead of running every outer iteration to max_iters.
        o.auglag.inner.f_tol_rel = 1e-9;
        o.auglag.violation_tol = 1e-5;
        o.verify_tol_ms = 1e-4;
        o
    }
}

fn default_auglag() -> AugLagConfig {
    AugLagConfig {
        outer_iters: 22,
        mu_init: 100.0,
        mu_growth: 10.0,
        mu_max: 1e10,
        // Violations are in milliseconds (or ms-at-fmax for workloads);
        // 5e-6 is sub-nanosecond-scale — far below any physical
        // relevance — while sparing a third AL order-of-magnitude push.
        violation_tol: 5e-6,
        violation_shrink: 0.25,
        smoothing_init: 1e-2,
        smoothing_final: 1e-7,
        smoothing_decay: 0.15,
        inner: LbfgsConfig {
            memory: 10,
            max_iters: 250,
            grad_tol: 1e-6,
            f_tol_rel: 1e-14,
            ..LbfgsConfig::default()
        },
    }
}

/// Synthesizes the **ACS** schedule: minimum average-case (per
/// `options.objective`) energy subject to worst-case feasibility.
///
/// ```
/// use acs_core::{synthesize_acs, verify_worst_case, SynthesisOptions};
/// use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Volt}};
/// use acs_power::{FreqModel, Processor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TaskSet::new(vec![
///     Task::builder("t", Ticks::new(10))
///         .wcec(Cycles::from_cycles(300.0))
///         .acec(Cycles::from_cycles(120.0))
///         .bcec(Cycles::from_cycles(30.0))
///         .build()?,
/// ])?;
/// let cpu = Processor::builder(FreqModel::linear(50.0)?)
///     .vmin(Volt::from_volts(0.3)).vmax(Volt::from_volts(4.0)).build()?;
/// let acs = synthesize_acs(&set, &cpu, &SynthesisOptions::quick())?;
/// // One milestone per sub-instance, worst-case feasible by the gate.
/// assert_eq!(acs.milestones().len(), acs.fps().len());
/// assert!(verify_worst_case(&acs, &set, &cpu, 1e-4).is_ok());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates model/expansion errors; [`CoreError::SolveFailed`] when the
/// NLP cannot reach worst-case feasibility (e.g. utilization too close to
/// 1 for the expansion's structure).
pub fn synthesize_acs(
    set: &TaskSet,
    cpu: &Processor,
    options: &SynthesisOptions,
) -> Result<StaticSchedule, CoreError> {
    synthesize(set, cpu, options, options.objective, ScheduleKind::Acs)
}

/// Synthesizes the **WCS** baseline: minimum worst-case energy, the
/// classic offline approach that ignores workload variation.
///
/// # Errors
///
/// Same as [`synthesize_acs`].
pub fn synthesize_wcs(
    set: &TaskSet,
    cpu: &Processor,
    options: &SynthesisOptions,
) -> Result<StaticSchedule, CoreError> {
    synthesize(
        set,
        cpu,
        options,
        ObjectiveKind::WorstCase,
        ScheduleKind::Wcs,
    )
}

/// Synthesizes the ACS schedule **warm-started from an existing feasible
/// schedule** (typically the WCS baseline, which the paper's experiments
/// compute anyway). Because the solver keeps the best feasible point it
/// sees — and the warm start is feasible — the result is never worse
/// than `warm` under the ACS objective. Recommended for large task sets
/// where the cold-started solve may under-converge.
///
/// # Errors
///
/// Same as [`synthesize_acs`]; additionally
/// [`CoreError::ScheduleMismatch`] if `warm` was built for a different
/// expansion.
pub fn synthesize_acs_warm(
    set: &TaskSet,
    cpu: &Processor,
    options: &SynthesisOptions,
    warm: &StaticSchedule,
) -> Result<StaticSchedule, CoreError> {
    synthesize_warm(
        set,
        cpu,
        options,
        warm,
        options.objective,
        ScheduleKind::Acs,
    )
}

/// Synthesizes the WCS baseline **warm-started from an existing feasible
/// schedule** (typically a previous WCS solve). This is the continuation
/// analog of [`synthesize_acs_warm`]: it gives the worst-case objective
/// the same second solve the ACS side gets, which matters when comparing
/// the two approaches at matched solver effort (e.g. the
/// `no_variation_means_no_advantage` end-to-end test, where ACEC = WCEC
/// makes both objectives identical and any residual gap is pure solver
/// under-convergence).
///
/// # Errors
///
/// Same as [`synthesize_acs_warm`].
pub fn synthesize_wcs_warm(
    set: &TaskSet,
    cpu: &Processor,
    options: &SynthesisOptions,
    warm: &StaticSchedule,
) -> Result<StaticSchedule, CoreError> {
    synthesize_warm(
        set,
        cpu,
        options,
        warm,
        ObjectiveKind::WorstCase,
        ScheduleKind::Wcs,
    )
}

/// Shared warm-start path: checks `warm` against the current expansion,
/// packs its milestones into the solver's `x0` layout (`[e_u; R̂_u/f_max]`),
/// and re-solves under the given objective/kind.
fn synthesize_warm(
    set: &TaskSet,
    cpu: &Processor,
    options: &SynthesisOptions,
    warm: &StaticSchedule,
    objective: ObjectiveKind,
    kind: ScheduleKind,
) -> Result<StaticSchedule, CoreError> {
    let fps = FullyPreemptiveSchedule::expand_capped(set, options.sub_instance_cap)?;
    if warm.fps() != &fps {
        return Err(CoreError::ScheduleMismatch {
            reason: "warm-start schedule built for a different expansion".into(),
        });
    }
    let m = fps.len();
    let fmax = cpu.f_max().as_cycles_per_ms();
    let mut x0 = vec![0.0; 2 * m];
    for (u, ms) in warm.milestones().iter().enumerate() {
        x0[u] = ms.end_time.as_ms();
        x0[m + u] = ms.worst_workload.as_cycles() / fmax;
    }
    synthesize_with_start(set, cpu, options, objective, kind, Some(x0))
}

/// Multi-start ACS synthesis: solves from both the heuristic cold start
/// and the `warm` schedule, returning whichever feasible result predicts
/// less average-case energy. The NLP is non-convex (the fill rule and the
/// `max` recursions create distinct basins), and neither start dominates
/// in practice; two starts cost one extra solve and recover most of the
/// spread. Never worse than `warm` under the ACS objective.
///
/// # Errors
///
/// Same as [`synthesize_acs_warm`]; only fails when *both* starts fail.
pub fn synthesize_acs_best(
    set: &TaskSet,
    cpu: &Processor,
    options: &SynthesisOptions,
    warm: &StaticSchedule,
) -> Result<StaticSchedule, CoreError> {
    let from_warm = synthesize_acs_warm(set, cpu, options, warm);
    let from_cold = synthesize_acs(set, cpu, options);
    match (from_warm, from_cold) {
        (Ok(a), Ok(b)) => Ok(
            if a.diagnostics().predicted_avg_energy <= b.diagnostics().predicted_avg_energy {
                a
            } else {
                b
            },
        ),
        (Ok(a), Err(_)) => Ok(a),
        (Err(_), Ok(b)) => Ok(b),
        (Err(e), Err(_)) => Err(e),
    }
}

fn synthesize(
    set: &TaskSet,
    cpu: &Processor,
    options: &SynthesisOptions,
    objective: ObjectiveKind,
    kind: ScheduleKind,
) -> Result<StaticSchedule, CoreError> {
    synthesize_with_start(set, cpu, options, objective, kind, None)
}

fn synthesize_with_start(
    set: &TaskSet,
    cpu: &Processor,
    options: &SynthesisOptions,
    objective: ObjectiveKind,
    kind: ScheduleKind,
    warm_start: Option<Vec<f64>>,
) -> Result<StaticSchedule, CoreError> {
    set.check_utilization(cpu.f_max())?;
    let fps = FullyPreemptiveSchedule::expand_capped(set, options.sub_instance_cap)?;
    let mut problem = ScheduleProblem::new(set, cpu, &fps, objective);
    if let Some(x0) = warm_start {
        problem.set_warm_start(x0);
    }
    let result = auglag::solve(&problem, &options.auglag);
    // Acceptance is gated end-to-end by the worst-case verifier below
    // (after the repair pass), not by the solver's internal violation
    // measure: the repair exactly restores workload conservation and
    // window containment, so marginal AL residuals (nanosecond-scale gap
    // violations) are judged where they matter — on the final artifact.

    let m = fps.len();
    let fmax = cpu.f_max().as_cycles_per_ms();
    let mut ends: Vec<f64> = result.x[..m].to_vec();
    let mut w_ms: Vec<f64> = result.x[m..].to_vec();

    // ---- exact-ification ("repair") ----
    // Clamp workloads to non-negative and rescale each instance to
    // conserve its WCEC exactly; clamp end times into windows and enforce
    // the total order. Residual speed overshoots stay below the verifier
    // tolerance because the solver converged.
    for w in w_ms.iter_mut() {
        *w = w.max(0.0);
    }
    for (tid, task) in set.iter() {
        let budget = task.wcec().as_cycles() / fmax;
        for inst in 0..fps.instances_of(tid) {
            let ids: Vec<_> = fps
                .chunks_of(acs_preempt::InstanceId {
                    task: tid,
                    index: inst,
                })
                .collect();
            let sum: f64 = ids.iter().map(|id| w_ms[id.0]).sum();
            if sum > 1e-15 {
                let scale = budget / sum;
                for id in &ids {
                    w_ms[id.0] *= scale;
                }
            } else {
                // Degenerate: all shares vanished; give everything to the
                // last chunk (latest window).
                let share = budget / ids.len() as f64;
                for id in &ids {
                    w_ms[id.0] = share;
                }
            }
        }
    }
    let mut prev = 0.0f64;
    for (u, sub) in fps.sub_instances().iter().enumerate() {
        let lo = sub.window_start.as_ms();
        let hi = sub.window_end.as_ms();
        ends[u] = ends[u].clamp(lo, hi).max(prev);
        prev = ends[u];
    }
    // Forward feasibility sweep: cap every chunk's budget by the exact
    // worst-case window the runtime will see (`e_u − max(r_u, prev
    // end)`) and push any ε-excess into the instance's next chunk. The
    // solver leaves gap violations of up to ~1e-5 ms; without this sweep
    // a near-saturated chunk under-executes by a fraction of a cycle at
    // runtime and the leftover — deprioritized by RM — can complete
    // milliseconds after its deadline. Excess that reaches past an
    // instance's last chunk stays there and is judged by the worst-case
    // trace gate below.
    {
        // Next chunk (same instance) in total order, if any.
        let mut next_chunk: Vec<Option<usize>> = vec![None; m];
        for (tid, _task) in set.iter() {
            for inst in 0..fps.instances_of(tid) {
                let ids: Vec<_> = fps
                    .chunks_of(acs_preempt::InstanceId {
                        task: tid,
                        index: inst,
                    })
                    .collect();
                for pair in ids.windows(2) {
                    next_chunk[pair[0].0] = Some(pair[1].0);
                }
            }
        }
        let mut prev_end = 0.0f64;
        for (u, sub) in fps.sub_instances().iter().enumerate() {
            let start = prev_end.max(sub.window_start.as_ms());
            let cap = (ends[u] - start).max(0.0);
            if w_ms[u] > cap {
                if let Some(next) = next_chunk[u] {
                    w_ms[next] += w_ms[u] - cap;
                    w_ms[u] = cap;
                }
                // A final chunk keeps its overflow (conservation!); the
                // runtime saturates at f_max and the worst-case trace
                // gate below decides whether the resulting lateness is
                // acceptable.
            }
            prev_end = if w_ms[u] > 1e-15 { ends[u] } else { start };
        }
    }

    // ---- assemble milestones ----
    let mut milestones = Vec::with_capacity(m);
    let mut avg = vec![0.0f64; m];
    for (tid, task) in set.iter() {
        for inst in 0..fps.instances_of(tid) {
            let ids: Vec<_> = fps
                .chunks_of(acs_preempt::InstanceId {
                    task: tid,
                    index: inst,
                })
                .collect();
            let budgets: Vec<f64> = ids.iter().map(|id| w_ms[id.0] * fmax).collect();
            let fills = fill_amounts(&budgets, task.acec().as_cycles());
            for (id, a) in ids.iter().zip(fills) {
                avg[id.0] = a;
            }
        }
    }
    for u in 0..m {
        milestones.push(Milestone {
            sub: acs_preempt::SubInstanceId(u),
            end_time: Time::from_ms(ends[u]),
            worst_workload: Cycles::from_cycles(w_ms[u] * fmax),
            avg_workload: Cycles::from_cycles(avg[u]),
        });
    }

    let mut schedule = StaticSchedule::from_parts(
        fps,
        milestones,
        kind,
        SolveDiagnostics {
            converged: result.converged,
            max_violation: result.max_violation,
            outer_iterations: result.outer_iterations,
            evaluations: result.evaluations,
            predicted_avg_energy: acs_model::units::Energy::ZERO,
            predicted_worst_energy: acs_model::units::Energy::ZERO,
        },
    )?;

    // ---- acceptance gate + predicted energies ----
    let report =
        verify::verify_worst_case(&schedule, set, cpu, options.verify_tol_ms).map_err(|viols| {
            CoreError::SolveFailed {
                max_violation: viols
                    .iter()
                    .map(|v| v.amount.abs())
                    .fold(result.max_violation, f64::max),
            }
        })?;
    // Second, end-to-end gate: replay the exact all-WCEC runtime trace
    // and require every *deadline* to hold. The structural check above
    // is per-milestone; sub-tolerance residuals can compound along the
    // chain (the runtime saturates at f_max and pushes lateness
    // downstream), and only this walk sees the accumulation.
    let wc_trace = trace::evaluate_trace(
        &schedule,
        set,
        cpu,
        &trace::wcec_totals(set),
        SpeedBasis::WorstRemaining,
    );
    let mut deadline_lateness = 0.0f64;
    for (u, sub) in schedule.fps().sub_instances().iter().enumerate() {
        deadline_lateness =
            deadline_lateness.max((wc_trace.finish[u] - sub.instance_deadline).as_ms());
    }
    // Residual lateness corresponds to `lateness · f_max` cycles of
    // unbudgeted work; the simulator treats ≤ 1e-2 cycles as complete
    // (its `CYCLE_EPS`), so accept exactly up to that equivalence and
    // reject anything the runtime could observe.
    let lateness_tol_ms = 1e-2 / cpu.f_max().as_cycles_per_ms();
    if deadline_lateness > lateness_tol_ms {
        return Err(CoreError::SolveFailed {
            max_violation: deadline_lateness,
        });
    }
    let avg_outcome = trace::evaluate_trace(
        &schedule,
        set,
        cpu,
        &trace::acec_totals(set),
        SpeedBasis::WorstRemaining,
    );
    let diags = SolveDiagnostics {
        converged: true,
        max_violation: result.max_violation,
        outer_iterations: result.outer_iterations,
        evaluations: result.evaluations,
        predicted_avg_energy: avg_outcome.energy,
        predicted_worst_energy: report.energy,
    };
    schedule = StaticSchedule::from_parts(
        schedule.fps().clone(),
        schedule.milestones().to_vec(),
        kind,
        diags,
    )?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Ticks, Volt};
    use acs_model::Task;
    use acs_power::FreqModel;

    /// The paper's motivational system: 3 equal-period tasks in a 20 ms
    /// frame (degenerates to non-preemptive sequential scheduling).
    fn motivation() -> (TaskSet, Processor) {
        let mk = |n: &str| {
            Task::builder(n, Ticks::new(20))
                .wcec(Cycles::from_cycles(1000.0))
                .acec(Cycles::from_cycles(500.0))
                .bcec(Cycles::from_cycles(100.0))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")]).unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        (set, cpu)
    }

    #[test]
    fn wcs_on_motivation_matches_uniform_speed() {
        let (set, cpu) = motivation();
        let sched = synthesize_wcs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        // Classic result: equal speed throughout, ends at 6.67/13.33/20 ms.
        let ends: Vec<f64> = sched
            .milestones()
            .iter()
            .map(|m| m.end_time.as_ms())
            .collect();
        assert!((ends[0] - 20.0 / 3.0).abs() < 0.15, "ends = {ends:?}");
        assert!((ends[1] - 40.0 / 3.0).abs() < 0.15);
        assert!((ends[2] - 20.0).abs() < 0.15);
        // Worst-case energy ≈ 27000 (3 V each).
        let e = sched.diagnostics().predicted_worst_energy.as_units();
        assert!((e - 27000.0).abs() < 150.0, "worst energy = {e}");
    }

    #[test]
    fn acs_on_motivation_beats_wcs_average() {
        let (set, cpu) = motivation();
        let opts = SynthesisOptions::default();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
        let acs = synthesize_acs(&set, &cpu, &opts).unwrap();
        let e_wcs = wcs.diagnostics().predicted_avg_energy.as_units();
        let e_acs = acs.diagnostics().predicted_avg_energy.as_units();
        // Paper: 7961 vs 6000 — ACS saves ≈ 24%. Accept ≥ 15% to leave
        // slack for solver tolerance.
        let improvement = 1.0 - e_acs / e_wcs;
        assert!(
            improvement > 0.15,
            "ACS {e_acs} vs WCS {e_wcs} (improvement {improvement:.3})"
        );
        // Both remain worst-case feasible.
        assert!(verify::verify_worst_case(&acs, &set, &cpu, 1e-5).is_ok());
        assert!(verify::verify_worst_case(&wcs, &set, &cpu, 1e-5).is_ok());
    }

    #[test]
    fn acs_end_times_stretch_toward_paper_schedule() {
        let (set, cpu) = motivation();
        let acs = synthesize_acs(&set, &cpu, &SynthesisOptions::default()).unwrap();
        let ends: Vec<f64> = acs
            .milestones()
            .iter()
            .map(|m| m.end_time.as_ms())
            .collect();
        // The paper's hand schedule is {10, 15, 20}; the optimum must
        // stretch T1 well beyond its WCS end 6.67 (and T2 beyond 13.3).
        assert!(ends[0] > 8.0, "ends = {ends:?}");
        assert!(ends[1] > 14.0, "ends = {ends:?}");
        assert!((ends[2] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn preemptive_set_synthesizes_feasibly() {
        let set = TaskSet::new(vec![
            Task::builder("hi", Ticks::new(4))
                .wcec(Cycles::from_cycles(100.0))
                .acec(Cycles::from_cycles(40.0))
                .bcec(Cycles::from_cycles(10.0))
                .build()
                .unwrap(),
            Task::builder("lo", Ticks::new(8))
                .wcec(Cycles::from_cycles(150.0))
                .acec(Cycles::from_cycles(60.0))
                .bcec(Cycles::from_cycles(15.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.3))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        let opts = SynthesisOptions::default();
        let acs = synthesize_acs(&set, &cpu, &opts).unwrap();
        let wcs = synthesize_wcs(&set, &cpu, &opts).unwrap();
        assert!(verify::verify_worst_case(&acs, &set, &cpu, 1e-5).is_ok());
        assert!(acs.diagnostics().predicted_avg_energy <= wcs.diagnostics().predicted_avg_energy);
        // Conservation: every instance's chunks sum to WCEC.
        for (tid, task) in set.iter() {
            for inst in 0..acs.fps().instances_of(tid) {
                let sum: f64 = acs
                    .milestones_of(acs_preempt::InstanceId {
                        task: tid,
                        index: inst,
                    })
                    .iter()
                    .map(|m| m.worst_workload.as_cycles())
                    .sum();
                assert!((sum - task.wcec().as_cycles()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn overutilized_set_is_rejected() {
        let set = TaskSet::new(vec![Task::builder("x", Ticks::new(10))
            .wcec(Cycles::from_cycles(2001.0))
            .build()
            .unwrap()])
        .unwrap();
        let cpu = Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap();
        let err = synthesize_acs(&set, &cpu, &SynthesisOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)), "{err}");
    }

    #[test]
    fn sub_instance_cap_respected() {
        let (set, cpu) = motivation();
        let opts = SynthesisOptions {
            sub_instance_cap: 2,
            ..Default::default()
        };
        let err = synthesize_acs(&set, &cpu, &opts).unwrap_err();
        assert!(matches!(err, CoreError::Preempt(_)));
    }

    #[test]
    fn quick_options_still_feasible() {
        let (set, cpu) = motivation();
        let acs = synthesize_acs(&set, &cpu, &SynthesisOptions::quick()).unwrap();
        assert!(verify::verify_worst_case(&acs, &set, &cpu, 1e-4).is_ok());
    }
}
