//! The static voltage-schedule artifact handed to the online DVS phase.

use crate::error::CoreError;
use acs_model::units::{Cycles, Energy, Time};
use acs_preempt::{FullyPreemptiveSchedule, InstanceId, SubInstanceId};

/// Which offline strategy produced a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Average-case-aware schedule (the paper's contribution).
    Acs,
    /// Worst-case-only schedule (the paper's baseline).
    Wcs,
    /// Hand-built or externally supplied.
    Custom,
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleKind::Acs => write!(f, "ACS"),
            ScheduleKind::Wcs => write!(f, "WCS"),
            ScheduleKind::Custom => write!(f, "custom"),
        }
    }
}

/// Per-sub-instance milestone: the quantities the online DVS phase needs
/// (paper §3.2: "only the end-time and the worst-case workload variables
/// will be passed to the online DVS phase").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Milestone {
    /// The sub-instance this milestone belongs to.
    pub sub: SubInstanceId,
    /// Scheduled end time `e_u` (identical for average and worst case).
    pub end_time: Time,
    /// Worst-case workload share `R̂_u`.
    pub worst_workload: Cycles,
    /// Average workload share `R̄_u` under the fill rule (reporting only;
    /// the runtime never needs it).
    pub avg_workload: Cycles,
}

/// Solver telemetry attached to a synthesized schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveDiagnostics {
    /// Whether the NLP reached feasibility within tolerance.
    pub converged: bool,
    /// Largest remaining constraint violation.
    pub max_violation: f64,
    /// Outer (augmented-Lagrangian) iterations.
    pub outer_iterations: usize,
    /// Total objective/gradient evaluations.
    pub evaluations: usize,
    /// Predicted energy per hyper-period when every instance takes its
    /// ACEC and the greedy runtime policy runs (the NLP objective).
    pub predicted_avg_energy: Energy,
    /// Predicted energy per hyper-period when every instance takes its
    /// WCEC (the safety scenario).
    pub predicted_worst_energy: Energy,
}

/// A complete static voltage schedule: one [`Milestone`] per sub-instance
/// of the fully preemptive expansion, in total execution order.
///
/// The artifact owns its expansion so it is self-describing: consumers
/// (the simulator, the verifier, pretty-printers) never need to re-derive
/// sub-instance windows.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticSchedule {
    fps: FullyPreemptiveSchedule,
    milestones: Vec<Milestone>,
    kind: ScheduleKind,
    diagnostics: SolveDiagnostics,
}

impl StaticSchedule {
    /// Assembles a schedule from parts, validating alignment with the
    /// expansion.
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleMismatch`] when the milestone list does not
    /// match the expansion one-to-one and in order, when an end time lies
    /// outside its sub-instance window (beyond `1e-6` ms), or when a
    /// workload is negative (beyond `1e-9` cycles).
    pub fn from_parts(
        fps: FullyPreemptiveSchedule,
        milestones: Vec<Milestone>,
        kind: ScheduleKind,
        diagnostics: SolveDiagnostics,
    ) -> Result<Self, CoreError> {
        if milestones.len() != fps.len() {
            return Err(CoreError::ScheduleMismatch {
                reason: format!(
                    "{} milestones for {} sub-instances",
                    milestones.len(),
                    fps.len()
                ),
            });
        }
        const T_TOL: f64 = 1e-6;
        const C_TOL: f64 = 1e-9;
        for (i, m) in milestones.iter().enumerate() {
            if m.sub.0 != i {
                return Err(CoreError::ScheduleMismatch {
                    reason: format!("milestone {i} refers to sub-instance {}", m.sub),
                });
            }
            let s = fps.sub(m.sub);
            if m.end_time.as_ms() < s.window_start.as_ms() - T_TOL
                || m.end_time.as_ms() > s.window_end.as_ms() + T_TOL
            {
                return Err(CoreError::ScheduleMismatch {
                    reason: format!(
                        "end time {} of {} outside window [{}, {}]",
                        m.end_time,
                        s.label(),
                        s.window_start,
                        s.window_end
                    ),
                });
            }
            if m.worst_workload.as_cycles() < -C_TOL || m.avg_workload.as_cycles() < -C_TOL {
                return Err(CoreError::ScheduleMismatch {
                    reason: format!("negative workload on {}", s.label()),
                });
            }
        }
        Ok(StaticSchedule {
            fps,
            milestones,
            kind,
            diagnostics,
        })
    }

    /// The fully preemptive expansion this schedule is built on.
    pub fn fps(&self) -> &FullyPreemptiveSchedule {
        &self.fps
    }

    /// All milestones in total execution order.
    pub fn milestones(&self) -> &[Milestone] {
        &self.milestones
    }

    /// Milestone of one sub-instance.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn milestone(&self, id: SubInstanceId) -> &Milestone {
        &self.milestones[id.0]
    }

    /// Milestones of one instance, in chunk order.
    pub fn milestones_of(&self, instance: InstanceId) -> Vec<&Milestone> {
        self.fps
            .chunks_of(instance)
            .map(|id| self.milestone(id))
            .collect()
    }

    /// Which strategy produced this schedule.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// Solver telemetry.
    pub fn diagnostics(&self) -> &SolveDiagnostics {
        &self.diagnostics
    }

    /// Renders a compact human-readable table (one row per sub-instance).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>12}  window",
            "sub", "end(ms)", "R̂(cyc)", "R̄(cyc)"
        );
        for m in &self.milestones {
            let s = self.fps.sub(m.sub);
            let _ = writeln!(
                out,
                "{:<10} {:>10.3} {:>12.2} {:>12.2}  [{:.1}, {:.1}]",
                s.label(),
                m.end_time.as_ms(),
                m.worst_workload.as_cycles(),
                m.avg_workload.as_cycles(),
                s.window_start.as_ms(),
                s.window_end.as_ms(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::Ticks;
    use acs_model::{Task, TaskSet};

    fn fps() -> FullyPreemptiveSchedule {
        let ts = TaskSet::new(vec![
            Task::builder("a", Ticks::new(4))
                .wcec(Cycles::from_cycles(10.0))
                .build()
                .unwrap(),
            Task::builder("b", Ticks::new(8))
                .wcec(Cycles::from_cycles(20.0))
                .build()
                .unwrap(),
        ])
        .unwrap();
        FullyPreemptiveSchedule::expand(&ts).unwrap()
    }

    fn diag() -> SolveDiagnostics {
        SolveDiagnostics {
            converged: true,
            max_violation: 0.0,
            outer_iterations: 1,
            evaluations: 1,
            predicted_avg_energy: Energy::from_units(1.0),
            predicted_worst_energy: Energy::from_units(2.0),
        }
    }

    fn milestones_for(f: &FullyPreemptiveSchedule) -> Vec<Milestone> {
        f.sub_instances()
            .iter()
            .map(|s| Milestone {
                sub: s.id,
                end_time: s.window_end,
                worst_workload: Cycles::from_cycles(5.0),
                avg_workload: Cycles::from_cycles(2.5),
            })
            .collect()
    }

    #[test]
    fn from_parts_accepts_aligned() {
        let f = fps();
        let ms = milestones_for(&f);
        let sched = StaticSchedule::from_parts(f, ms, ScheduleKind::Acs, diag()).unwrap();
        assert_eq!(sched.kind(), ScheduleKind::Acs);
        assert_eq!(sched.milestones().len(), sched.fps().len());
        assert!(sched.diagnostics().converged);
    }

    #[test]
    fn rejects_wrong_count() {
        let f = fps();
        let err = StaticSchedule::from_parts(f, vec![], ScheduleKind::Wcs, diag()).unwrap_err();
        assert!(matches!(err, CoreError::ScheduleMismatch { .. }));
    }

    #[test]
    fn rejects_end_time_outside_window() {
        let f = fps();
        let mut ms = milestones_for(&f);
        ms[0].end_time = Time::from_ms(99.0);
        let err = StaticSchedule::from_parts(f, ms, ScheduleKind::Acs, diag()).unwrap_err();
        assert!(err.to_string().contains("outside window"));
    }

    #[test]
    fn rejects_negative_workload() {
        let f = fps();
        let mut ms = milestones_for(&f);
        ms[1].worst_workload = Cycles::from_cycles(-1.0);
        let err = StaticSchedule::from_parts(f, ms, ScheduleKind::Acs, diag()).unwrap_err();
        assert!(err.to_string().contains("negative workload"));
    }

    #[test]
    fn milestones_of_instance() {
        let f = fps();
        let ms = milestones_for(&f);
        let sched = StaticSchedule::from_parts(f, ms, ScheduleKind::Acs, diag()).unwrap();
        let inst = InstanceId {
            task: acs_model::TaskId(1),
            index: 0,
        };
        let list = sched.milestones_of(inst);
        assert_eq!(list.len(), 2); // task b split by a's release at 4
    }

    #[test]
    fn table_renders_rows() {
        let f = fps();
        let n = f.len();
        let ms = milestones_for(&f);
        let sched = StaticSchedule::from_parts(f, ms, ScheduleKind::Wcs, diag()).unwrap();
        let table = sched.to_table();
        assert_eq!(table.lines().count(), n + 1);
        assert!(table.contains("T0,1,1"));
    }

    #[test]
    fn kind_display() {
        assert_eq!(ScheduleKind::Acs.to_string(), "ACS");
        assert_eq!(ScheduleKind::Wcs.to_string(), "WCS");
        assert_eq!(ScheduleKind::Custom.to_string(), "custom");
    }
}
