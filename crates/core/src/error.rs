//! Error type for schedule synthesis.

use acs_model::ModelError;
use acs_power::PowerError;
use acs_preempt::PreemptError;
use std::error::Error as StdError;
use std::fmt;

/// Errors produced while synthesizing or validating static schedules.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Task-model error (propagated).
    Model(ModelError),
    /// Processor-model error (propagated).
    Power(PowerError),
    /// Fully-preemptive-expansion error (propagated).
    Preempt(PreemptError),
    /// The NLP solver terminated without reaching worst-case feasibility.
    SolveFailed {
        /// Largest remaining constraint violation (milliseconds or
        /// normalized cycles, whichever is worst).
        max_violation: f64,
    },
    /// Schedule parts were inconsistent (entry count or ordering mismatch
    /// with the fully preemptive expansion).
    ScheduleMismatch {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "task model error: {e}"),
            CoreError::Power(e) => write!(f, "power model error: {e}"),
            CoreError::Preempt(e) => write!(f, "expansion error: {e}"),
            CoreError::SolveFailed { max_violation } => write!(
                f,
                "voltage-schedule NLP did not reach feasibility \
                 (max violation {max_violation:.3e})"
            ),
            CoreError::ScheduleMismatch { reason } => {
                write!(f, "inconsistent schedule: {reason}")
            }
        }
    }
}

impl StdError for CoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Power(e) => Some(e),
            CoreError::Preempt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<PowerError> for CoreError {
    fn from(e: PowerError) -> Self {
        CoreError::Power(e)
    }
}

impl From<PreemptError> for CoreError {
    fn from(e: PreemptError) -> Self {
        CoreError::Preempt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(ModelError::EmptyTaskSet);
        assert!(e.to_string().contains("task model"));
        assert!(e.source().is_some());
        let s = CoreError::SolveFailed {
            max_violation: 1e-2,
        };
        assert!(s.to_string().contains("1.000e-2"));
        assert!(s.source().is_none());
    }
}
