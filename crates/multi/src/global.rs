//! Global multiprocessor dispatch: one shared ready pool across cores.
//!
//! Where [`partition`](crate::partition()) pins every task to a core up
//! front, global scheduling keeps a single queue of released jobs and,
//! at every scheduling event, runs the `m` most eligible jobs on the
//! `m` cores — RM priority order or EDF absolute-deadline order, per
//! [`SchedulingClass`]. Jobs may *migrate*: a preempted job can resume
//! on whichever core frees up first. Migrations are counted in
//! [`SimReport::migrations`]; the dispatcher is sticky (a job that
//! keeps its slot between events stays on its core, and a re-dispatched
//! job prefers the core it last ran on), so migrations only happen when
//! the eligibility order forces them.
//!
//! The dispatcher is intentionally schedule-free: it accepts the same
//! online policies the single-core engine runs without a static
//! schedule ([`NoDvs`](acs_sim::NoDvs), [`CcRm`](acs_sim::CcRm), …) and
//! shares one policy instance across all cores — utilization-driven
//! policies observe the whole set's releases and completions, which is
//! exactly the "global" view. Milestone schedules encode a single-core
//! worst-case interleaving and do not transfer to a migrating
//! dispatcher, so schedule-backed policies are rejected up front.
//!
//! On one core the dispatcher degenerates to the event engine's own
//! semantics and reproduces `acs-sim` byte-for-byte (every float
//! operation mirrors the engine's dispatch arithmetic); the
//! `global_differential` suite pins that equivalence. Precedence
//! graphs ([`acs_model::TaskGraph`]) gate readiness exactly like the
//! single-core engine: a job becomes eligible only once every
//! predecessor job of its graph instance has completed.

use crate::error::MultiError;
use crate::machine::MachineReport;
use acs_model::units::{Cycles, Energy, Freq, Time, TimeSpan};
use acs_model::{SchedulingClass, TaskId, TaskSet};
use acs_power::Processor;
use acs_sim::policy::{DispatchContext, IntoPolicy, Policy};
use acs_sim::{ExecutionTrace, SimOptions, SimReport, Slice, WorkloadSource};

/// How jobs are mapped onto the cores of a multiprocessor machine.
///
/// ```
/// use acs_multi::Placement;
///
/// assert_eq!(Placement::Global.label(), "global");
/// assert_eq!("partitioned".parse(), Ok(Placement::Partitioned));
/// assert!("clustered".parse::<Placement>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Placement {
    /// Every task is pinned to one core by a bin-packing heuristic
    /// ([`partition`](crate::partition())); cores run independent
    /// single-core simulations and jobs never migrate.
    Partitioned,
    /// One shared ready queue; at every scheduling event the `m` most
    /// eligible jobs (RM priority or EDF deadline order) run on the
    /// `m` cores, migrating when necessary ([`GlobalRun`]).
    Global,
}

impl Placement {
    /// Both placements, in canonical order.
    pub const ALL: [Placement; 2] = [Placement::Partitioned, Placement::Global];

    /// The short label used in scenarios, reports and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            Placement::Partitioned => "partitioned",
            Placement::Global => "global",
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Placement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "partitioned" => Ok(Placement::Partitioned),
            "global" => Ok(Placement::Global),
            other => Err(format!(
                "unknown placement `{other}` (known: partitioned, global)"
            )),
        }
    }
}

// Mirrors the single-core engine's tolerances (they are crate-private
// there; the values are part of the engine's determinism contract, see
// `docs/ENGINE.md`).
const EPS: f64 = 1e-9;
const CYCLE_EPS: f64 = 1e-2;

/// Per-round dispatch scratch: `(job, start_ms, dt, f_actual, voltage)`.
type RunningSlot = Option<(usize, f64, f64, f64, acs_model::units::Volt)>;

/// A global-dispatch run over `cores` identical processors.
///
/// The whole task set runs as one machine: releases follow the built-in
/// periodic pattern, readiness respects the set's precedence graph (if
/// any), and at every scheduling event the `m` most eligible ready jobs
/// execute. The per-core [`SimReport`]s land in a [`MachineReport`]
/// exactly like partitioned runs, with migrations attributed to the
/// core a job *arrived* on and preemptions to the core that displaced
/// the previous job.
///
/// ```
/// use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Volt}};
/// use acs_power::{FreqModel, Processor};
/// use acs_sim::{NoDvs, SimOptions};
/// use acs_multi::GlobalRun;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TaskSet::new(vec![
///     Task::builder("a", Ticks::new(10)).wcec(Cycles::from_cycles(800.0)).build()?,
///     Task::builder("b", Ticks::new(10)).wcec(Cycles::from_cycles(800.0)).build()?,
/// ])?;
/// let cpu = Processor::builder(FreqModel::linear(50.0)?)
///     .vmax(Volt::from_volts(4.0)).build()?;
/// let run = GlobalRun { set: &set, cpu: &cpu, cores: 2, options: SimOptions::default() };
/// let out = run.run(NoDvs, &mut |_, _| Cycles::from_cycles(800.0))?;
/// assert_eq!(out.report.to_sim_report().jobs_completed, 2);
/// assert!(out.report.all_deadlines_met());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GlobalRun<'a> {
    /// The whole-machine task set (never partitioned).
    pub set: &'a TaskSet,
    /// The processor model every core instantiates.
    pub cpu: &'a Processor,
    /// Number of identical cores.
    pub cores: usize,
    /// Simulation options (`class` selects RM vs EDF eligibility;
    /// `record_trace` records per-core traces of the first
    /// hyper-period).
    pub options: SimOptions,
}

/// Result of [`GlobalRun::run`].
#[derive(Debug, Clone)]
pub struct GlobalOutput {
    /// Per-core reports, machine-shaped like a partitioned run.
    pub report: MachineReport,
    /// Per-core traces of the first hyper-period when
    /// [`SimOptions::record_trace`] is set (indexed by core).
    pub traces: Option<Vec<ExecutionTrace>>,
}

/// One job (task instance) of the current hyper-period.
struct GJob {
    task: usize,
    instance: u64,
    release_ms: f64,
    deadline_ms: f64,
    remaining: f64,
    executed: f64,
    /// Remaining budget of the synthetic single chunk (starts at WCEC).
    budget_left: f64,
    done: bool,
    released: bool,
    /// Held back by the precedence gate (released but not eligible).
    waiting: bool,
    /// Core this job last executed on (`None` before its first
    /// dispatch — a first dispatch is never a migration).
    last_core: Option<usize>,
}

/// Per-hyper-period machine state.
struct Machine {
    jobs: Vec<GJob>,
    /// Unfinished same-instance predecessor jobs per job (empty vec
    /// when the set has no graph).
    pred_left: Vec<usize>,
    succ_jobs: Vec<Vec<usize>>,
    /// Job indices in release order `(release_ms, job)`.
    order: Vec<usize>,
    ptr: usize,
    per_core: Vec<SimReport>,
    traces: Option<Vec<ExecutionTrace>>,
    last_voltage: Vec<Option<f64>>,
    last_dispatched: Vec<Option<usize>>,
    class: SchedulingClass,
    floors: Vec<f64>,
    deadline_tol_ms: f64,
}

impl Machine {
    fn charge_idle(&mut self, cpu: &Processor, core: usize, span_ms: f64) {
        let r = &mut self.per_core[core];
        r.idle_time += TimeSpan::from_ms(span_ms);
        let idle_power = cpu.idle_power();
        if idle_power > 0.0 {
            let e = Energy::from_units(idle_power * span_ms);
            r.idle_energy += e;
            r.energy += e;
        }
    }

    /// Completes job `i` at time `t` on `core`'s report, with full
    /// deadline accounting, and fires the completion hook.
    fn complete(
        &mut self,
        set: &TaskSet,
        cpu: &Processor,
        policy: &mut dyn Policy,
        i: usize,
        t: f64,
        core: usize,
    ) {
        let j = &mut self.jobs[i];
        j.done = true;
        let r = &mut self.per_core[core];
        r.jobs_completed += 1;
        r.worst_lateness_ms = r.worst_lateness_ms.max(t - j.deadline_ms);
        if t > j.deadline_ms + self.deadline_tol_ms {
            r.deadline_misses += 1;
        }
        let (task, executed) = (TaskId(j.task), j.executed);
        policy.on_completion(task, Cycles::from_cycles(executed), set, cpu);
    }

    /// Propagates a completion through the precedence gate: dependents
    /// lose one outstanding predecessor; a freed dependent with no
    /// remaining work completes instantly (cascading further), one with
    /// work simply becomes eligible at the next scheduling event.
    fn cascade(
        &mut self,
        set: &TaskSet,
        cpu: &Processor,
        policy: &mut dyn Policy,
        root: usize,
        t: f64,
        core: usize,
    ) {
        let mut stack = vec![root];
        while let Some(done_job) = stack.pop() {
            let succs = self.succ_jobs[done_job].clone();
            for s in succs {
                self.pred_left[s] -= 1;
                if self.pred_left[s] > 0 || !self.jobs[s].waiting {
                    continue;
                }
                self.jobs[s].waiting = false;
                if !self.jobs[s].done && self.jobs[s].remaining <= CYCLE_EPS {
                    self.complete(set, cpu, policy, s, t, core);
                    stack.push(s);
                }
            }
        }
    }
}

impl GlobalRun<'_> {
    /// Runs the global simulation. `workload` is called once per job
    /// with the task id and the absolute instance index across the run
    /// (hyper-period-major, task-major within — the same draw order as
    /// the single-core engine, so one workload stream serves both
    /// placements).
    ///
    /// # Errors
    ///
    /// [`MultiError::InvalidCoreCount`] for zero cores;
    /// [`MultiError::Sim`] when the policy requires a static schedule,
    /// a workload draw is invalid, or the processor stalls.
    pub fn run(
        &self,
        policy: impl IntoPolicy,
        workload: &mut dyn FnMut(TaskId, u64) -> Cycles,
    ) -> Result<GlobalOutput, MultiError> {
        // `&mut dyn FnMut` is itself a (per-draw) `WorkloadSource`.
        self.run_source(policy, &mut { workload })
    }

    /// [`GlobalRun::run`] over a batched [`WorkloadSource`]: each
    /// hyper-period build pulls every task's whole instance window in
    /// one `draw_batch` call (same task-major order as the per-job
    /// closure, so under the batch purity contract the results are
    /// byte-identical — and one workload stream still serves both the
    /// single-core and global placements).
    ///
    /// # Errors
    ///
    /// Same as [`GlobalRun::run`].
    pub fn run_source(
        &self,
        policy: impl IntoPolicy,
        workload: &mut dyn WorkloadSource,
    ) -> Result<GlobalOutput, MultiError> {
        if self.cores == 0 {
            return Err(MultiError::InvalidCoreCount);
        }
        let mut policy = policy.into_policy();
        if policy.needs_schedule() {
            return Err(MultiError::Sim(format!(
                "policy {} requires a static schedule — global dispatch \
                 runs schedule-free policies only",
                policy.name()
            )));
        }
        let set = self.set;
        let cpu = self.cpu;
        let class = self.options.class.unwrap_or_else(|| set.class());
        let floors: Vec<f64> = set
            .tasks()
            .iter()
            .map(|t| cpu.floor_speed(t.c_eff()).as_cycles_per_ms())
            .collect();

        let mut totals: Vec<SimReport> = (0..self.cores)
            .map(|_| SimReport::empty(set.len()))
            .collect();
        let mut traces_out: Option<Vec<ExecutionTrace>> = None;
        let mut abs_base: u64 = 0;
        let instances_per_hyper = set.total_instances();

        for h in 0..self.options.hyper_periods {
            let record = self.options.record_trace && h == 0;
            policy.on_start(set, cpu);
            let mut m = self.build_hyper_period(
                policy.as_mut(),
                workload,
                abs_base,
                record,
                class,
                &floors,
            )?;
            self.run_hyper_period(policy.as_mut(), &mut m)?;
            for (total, hp) in totals.iter_mut().zip(&m.per_core) {
                total.absorb(hp);
            }
            if record {
                traces_out = m.traces.take();
            }
            abs_base += instances_per_hyper;
        }

        Ok(GlobalOutput {
            report: MachineReport {
                per_core: totals,
                machine_hyper_periods: self.options.hyper_periods,
            },
            traces: traces_out,
        })
    }

    /// Draws workloads, builds the hyper-period's jobs (task-major, one
    /// per instance) and the precedence gate.
    fn build_hyper_period(
        &self,
        _policy: &mut dyn Policy,
        workload: &mut dyn WorkloadSource,
        abs_base: u64,
        record: bool,
        class: SchedulingClass,
        floors: &[f64],
    ) -> Result<Machine, MultiError> {
        let set = self.set;
        // Machine-level counters (clamps, gate completions) land on
        // core 0 — on one core this reproduces the engine's report.
        let mut per_core: Vec<SimReport> = (0..self.cores)
            .map(|_| {
                let mut r = SimReport::empty(set.len());
                r.hyper_periods = 1;
                r
            })
            .collect();

        let mut jobs: Vec<GJob> = Vec::with_capacity(set.total_instances() as usize);
        let mut abs_counter = abs_base;
        let mut drawn_buf: Vec<Cycles> = Vec::new();
        for (tid, task) in set.iter() {
            // One batched draw per task per hyper-period — identical
            // stream to per-job draws by the batch purity contract.
            drawn_buf.clear();
            workload.draw_batch(tid, abs_counter, set.instances_of(tid), &mut drawn_buf);
            abs_counter += set.instances_of(tid);
            for (inst, &drawn) in drawn_buf.iter().enumerate() {
                let inst = inst as u64;
                let release = (inst * task.period().get()) as f64;
                let raw = drawn.as_cycles();
                if !raw.is_finite() || raw < 0.0 {
                    return Err(MultiError::Sim(format!(
                        "invalid workload {raw} cycles drawn for task {} instance {inst}",
                        tid.0
                    )));
                }
                let wcec = task.wcec().as_cycles();
                let actual = if raw > wcec {
                    per_core[0].clamped_draws += 1;
                    wcec
                } else {
                    raw
                };
                jobs.push(GJob {
                    task: tid.0,
                    instance: inst,
                    release_ms: release,
                    deadline_ms: release + task.deadline().get() as f64,
                    remaining: actual,
                    executed: 0.0,
                    budget_left: wcec,
                    done: false,
                    released: false,
                    waiting: false,
                    last_core: None,
                });
            }
        }

        // Precedence gate over task-major jobs: edge endpoints share a
        // period (validated at graph construction), so instance `k`
        // pairs with instance `k`.
        let n = jobs.len();
        let mut pred_left = vec![0usize; n];
        let mut succ_jobs: Vec<Vec<usize>> = vec![Vec::new(); n];
        if let Some(g) = set.graph().filter(|g| !g.is_empty()) {
            let mut base = vec![0usize; set.len()];
            let mut acc = 0usize;
            for (tid, _) in set.iter() {
                base[tid.0] = acc;
                acc += set.instances_of(tid) as usize;
            }
            for &(a, b) in g.edges() {
                for k in 0..set.instances_of(a) as usize {
                    succ_jobs[base[a.0] + k].push(base[b.0] + k);
                    pred_left[base[b.0] + k] += 1;
                }
            }
        }

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .release_ms
                .total_cmp(&jobs[b].release_ms)
                .then(a.cmp(&b))
        });

        Ok(Machine {
            jobs,
            pred_left,
            succ_jobs,
            order,
            ptr: 0,
            per_core,
            traces: record.then(|| (0..self.cores).map(|_| ExecutionTrace::new()).collect()),
            last_voltage: vec![None; self.cores],
            last_dispatched: vec![None; self.cores],
            class,
            floors: floors.to_vec(),
            deadline_tol_ms: self.options.deadline_tol_ms,
        })
    }

    /// The event loop of one hyper-period: admit releases, open the
    /// gate, pick the `m` most eligible jobs, assign cores stickily,
    /// execute until the next scheduling event, process completions.
    #[allow(clippy::too_many_lines)]
    fn run_hyper_period(&self, policy: &mut dyn Policy, m: &mut Machine) -> Result<(), MultiError> {
        let set = self.set;
        let cpu = self.cpu;
        let h_ms = set.hyper_period().get() as f64;
        let mut t = 0.0f64;
        let mut admitted: Vec<usize> = Vec::new();
        let mut running: Vec<RunningSlot> = vec![None; self.cores];

        loop {
            // ---- admit due releases, in (time, job) order ----
            admitted.clear();
            while m.ptr < m.order.len() && m.jobs[m.order[m.ptr]].release_ms <= t + EPS {
                let i = m.order[m.ptr];
                m.ptr += 1;
                policy.on_release(TaskId(m.jobs[i].task), set, cpu);
                m.jobs[i].released = true;
                admitted.push(i);
            }
            admitted.sort_unstable();
            for &i in &admitted {
                if m.pred_left[i] > 0 {
                    m.jobs[i].waiting = true;
                }
            }
            // Zero-workload jobs complete instantly (job-index order,
            // like the engine's admission scan — at release time, so no
            // lateness accounting is needed here; gate-freed cascades
            // use the full accounting path).
            for &i in &admitted {
                if m.jobs[i].waiting {
                    continue;
                }
                if !m.jobs[i].done && m.jobs[i].remaining <= CYCLE_EPS {
                    let j = &mut m.jobs[i];
                    j.done = true;
                    m.per_core[0].jobs_completed += 1;
                    let (task, executed) = (TaskId(j.task), j.executed);
                    policy.on_completion(task, Cycles::from_cycles(executed), set, cpu);
                    m.cascade(set, cpu, policy, i, t, 0);
                }
            }

            // ---- eligibility: released, ungated, unfinished ----
            let mut cand: Vec<usize> = (0..m.jobs.len())
                .filter(|&i| {
                    let j = &m.jobs[i];
                    j.released && !j.done && !j.waiting && j.remaining > CYCLE_EPS
                })
                .collect();
            if cand.is_empty() {
                if m.ptr < m.order.len() {
                    let next = m.jobs[m.order[m.ptr]].release_ms;
                    for c in 0..self.cores {
                        m.charge_idle(cpu, c, next - t);
                    }
                    t = next;
                    continue;
                }
                if t < h_ms {
                    for c in 0..self.cores {
                        m.charge_idle(cpu, c, h_ms - t);
                    }
                }
                return Ok(());
            }
            // The engine's ReadyKey order: RM compares on priority
            // (task id), EDF on absolute deadline first.
            let key = |i: usize| -> (f64, usize, f64, usize) {
                let j = &m.jobs[i];
                let deadline = match m.class {
                    SchedulingClass::FixedPriorityRm => 0.0,
                    SchedulingClass::Edf => j.deadline_ms,
                };
                (deadline, j.task, j.release_ms, i)
            };
            cand.sort_by(|&a, &b| {
                let (ka, kb) = (key(a), key(b));
                ka.0.total_cmp(&kb.0)
                    .then(ka.1.cmp(&kb.1))
                    .then(ka.2.total_cmp(&kb.2))
                    .then(ka.3.cmp(&kb.3))
            });
            let selected = &cand[..self.cores.min(cand.len())];

            // ---- sticky core assignment ----
            // Pass 1 (eligibility order): keep the core a job last ran
            // on when free. Pass 2: everyone else takes the lowest free
            // core; arriving on a different core than the last run is a
            // migration, attributed to the arrival core.
            let mut claimed = vec![false; self.cores];
            let mut core_of: Vec<Option<usize>> = vec![None; selected.len()];
            for (s, &i) in selected.iter().enumerate() {
                if let Some(c) = m.jobs[i].last_core {
                    if !claimed[c] {
                        claimed[c] = true;
                        core_of[s] = Some(c);
                    }
                }
            }
            for (s, &i) in selected.iter().enumerate() {
                if core_of[s].is_some() {
                    continue;
                }
                let c = (0..self.cores)
                    .find(|&c| !claimed[c])
                    .expect("at most `cores` jobs are selected");
                claimed[c] = true;
                core_of[s] = Some(c);
                if m.jobs[i].last_core.is_some_and(|lc| lc != c) {
                    m.per_core[c].migrations += 1;
                }
            }

            // ---- dispatch the selected jobs, in core order ----
            for r in running.iter_mut() {
                *r = None;
            }
            let mut assignment: Vec<Option<usize>> = vec![None; self.cores];
            for (s, &i) in selected.iter().enumerate() {
                assignment[core_of[s].expect("every selected job got a core")] = Some(i);
            }
            let mut next_t = f64::INFINITY;
            for c in 0..self.cores {
                let Some(i) = assignment[c] else { continue };
                if let Some(prev) = m.last_dispatched[c] {
                    if prev != i && !m.jobs[prev].done && m.jobs[prev].remaining > CYCLE_EPS {
                        m.per_core[c].preemptions += 1;
                    }
                }
                m.last_dispatched[c] = Some(i);
                m.jobs[i].last_core = Some(c);

                let (task, budget_left, remaining, deadline_ms) = {
                    let j = &m.jobs[i];
                    (j.task, j.budget_left, j.remaining, j.deadline_ms)
                };
                let ctx = DispatchContext {
                    set,
                    cpu,
                    task: TaskId(task),
                    now: Time::from_ms(t),
                    chunk_end: Time::from_ms(deadline_ms),
                    chunk_budget_remaining: Cycles::from_cycles(budget_left),
                    static_speed: cpu.f_max(),
                    sub: None,
                };
                let (speed, clamped) = cpu.clamp_speed(policy.on_dispatch(&ctx));
                let speed = speed.max(Freq::from_cycles_per_ms(m.floors[task]));
                let (v, table_saturated) = match cpu.dispatch_voltage(speed) {
                    Ok(v) => (v, false),
                    Err(_) => (cpu.vmax(), true),
                };
                if clamped || table_saturated {
                    m.per_core[c].saturated_dispatches += 1;
                }
                let f_actual = cpu
                    .freq_at(v)
                    .map_err(|e| MultiError::Sim(e.to_string()))?
                    .as_cycles_per_ms();
                if f_actual <= 1e-12 {
                    return Err(MultiError::Sim(
                        "processor frequency is zero at the dispatched voltage".into(),
                    ));
                }

                let overhead = cpu.overhead();
                let changed = m.last_voltage[c]
                    .map(|lv| (lv - v.as_volts()).abs() > 1e-9)
                    .unwrap_or(false);
                let mut start = t;
                if changed {
                    m.per_core[c].voltage_switches += 1;
                    m.per_core[c].energy += overhead.energy;
                    start += overhead.time.as_ms();
                }
                m.last_voltage[c] = Some(v.as_volts());

                // Engine dispatch arithmetic, verbatim (the m=1
                // differential pins byte equality on these ops).
                let until_complete = remaining / f_actual;
                let until_budget = if budget_left > EPS && budget_left < remaining {
                    budget_left / f_actual
                } else {
                    f64::INFINITY
                };
                let next_release = if m.ptr < m.order.len() {
                    m.jobs[m.order[m.ptr]].release_ms
                } else {
                    f64::INFINITY
                };
                let until_event = if next_release.is_finite() {
                    (next_release - start).max(0.0)
                } else {
                    f64::INFINITY
                };
                let dt = until_complete.min(until_budget).min(until_event).max(0.0);
                running[c] = Some((i, start, dt, f_actual, v));
                next_t = next_t.min(start + dt);
            }

            // ---- execute until the next scheduling event ----
            // Cores ending exactly at `next_t` run their full slice
            // (the engine's own `dt`); later-ending cores are chopped
            // at `next_t`, where the machine schedule is re-evaluated.
            for c in 0..self.cores {
                let Some((i, start, dt, f_actual, v)) = running[c] else {
                    m.charge_idle(cpu, c, next_t - t);
                    continue;
                };
                let dt_run = if start + dt <= next_t {
                    dt
                } else {
                    (next_t - start).max(0.0)
                };
                let cycles = f_actual * dt_run;
                {
                    let j = &mut m.jobs[i];
                    j.remaining = (j.remaining - cycles).max(0.0);
                    j.budget_left -= cycles;
                    j.executed += cycles;
                }
                let task = m.jobs[i].task;
                let c_eff = set.tasks()[task].c_eff();
                let e = cpu.energy(c_eff, v, Cycles::from_cycles(cycles));
                m.per_core[c].energy += e;
                m.per_core[c].per_task_energy[task] += e;
                let leak = cpu.static_power_at(v);
                if leak > 0.0 {
                    let e_static = Energy::from_units(leak * dt_run);
                    m.per_core[c].static_energy += e_static;
                    m.per_core[c].energy += e_static;
                }
                m.per_core[c].busy_time += TimeSpan::from_ms(dt_run);
                if let Some(traces) = m.traces.as_mut() {
                    if dt_run > 0.0 {
                        traces[c].push(Slice {
                            task: TaskId(task),
                            instance: m.jobs[i].instance,
                            start: Time::from_ms(start),
                            end: Time::from_ms(start + dt_run),
                            voltage: v,
                        });
                    }
                }
                running[c] = Some((i, start, dt_run, f_actual, v));
            }

            // ---- completions (core order), then advance the clock ----
            for (c, slot) in running.iter().enumerate() {
                let Some((i, start, dt_run, _, _)) = *slot else {
                    continue;
                };
                if !m.jobs[i].done && m.jobs[i].remaining <= CYCLE_EPS {
                    let end = start + dt_run;
                    m.complete(set, cpu, policy, i, end, c);
                    m.cascade(set, cpu, policy, i, end, c);
                }
            }
            t = next_t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::{Ticks, Volt};
    use acs_model::{Task, TaskGraph};
    use acs_power::FreqModel;
    use acs_sim::{CcRm, GreedyReclaim, NoDvs};

    fn task(name: &str, period: u64, wcec: f64) -> Task {
        Task::builder(name, Ticks::new(period))
            .wcec(Cycles::from_cycles(wcec))
            .build()
            .unwrap()
    }

    fn cpu() -> Processor {
        Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .build()
            .unwrap()
    }

    #[test]
    fn placement_labels_round_trip() {
        for p in Placement::ALL {
            assert_eq!(p.label().parse::<Placement>(), Ok(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert!("clustered".parse::<Placement>().is_err());
    }

    #[test]
    fn overloaded_single_core_heals_on_two() {
        // Two tasks, each needing the full capacity of one core at
        // f_max: one core misses, two cores meet every deadline with
        // both running concurrently.
        let set = TaskSet::new(vec![task("a", 10, 2000.0), task("b", 10, 2000.0)]).unwrap();
        let cpu = cpu();
        let mut wl = |tid: TaskId, _| set.tasks()[tid.0].wcec();
        let one = GlobalRun {
            set: &set,
            cpu: &cpu,
            cores: 1,
            options: SimOptions::default(),
        }
        .run(NoDvs, &mut wl)
        .unwrap();
        assert!(!one.report.all_deadlines_met());
        let two = GlobalRun {
            set: &set,
            cpu: &cpu,
            cores: 2,
            options: SimOptions::default(),
        }
        .run(NoDvs, &mut wl)
        .unwrap();
        assert!(two.report.all_deadlines_met());
        let r = two.report.to_sim_report();
        assert_eq!(r.jobs_completed, 2);
        assert_eq!(r.migrations, 0, "independent full-load jobs never move");
    }

    #[test]
    fn dag_set_runs_in_topological_order_across_cores() {
        // t3 -> t1: even with two cores, no slice of t1 may start
        // before t3 completes.
        let mk = |n: &str| {
            Task::builder(n, Ticks::new(20))
                .wcec(Cycles::from_cycles(1000.0))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("t1"), mk("t2"), mk("t3")]).unwrap();
        let graph = TaskGraph::new(&set, vec![("t3", "t1")]).unwrap();
        let set = set.with_graph(graph);
        let cpu = cpu();
        let run = GlobalRun {
            set: &set,
            cpu: &cpu,
            cores: 2,
            options: SimOptions {
                record_trace: true,
                ..SimOptions::default()
            },
        };
        let out = run
            .run(NoDvs, &mut |tid, _| set.tasks()[tid.0].wcec())
            .unwrap();
        assert!(out.report.all_deadlines_met());
        let traces = out.traces.expect("trace recorded");
        let pred_end = traces
            .iter()
            .flat_map(|tr| tr.slices())
            .filter(|s| s.task == TaskId(2))
            .map(|s| s.end.as_ms())
            .fold(0.0f64, f64::max);
        for s in traces.iter().flat_map(|tr| tr.slices()) {
            if s.task == TaskId(0) {
                assert!(
                    s.start.as_ms() >= pred_end - 1e-9,
                    "successor slice at {} precedes predecessor end {pred_end}",
                    s.start.as_ms()
                );
            }
        }
    }

    #[test]
    fn preempted_job_migrates_to_a_freed_core() {
        // EDF, 2 cores, fmax = 200 cycles/ms. First hyper-period:
        // u (d=8) takes core 0 and p0 (d=10) core 1; q0 (d=12) follows
        // p0 on core 1, v (d=16) follows u on core 0. Core 1 frees
        // first (q0 ends at 10, v holds core 0 until 14), so c (d=40)
        // starts on core 1. At t=20 the fresh p1/q1 pair displaces c:
        // p1 lands on core 0, q1 on core 1. p1 (2 ms) frees core 0
        // while q1 (8 ms) still holds c's old core 1 -- c resumes on
        // core 0. Exactly one migration, attributed to the arrival
        // core; the displacement itself is a preemption on core 1.
        let mk = |n: &str, period: u64, d: u64, wcec: f64| {
            Task::builder(n, Ticks::new(period))
                .deadline(Ticks::new(d))
                .wcec(Cycles::from_cycles(wcec))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![
            mk("p", 20, 10, 400.0),
            mk("q", 20, 12, 1600.0),
            mk("u", 40, 8, 1200.0),
            mk("v", 40, 16, 1600.0),
            mk("c", 40, 40, 3000.0),
        ])
        .unwrap()
        .with_class(SchedulingClass::Edf);
        let cpu = cpu();
        let run = GlobalRun {
            set: &set,
            cpu: &cpu,
            cores: 2,
            options: SimOptions::default(),
        };
        let out = run
            .run(NoDvs, &mut |tid, _| set.tasks()[tid.0].wcec())
            .unwrap();
        let r = out.report.to_sim_report();
        assert_eq!(r.jobs_completed as u64, set.total_instances());
        assert!(r.all_deadlines_met(), "lateness {}", r.worst_lateness_ms);
        assert_eq!(r.migrations, 1, "c moves core 1 to core 0 exactly once");
        assert!(r.preemptions >= 1, "the p1/q1 pair displaces c");
    }

    #[test]
    fn schedule_backed_policies_are_rejected() {
        let set = TaskSet::new(vec![task("a", 10, 500.0)]).unwrap();
        let cpu = cpu();
        let run = GlobalRun {
            set: &set,
            cpu: &cpu,
            cores: 2,
            options: SimOptions::default(),
        };
        let err = run
            .run(GreedyReclaim, &mut |_, _| Cycles::from_cycles(100.0))
            .unwrap_err();
        assert!(err.to_string().contains("static schedule"), "{err}");
        assert_eq!(
            GlobalRun {
                set: &set,
                cpu: &cpu,
                cores: 0,
                options: SimOptions::default(),
            }
            .run(NoDvs, &mut |_, _| Cycles::from_cycles(100.0))
            .unwrap_err(),
            MultiError::InvalidCoreCount
        );
    }

    #[test]
    fn ccrm_runs_globally_with_shared_state() {
        let set = TaskSet::new(vec![
            task("a", 10, 400.0),
            task("b", 20, 600.0),
            task("c", 20, 500.0),
        ])
        .unwrap();
        let cpu = cpu();
        let out = GlobalRun {
            set: &set,
            cpu: &cpu,
            cores: 2,
            options: SimOptions {
                hyper_periods: 3,
                ..SimOptions::default()
            },
        }
        .run(CcRm::default(), &mut |tid, _| {
            Cycles::from_cycles(set.tasks()[tid.0].wcec().as_cycles() * 0.5)
        })
        .unwrap();
        let r = out.report.to_sim_report();
        assert!(r.all_deadlines_met());
        assert_eq!(r.jobs_completed as u64, 3 * set.total_instances());
    }
}
