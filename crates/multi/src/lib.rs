//! # acs-multi
//!
//! Multiprocessor layer for the `acsched` workspace: partitioned and
//! global placements over N identical cores.
//!
//! The paper's machinery — offline synthesis, the event-driven engine,
//! the online [`Policy`](acs_sim::Policy) API — is single-processor.
//! This crate lifts it to N identical cores the *partitioned* way
//! (Nélis et al., power-aware scheduling on identical multiprocessors):
//!
//! 1. [`partition()`] assigns the task set to cores with a bin-packing
//!    heuristic over worst-case utilizations ([`PartitionHeuristic`]:
//!    first-fit / best-fit / worst-fit decreasing);
//! 2. each core runs the unchanged single-core engine and its own fresh
//!    policy instance ([`MachineRun`]);
//! 3. per-core [`SimReport`](acs_sim::SimReport)s are aggregated into a
//!    [`MachineReport`] with a machine-level
//!    [`EnergyBreakdown`](acs_sim::EnergyBreakdown) (dynamic vs static
//!    vs idle — leakage modeling lives in `acs-power`).
//!
//! Partitioner choice matters for energy: worst-fit decreasing spreads
//! load thin, handing every core more slack for DVS to reclaim, while
//! best-fit packs cores full and leaves whole cores idle (cheap on
//! platforms that power-gate, expensive when `idle_power > 0`). The
//! `acs-runtime` campaign axes (`cores`, `partitioners`) sweep exactly
//! this trade-off.
//!
//! The alternative to pinning is *global* dispatch ([`GlobalRun`],
//! selected by [`Placement::Global`]): one shared ready queue, the `m`
//! most eligible jobs on `m` cores, jobs migrating between cores when
//! the eligibility order forces it. Global placement is the only way to
//! run precedence-constrained sets ([`acs_model::TaskGraph`]) on
//! multiple cores — precedence edges cannot cross a partition, and
//! [`partition()`] rejects such sets up front.
//!
//! ## Example
//!
//! ```
//! use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Volt}};
//! use acs_multi::{partition, MachineRun, PartitionHeuristic};
//! use acs_power::{FreqModel, Processor};
//! use acs_sim::{NoDvs, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = TaskSet::new(vec![
//!     Task::builder("a", Ticks::new(10)).wcec(Cycles::from_cycles(1000.0)).build()?,
//!     Task::builder("b", Ticks::new(20)).wcec(Cycles::from_cycles(900.0)).build()?,
//! ])?;
//! let cpu = Processor::builder(FreqModel::linear(50.0)?)
//!     .vmin(Volt::from_volts(0.5))
//!     .vmax(Volt::from_volts(4.0))
//!     .static_power(5.0)
//!     .build()?;
//!
//! let p = partition(&set, cpu.f_max(), 2, PartitionHeuristic::WorstFitDecreasing)?;
//! assert_eq!(p.busy_cores(), 2);
//!
//! let report = MachineRun {
//!     partition: &p,
//!     cpu: &cpu,
//!     schedules: None,
//!     options: SimOptions::default(),
//! }
//! .run(|| Box::new(NoDvs), &mut |_core, _task, _abs| Cycles::from_cycles(400.0))?;
//! assert!(report.all_deadlines_met());
//! let split = report.breakdown();
//! assert!(split.static_ > acs_model::units::Energy::ZERO);
//! assert_eq!(split.total(), report.energy());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod global;
pub mod machine;
pub mod partition;

pub use error::MultiError;
pub use global::{GlobalOutput, GlobalRun, Placement};
pub use machine::{CoreSourceFactory, MachineReport, MachineRun};
pub use partition::{partition, CoreAssignment, Partition, PartitionHeuristic};
