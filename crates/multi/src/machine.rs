//! Running a [`Partition`] on N identical cores: one single-core
//! [`Simulator`] per core, one fresh [`Policy`] per core, aggregated
//! into a machine-level report.

use crate::error::MultiError;
use crate::partition::Partition;
use acs_core::StaticSchedule;
use acs_model::units::{Cycles, Energy, TimeSpan};
use acs_model::{TaskId, TaskSet};
use acs_power::Processor;
use acs_sim::{
    ArrivalSource, EnergyBreakdown, Policy, SimOptions, SimReport, Simulator, WorkloadSource,
};
use std::cell::RefCell;

/// Per-core arrival-source factory passed to
/// [`MachineRun::run_with_sources`]: `(core, core's task set)` →
/// `Some(source)` to drive that core from generated/recorded releases,
/// `None` for the classic periodic grid.
pub type CoreSourceFactory<'a> = dyn FnMut(usize, &TaskSet) -> Option<Box<dyn ArrivalSource>> + 'a;

/// One machine run: the partition, the per-core hardware (identical
/// cores), the per-core schedules and the simulation options.
///
/// `options.hyper_periods` counts **machine** hyper-periods; each core
/// simulates `hyper_periods × machine_hyper_period / core_hyper_period`
/// of its own hyper-periods, so every core covers exactly the same
/// wall-clock horizon.
#[derive(Debug, Clone)]
pub struct MachineRun<'a> {
    /// The task-to-core assignment to execute.
    pub partition: &'a Partition,
    /// The (identical) per-core processor.
    pub cpu: &'a Processor,
    /// One static schedule per **non-empty** core, in core order —
    /// `None` for schedule-free policies.
    pub schedules: Option<&'a [StaticSchedule]>,
    /// Simulation options; `hyper_periods` counts machine hyper-periods.
    pub options: SimOptions,
}

/// The aggregated outcome of a [`MachineRun`]: every core's own
/// [`SimReport`] plus machine-level folds.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineReport {
    /// Per-core reports, in core order (empty cores carry an idle-only
    /// report: no jobs, `idle_energy = P_idle × horizon`).
    pub per_core: Vec<SimReport>,
    /// Machine hyper-periods simulated.
    pub machine_hyper_periods: u64,
}

impl MachineReport {
    /// Total machine energy (sum over cores).
    pub fn energy(&self) -> Energy {
        self.per_core.iter().map(|r| r.energy).sum()
    }

    /// Machine-level energy split, folded over the per-core breakdowns.
    pub fn breakdown(&self) -> EnergyBreakdown {
        let mut out = EnergyBreakdown::default();
        for r in &self.per_core {
            out.absorb(&r.breakdown());
        }
        out
    }

    /// Per-core total energies, in core order.
    pub fn per_core_energy(&self) -> Vec<Energy> {
        self.per_core.iter().map(|r| r.energy).collect()
    }

    /// Deadline misses summed over all cores.
    pub fn deadline_misses(&self) -> usize {
        self.per_core.iter().map(|r| r.deadline_misses).sum()
    }

    /// `true` when no core missed a deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.deadline_misses() == 0
    }

    /// Folds the per-core reports into one machine-level [`SimReport`]
    /// (`hyper_periods` is the machine count, not the per-core sum;
    /// `per_task_energy` is left empty — task identity is per-core).
    pub fn to_sim_report(&self) -> SimReport {
        let mut out = SimReport::empty(0);
        for r in &self.per_core {
            let mut flat = r.clone();
            flat.per_task_energy.clear();
            out.absorb(&flat);
        }
        out.hyper_periods = self.machine_hyper_periods;
        out
    }
}

impl MachineRun<'_> {
    /// Runs every core and aggregates. `make_policy` is called once per
    /// non-empty core (policies carry state, so each core needs a fresh
    /// instance); `workload` is called once per job with the core index,
    /// the task id *within that core's set*, and the absolute instance
    /// index of the core's run — give every core an independent,
    /// deterministic draw stream.
    ///
    /// # Errors
    ///
    /// [`MultiError::ScheduleCount`] when `schedules` does not line up
    /// with the non-empty cores; [`MultiError::Sim`] when a core's
    /// simulation fails (the first failing core aborts the machine).
    pub fn run(
        &self,
        make_policy: impl FnMut() -> Box<dyn Policy>,
        workload: &mut dyn FnMut(usize, TaskId, u64) -> Cycles,
    ) -> Result<MachineReport, MultiError> {
        self.run_with_sources(make_policy, workload, &mut |_, _| None)
    }

    /// [`MachineRun::run`] with a per-core arrival-source factory:
    /// `make_source` is called once per **non-empty** core with the core
    /// index and that core's task set; returning `Some(source)` runs the
    /// core's engine from the source's releases instead of the strictly
    /// periodic grid (see `Simulator::with_arrivals`), `None` keeps the
    /// classic periodic releases. Key any randomness inside the factory
    /// by `(seed, set, core)` — never by call order — so machine results
    /// stay deterministic at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`MachineRun::run`].
    pub fn run_with_sources(
        &self,
        mut make_policy: impl FnMut() -> Box<dyn Policy>,
        workload: &mut dyn FnMut(usize, TaskId, u64) -> Cycles,
        make_source: &mut CoreSourceFactory<'_>,
    ) -> Result<MachineReport, MultiError> {
        let busy = self.partition.busy_cores();
        if let Some(schedules) = self.schedules {
            if schedules.len() != busy {
                return Err(MultiError::ScheduleCount {
                    got: schedules.len(),
                    expected: busy,
                });
            }
        }
        let horizon_ms =
            self.options.hyper_periods as f64 * self.partition.machine_hyper_period.get() as f64;
        let mut per_core = Vec::with_capacity(self.partition.cores.len());
        let mut sched_idx = 0usize;
        for (core, assignment) in self.partition.cores.iter().enumerate() {
            let Some(set) = &assignment.set else {
                // An empty core only draws idle power over the horizon.
                let mut idle = SimReport::empty(0);
                idle.hyper_periods = self.options.hyper_periods;
                idle.idle_time = TimeSpan::from_ms(horizon_ms);
                let e = Energy::from_units(self.cpu.idle_power() * horizon_ms);
                idle.idle_energy = e;
                idle.energy = e;
                per_core.push(idle);
                continue;
            };
            let mut sim = Simulator::new(set, self.cpu, make_policy()).with_options(SimOptions {
                hyper_periods: self.options.hyper_periods * self.partition.hyper_multiplier(core),
                ..self.options
            });
            if let Some(schedules) = self.schedules {
                sim = sim.with_schedule(&schedules[sched_idx]);
            }
            sched_idx += 1;
            if let Some(source) = make_source(core, set) {
                sim = sim.with_arrivals(source);
            }
            let out = sim
                .run(&mut |task, abs| workload(core, task, abs))
                .map_err(|e| MultiError::Sim(format!("core {core}: {e}")))?;
            per_core.push(out.report);
        }
        Ok(MachineReport {
            per_core,
            machine_hyper_periods: self.options.hyper_periods,
        })
    }

    /// [`MachineRun::run`] with a per-core **batched**
    /// [`WorkloadSource`] instead of a per-job closure: `make_source`
    /// is called once per non-empty core with the core index and that
    /// core's task set, and the core's engine pulls whole
    /// hyper-period-window cycle batches from the returned source
    /// (`Simulator::run_source`) instead of one closure call per job.
    /// Under the source's batch purity contract
    /// ([`WorkloadSource::draw_batch`]) the reports are byte-identical
    /// to [`MachineRun::run`] over per-job draws of the same streams.
    /// Key the source's randomness by `(seed, set, core)` — never by
    /// call order — exactly like [`MachineRun::run_with_sources`];
    /// `make_arrivals` is the same per-core arrival-source factory that
    /// method takes (`|_, _| None` for the periodic grid).
    ///
    /// # Errors
    ///
    /// Same as [`MachineRun::run`].
    pub fn run_batched<S: WorkloadSource>(
        &self,
        mut make_policy: impl FnMut() -> Box<dyn Policy>,
        mut make_source: impl FnMut(usize, &TaskSet) -> S,
        make_arrivals: &mut CoreSourceFactory<'_>,
    ) -> Result<MachineReport, MultiError> {
        let busy = self.partition.busy_cores();
        if let Some(schedules) = self.schedules {
            if schedules.len() != busy {
                return Err(MultiError::ScheduleCount {
                    got: schedules.len(),
                    expected: busy,
                });
            }
        }
        let horizon_ms =
            self.options.hyper_periods as f64 * self.partition.machine_hyper_period.get() as f64;
        let mut per_core = Vec::with_capacity(self.partition.cores.len());
        let mut sched_idx = 0usize;
        for (core, assignment) in self.partition.cores.iter().enumerate() {
            let Some(set) = &assignment.set else {
                let mut idle = SimReport::empty(0);
                idle.hyper_periods = self.options.hyper_periods;
                idle.idle_time = TimeSpan::from_ms(horizon_ms);
                let e = Energy::from_units(self.cpu.idle_power() * horizon_ms);
                idle.idle_energy = e;
                idle.energy = e;
                per_core.push(idle);
                continue;
            };
            let mut sim = Simulator::new(set, self.cpu, make_policy()).with_options(SimOptions {
                hyper_periods: self.options.hyper_periods * self.partition.hyper_multiplier(core),
                ..self.options
            });
            if let Some(schedules) = self.schedules {
                sim = sim.with_schedule(&schedules[sched_idx]);
            }
            sched_idx += 1;
            if let Some(arrivals) = make_arrivals(core, set) {
                sim = sim.with_arrivals(arrivals);
            }
            let mut source = make_source(core, set);
            let out = sim
                .run_source(&mut source)
                .map_err(|e| MultiError::Sim(format!("core {core}: {e}")))?;
            per_core.push(out.report);
        }
        Ok(MachineReport {
            per_core,
            machine_hyper_periods: self.options.hyper_periods,
        })
    }

    /// Runs every core's event engine **interleaved on one shared
    /// virtual clock**: each non-empty core becomes a paused
    /// [`SteppedRun`](acs_sim::SteppedRun), and the machine repeatedly
    /// steps whichever core's clock is furthest behind (ties broken by
    /// the lowest core index). This is the global-time execution order
    /// a cross-core policy or a DAG dependency layer will observe;
    /// per-core results are unaffected by the interleaving because
    /// cores share no simulation state.
    ///
    /// Equivalent to [`MachineRun::run`] — byte-identical per-core
    /// reports — **provided the workload draw for `(core, task, abs)`
    /// does not depend on the order the closure is called in** (the
    /// interleaving changes that order across cores, never within one
    /// core). Seeded per-`(core, task, abs)` streams qualify; a single
    /// shared sequential RNG does not.
    ///
    /// # Errors
    ///
    /// Same as [`MachineRun::run`]; the first failing core aborts the
    /// machine.
    pub fn run_interleaved(
        &self,
        mut make_policy: impl FnMut() -> Box<dyn Policy>,
        workload: &mut dyn FnMut(usize, TaskId, u64) -> Cycles,
    ) -> Result<MachineReport, MultiError> {
        let busy = self.partition.busy_cores();
        if let Some(schedules) = self.schedules {
            if schedules.len() != busy {
                return Err(MultiError::ScheduleCount {
                    got: schedules.len(),
                    expected: busy,
                });
            }
        }
        let horizon_ms =
            self.options.hyper_periods as f64 * self.partition.machine_hyper_period.get() as f64;
        // One draw source shared by every core's stream; each per-core
        // closure only tags calls with its core index.
        let shared = RefCell::new(workload);
        let shared = &shared;
        let mut sims: Vec<(usize, Simulator)> = Vec::with_capacity(busy);
        let mut streams: Vec<Box<dyn FnMut(TaskId, u64) -> Cycles + '_>> = Vec::with_capacity(busy);
        let mut sched_idx = 0usize;
        for (core, assignment) in self.partition.cores.iter().enumerate() {
            let Some(set) = &assignment.set else {
                continue;
            };
            let mut sim = Simulator::new(set, self.cpu, make_policy()).with_options(SimOptions {
                hyper_periods: self.options.hyper_periods * self.partition.hyper_multiplier(core),
                ..self.options
            });
            if let Some(schedules) = self.schedules {
                sim = sim.with_schedule(&schedules[sched_idx]);
            }
            sched_idx += 1;
            sims.push((core, sim));
            streams.push(Box::new(move |task, abs| {
                (shared.borrow_mut())(core, task, abs)
            }));
        }
        let mut runs = Vec::with_capacity(busy);
        for ((core, sim), stream) in sims.iter_mut().zip(streams.iter_mut()) {
            let run = sim
                .stepped(&mut **stream)
                .map_err(|e| MultiError::Sim(format!("core {core}: {e}")))?;
            runs.push((*core, run));
        }
        // The shared-clock loop: always advance the core furthest
        // behind in virtual time. Strict `<` keeps the first (lowest
        // core index) of equal clocks, making the global order fully
        // deterministic.
        loop {
            let mut next: Option<(f64, usize)> = None;
            for (i, (_, run)) in runs.iter().enumerate() {
                if let Some(clock) = run.clock_ms() {
                    if next.is_none_or(|(best, _)| clock < best) {
                        next = Some((clock, i));
                    }
                }
            }
            let Some((_, i)) = next else { break };
            let core = runs[i].0;
            runs[i]
                .1
                .step()
                .map_err(|e| MultiError::Sim(format!("core {core}: {e}")))?;
        }
        let mut finished: Vec<(usize, SimReport)> = Vec::with_capacity(busy);
        for (core, run) in runs {
            let out = run
                .finish()
                .map_err(|e| MultiError::Sim(format!("core {core}: {e}")))?;
            finished.push((core, out.report));
        }
        let mut finished = finished.into_iter().peekable();
        let mut per_core = Vec::with_capacity(self.partition.cores.len());
        for (core, assignment) in self.partition.cores.iter().enumerate() {
            if assignment.set.is_none() {
                // Empty cores only draw idle power over the horizon —
                // identical to `run()`'s synthetic idle report.
                let mut idle = SimReport::empty(0);
                idle.hyper_periods = self.options.hyper_periods;
                idle.idle_time = TimeSpan::from_ms(horizon_ms);
                let e = Energy::from_units(self.cpu.idle_power() * horizon_ms);
                idle.idle_energy = e;
                idle.energy = e;
                per_core.push(idle);
            } else {
                let (c, report) = finished.next().expect("one report per busy core");
                debug_assert_eq!(c, core);
                per_core.push(report);
            }
        }
        Ok(MachineReport {
            per_core,
            machine_hyper_periods: self.options.hyper_periods,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, PartitionHeuristic};
    use acs_model::units::{Ticks, Volt};
    use acs_model::{Task, TaskSet};
    use acs_power::FreqModel;
    use acs_sim::NoDvs;

    fn set() -> TaskSet {
        let mk = |n: &str, period: u64, wcec: f64| {
            Task::builder(n, Ticks::new(period))
                .wcec(Cycles::from_cycles(wcec))
                .build()
                .unwrap()
        };
        TaskSet::new(vec![
            mk("a", 10, 1000.0),
            mk("b", 20, 800.0),
            mk("c", 20, 600.0),
        ])
        .unwrap()
    }

    fn cpu(idle_power: f64) -> Processor {
        Processor::builder(FreqModel::linear(50.0).unwrap())
            .vmin(Volt::from_volts(0.5))
            .vmax(Volt::from_volts(4.0))
            .idle_power(idle_power)
            .build()
            .unwrap()
    }

    #[test]
    fn machine_energy_equals_sum_of_cores_and_single_core_run() {
        let set = set();
        let cpu = cpu(0.0);
        let p = partition(&set, cpu.f_max(), 2, PartitionHeuristic::WorstFitDecreasing).unwrap();
        let run = MachineRun {
            partition: &p,
            cpu: &cpu,
            schedules: None,
            options: SimOptions {
                hyper_periods: 3,
                ..Default::default()
            },
        };
        let report = run
            .run(|| Box::new(NoDvs), &mut |_, _, _| {
                Cycles::from_cycles(500.0)
            })
            .unwrap();
        assert_eq!(report.per_core.len(), 2);
        assert!(report.all_deadlines_met());
        let total: f64 = report.per_core_energy().iter().map(|e| e.as_units()).sum();
        assert!((report.energy().as_units() - total).abs() < 1e-9);
        // NoDvs at fixed per-job cycles: splitting tasks over cores does
        // not change the dynamic energy (same cycles at the same V).
        let mut single = Simulator::new(&set, &cpu, NoDvs).with_options(SimOptions {
            hyper_periods: 3,
            ..Default::default()
        });
        let mono = single.run(&mut |_, _| Cycles::from_cycles(500.0)).unwrap();
        assert!((report.energy().as_units() - mono.report.energy.as_units()).abs() < 1e-6);
        assert_eq!(report.to_sim_report().hyper_periods, 3);
    }

    #[test]
    fn empty_cores_draw_idle_power_over_the_horizon() {
        let set = set();
        let cpu = cpu(2.0);
        // 8 cores for 3 tasks: at least 5 fully idle cores.
        let p = partition(&set, cpu.f_max(), 8, PartitionHeuristic::FirstFitDecreasing).unwrap();
        let run = MachineRun {
            partition: &p,
            cpu: &cpu,
            schedules: None,
            options: SimOptions {
                hyper_periods: 2,
                ..Default::default()
            },
        };
        let report = run
            .run(|| Box::new(NoDvs), &mut |_, _, _| {
                Cycles::from_cycles(100.0)
            })
            .unwrap();
        let horizon = 2.0 * set.hyper_period().get() as f64;
        for (core, r) in report.per_core.iter().enumerate() {
            if p.cores[core].set.is_none() {
                assert_eq!(r.jobs_completed, 0);
                assert!((r.idle_energy.as_units() - 2.0 * horizon).abs() < 1e-9);
            }
            // Every core idles somewhere; all idle time is charged.
            assert!(
                (r.idle_energy.as_units() - 2.0 * r.idle_time.as_ms()).abs() < 1e-9,
                "core {core}"
            );
        }
        let b = report.breakdown();
        assert!(b.idle > Energy::ZERO);
        assert_eq!(b.total(), report.energy());
    }

    #[test]
    fn interleaved_run_matches_sequential_run() {
        let set = set();
        // Idle-draining cores and an empty core (3 cores, 3 tasks under
        // WFD may still pack 2) exercise the synthetic-report path too.
        let cpu = cpu(1.5);
        let p = partition(&set, cpu.f_max(), 3, PartitionHeuristic::WorstFitDecreasing).unwrap();
        let run = MachineRun {
            partition: &p,
            cpu: &cpu,
            schedules: None,
            options: SimOptions {
                hyper_periods: 3,
                ..Default::default()
            },
        };
        // Order-independent draws: a pure function of (core, task, abs)
        // — the interleaving contract (see `run_interleaved` docs).
        let mut draw = |core: usize, task: TaskId, abs: u64| {
            Cycles::from_cycles(80.0 + ((core * 131 + task.0 * 17) as u64 + abs * 7 % 390) as f64)
        };
        let sequential = run.run(|| Box::new(NoDvs), &mut draw).unwrap();
        let interleaved = run.run_interleaved(|| Box::new(NoDvs), &mut draw).unwrap();
        assert_eq!(sequential, interleaved);
        // The interleaved run really used the event engine per core.
        assert!(interleaved
            .per_core
            .iter()
            .any(|r| r.events_handled > 0 && r.event_queue_peak > 0));
    }

    #[test]
    fn batched_run_matches_per_job_run() {
        let set = set();
        let cpu = cpu(1.5);
        let p = partition(&set, cpu.f_max(), 3, PartitionHeuristic::WorstFitDecreasing).unwrap();
        let run = MachineRun {
            partition: &p,
            cpu: &cpu,
            schedules: None,
            options: SimOptions {
                hyper_periods: 3,
                ..Default::default()
            },
        };
        // A pure (core, task, abs) function, expressed once as a per-job
        // closure and once as a batched WorkloadSource per core — the
        // batch purity contract says the reports must match exactly.
        let cycles = |core: usize, task: TaskId, abs: u64| {
            Cycles::from_cycles(80.0 + ((core * 131 + task.0 * 17) as u64 + abs * 7 % 390) as f64)
        };
        let per_job = run
            .run(|| Box::new(NoDvs), &mut |c, t, a| cycles(c, t, a))
            .unwrap();
        struct PureSource<F>(usize, F);
        impl<F: FnMut(usize, TaskId, u64) -> Cycles> acs_sim::WorkloadSource for PureSource<F> {
            fn draw(&mut self, task: TaskId, instance: u64) -> Cycles {
                (self.1)(self.0, task, instance)
            }
        }
        let batched = run
            .run_batched(
                || Box::new(NoDvs),
                |core, _| PureSource(core, cycles),
                &mut |_, _| None,
            )
            .unwrap();
        assert_eq!(per_job, batched);
    }

    #[test]
    fn schedule_count_mismatch_rejected() {
        let set = set();
        let cpu = cpu(0.0);
        let p = partition(&set, cpu.f_max(), 2, PartitionHeuristic::FirstFitDecreasing).unwrap();
        let run = MachineRun {
            partition: &p,
            cpu: &cpu,
            schedules: Some(&[]),
            options: SimOptions::default(),
        };
        let err = run
            .run(|| Box::new(NoDvs), &mut |_, _, _| Cycles::from_cycles(1.0))
            .unwrap_err();
        assert!(matches!(err, MultiError::ScheduleCount { .. }), "{err}");
    }
}
