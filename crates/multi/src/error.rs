//! Error type for partitioning and machine runs.

use std::fmt;

/// An error while partitioning a task set onto cores or running the
/// per-core simulations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MultiError {
    /// The requested core count is zero.
    InvalidCoreCount,
    /// A task's utilization does not fit on any core under the chosen
    /// heuristic — the machine is over-committed.
    Infeasible {
        /// Name of the task that could not be placed.
        task: String,
        /// The task's worst-case utilization at `f_max`.
        util: f64,
        /// Number of cores it was offered.
        cores: usize,
    },
    /// The task set carries a precedence graph. Precedence edges cannot
    /// cross a partition (a successor on core A cannot observe its
    /// predecessor's completion on core B), so DAG sets run under
    /// global placement only.
    GraphNotPartitionable,
    /// Rebuilding a per-core task set violated a model invariant
    /// (wrapped message).
    Model(String),
    /// A per-core simulation failed (wrapped message).
    Sim(String),
    /// The number of schedules handed to a machine run does not match
    /// the number of non-empty cores.
    ScheduleCount {
        /// Schedules provided.
        got: usize,
        /// Non-empty cores in the partition.
        expected: usize,
    },
}

impl fmt::Display for MultiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiError::InvalidCoreCount => {
                write!(f, "core count must be at least 1")
            }
            MultiError::Infeasible { task, util, cores } => write!(
                f,
                "task `{task}` (utilization {util:.3}) does not fit on any of {cores} cores \
                 — the machine is over-committed"
            ),
            MultiError::GraphNotPartitionable => write!(
                f,
                "task set carries a precedence graph — edges cannot cross a \
                 partition; use global placement"
            ),
            MultiError::Model(msg) => write!(f, "per-core task set: {msg}"),
            MultiError::Sim(msg) => write!(f, "per-core simulation: {msg}"),
            MultiError::ScheduleCount { got, expected } => write!(
                f,
                "machine run got {got} schedules for {expected} non-empty cores"
            ),
        }
    }
}

impl std::error::Error for MultiError {}
