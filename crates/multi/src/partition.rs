//! Utilization-driven partitioning of a task set onto identical cores.
//!
//! Partitioned multiprocessor scheduling (Nélis et al.) reduces an
//! N-core platform to N independent single-core problems: assign every
//! task to exactly one core, then run the classic single-core machinery
//! — offline synthesis, the event-driven engine, any online
//! [`Policy`](acs_sim::Policy) — per core. The assignment is the
//! classic bin-packing family over worst-case utilizations, in
//! decreasing order.

use crate::error::MultiError;
use acs_model::units::{Freq, Ticks};
use acs_model::TaskSet;

/// Which bin-packing heuristic assigns tasks (in decreasing worst-case
/// utilization order) to cores.
///
/// ```
/// use acs_multi::PartitionHeuristic;
///
/// assert_eq!(PartitionHeuristic::FirstFitDecreasing.label(), "ffd");
/// assert_eq!("wfd".parse(), Ok(PartitionHeuristic::WorstFitDecreasing));
/// assert!("zfd".parse::<PartitionHeuristic>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionHeuristic {
    /// First-fit decreasing: each task lands on the lowest-indexed core
    /// with room. Tends to fill early cores and leave late ones idle.
    FirstFitDecreasing,
    /// Best-fit decreasing: each task lands on the *fullest* core with
    /// room — tight packing, maximizing fully-idle cores.
    BestFitDecreasing,
    /// Worst-fit decreasing: each task lands on the *emptiest* core —
    /// load balancing, maximizing per-core slack for DVS to exploit.
    WorstFitDecreasing,
}

impl PartitionHeuristic {
    /// All heuristics, in canonical order.
    pub const ALL: [PartitionHeuristic; 3] = [
        PartitionHeuristic::FirstFitDecreasing,
        PartitionHeuristic::BestFitDecreasing,
        PartitionHeuristic::WorstFitDecreasing,
    ];

    /// The short label used in scenarios, reports and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            PartitionHeuristic::FirstFitDecreasing => "ffd",
            PartitionHeuristic::BestFitDecreasing => "bfd",
            PartitionHeuristic::WorstFitDecreasing => "wfd",
        }
    }
}

impl std::fmt::Display for PartitionHeuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for PartitionHeuristic {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ffd" => Ok(PartitionHeuristic::FirstFitDecreasing),
            "bfd" => Ok(PartitionHeuristic::BestFitDecreasing),
            "wfd" => Ok(PartitionHeuristic::WorstFitDecreasing),
            other => Err(format!(
                "unknown partition heuristic `{other}` (known: ffd, bfd, wfd)"
            )),
        }
    }
}

/// One core's share of a [`Partition`].
#[derive(Debug, Clone)]
pub struct CoreAssignment {
    /// Indices of the assigned tasks in the *original* set's priority
    /// order (ascending).
    pub tasks: Vec<usize>,
    /// Sum of the assigned tasks' worst-case utilizations at `f_max`.
    pub utilization: f64,
    /// The core's own task set (`None` when the core received no tasks
    /// — it only draws idle power).
    pub set: Option<TaskSet>,
}

/// A task-to-core assignment plus the rebuilt per-core task sets.
///
/// Every core's hyper-period divides the machine hyper-period (the
/// original set's lcm of periods), so simulating core `i` for
/// `machine_hyper_period / core_hyper_period` of its own hyper-periods
/// covers exactly one machine hyper-period of wall-clock time.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The heuristic that produced this assignment.
    pub heuristic: PartitionHeuristic,
    /// Per-core assignments, in core order.
    pub cores: Vec<CoreAssignment>,
    /// The original (whole-machine) hyper-period.
    pub machine_hyper_period: Ticks,
}

impl Partition {
    /// The core each original task landed on (indexed by task id).
    pub fn core_of_task(&self) -> Vec<usize> {
        let n: usize = self.cores.iter().map(|c| c.tasks.len()).sum();
        let mut owner = vec![0usize; n];
        for (core, a) in self.cores.iter().enumerate() {
            for &t in &a.tasks {
                owner[t] = core;
            }
        }
        owner
    }

    /// Number of cores that received at least one task.
    pub fn busy_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.set.is_some()).count()
    }

    /// How many of its own hyper-periods core `i` must simulate to cover
    /// one machine hyper-period (1 for empty cores).
    pub fn hyper_multiplier(&self, core: usize) -> u64 {
        match &self.cores[core].set {
            Some(set) => self.machine_hyper_period.get() / set.hyper_period().get(),
            None => 1,
        }
    }
}

/// Assigns `set` to `cores` identical cores by the given heuristic, in
/// decreasing worst-case-utilization order (`WCEC_i / (period_i ·
/// f_max)`), with a per-core capacity of utilization 1 — the exact
/// per-core EDF bound for implicit deadlines
/// ([`acs_model::SchedulingClass::Edf`]; only *necessary* when
/// deadlines are constrained below periods — use
/// `acs_preempt::edf_demand_feasible` there — and likewise necessary
/// under RM, where the expansion-based worst-case check in `acs-core`
/// remains the exact per-core gate).
///
/// Ties in utilization break toward the lower task index, and ties in
/// core load toward the lower core index, so the assignment is a pure
/// function of its inputs. Within one core, tasks keep their original
/// relative (rate-monotonic) order, and every per-core set inherits the
/// parent set's [scheduling class](acs_model::TaskSet::class).
///
/// ```
/// use acs_model::{Task, TaskSet, units::{Cycles, Freq, Ticks}};
/// use acs_multi::{partition, PartitionHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TaskSet::new(vec![
///     Task::builder("a", Ticks::new(10)).wcec(Cycles::from_cycles(1200.0)).build()?,
///     Task::builder("b", Ticks::new(10)).wcec(Cycles::from_cycles(800.0)).build()?,
///     Task::builder("c", Ticks::new(20)).wcec(Cycles::from_cycles(800.0)).build()?,
/// ])?;
/// let f_max = Freq::from_cycles_per_ms(200.0); // utils: 0.6, 0.4, 0.2
/// let p = partition(&set, f_max, 2, PartitionHeuristic::FirstFitDecreasing)?;
/// // FFD: a→core0 (0.6), b→core0 (1.0 exactly), c→core1.
/// assert_eq!(p.cores[0].tasks, vec![0, 1]);
/// assert_eq!(p.cores[1].tasks, vec![2]);
///
/// let w = partition(&set, f_max, 2, PartitionHeuristic::WorstFitDecreasing)?;
/// // WFD balances: a→core0, b→core1, c→core1.
/// assert_eq!(w.cores[0].tasks, vec![0]);
/// assert_eq!(w.cores[1].tasks, vec![1, 2]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`MultiError::InvalidCoreCount`] for zero cores;
/// [`MultiError::GraphNotPartitionable`] when the set carries a
/// non-empty precedence graph (use global placement);
/// [`MultiError::Infeasible`] when some task fits on no core;
/// [`MultiError::Model`] when a per-core task set violates a model
/// invariant (cannot happen for subsets of a valid set, but surfaced
/// rather than panicking).
pub fn partition(
    set: &TaskSet,
    f_max: Freq,
    cores: usize,
    heuristic: PartitionHeuristic,
) -> Result<Partition, MultiError> {
    if cores == 0 {
        return Err(MultiError::InvalidCoreCount);
    }
    // Precedence edges cannot cross a partition: a successor pinned to
    // core A would need to observe its predecessor's completion on core
    // B, which independent per-core simulations cannot express. DAG
    // sets run under global placement ([`crate::GlobalRun`]) instead.
    if set.graph().is_some_and(|g| !g.is_empty()) {
        return Err(MultiError::GraphNotPartitionable);
    }
    const CAP: f64 = 1.0 + 1e-9;
    let utils: Vec<f64> = set
        .tasks()
        .iter()
        .map(|t| t.wcec() / (t.period().as_span() * f_max))
        .collect();
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by(|&a, &b| utils[b].total_cmp(&utils[a]).then(a.cmp(&b)));

    let mut loads = vec![0.0f64; cores];
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); cores];
    for &t in &order {
        let fits = |core: usize| loads[core] + utils[t] <= CAP;
        let core = match heuristic {
            PartitionHeuristic::FirstFitDecreasing => (0..cores).find(|&c| fits(c)),
            PartitionHeuristic::BestFitDecreasing => (0..cores)
                .filter(|&c| fits(c))
                .max_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(b.cmp(&a))),
            PartitionHeuristic::WorstFitDecreasing => (0..cores)
                .filter(|&c| fits(c))
                .min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b))),
        };
        let Some(core) = core else {
            return Err(MultiError::Infeasible {
                task: set.tasks()[t].name().to_string(),
                util: utils[t],
                cores,
            });
        };
        loads[core] += utils[t];
        assigned[core].push(t);
    }

    let mut out = Vec::with_capacity(cores);
    for (core, mut tasks) in assigned.into_iter().enumerate() {
        tasks.sort_unstable();
        let core_set = if tasks.is_empty() {
            None
        } else {
            let cloned: Vec<_> = tasks.iter().map(|&t| set.tasks()[t].clone()).collect();
            Some(
                TaskSet::new(cloned)
                    .map_err(|e| MultiError::Model(e.to_string()))?
                    .with_class(set.class()),
            )
        };
        out.push(CoreAssignment {
            tasks,
            utilization: loads[core],
            set: core_set,
        });
    }
    Ok(Partition {
        heuristic,
        cores: out,
        machine_hyper_period: set.hyper_period(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_model::units::Cycles;
    use acs_model::Task;

    fn task(name: &str, period: u64, wcec: f64) -> Task {
        Task::builder(name, Ticks::new(period))
            .wcec(Cycles::from_cycles(wcec))
            .build()
            .unwrap()
    }

    fn f200() -> Freq {
        Freq::from_cycles_per_ms(200.0)
    }

    /// utils at f_max=200: 0.5, 0.4, 0.3, 0.2.
    fn fixture() -> TaskSet {
        TaskSet::new(vec![
            task("a", 10, 1000.0),
            task("b", 10, 800.0),
            task("c", 20, 1200.0),
            task("d", 20, 800.0),
        ])
        .unwrap()
    }

    #[test]
    fn ffd_packs_first_cores() {
        let p = partition(
            &fixture(),
            f200(),
            3,
            PartitionHeuristic::FirstFitDecreasing,
        )
        .unwrap();
        // Order by util: a(.5) b(.4) c(.3) d(.2).
        // a→0, b→0 (.9), c→1 (.3), d→1? 0 has .9+.2 > 1 → core 1.
        assert_eq!(p.cores[0].tasks, vec![0, 1]);
        assert_eq!(p.cores[1].tasks, vec![2, 3]);
        assert!(p.cores[2].set.is_none());
        assert_eq!(p.busy_cores(), 2);
        assert_eq!(p.core_of_task(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn bfd_prefers_fullest_fitting_core() {
        let p = partition(&fixture(), f200(), 3, PartitionHeuristic::BestFitDecreasing).unwrap();
        // a→0; b→0 (fullest, fits, .9); c→ fullest fitting is 0? .9+.3>1 → 1; d→0 (.9) fits? .9+.2>1 → 1 (.3 vs empty 2 → 1).
        assert_eq!(p.cores[0].tasks, vec![0, 1]);
        assert_eq!(p.cores[1].tasks, vec![2, 3]);
    }

    #[test]
    fn wfd_balances_load() {
        let p = partition(
            &fixture(),
            f200(),
            2,
            PartitionHeuristic::WorstFitDecreasing,
        )
        .unwrap();
        // a→0 (.5); b→1 (.4); c→1? loads .5/.4 → core1 (.7); d→0 (.7).
        assert_eq!(p.cores[0].tasks, vec![0, 3]);
        assert_eq!(p.cores[1].tasks, vec![1, 2]);
        assert!((p.cores[0].utilization - 0.7).abs() < 1e-12);
        assert!((p.cores[1].utilization - 0.7).abs() < 1e-12);
    }

    #[test]
    fn single_core_is_identity() {
        // Utils 0.3 + 0.25 + 0.2 + 0.1 = 0.85: fits on one core.
        let set = TaskSet::new(vec![
            task("a", 10, 600.0),
            task("b", 10, 500.0),
            task("c", 20, 800.0),
            task("d", 20, 400.0),
        ])
        .unwrap();
        for h in PartitionHeuristic::ALL {
            let p = partition(&set, f200(), 1, h).unwrap();
            assert_eq!(p.cores.len(), 1);
            assert_eq!(p.cores[0].tasks, vec![0, 1, 2, 3]);
            let core = p.cores[0].set.as_ref().unwrap();
            assert_eq!(core.hyper_period(), set.hyper_period());
            assert_eq!(p.hyper_multiplier(0), 1);
        }
    }

    #[test]
    fn hyper_multiplier_covers_machine_period() {
        let set = TaskSet::new(vec![task("fast", 5, 100.0), task("slow", 40, 100.0)]).unwrap();
        let p = partition(&set, f200(), 2, PartitionHeuristic::WorstFitDecreasing).unwrap();
        assert_eq!(p.machine_hyper_period, Ticks::new(40));
        for core in 0..2 {
            let s = p.cores[core].set.as_ref().unwrap();
            assert_eq!(
                p.hyper_multiplier(core) * s.hyper_period().get(),
                40,
                "core {core} must tile the machine hyper-period"
            );
        }
    }

    #[test]
    fn infeasible_and_zero_cores_rejected() {
        let heavy = TaskSet::new(vec![task("x", 10, 2200.0)]).unwrap(); // util 1.1
        for h in PartitionHeuristic::ALL {
            let err = partition(&heavy, f200(), 4, h).unwrap_err();
            assert!(matches!(err, MultiError::Infeasible { .. }), "{err}");
            assert!(err.to_string().contains("`x`"));
        }
        assert_eq!(
            partition(
                &fixture(),
                f200(),
                0,
                PartitionHeuristic::FirstFitDecreasing
            )
            .unwrap_err(),
            MultiError::InvalidCoreCount
        );
    }

    #[test]
    fn dag_sets_are_not_partitionable() {
        let set = TaskSet::new(vec![task("a", 10, 100.0), task("b", 10, 100.0)]).unwrap();
        let g = acs_model::TaskGraph::new(&set, vec![("a", "b")]).unwrap();
        let set = set.with_graph(g);
        for h in PartitionHeuristic::ALL {
            assert_eq!(
                partition(&set, f200(), 2, h).unwrap_err(),
                MultiError::GraphNotPartitionable
            );
        }
    }

    #[test]
    fn core_sets_inherit_the_scheduling_class() {
        use acs_model::SchedulingClass;
        let set = fixture().with_class(SchedulingClass::Edf);
        let p = partition(&set, f200(), 2, PartitionHeuristic::WorstFitDecreasing).unwrap();
        for core in p.cores.iter().filter_map(|c| c.set.as_ref()) {
            assert_eq!(core.class(), SchedulingClass::Edf);
        }
    }

    #[test]
    fn heuristic_labels_round_trip() {
        for h in PartitionHeuristic::ALL {
            assert_eq!(h.label().parse::<PartitionHeuristic>(), Ok(h));
            assert_eq!(h.to_string(), h.label());
        }
    }
}
