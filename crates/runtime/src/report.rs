//! Aggregated campaign results.

use crate::campaign::ScheduleChoice;
use acs_model::units::Energy;
use acs_model::SchedulingClass;
use acs_sim::improvement_over;

/// Aggregate statistics of one grid cell over its seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Number of simulation runs aggregated (= seed count).
    pub runs: usize,
    /// Mean total energy per run.
    pub mean_energy: Energy,
    /// Sample standard deviation of per-run energy (0 for one seed).
    pub std_energy: f64,
    /// 95th-percentile per-run energy.
    pub p95_energy: Energy,
    /// Mean dynamic (switching) energy per run — `mean_energy` minus
    /// the static and idle components.
    pub mean_dynamic_energy: Energy,
    /// Mean static (leakage) energy per run (0 on lossless processors).
    pub mean_static_energy: Energy,
    /// Mean idle energy per run (0 under the paper's shutdown
    /// assumption).
    pub mean_idle_energy: Energy,
    /// Mean total energy per core (in core order; one entry for
    /// single-core cells). Shows how the partitioner spread the load.
    pub per_core_mean_energy: Vec<f64>,
    /// Deadline misses summed over all runs.
    pub deadline_misses: usize,
    /// Deadline misses charged to aperiodic jobs (sporadic / Poisson /
    /// MMPP / trace releases), summed over all runs — a subset of
    /// `deadline_misses`, always zero on `periodic` cells.
    pub misses_aperiodic: usize,
    /// Jobs completed summed over all runs.
    pub jobs_completed: usize,
    /// Saturated dispatches summed over all runs.
    pub saturated_dispatches: usize,
    /// Voltage switches summed over all runs.
    pub voltage_switches: usize,
    /// Preemptions (dispatches displacing an unfinished job) summed
    /// over all runs.
    pub preemptions: usize,
    /// Job migrations between cores summed over all runs — always zero
    /// on single-core and partitioned cells; only global dispatch can
    /// move a job.
    pub migrations: usize,
    /// Workload draws clamped into `[0, WCEC]`, summed over all runs.
    pub clamped_draws: usize,
    /// Worst completion lateness observed across all runs (ms).
    pub worst_lateness_ms: f64,
    /// Online-solver boundary lookups summed over all runs (0 unless the
    /// cell ran a re-optimizing policy such as `reopt`).
    pub solver_lookups: usize,
    /// Lookups answered by the shared solver cache. When one cache is
    /// shared across parallel runs, this count (alone) may vary with
    /// thread interleaving; energies and deadline statistics never do.
    pub solver_cache_hits: usize,
    /// Lookups answered by carrying the previous boundary's solution
    /// forward as a warm start (no multi-start fan-out ran). Together
    /// the three mechanisms partition the lookups:
    /// `solver_lookups == warm_carry_hits + solver_cache_hits +
    /// boundary_resolves`.
    pub warm_carry_hits: usize,
    /// Boundary re-solves actually executed.
    pub boundary_resolves: usize,
    /// Re-solved candidates that passed the feasibility/energy gate and
    /// were adopted — distinguishes "solver ran but found nothing worth
    /// adopting" from "the policy actively reshaped the schedule".
    pub resolves_adopted: usize,
}

impl CellStats {
    /// Solver-cache hit rate of this cell; `None` when the cell's policy
    /// never consulted an online solver.
    pub fn solver_cache_hit_rate(&self) -> Option<f64> {
        if self.solver_lookups == 0 {
            None
        } else {
            Some(self.solver_cache_hits as f64 / self.solver_lookups as f64)
        }
    }
}

/// One grid cell: its coordinates and aggregated outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Task-set name.
    pub task_set: String,
    /// Processor name.
    pub processor: String,
    /// Number of identical cores the cell ran on (1 = the classic
    /// single-processor runs).
    pub cores: usize,
    /// Partitioner label (`"ffd"`/`"bfd"`/`"wfd"`; `"-"` on single-core
    /// and global cells, where there is nothing to partition).
    pub partition: String,
    /// Placement label (`"partitioned"`/`"global"`; `"-"` on
    /// single-core cells, where the placements coincide).
    pub placement: String,
    /// Scheduling class the cell's dispatcher ran
    /// (`FixedPriorityRm` on classic grids).
    pub class: SchedulingClass,
    /// Schedule the cell ran under.
    pub schedule: ScheduleChoice,
    /// Policy name.
    pub policy: String,
    /// Workload-family name.
    pub workload: String,
    /// Arrival-stream label (`"periodic"` on classic grids;
    /// `"sporadic"`, `"poisson"`, `"mmpp:light|bursty|heavy"` on
    /// generated streams; `"trace"` on trace-backed sets).
    pub arrivals: String,
    /// Aggregated statistics, or the first failure message.
    pub outcome: Result<CellStats, String>,
}

impl CellReport {
    /// The cell's stats when it succeeded.
    pub fn stats(&self) -> Option<&CellStats> {
        self.outcome.as_ref().ok()
    }
}

/// The aggregate outcome of a [`Campaign`](crate::Campaign) run.
///
/// Cells appear in deterministic grid order (independent of thread
/// count); two runs of the same campaign produce equal reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    cells: Vec<CellReport>,
}

impl CampaignReport {
    pub(crate) fn new(cells: Vec<CellReport>) -> Self {
        CampaignReport { cells }
    }

    /// All cells in grid order.
    pub fn cells(&self) -> &[CellReport] {
        &self.cells
    }

    /// Cells that failed (synthesis or simulation), with messages.
    pub fn failures(&self) -> impl Iterator<Item = (&CellReport, &str)> {
        self.cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().err().map(|e| (c, e.as_str())))
    }

    /// Finds the first cell matching the given coordinates (on grids
    /// with a cores/partitioner/class axis, the first match in grid
    /// order — filter [`CampaignReport::cells`] directly to select a
    /// specific core count or scheduling class).
    pub fn find(
        &self,
        task_set: &str,
        processor: &str,
        schedule: ScheduleChoice,
        policy: &str,
        workload: &str,
    ) -> Option<&CellReport> {
        self.cells.iter().find(|c| {
            c.task_set == task_set
                && c.processor == processor
                && c.schedule == schedule
                && c.policy == policy
                && c.workload == workload
        })
    }

    /// Relative mean-energy improvement of the ACS cell over the WCS cell
    /// at the same (task set, processor, policy, workload) coordinates —
    /// the paper's Fig. 6 measurement. `None` unless both cells exist and
    /// succeeded.
    pub fn gain(
        &self,
        task_set: &str,
        processor: &str,
        policy: &str,
        workload: &str,
    ) -> Option<f64> {
        let wcs = self
            .find(task_set, processor, ScheduleChoice::Wcs, policy, workload)?
            .stats()?;
        let acs = self
            .find(task_set, processor, ScheduleChoice::Acs, policy, workload)?
            .stats()?;
        Some(improvement_over(wcs.mean_energy, acs.mean_energy))
    }

    /// All ACS-vs-WCS gains in the report, one per (task set, processor,
    /// policy, workload) coordinate that has both schedule cells. One
    /// keyed pass — O(cells) even on paper-scale grids.
    pub fn gains(&self) -> Vec<(&CellReport, f64)> {
        #[allow(clippy::type_complexity)]
        fn key(
            c: &CellReport,
        ) -> (
            &str,
            &str,
            usize,
            &str,
            &str,
            SchedulingClass,
            &str,
            &str,
            &str,
        ) {
            (
                &c.task_set,
                &c.processor,
                c.cores,
                &c.partition,
                &c.placement,
                c.class,
                &c.policy,
                &c.workload,
                &c.arrivals,
            )
        }
        let wcs_mean: std::collections::HashMap<_, _> = self
            .cells
            .iter()
            .filter(|c| c.schedule == ScheduleChoice::Wcs)
            .filter_map(|c| c.stats().map(|s| (key(c), s.mean_energy)))
            .collect();
        self.cells
            .iter()
            .filter(|c| c.schedule == ScheduleChoice::Acs)
            .filter_map(|c| {
                let wcs = wcs_mean.get(&key(c))?;
                let acs = c.stats()?;
                Some((c, improvement_over(*wcs, acs.mean_energy)))
            })
            .collect()
    }

    /// Relative mean-energy improvements of `candidate`-policy cells
    /// over `baseline`-policy cells at otherwise identical coordinates
    /// (task set, processor, cores, partition, class, schedule,
    /// workload, arrivals) — e.g. `policy_gains("greedy", "reopt")`
    /// measures what online re-optimization buys on top of greedy
    /// reclamation. One keyed pass, like [`CampaignReport::gains`].
    pub fn policy_gains(&self, baseline: &str, candidate: &str) -> Vec<(&CellReport, f64)> {
        #[allow(clippy::type_complexity)]
        fn key(
            c: &CellReport,
        ) -> (
            &str,
            &str,
            usize,
            &str,
            &str,
            SchedulingClass,
            ScheduleChoice,
            &str,
            &str,
        ) {
            (
                &c.task_set,
                &c.processor,
                c.cores,
                &c.partition,
                &c.placement,
                c.class,
                c.schedule,
                &c.workload,
                &c.arrivals,
            )
        }
        let base_mean: std::collections::HashMap<_, _> = self
            .cells
            .iter()
            .filter(|c| c.policy == baseline)
            .filter_map(|c| c.stats().map(|s| (key(c), s.mean_energy)))
            .collect();
        self.cells
            .iter()
            .filter(|c| c.policy == candidate)
            .filter_map(|c| {
                let base = base_mean.get(&key(c))?;
                let cand = c.stats()?;
                Some((c, improvement_over(*base, cand.mean_energy)))
            })
            .collect()
    }

    /// Total deadline misses charged to aperiodic (arrival-stream or
    /// trace) jobs across all successful cells.
    pub fn total_misses_aperiodic(&self) -> usize {
        self.cells
            .iter()
            .filter_map(|c| c.stats())
            .map(|s| s.misses_aperiodic)
            .sum()
    }

    /// Total deadline misses across all successful cells.
    pub fn total_deadline_misses(&self) -> usize {
        self.cells
            .iter()
            .filter_map(|c| c.stats())
            .map(|s| s.deadline_misses)
            .sum()
    }

    /// Campaign-wide solver-cache hit rate (hits / lookups over every
    /// successful cell); `None` when no cell ran an online re-optimizing
    /// policy. High rates mean repeated boundary states across seeds and
    /// hyper-periods were served from the shared cache instead of the
    /// solver.
    pub fn solver_cache_hit_rate(&self) -> Option<f64> {
        let (hits, lookups) = self
            .cells
            .iter()
            .filter_map(|c| c.stats())
            .fold((0usize, 0usize), |(h, l), s| {
                (h + s.solver_cache_hits, l + s.solver_lookups)
            });
        if lookups == 0 {
            None
        } else {
            Some(hits as f64 / lookups as f64)
        }
    }

    /// Renders an aligned text table of every cell. The `cores` column
    /// shows `N:partitioner` on multicore cells; the static/idle energy
    /// columns appear only when some cell actually drew leakage or idle
    /// power.
    pub fn to_table(&self) -> String {
        let leaky =
            self.cells.iter().filter_map(|c| c.stats()).any(|s| {
                s.mean_static_energy.as_units() > 0.0 || s.mean_idle_energy.as_units() > 0.0
            });
        // The arrivals column appears only when some cell departs from
        // the classic periodic releases, keeping pre-arrivals tables
        // unchanged.
        let aperiodic = self.cells.iter().any(|c| c.arrivals != "periodic");
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<12} {:>7} {:>5} {:>5} {:<10} {:<16} {:>12} {:>10} {:>12} {:>7}",
            "task set",
            "processor",
            "cores",
            "class",
            "sched",
            "policy",
            "workload",
            "mean E",
            "std E",
            "p95 E",
            "misses"
        ));
        if leaky {
            out.push_str(&format!(" {:>12} {:>12}", "static E", "idle E"));
        }
        if aperiodic {
            out.push_str(&format!(" {:<11} {:>9}", "arrivals", "misses_ap"));
        }
        out.push('\n');
        for c in &self.cells {
            let cores = if c.cores == 1 {
                "1".to_string()
            } else if c.placement == "global" {
                format!("{}:global", c.cores)
            } else {
                format!("{}:{}", c.cores, c.partition)
            };
            match &c.outcome {
                Ok(s) => {
                    out.push_str(&format!(
                        "{:<18} {:<12} {:>7} {:>5} {:>5} {:<10} {:<16} {:>12.1} {:>10.1} \
                         {:>12.1} {:>7}",
                        c.task_set,
                        c.processor,
                        cores,
                        c.class.label(),
                        c.schedule.label(),
                        c.policy,
                        c.workload,
                        s.mean_energy.as_units(),
                        s.std_energy,
                        s.p95_energy.as_units(),
                        s.deadline_misses,
                    ));
                    if leaky {
                        out.push_str(&format!(
                            " {:>12.1} {:>12.1}",
                            s.mean_static_energy.as_units(),
                            s.mean_idle_energy.as_units()
                        ));
                    }
                    if aperiodic {
                        out.push_str(&format!(" {:<11} {:>9}", c.arrivals, s.misses_aperiodic));
                    }
                    out.push('\n');
                }
                Err(e) => out.push_str(&format!(
                    "{:<18} {:<12} {:>7} {:>5} {:>5} {:<10} {:<16} FAILED: {}\n",
                    c.task_set,
                    c.processor,
                    cores,
                    c.class.label(),
                    c.schedule.label(),
                    c.policy,
                    c.workload,
                    e,
                )),
            }
        }
        if let Some(rate) = self.solver_cache_hit_rate() {
            let (hits, lookups, resolves) = self.cells.iter().filter_map(|c| c.stats()).fold(
                (0usize, 0usize, 0usize),
                |(h, l, r), s| {
                    (
                        h + s.solver_cache_hits,
                        l + s.solver_lookups,
                        r + s.boundary_resolves,
                    )
                },
            );
            out.push_str(&format!(
                "solver cache: {hits}/{lookups} hits ({:.1}%), {resolves} boundary re-solves\n",
                100.0 * rate
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(mean: f64) -> CellStats {
        CellStats {
            runs: 2,
            mean_energy: Energy::from_units(mean),
            std_energy: 0.0,
            p95_energy: Energy::from_units(mean),
            mean_dynamic_energy: Energy::from_units(mean),
            mean_static_energy: Energy::ZERO,
            mean_idle_energy: Energy::ZERO,
            per_core_mean_energy: vec![mean],
            deadline_misses: 0,
            misses_aperiodic: 0,
            jobs_completed: 10,
            saturated_dispatches: 0,
            voltage_switches: 0,
            preemptions: 0,
            migrations: 0,
            clamped_draws: 0,
            worst_lateness_ms: 0.0,
            solver_lookups: 0,
            solver_cache_hits: 0,
            warm_carry_hits: 0,
            boundary_resolves: 0,
            resolves_adopted: 0,
        }
    }

    fn cell(schedule: ScheduleChoice, mean: f64) -> CellReport {
        CellReport {
            task_set: "s".into(),
            processor: "p".into(),
            cores: 1,
            partition: "-".into(),
            placement: "-".into(),
            class: SchedulingClass::FixedPriorityRm,
            schedule,
            policy: "greedy".into(),
            workload: "paper-normal".into(),
            arrivals: "periodic".into(),
            outcome: Ok(stats(mean)),
        }
    }

    #[test]
    fn gains_do_not_pair_across_arrivals() {
        // A sporadic ACS cell must not pair with a periodic WCS cell.
        let mut sporadic_acs = cell(ScheduleChoice::Acs, 70.0);
        sporadic_acs.arrivals = "sporadic".into();
        let report = CampaignReport::new(vec![cell(ScheduleChoice::Wcs, 100.0), sporadic_acs]);
        assert!(report.gains().is_empty());
        // The arrivals column renders only on aperiodic grids.
        let table = report.to_table();
        assert!(table.contains("arrivals"), "{table}");
        assert!(table.contains("sporadic"), "{table}");
        let periodic_only = CampaignReport::new(vec![cell(ScheduleChoice::Wcs, 100.0)]);
        assert!(!periodic_only.to_table().contains("arrivals"));
    }

    #[test]
    fn gain_pairs_wcs_and_acs_cells() {
        let report = CampaignReport::new(vec![
            cell(ScheduleChoice::Wcs, 100.0),
            cell(ScheduleChoice::Acs, 80.0),
        ]);
        let g = report.gain("s", "p", "greedy", "paper-normal").unwrap();
        assert!((g - 0.2).abs() < 1e-12);
        assert_eq!(report.gains().len(), 1);
        assert_eq!(report.total_deadline_misses(), 0);
        assert!(report.gain("s", "p", "static", "paper-normal").is_none());
    }

    #[test]
    fn gains_do_not_pair_across_classes() {
        // An EDF ACS cell must not pair with an RM WCS cell.
        let mut edf_acs = cell(ScheduleChoice::Acs, 70.0);
        edf_acs.class = SchedulingClass::Edf;
        let report = CampaignReport::new(vec![cell(ScheduleChoice::Wcs, 100.0), edf_acs]);
        assert!(report.gains().is_empty());
        // Same-class pairs still match, per class.
        let mut edf_wcs = cell(ScheduleChoice::Wcs, 90.0);
        edf_wcs.class = SchedulingClass::Edf;
        let mut edf_acs = cell(ScheduleChoice::Acs, 45.0);
        edf_acs.class = SchedulingClass::Edf;
        let report = CampaignReport::new(vec![
            cell(ScheduleChoice::Wcs, 100.0),
            cell(ScheduleChoice::Acs, 80.0),
            edf_wcs,
            edf_acs,
        ]);
        let gains = report.gains();
        assert_eq!(gains.len(), 2);
        assert!((gains[0].1 - 0.2).abs() < 1e-12);
        assert!((gains[1].1 - 0.5).abs() < 1e-12);
        // The table renders one class column per row.
        let table = report.to_table();
        assert!(table.contains(" edf "), "{table}");
        assert!(table.contains(" rm "), "{table}");
    }

    #[test]
    fn solver_cache_hit_rate_aggregates() {
        let mut with_solver = cell(ScheduleChoice::Acs, 50.0);
        if let Ok(s) = &mut with_solver.outcome {
            s.solver_lookups = 40;
            s.solver_cache_hits = 30;
            s.boundary_resolves = 10;
        }
        let plain = cell(ScheduleChoice::Wcs, 100.0);
        assert!(plain.stats().unwrap().solver_cache_hit_rate().is_none());
        let report = CampaignReport::new(vec![plain, with_solver]);
        let rate = report.solver_cache_hit_rate().unwrap();
        assert!((rate - 0.75).abs() < 1e-12);
        let table = report.to_table();
        assert!(
            table.contains("solver cache: 30/40 hits (75.0%)"),
            "{table}"
        );
        // Without any solver cells there is no footer.
        let silent = CampaignReport::new(vec![cell(ScheduleChoice::Wcs, 1.0)]);
        assert!(silent.solver_cache_hit_rate().is_none());
        assert!(!silent.to_table().contains("solver cache"));
    }

    #[test]
    fn failures_listed_and_rendered() {
        let mut bad = cell(ScheduleChoice::Wcs, 0.0);
        bad.outcome = Err("synthesis: boom".into());
        let report = CampaignReport::new(vec![bad, cell(ScheduleChoice::Acs, 50.0)]);
        assert_eq!(report.failures().count(), 1);
        let table = report.to_table();
        assert!(table.contains("FAILED: synthesis: boom"));
        assert!(table.contains("greedy"));
        assert!(report.gain("s", "p", "greedy", "paper-normal").is_none());
    }
}
