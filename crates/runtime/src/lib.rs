//! # acs-runtime
//!
//! Batch experiment runner for the `acsched` workspace: the [`Campaign`]
//! builder composes **task sets × processors × cores × partitioners ×
//! schedule kinds × policies × workload distributions × seeds** into a
//! cartesian experiment grid,
//! executes every run on a scoped thread pool, and either aggregates the
//! outcomes into a deterministic [`CampaignReport`] (per-cell mean/p95
//! energy, deadline misses, ACS-vs-WCS gains) or **streams** one
//! [`CellRecord`] per cell into any [`ResultSink`]
//! ([`Campaign::run_with`]) — CSV, JSON Lines, in-memory aggregation or
//! a [`Tee`] fan-out — in grid order, independent of thread count.
//!
//! Every figure/table binary in `acs-bench` and the `design_space`
//! example are thin layers over this crate — no more hand-rolled sweep
//! loops.
//!
//! Parallelism uses `std::thread::scope` with an atomic work queue (the
//! build environment vendors no external crates, so no rayon); results
//! are keyed by grid index, which makes the report independent of thread
//! count and scheduling order: same inputs + same seeds ⇒ identical
//! report, at any `threads(..)` setting.
//!
//! ## Example
//!
//! ```
//! use acs_model::{Task, TaskSet, units::{Cycles, Ticks, Volt}};
//! use acs_power::{FreqModel, Processor};
//! use acs_runtime::{Campaign, PolicySpec, ScheduleChoice, WorkloadSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = TaskSet::new(vec![
//!     Task::builder("ctrl", Ticks::new(10))
//!         .wcec(Cycles::from_cycles(300.0))
//!         .acec(Cycles::from_cycles(120.0))
//!         .bcec(Cycles::from_cycles(30.0))
//!         .build()?,
//! ])?;
//! let cpu = Processor::builder(FreqModel::linear(50.0)?)
//!     .vmin(Volt::from_volts(0.3)).vmax(Volt::from_volts(4.0)).build()?;
//!
//! let report = Campaign::builder()
//!     .task_set("ctrl-only", set)
//!     .processor("linear", cpu)
//!     .schedules([ScheduleChoice::Wcs, ScheduleChoice::Acs])
//!     .policy(PolicySpec::greedy())
//!     .workload(WorkloadSpec::Paper)
//!     .seeds(0..4)
//!     .hyper_periods(5)
//!     .build()?
//!     .run();
//! let gain = report.gain("ctrl-only", "linear", "greedy", "paper-normal");
//! assert!(gain.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod pool;
pub mod report;
pub mod sink;

pub use acs_model::SchedulingClass;
pub use acs_multi::{PartitionHeuristic, Placement};
pub use campaign::{
    Campaign, CampaignBuilder, CampaignError, CampaignPlans, PolicySpec, ScheduleChoice,
    WorkloadSpec,
};
pub use report::{CampaignReport, CellReport, CellStats};
pub use sink::{
    csv_row, AggregateSink, CampaignMeta, CellRecord, CsvSink, JsonlSink, ResultSink, Tee,
    CSV_HEADER,
};
