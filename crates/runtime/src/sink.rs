//! Streaming campaign results: the [`ResultSink`] trait and the
//! built-in sinks.
//!
//! [`Campaign::run_with`](crate::Campaign::run_with) pushes one
//! [`CellRecord`] per grid cell into a sink **as the grid executes** —
//! in deterministic grid order, independent of the worker-thread count —
//! instead of materializing the whole report in memory first. The
//! built-ins cover the common shapes:
//!
//! * [`AggregateSink`] — collects records into the classic in-memory
//!   [`CampaignReport`]; `Campaign::run` is exactly `run_with` over this
//!   sink, so streaming and materialized results are identical by
//!   construction.
//! * [`CsvSink`] — one header plus one comma-separated row per cell,
//!   written to any `io::Write` (hand-rolled; the build environment
//!   vendors no serde).
//! * [`JsonlSink`] — one JSON object per line, same data.
//! * [`Tee`] — fans every callback out to several sinks, e.g. aggregate
//!   in memory *and* persist CSV in one pass.

use crate::report::{CampaignReport, CellReport, CellStats};
use std::io;
use std::io::Write;

/// Static facts about a campaign, handed to sinks before the first
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignMeta {
    /// Number of grid cells (records the sink will receive).
    pub cells: usize,
    /// Number of simulator runs backing those cells.
    pub runs: usize,
    /// Seeds per cell.
    pub seeds: usize,
}

/// One grid cell's result, emitted while the campaign runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Position in grid order, `0 ≤ index < meta.cells`. Records always
    /// arrive in increasing `index` order.
    pub index: usize,
    /// The cell's coordinates and aggregated outcome.
    pub cell: CellReport,
}

/// A consumer of streaming campaign results.
///
/// `Campaign::run_with` calls `on_begin` once, then `on_record` once per
/// grid cell **in grid order** (cell `i` is delivered as soon as every
/// seed of every cell `≤ i` has finished simulating — later cells may
/// still be running), then `on_end` once. Any error aborts the campaign
/// and is returned from `run_with`.
pub trait ResultSink {
    /// Called once before the first record.
    ///
    /// # Errors
    ///
    /// Propagated out of `Campaign::run_with`, aborting the campaign.
    fn on_begin(&mut self, _meta: &CampaignMeta) -> io::Result<()> {
        Ok(())
    }

    /// Called once per grid cell, in grid order.
    ///
    /// # Errors
    ///
    /// Propagated out of `Campaign::run_with`, aborting the campaign.
    fn on_record(&mut self, record: &CellRecord) -> io::Result<()>;

    /// Called once after the last record.
    ///
    /// # Errors
    ///
    /// Propagated out of `Campaign::run_with`.
    fn on_end(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Collects records into a [`CampaignReport`] — the sink behind
/// [`Campaign::run`](crate::Campaign::run).
#[derive(Debug, Default)]
pub struct AggregateSink {
    cells: Vec<CellReport>,
}

impl AggregateSink {
    /// An empty aggregator.
    pub fn new() -> Self {
        AggregateSink::default()
    }

    /// The report accumulated so far.
    pub fn into_report(self) -> CampaignReport {
        CampaignReport::new(self.cells)
    }
}

impl ResultSink for AggregateSink {
    fn on_begin(&mut self, meta: &CampaignMeta) -> io::Result<()> {
        self.cells.reserve(meta.cells);
        Ok(())
    }

    fn on_record(&mut self, record: &CellRecord) -> io::Result<()> {
        self.cells.push(record.cell.clone());
        Ok(())
    }
}

/// The column header emitted by [`CsvSink`] (no trailing newline).
///
/// The multicore/leakage columns (`cores` through `per_core_energy`)
/// are appended after the original layout, so positional consumers of
/// pre-0.2 CSVs keep working; `per_core_energy` is a `;`-joined list of
/// per-core mean energies, in core order. The scheduling-class columns
/// (`class`, `preemptions`) are appended after those for the same
/// reason — v2 positions are preserved; `class` is `rm` or `edf`. The
/// arrival-stream columns (`arrivals`, `misses_aperiodic`) are appended
/// after those, again preserving every earlier position: `arrivals` is
/// the cell's arrival label (`periodic`/`sporadic`/`poisson`/
/// `mmpp:light|bursty|heavy`/`trace`), `misses_aperiodic` the subset of
/// `deadline_misses` charged to aperiodic jobs. The placement columns
/// (`placement`, `migrations`) come last — v4 positions are preserved:
/// `placement` is `partitioned`/`global` (`-` on single-core cells),
/// `migrations` the between-core job migrations (zero everywhere except
/// global cells).
pub const CSV_HEADER: &str = "task_set,processor,schedule,policy,workload,status,error,\
     runs,mean_energy,std_energy,p95_energy,deadline_misses,jobs_completed,\
     saturated_dispatches,voltage_switches,clamped_draws,worst_lateness_ms,\
     solver_lookups,solver_cache_hits,boundary_resolves,resolves_adopted,\
     cores,partition,dynamic_energy,static_energy,idle_energy,per_core_energy,\
     class,preemptions,arrivals,misses_aperiodic,placement,migrations";

/// Quotes a CSV field when it contains a comma, quote or newline
/// (RFC-4180 style: embedded quotes doubled).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders one record as its [`CsvSink`] row (no trailing newline) —
/// the exact bytes the sink would write under [`CSV_HEADER`]. Exposed
/// so remote transports (the campaign server's `record` frames, its
/// checkpoint files) can carry rows that splice byte-identically into a
/// locally written CSV.
pub fn csv_row(record: &CellRecord) -> String {
    let c = &record.cell;
    let coords = [
        csv_field(&c.task_set),
        csv_field(&c.processor),
        c.schedule.label().to_string(),
        csv_field(&c.policy),
        csv_field(&c.workload),
    ]
    .join(",");
    let cores = format!("{},{}", c.cores, csv_field(&c.partition));
    match &c.outcome {
        Ok(s) => {
            let per_core: Vec<String> = s.per_core_mean_energy.iter().map(f64::to_string).collect();
            format!(
                "{coords},ok,,{},{},{},{},{},{},{},{},{},{},{},{},{},{},{cores},{},{},{},{},\
                 {},{},{},{},{},{}",
                s.runs,
                s.mean_energy.as_units(),
                s.std_energy,
                s.p95_energy.as_units(),
                s.deadline_misses,
                s.jobs_completed,
                s.saturated_dispatches,
                s.voltage_switches,
                s.clamped_draws,
                s.worst_lateness_ms,
                s.solver_lookups,
                s.solver_cache_hits,
                s.boundary_resolves,
                s.resolves_adopted,
                s.mean_dynamic_energy.as_units(),
                s.mean_static_energy.as_units(),
                s.mean_idle_energy.as_units(),
                csv_field(&per_core.join(";")),
                c.class.label(),
                s.preemptions,
                csv_field(&c.arrivals),
                s.misses_aperiodic,
                csv_field(&c.placement),
                s.migrations,
            )
        }
        Err(e) => format!(
            "{coords},failed,{},,,,,,,,,,,,,,,{cores},,,,,{},,{},,{},",
            csv_field(e),
            c.class.label(),
            csv_field(&c.arrivals),
            csv_field(&c.placement),
        ),
    }
}

/// Streams one CSV row per cell to any writer.
///
/// Failed cells carry `status=failed` plus the error message and empty
/// statistic columns. Numbers use Rust's shortest round-trip `f64`
/// formatting. The writer is flushed at `on_end`.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer; the header is written by `on_begin`.
    pub fn new(writer: W) -> Self {
        CsvSink { writer }
    }

    /// Unwraps the writer (e.g. to recover an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> ResultSink for CsvSink<W> {
    fn on_begin(&mut self, _meta: &CampaignMeta) -> io::Result<()> {
        writeln!(self.writer, "{CSV_HEADER}")
    }

    fn on_record(&mut self, record: &CellRecord) -> io::Result<()> {
        writeln!(self.writer, "{}", csv_row(record))
    }

    fn on_end(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Escapes a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Streams one JSON object per line (JSON Lines) to any writer.
///
/// Successful cells carry a `"stats"` object; failed cells carry an
/// `"error"` string. The writer is flushed at `on_end`.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> ResultSink for JsonlSink<W> {
    fn on_record(&mut self, record: &CellRecord) -> io::Result<()> {
        let c = &record.cell;
        let coords = format!(
            "\"index\":{},\"task_set\":\"{}\",\"processor\":\"{}\",\"cores\":{},\
             \"partition\":\"{}\",\"placement\":\"{}\",\"class\":\"{}\",\
             \"schedule\":\"{}\",\
             \"policy\":\"{}\",\"workload\":\"{}\",\"arrivals\":\"{}\"",
            record.index,
            json_escape(&c.task_set),
            json_escape(&c.processor),
            c.cores,
            json_escape(&c.partition),
            json_escape(&c.placement),
            c.class.label(),
            c.schedule.label(),
            json_escape(&c.policy),
            json_escape(&c.workload),
            json_escape(&c.arrivals),
        );
        match &c.outcome {
            Ok(s) => writeln!(
                self.writer,
                "{{{coords},\"ok\":true,\"stats\":{}}}",
                stats_json(s)
            ),
            Err(e) => writeln!(
                self.writer,
                "{{{coords},\"ok\":false,\"error\":\"{}\"}}",
                json_escape(e)
            ),
        }
    }

    fn on_end(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

fn stats_json(s: &CellStats) -> String {
    let per_core: Vec<String> = s.per_core_mean_energy.iter().map(f64::to_string).collect();
    format!(
        "{{\"runs\":{},\"mean_energy\":{},\"std_energy\":{},\"p95_energy\":{},\
         \"dynamic_energy\":{},\"static_energy\":{},\"idle_energy\":{},\
         \"per_core_energy\":[{}],\
         \"deadline_misses\":{},\"jobs_completed\":{},\"saturated_dispatches\":{},\
         \"voltage_switches\":{},\"preemptions\":{},\"clamped_draws\":{},\
         \"worst_lateness_ms\":{},\
         \"solver_lookups\":{},\"solver_cache_hits\":{},\"boundary_resolves\":{},\
         \"resolves_adopted\":{},\"misses_aperiodic\":{},\"migrations\":{}}}",
        s.runs,
        s.mean_energy.as_units(),
        s.std_energy,
        s.p95_energy.as_units(),
        s.mean_dynamic_energy.as_units(),
        s.mean_static_energy.as_units(),
        s.mean_idle_energy.as_units(),
        per_core.join(","),
        s.deadline_misses,
        s.jobs_completed,
        s.saturated_dispatches,
        s.voltage_switches,
        s.preemptions,
        s.clamped_draws,
        s.worst_lateness_ms,
        s.solver_lookups,
        s.solver_cache_hits,
        s.boundary_resolves,
        s.resolves_adopted,
        s.misses_aperiodic,
        s.migrations,
    )
}

/// Fans every callback out to several sinks, in order — e.g. aggregate
/// a [`CampaignReport`] *and* persist CSV in one streaming pass. The
/// first error aborts the fan-out (later sinks in the list are not
/// called for that event).
pub struct Tee<'a> {
    sinks: Vec<&'a mut dyn ResultSink>,
}

impl<'a> Tee<'a> {
    /// Builds a fan-out over the given sinks.
    pub fn new(sinks: Vec<&'a mut dyn ResultSink>) -> Self {
        Tee { sinks }
    }
}

impl std::fmt::Debug for Tee<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tee")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl ResultSink for Tee<'_> {
    fn on_begin(&mut self, meta: &CampaignMeta) -> io::Result<()> {
        for sink in &mut self.sinks {
            sink.on_begin(meta)?;
        }
        Ok(())
    }

    fn on_record(&mut self, record: &CellRecord) -> io::Result<()> {
        for sink in &mut self.sinks {
            sink.on_record(record)?;
        }
        Ok(())
    }

    fn on_end(&mut self) -> io::Result<()> {
        for sink in &mut self.sinks {
            sink.on_end()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::ScheduleChoice;
    use acs_model::units::Energy;
    use acs_model::SchedulingClass;

    fn record(index: usize, ok: bool) -> CellRecord {
        CellRecord {
            index,
            cell: CellReport {
                task_set: "s,1".into(),
                processor: "p".into(),
                cores: 2,
                partition: "ffd".into(),
                placement: "partitioned".into(),
                class: SchedulingClass::Edf,
                schedule: ScheduleChoice::Wcs,
                policy: "greedy".into(),
                workload: "paper-normal".into(),
                arrivals: "mmpp:bursty".into(),
                outcome: if ok {
                    Ok(CellStats {
                        runs: 2,
                        mean_energy: Energy::from_units(12.5),
                        std_energy: 0.5,
                        p95_energy: Energy::from_units(13.0),
                        mean_dynamic_energy: Energy::from_units(10.0),
                        mean_static_energy: Energy::from_units(2.0),
                        mean_idle_energy: Energy::from_units(0.5),
                        per_core_mean_energy: vec![7.5, 5.0],
                        deadline_misses: 3,
                        misses_aperiodic: 2,
                        jobs_completed: 20,
                        saturated_dispatches: 1,
                        voltage_switches: 40,
                        preemptions: 6,
                        migrations: 4,
                        clamped_draws: 0,
                        worst_lateness_ms: -0.25,
                        solver_lookups: 0,
                        solver_cache_hits: 0,
                        warm_carry_hits: 0,
                        boundary_resolves: 0,
                        resolves_adopted: 0,
                    })
                } else {
                    Err("synthesis: \"boom\"".into())
                },
            },
        }
    }

    fn drive(sink: &mut dyn ResultSink) {
        let meta = CampaignMeta {
            cells: 2,
            runs: 4,
            seeds: 2,
        };
        sink.on_begin(&meta).unwrap();
        sink.on_record(&record(0, true)).unwrap();
        sink.on_record(&record(1, false)).unwrap();
        sink.on_end().unwrap();
    }

    #[test]
    fn csv_rows_and_quoting() {
        let mut sink = CsvSink::new(Vec::new());
        drive(&mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(
            lines[1].starts_with(
                "\"s,1\",p,WCS,greedy,paper-normal,ok,,2,12.5,0.5,13,3,20,1,40,0,-0.25,"
            ),
            "{}",
            lines[1]
        );
        assert!(
            lines[1].ends_with(",2,ffd,10,2,0.5,7.5;5,edf,6,mmpp:bursty,2,partitioned,4"),
            "multicore/leakage, class, arrival, then placement columns are appended: {}",
            lines[1]
        );
        assert!(
            lines[2].contains("failed,\"synthesis: \"\"boom\"\"\""),
            "{}",
            lines[2]
        );
        assert!(
            lines[2].ends_with(",2,ffd,,,,,edf,,mmpp:bursty,,partitioned,"),
            "failed rows still carry the cores, class, arrivals and placement coordinates: {}",
            lines[2]
        );
        // Every row has the header's column count.
        let cols = |line: &str| {
            let mut n = 1;
            let mut in_quotes = false;
            for ch in line.chars() {
                match ch {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => n += 1,
                    _ => {}
                }
            }
            n
        };
        assert_eq!(cols(lines[1]), cols(lines[0]));
        assert_eq!(cols(lines[2]), cols(lines[0]));
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let mut sink = JsonlSink::new(Vec::new());
        drive(&mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"task_set\":\"s,1\""));
        assert!(lines[0].contains("\"cores\":2"));
        assert!(lines[0].contains("\"partition\":\"ffd\""));
        assert!(lines[0].contains("\"class\":\"edf\""));
        assert!(lines[0].contains("\"preemptions\":6"));
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[0].contains("\"mean_energy\":12.5"));
        assert!(lines[0].contains("\"static_energy\":2"));
        assert!(lines[0].contains("\"per_core_energy\":[7.5,5]"));
        assert!(lines[0].contains("\"arrivals\":\"mmpp:bursty\""));
        assert!(lines[0].contains("\"misses_aperiodic\":2"));
        assert!(lines[0].contains("\"placement\":\"partitioned\""));
        assert!(lines[0].contains("\"migrations\":4"));
        assert!(lines[1].contains("\"placement\":\"partitioned\""));
        assert!(lines[1].contains("\"arrivals\":\"mmpp:bursty\""));
        assert!(lines[1].contains("\"ok\":false"));
        assert!(lines[1].contains("\\\"boom\\\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn tee_fans_out_and_aggregate_collects() {
        let mut agg = AggregateSink::new();
        let mut csv = CsvSink::new(Vec::new());
        {
            let mut tee = Tee::new(vec![&mut agg, &mut csv]);
            drive(&mut tee);
        }
        let report = agg.into_report();
        assert_eq!(report.cells().len(), 2);
        assert_eq!(report.failures().count(), 1);
        let text = String::from_utf8(csv.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
